//! The two-statement stencil pipeline (the paper's Example 2): find the
//! AOVs, check the zero-communication diagonal-strip decomposition, and
//! reproduce the Figure 15 speedup comparison.
//!
//! ```text
//! cargo run --example stencil_pipeline
//! ```

use aov::core::{problems, transform::StorageTransform};
use aov::interp::validate::semantics_preserved;
use aov::ir::examples::example2;
use aov::linalg::AffineExpr;
use aov::machine::{experiments, MachineConfig};
use aov::schedule::Schedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = example2();
    println!("== program ==\n{program}");

    // Problem 3 on a two-array program: each array gets its own AOV.
    let aov = problems::aov(&program)?;
    println!("AOVs:\n{aov}");
    assert_eq!(aov.vector_for("A").unwrap().components(), [1, 1]);
    assert_eq!(aov.vector_for("B").unwrap().components(), [1, 1]);

    // Transform both arrays and validate dynamically under the
    // wavefront schedule Θ1 = Θ2 = i + j.
    let ts: Vec<StorageTransform> = program
        .arrays()
        .iter()
        .enumerate()
        .map(|(k, a)| {
            StorageTransform::new(
                &program,
                aov::ir::ArrayId(k),
                aov.vector_for(a.name()).unwrap(),
            )
            .expect("transformable")
        })
        .collect();
    let wave = Schedule::uniform_for(
        &program,
        &[
            AffineExpr::from_i64(&[1, 1, 0, 0], 0),
            AffineExpr::from_i64(&[1, 1, 0, 0], 0),
        ],
    );
    assert!(semantics_preserved(&program, &[8, 8], &wave, &ts));
    println!("dynamic check passed under the wavefront schedule");

    // Figure 15: diagonal strips on the simulated machine.
    let cfg = MachineConfig::scaled_down();
    println!("\nFigure 15 (speedup vs processors, 384x384):");
    for p in experiments::example2_speedup(&cfg, 384, 384, &[1, 2, 4, 8, 16, 32, 64]) {
        println!(
            "  P={:>2}  original {:>6.2}  transformed {:>6.2}",
            p.procs, p.original, p.transformed
        );
    }
    Ok(())
}
