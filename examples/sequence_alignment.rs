//! Multiple sequence alignment (the paper's Example 3): collapse the 3-D
//! dynamic-programming cube to a 2-D array with the AOV (1,1,1), run the
//! real min-plus recurrence through the interpreter under both storages,
//! and simulate the Figure 16 parallel speedups.
//!
//! ```text
//! cargo run --example sequence_alignment
//! ```

use aov::core::{problems, transform::StorageTransform};
use aov::interp::exec::{reference_values, run_scheduled};
use aov::interp::store::StorageMode;
use aov::ir::examples::example3;
use aov::machine::{experiments, MachineConfig};
use aov::schedule::scheduler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = example3();
    println!("aligning three sequences via the Needleman-Wunsch DP cube");

    // The headline analysis: AOV (1,1,1) despite 19 dependences and the
    // boundary-writer pruning of §5.3.
    let aov = problems::aov(&program)?;
    let v = aov.vector_for("D").expect("array D");
    println!("AOV of the DP cube: v = {v}");

    let d = program.array_by_name("D").expect("array D");
    let t = StorageTransform::new(&program, d, v)?;
    let (x, y, z) = (10i64, 9, 8);
    println!(
        "storage at {x}x{y}x{z}: {} -> {} cells ({}-d -> {}-d)",
        t.original_size(&[x, y, z]),
        t.transformed_size(&[x, y, z]),
        3,
        t.transformed_dim()
    );

    // Execute the real recurrence (min/add interpreted, w hashed) with
    // both storages under a legal schedule and compare every value.
    let sched = scheduler::find_schedule(&program)?;
    let reference = reference_values(&program, &[x, y, z]);
    let modes: Vec<StorageMode<'_>> = program
        .arrays()
        .iter()
        .map(|_| StorageMode::Transformed(&t))
        .collect();
    let (vals, stats) = run_scheduled(&program, &[x, y, z], &sched, &modes);
    assert_eq!(
        vals, reference,
        "transformed DP must compute identical costs"
    );
    println!(
        "dynamic check passed: {} instances, {} time steps, {} cells used",
        stats.instances, stats.time_steps, stats.cells_used[0]
    );

    // Figure 16: parallel speedups on the simulated machine.
    let cfg = MachineConfig::memory_bound();
    println!("\nFigure 16 (speedup vs processors, 48x96x96):");
    for p in experiments::example3_speedup(&cfg, 48, 96, 96, &[1, 2, 4, 8, 16]) {
        println!(
            "  P={:>2}  original {:>6.2}  transformed {:>6.2}{}",
            p.procs,
            p.original,
            p.transformed,
            if p.transformed > p.procs as f64 {
                "  (superlinear)"
            } else {
                ""
            }
        );
    }
    Ok(())
}
