//! Problem 2 interactively: fix a storage budget (an occupancy vector)
//! and explore which affine schedules remain legal — the paper's
//! Figure 4, plus the "shrink storage until unschedulable" strategy of
//! §2.2.
//!
//! ```text
//! cargo run --example schedule_explorer
//! ```

use aov::core::{problems, CoreError, OccupancyVector};
use aov::ir::examples::example1;
use aov::linalg::{AffineExpr, QVector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = example1();

    // Sweep storage budgets from generous to impossible, mirroring the
    // §2.2 strategy: restrict the store until no schedule exists.
    for v in [vec![1, 2], vec![0, 2], vec![0, 1], vec![0, 0]] {
        let ov = OccupancyVector::new(v.clone());
        match problems::best_schedule_for_ov(&program, &[ov]) {
            Ok(s) => println!("v = {v:?}: schedulable, e.g.\n{}", s.display(&program)),
            Err(CoreError::Unschedulable) => {
                println!("v = {v:?}: NO affine schedule exists (storage too tight)")
            }
            Err(e) => return Err(e.into()),
        }
    }

    // Figure 4: the slope picture for v = (0, 2).
    let (space, poly) = problems::schedules_for_ov(&program, &[OccupancyVector::new(vec![0, 2])])?;
    let sid = aov::ir::StmtId(0);
    println!("\nschedules Θ = a·i + b·j valid for v = (0,2):");
    println!("      b = 1   2   3   4   5   6");
    for a in -3i64..=3 {
        print!("a = {a:>2}:");
        for b in 1i64..=6 {
            let mut pt = QVector::zeros(space.dim());
            pt[space.iter_coeff(sid, 0)] = a.into();
            pt[space.iter_coeff(sid, 1)] = b.into();
            print!("   {}", if poly.contains(&pt) { "+" } else { "." });
        }
        println!();
    }
    println!("(+ marks a valid schedule; the cone opens as b grows — slopes in (-1/2, 1/2])");

    // And the other direction (Problem 1): given the row schedule, the
    // storage can shrink to a single row.
    let row =
        aov::schedule::Schedule::uniform_for(&program, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
    let ov = problems::ov_for_schedule(&program, &row)?;
    println!("\nshortest OV for Θ = j: {}", ov.vector_for("A").unwrap());
    Ok(())
}
