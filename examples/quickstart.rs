//! Quickstart: the full pipeline on the paper's Example 1 (Figure 1).
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the 3-point stencil, finds its AOV, derives the storage
//! transformation and transformed code, and validates the result both
//! statically (exact checker) and dynamically (interpreter).

use aov::core::{check::Checker, codegen, problems::AovSolver, transform::StorageTransform};
use aov::interp::validate::semantics_preserved;
use aov::ir::examples::example1;
use aov::linalg::AffineExpr;
use aov::schedule::{scheduler, Schedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = example1();
    println!("== program ==\n{program}");
    println!("== original code ==\n{}", codegen::original_code(&program));

    // A maximally parallel schedule (the scheduler finds Θ = j).
    let sched = scheduler::find_schedule(&program)?;
    println!("== schedule ==\n{}", sched.display(&program));

    // Problem 3: the shortest occupancy vector valid for EVERY legal
    // affine schedule.
    let solution = AovSolver::new(&program)?.solve()?;
    println!("== AOV ==\n{solution}");
    let v = solution.vector_for("A").expect("array A");
    assert_eq!(v.components(), [1, 2], "the paper's Figure 5 result");

    // The storage transformation: project onto the hyperplane ⊥ v.
    let a = program.array_by_name("A").expect("array A");
    let t = StorageTransform::new(&program, a, v)?;
    let (n, m) = (100i64, 100i64);
    println!(
        "storage at (n, m) = ({n}, {m}): {} -> {} cells",
        t.original_size(&[n, m]),
        t.transformed_size(&[n, m])
    );
    println!(
        "== transformed code ==\n{}",
        codegen::transformed_code(&program, std::slice::from_ref(&t))
    );

    // Static validation: v is valid for every legal affine schedule.
    let mut checker = Checker::new(&program);
    assert!(checker.valid_for_all_schedules(a, v.components())?);

    // Dynamic validation: run original vs transformed under several
    // legal schedules and compare every computed value.
    for theta in [
        AffineExpr::from_i64(&[0, 1, 0, 0], 0),
        AffineExpr::from_i64(&[1, 2, 0, 0], 0),
        AffineExpr::from_i64(&[-1, 3, 0, 0], 7),
    ] {
        let s = Schedule::uniform_for(&program, &[theta]);
        assert!(semantics_preserved(
            &program,
            &[9, 8],
            &s,
            std::slice::from_ref(&t)
        ));
    }
    println!("static + dynamic validation passed");
    Ok(())
}
