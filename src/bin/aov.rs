//! The `aov` command line: run the instrumented pipeline on one of the
//! paper's examples or a `.aov` source file and print a JSON report,
//! fuzz the pipeline differentially, or drive the benchmark
//! observatory.
//!
//! ```text
//! aov <example1|example2|example3|example4|unschedulable|all> [options]
//! aov run FILE.aov [options]
//!
//!   (`unschedulable` is the degradation-ladder demo: a program with no
//!   one-dimensional affine schedule; the run exits 3 with a report
//!   naming the violated dependence)
//!
//!   `aov run` sends a textual program through the identical pipeline;
//!   a syntax or lowering error prints a caret diagnostic and exits 64.
//!
//!   --example NAME     load a built-in example *through the parser*
//!                      (the checked-in examples/NAME.aov corpus file)
//!                      instead of the hand-built constructor; positional
//!                      names keep the hand-built path
//!   --check            parse only: verify each file/example parses and
//!                      that print ∘ parse is a fixed point, then exit
//!                      without running the pipeline
//!
//!   --workers N        fan the per-orthant solvers out over N threads
//!                      (default: available parallelism, capped at 8)
//!   --sequential       shorthand for --workers 1
//!   --memoize          enable the LP memoization cache
//!   --legacy-memo-keys key the cache on raw model text instead of the
//!                      alpha-renamed canonical form (A/B comparison)
//!   --machine          include the §6 simulated-speedup stage
//!   --params A,B       parameter sizes for the equivalence oracle
//!   --runs N           repeat the pipeline N times; the report carries
//!                      the fastest run plus a min/median timing block
//!   --compact          one-line JSON instead of pretty-printed
//!   --trace FILE       write a Chrome trace-event JSON (load it in
//!                      Perfetto or chrome://tracing); the file also
//!                      carries an "aovMetrics" snapshot merging the
//!                      span flame table with the solver counters
//!   --profile          print a per-example flame table and memo
//!                      hit-rate summary to stderr
//!   --mem              with --profile: also print the memory flame
//!                      table (allocations, bytes, peak live bytes and
//!                      max coefficient bit-width per span)
//!   --profile-out FILE write a schema-versioned `aov-profile/1` JSON
//!                      artifact (flame table, counters, identity
//!                      digests) for the run; render it with
//!                      `aov inspect`, compare two with `aov pdiff`
//!                      (single program only — suites use
//!                      `aov bench --profile-dir`)
//!   --progress         print a once-a-second heartbeat to stderr while
//!                      the pipeline runs: current stage and span,
//!                      pivot/vertex rates, elapsed time against any
//!                      wall-clock budget; read-only sampling of the
//!                      flight recorder, no cost when absent
//!   --diag-dir DIR     write an `aov-diag/1` crash-diagnostic bundle
//!                      into DIR whenever a run degrades or fails: the
//!                      stage ladder, error chain, budget state,
//!                      counters, allocator snapshot and the flight
//!                      recorder's event tail (see `aov inspect`)
//!   --budget-pivots N  cap total simplex pivots per run; exceeding the
//!                      cap degrades the tripping stage (exit 3), it
//!                      never kills the process
//!   --budget-nodes N   cap total branch-and-bound nodes per run
//!   --budget-ms N      wall-clock deadline per run, milliseconds
//!   --chaos SPEC       arm one deterministic fault: site=<path>,
//!                      kind=error|panic|budget[,nth=N][,seed=S]
//!                      (the AOV_CHAOS environment variable takes the
//!                      same spec; the flag wins when both are set)
//!
//!   The flight recorder is always armed. The counting allocator's
//!   byte accounting arms only when one of `--profile`, `--mem`,
//!   `--trace` or `--diag-dir` will consume it (and under `aov
//!   bench`); plain runs disarm it — their reports carry frozen
//!   alloc columns — keeping telemetry within its 1%-of-wall budget.
//!
//! aov fuzz [options]
//!
//!   Differential fuzzing: seeded random programs through the full
//!   pipeline. Every report is validated against the report schema, and
//!   each healthy run is re-checked by an independent oracle that
//!   rebuilds the storage transforms from the report's published AOV
//!   vectors and replays both executions through the interpreter.
//!   Mismatching or failing cases are shrunk to a minimal `.aov` repro
//!   plus a crash-diagnostic bundle. Deterministic: a campaign is a
//!   pure function of (--seed, --count, profile) — never of --workers.
//!
//!   --seed S           campaign seed (default 1); case i uses
//!                      mix(S, i)
//!   --count N          number of cases (default 100)
//!   --quick            smaller programs, tighter budgets (CI smoke)
//!   --workers N        solver fan-out threads per case
//!   --repro-dir DIR    where minimal repros and diag bundles land
//!                      (default fuzz-repros/)
//!   --out FILE         write the campaign summary JSON here
//!                      (default: stdout)
//!   --compact          one-line summary JSON
//!   --budget-pivots N  override the per-case work budget; wall-clock
//!   --budget-nodes N   budgets are refused (their trips are
//!                      nondeterministic)
//!
//!   exit: 0 clean, 1 any mismatch, 2 any failure or schema-invalid
//!   report (degraded cases — unschedulable seeds, budget trips — are
//!   expected and do not gate)
//!
//! aov bench [options]
//!
//!   Run the benchmark observatory: every example through the pipeline
//!   (memoization on), min/median timings over repeated runs, span and
//!   counter attribution, the engine-driven figure suite with output
//!   fingerprints — written as a versioned BENCH_<n>.json artifact.
//!
//!   --runs N              pipeline repetitions per example (default 1)
//!   --out FILE            write the artifact here (default: stdout)
//!   --baseline FILE       compare against a previous artifact and print
//!                         a noise-aware regression report
//!   --fail-on-regression  exit 1 when the comparison gates
//!   --examples A,B        subset of examples (default: all four)
//!   --workers N           solver fan-out threads
//!   --quick               machine-model figures at reduced sizes
//!   --no-figures          skip the figure suite
//!   --check FILE          validate an existing artifact against the
//!                         schema instead of running anything
//!   --profile-dir DIR     also write one `aov-profile/1` artifact per
//!                         example (profile_<name>.json) from the
//!                         suite's traced run
//!   --budget-pivots N     solver budget passed through to every
//!   --budget-nodes N      pipeline run; a tripped budget degrades the
//!   --budget-ms N         run and the suite refuses to record it
//!
//! aov trend BENCH_0.json BENCH_1.json … [--out FILE] [--compact]
//!
//!   Cross-artifact trend analysis: flatten every benchmark artifact
//!   into per-metric series, normalize Time metrics onto the first
//!   artifact's machine speed (measured calibration when both sides
//!   carry one, the median-ratio estimate for v1-era artifacts), and
//!   classify each series flat / step / drift with a median-based
//!   change-point detector. Prints a grouped sparkline report; with
//!   --out also writes a schema-versioned `aov-trend/1` document that
//!   `aov inspect` validates and renders. v1 artifacts are upgraded in
//!   memory through the same shim as `aov bench --check`. Exit 0 when
//!   every input is readable and schema-valid, 1 otherwise (the trend
//!   itself never gates — gating is the pairwise baseline comparison's
//!   job).
//!
//! aov pdiff BASE NEW [--time-rel F] [--time-floor-us N]
//!
//!   Differential profiling: compare two `aov-profile/1` artifacts with
//!   the bench suite's noise-aware bands (relative band plus an
//!   absolute floor for span times, a drift band for counters). Prints
//!   a grouped flame-diff report — spans sorted by self-time movement,
//!   counters that moved, a verdict per row. Spans present on only one
//!   side read New/Missing and never gate. Exit 0 when clean, 1 when
//!   any metric regresses beyond tolerance. Comparing an artifact
//!   against itself is always clean.
//!
//! aov inspect FILE [--check]
//!
//!   Render an `aov-diag/1` crash-diagnostic bundle (written via
//!   `--diag-dir`) — the error chain, the stage ladder with allocator
//!   columns, the budget state and the flight-recorder timeline tail —
//!   an `aov-profile/1` profile artifact (written via `--profile-out`)
//!   — the flame table with allocator columns and the counter table —
//!   an `aov-trend/1` trend document (written via `aov trend --out`)
//!   — the artifact ladder with drift factors and every non-flat
//!   series — an `aov-serve/1` transcript, an `aov-svcmetrics/1`
//!   metrics document (saved from `aov client --metrics`), or an
//!   `aov-access/1` access log (JSONL, written via `aovd
//!   --access-log`; every line is validated). The schema tag in the
//!   file picks the renderer. With `--check`, validate against the
//!   matching schema instead and exit 0/1.
//!
//! Every subcommand accepts `--recorder-slots N`: size the flight
//! recorder's ring (power of two, clamped to [64, 1048576]; default
//! 4096 slots) before its first event. The `AOV_RECORDER_SLOTS`
//! environment variable takes the same value; the flag wins when both
//! are set. The capacity is fixed at first use, so a flag given after
//! the recorder has already recorded is a usage error.
//!
//! aov --check-trace FILE
//!
//!   Validate a previously written trace: parse the JSON and assert it
//!   contains pipeline root spans. Exit 0 when well-formed.
//!
//! aov --check-report FILE
//!
//!   Validate a previously written pipeline report (healthy or
//!   degraded) against the engine's report schema. Exit 0 when valid.
//! ```
//!
//! Exit status mirrors the report's health:
//!
//! * `0` — every stage ran and dynamic equivalence holds
//! * `1` — pipeline complete but equivalence does not hold (or, under
//!   `bench`, an artifact is invalid / a gated regression is found)
//! * `2` — hard failure: a stage failed with a non-degradable error
//! * `3` — degraded: a budget tripped or a fault was isolated; the
//!   printed report says which stages degraded or were skipped and why
//! * `64` — usage error

use aov_bench::observatory::{self, SuiteConfig};
use aov_bench::regress;
use aov_engine::{BudgetSpec, Health, Pipeline};
use aov_fault::chaos;
use aov_support::{Json, ToJson};

/// One program request on the main command line, in the order given.
enum ProgramSpec {
    /// A positional example name — the hand-built constructor path.
    Builtin(String),
    /// `--example NAME` — the checked-in corpus file through the parser.
    Example(String),
    /// `aov run FILE.aov` — a user source file through the parser.
    File(String),
}

impl ProgramSpec {
    /// Display label for reports and error messages.
    fn label(&self) -> &str {
        match self {
            ProgramSpec::Builtin(s) | ProgramSpec::Example(s) | ProgramSpec::File(s) => s,
        }
    }
}

struct Options {
    programs: Vec<ProgramSpec>,
    check_syntax: bool,
    workers: usize,
    memoize: bool,
    legacy_memo_keys: bool,
    machine: bool,
    params: Option<Vec<i64>>,
    runs: usize,
    compact: bool,
    trace: Option<String>,
    profile: bool,
    profile_out: Option<String>,
    progress: bool,
    mem: bool,
    diag_dir: Option<String>,
    check_trace: Option<String>,
    check_report: Option<String>,
    budget: BudgetSpec,
    chaos: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: aov <example1|example2|example3|example4|unschedulable|all> \
         [--workers N] [--sequential] [--memoize] [--legacy-memo-keys] \
         [--machine] [--params A,B,..] [--runs N] [--compact] \
         [--trace FILE] [--profile] [--profile-out FILE] [--progress] \
         [--mem] [--diag-dir DIR] \
         [--budget-pivots N] \
         [--budget-nodes N] [--budget-ms N] [--chaos SPEC] \
         [--example NAME] [--check]\n       \
         aov run FILE.aov [same options]\n       \
         aov fuzz [--seed S] [--count N] [--quick] [--workers N] \
         [--repro-dir DIR] [--out FILE] [--compact] [--budget-pivots N] \
         [--budget-nodes N]\n       \
         aov bench [--runs N] [--out FILE] [--baseline FILE] \
         [--fail-on-regression] [--examples A,B] [--workers N] [--quick] \
         [--no-figures] [--check FILE] [--profile-dir DIR] \
         [--serve-clients N] [--budget-pivots N] \
         [--budget-nodes N] [--budget-ms N]\n       \
         aov pdiff BASE NEW\n       \
         aov trend ARTIFACT ARTIFACT.. [--out FILE] [--compact]\n       \
         aov inspect FILE [--check]\n       \
         aovd / aov aovd [--addr A] [--workers N] [--queue N] \
         [--no-memo] [--memo-capacity N] [--pivot-pool N] \
         [--deadline-ms N] [--diag-dir DIR] [--retry-after-ms N] \
         [--access-log FILE] [--access-log-max-bytes N]\n       \
         aov client [--addr A] [--example NAME | FILE.aov | --stats | \
         --health | --shutdown | --metrics | --watch] [--follow] \
         [--for-ms N] [--workers N] [--memoize] \
         [--budget-pivots N] [--budget-nodes N] [--budget-ms N] \
         [--deadline-ms N] [--chaos SPEC] [--retries N] \
         [--transcript FILE]\n       \
         aov top [ADDR] [--interval-ms N] [--once]\n       \
         aov --check-trace FILE\n       \
         aov --check-report FILE\n\n\
         every subcommand also accepts --recorder-slots N\n\
         exit codes: 0 ok, 1 inequivalent/regression, 2 failed, \
         3 degraded, 64 usage"
    );
    std::process::exit(64);
}

/// Parses the shared `--budget-*` flags; returns whether `arg` was one.
fn parse_budget_flag(
    budget: &mut BudgetSpec,
    arg: &str,
    it: &mut std::slice::Iter<'_, String>,
) -> bool {
    let slot = match arg {
        "--budget-pivots" => &mut budget.pivots,
        "--budget-nodes" => &mut budget.nodes,
        "--budget-ms" => &mut budget.ms,
        _ => return false,
    };
    match it.next().and_then(|n| n.parse().ok()) {
        Some(n) => *slot = Some(n),
        None => usage(),
    }
    true
}

/// Parses the main command line; under `run_mode` (`aov run …`),
/// positional arguments are `.aov` file paths instead of example names.
fn parse(args: &[String], run_mode: bool) -> Options {
    let mut opts = Options {
        programs: Vec::new(),
        check_syntax: false,
        workers: aov_bench::default_workers(),
        memoize: false,
        legacy_memo_keys: false,
        machine: false,
        params: None,
        runs: 1,
        compact: false,
        trace: None,
        profile: false,
        profile_out: None,
        progress: false,
        mem: false,
        diag_dir: None,
        check_trace: None,
        check_report: None,
        budget: BudgetSpec::default(),
        chaos: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if parse_budget_flag(&mut opts.budget, arg, &mut it) {
            continue;
        }
        match arg.as_str() {
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => opts.workers = w,
                None => usage(),
            },
            "--sequential" => opts.workers = 1,
            "--memoize" => opts.memoize = true,
            "--legacy-memo-keys" => opts.legacy_memo_keys = true,
            "--machine" => opts.machine = true,
            "--params" => match it.next() {
                Some(spec) => {
                    let parsed: Option<Vec<i64>> =
                        spec.split(',').map(|s| s.trim().parse().ok()).collect();
                    match parsed {
                        Some(ps) if !ps.is_empty() => opts.params = Some(ps),
                        _ => usage(),
                    }
                }
                None => usage(),
            },
            "--runs" => match it.next().and_then(|r| r.parse().ok()) {
                Some(r) if r >= 1 => opts.runs = r,
                _ => usage(),
            },
            "--compact" => opts.compact = true,
            "--trace" => match it.next() {
                Some(f) => opts.trace = Some(f.clone()),
                None => usage(),
            },
            "--profile" => opts.profile = true,
            "--profile-out" => match it.next() {
                Some(f) => opts.profile_out = Some(f.clone()),
                None => usage(),
            },
            "--progress" => opts.progress = true,
            "--mem" => opts.mem = true,
            "--diag-dir" => match it.next() {
                Some(d) => opts.diag_dir = Some(d.clone()),
                None => usage(),
            },
            "--check-trace" => match it.next() {
                Some(f) => opts.check_trace = Some(f.clone()),
                None => usage(),
            },
            "--check-report" => match it.next() {
                Some(f) => opts.check_report = Some(f.clone()),
                None => usage(),
            },
            "--chaos" => match it.next() {
                Some(spec) => opts.chaos = Some(spec.clone()),
                None => usage(),
            },
            "--example" => match it.next() {
                Some(name) => opts.programs.push(ProgramSpec::Example(name.clone())),
                None => usage(),
            },
            "--check" => opts.check_syntax = true,
            "all" if !run_mode => {
                opts.programs
                    .extend((1..=4).map(|k| ProgramSpec::Builtin(format!("example{k}"))));
            }
            name if !name.starts_with('-') => opts.programs.push(if run_mode {
                ProgramSpec::File(name.to_string())
            } else {
                ProgramSpec::Builtin(name.to_string())
            }),
            _ => usage(),
        }
    }
    if opts.programs.is_empty() && opts.check_trace.is_none() && opts.check_report.is_none() {
        usage();
    }
    if opts.check_syntax
        && opts
            .programs
            .iter()
            .any(|s| matches!(s, ProgramSpec::Builtin(_)))
    {
        // --check is a parser-path mode; hand-built names have no
        // source text to check.
        usage();
    }
    if opts.profile_out.is_some() && opts.programs.len() != 1 {
        // One artifact, one program: suites get per-example artifacts
        // via `aov bench --profile-dir`.
        eprintln!("aov: --profile-out expects exactly one program");
        std::process::exit(64);
    }
    opts
}

/// Reads and parses the source behind a parser-path program spec,
/// exiting 64 with a caret diagnostic on any syntax or lowering error.
fn load_source_program(spec: &ProgramSpec) -> (String, aov_ir::Program) {
    let (display, source) = match spec {
        ProgramSpec::Builtin(_) => unreachable!("builtin specs never take the parser path"),
        ProgramSpec::Example(name) => match aov_lang::corpus::source(name) {
            Some(src) => (format!("examples/{name}.aov"), src.to_string()),
            None => {
                eprintln!(
                    "aov: --example {name}: unknown (expected one of {})",
                    aov_lang::corpus::names().collect::<Vec<_>>().join(", ")
                );
                std::process::exit(64);
            }
        },
        ProgramSpec::File(path) => match std::fs::read_to_string(path) {
            Ok(src) => (path.clone(), src),
            Err(e) => {
                eprintln!("aov: {path}: {e}");
                std::process::exit(64);
            }
        },
    };
    match aov_lang::parse(&source) {
        Ok(p) => (display, p),
        Err(d) => {
            eprintln!("{}", d.render(&display));
            std::process::exit(64);
        }
    }
}

/// `--check`: parse every file/example and verify print ∘ parse is a
/// fixed point, without running the pipeline. Exits 64 on the first
/// diagnostic (inside [`load_source_program`]).
fn check_syntax_main(opts: &Options) -> i32 {
    let mut bad = 0;
    for spec in &opts.programs {
        let (display, program) = load_source_program(spec);
        let roundtrip = aov_lang::to_source(&program)
            .map_err(|e| e.to_string())
            .and_then(|src| {
                aov_lang::parse(&src)
                    .map_err(|d| d.to_string())
                    .map(|back| aov_lang::structural_eq(&program, &back))
            });
        match roundtrip {
            Ok(true) => eprintln!(
                "aov: {display}: ok (program {}, {} statement(s))",
                program.name(),
                program.statements().len()
            ),
            Ok(false) => {
                eprintln!("aov: {display}: print ∘ parse is not a fixed point");
                bad += 1;
            }
            Err(e) => {
                eprintln!("aov: {display}: not reprintable: {e}");
                bad += 1;
            }
        }
    }
    i32::from(bad > 0)
}

/// Validates a written pipeline report (healthy or degraded) against
/// [`aov_engine::report_schema`].
fn check_report(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("aov: {path}: {e}");
            return 1;
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("aov: {path}: invalid JSON: {e}");
            return 1;
        }
    };
    if let Err(errors) = aov_support::schema::validate(&json, &aov_engine::report_schema()) {
        eprintln!("aov: {path}: report schema violations:");
        for e in &errors {
            eprintln!("  {e}");
        }
        return 1;
    }
    let health = match json.get("health") {
        Some(Json::Str(h)) => h.clone(),
        _ => "unknown".to_string(),
    };
    eprintln!("aov: {path}: ok (health {health})");
    0
}

/// Validates a written trace file: parses the JSON back (through
/// `aov_support::json`) and requires at least one `pipeline.*` root span
/// among the trace events.
fn check_trace(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("aov: {path}: {e}");
            return 1;
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("aov: {path}: invalid JSON: {e}");
            return 1;
        }
    };
    let Some(Json::Arr(events)) = json.get("traceEvents") else {
        eprintln!("aov: {path}: no traceEvents array");
        return 1;
    };
    let pipeline_spans = events
        .iter()
        .filter(|e| matches!(e.get("name"), Some(Json::Str(n)) if n.starts_with("pipeline.")))
        .count();
    if pipeline_spans == 0 {
        eprintln!("aov: {path}: no pipeline root spans in trace");
        return 1;
    }
    eprintln!(
        "aov: {path}: ok ({} events, {pipeline_spans} pipeline spans)",
        events.len()
    );
    0
}

struct BenchOptions {
    runs: usize,
    out: Option<String>,
    baseline: Option<String>,
    fail_on_regression: bool,
    examples: Vec<String>,
    workers: usize,
    quick: bool,
    figures: bool,
    check: Option<String>,
    profile_dir: Option<String>,
    budget: BudgetSpec,
    serve_clients: Option<usize>,
}

fn parse_bench(args: &[String]) -> BenchOptions {
    let mut opts = BenchOptions {
        runs: 1,
        out: None,
        baseline: None,
        fail_on_regression: false,
        examples: aov_bench::EXAMPLES
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        workers: aov_bench::default_workers(),
        quick: false,
        figures: true,
        check: None,
        profile_dir: None,
        budget: BudgetSpec::default(),
        serve_clients: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if parse_budget_flag(&mut opts.budget, arg, &mut it) {
            continue;
        }
        match arg.as_str() {
            "--runs" => match it.next().and_then(|r| r.parse().ok()) {
                Some(r) if r >= 1 => opts.runs = r,
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(f) => opts.out = Some(f.clone()),
                None => usage(),
            },
            "--baseline" => match it.next() {
                Some(f) => opts.baseline = Some(f.clone()),
                None => usage(),
            },
            "--fail-on-regression" => opts.fail_on_regression = true,
            "--examples" => match it.next() {
                Some(spec) => {
                    opts.examples = spec
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if opts.examples.is_empty() {
                        usage();
                    }
                }
                None => usage(),
            },
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => opts.workers = w,
                None => usage(),
            },
            "--quick" => opts.quick = true,
            "--no-figures" => opts.figures = false,
            "--check" => match it.next() {
                Some(f) => opts.check = Some(f.clone()),
                None => usage(),
            },
            "--profile-dir" => match it.next() {
                Some(d) => opts.profile_dir = Some(d.clone()),
                None => usage(),
            },
            "--serve-clients" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => opts.serve_clients = Some(n),
                _ => usage(),
            },
            _ => usage(),
        }
    }
    opts
}

/// Validates an artifact file: JSON parse, version-aware upgrade,
/// structural schema. A v1-era artifact passes through the upgrade shim
/// first and the verdict says so.
fn check_artifact(path: &str) -> i32 {
    let (doc, upgraded) = match read_bench_artifact(path) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("aov bench: {e}");
            return 1;
        }
    };
    if let Err(errors) = observatory::validate(&doc) {
        eprintln!("aov bench: {path}: schema violations:");
        for e in &errors {
            eprintln!("  {e}");
        }
        return 1;
    }
    eprintln!(
        "aov bench: {path}: ok ({}{})",
        observatory::SCHEMA_VERSION,
        if upgraded {
            format!(", upgraded from {}", observatory::SCHEMA_VERSION_V1)
        } else {
            String::new()
        }
    );
    0
}

fn read_artifact(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))
}

/// Reads a benchmark artifact and lifts it to the current schema
/// version through [`observatory::upgrade`]; the flag reports whether
/// the shim did any work (the on-disk file was v1).
fn read_bench_artifact(path: &str) -> Result<(Json, bool), String> {
    let doc = read_artifact(path)?;
    observatory::upgrade(doc).map_err(|e| format!("{path}: {e}"))
}

fn bench_main(args: &[String]) -> i32 {
    let opts = parse_bench(args);
    if let Some(path) = &opts.check {
        return check_artifact(path);
    }
    let cfg = SuiteConfig {
        examples: opts.examples.clone(),
        runs: opts.runs,
        workers: opts.workers,
        quick: opts.quick,
        figures: opts.figures,
        budget: opts.budget,
        profile_dir: opts.profile_dir.clone().map(Into::into),
        ..SuiteConfig::default()
    };
    eprintln!(
        "aov bench: {} × {} run(s), workers {}{}",
        cfg.examples.join(","),
        cfg.runs,
        cfg.workers,
        if cfg.quick { ", quick" } else { "" }
    );
    let mut artifact = match observatory::run_suite(&cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("aov bench: {e}");
            return 1;
        }
    };
    // The load test runs after the suite so its warm shared memo tier
    // cannot perturb the suite's own memo economics; its summary rides
    // along in the artifact but no regression gate reads it.
    if let Some(clients) = opts.serve_clients {
        // The campaign corpus stays the loadtest default (example1):
        // identical cheap solves are exactly what exercises admission,
        // backoff and the shared memo tier; the expensive corpus
        // entries would only serialize the queue.
        let lt_cfg = aov_serve::loadtest::LoadtestConfig {
            clients,
            ..aov_serve::loadtest::LoadtestConfig::default()
        };
        match aov_serve::loadtest::run(&lt_cfg) {
            Ok(summary) => {
                let pick = |k: &str| summary.get(k).cloned().unwrap_or(Json::Null);
                eprintln!(
                    "aov bench: serve load test: {clients} clients, {} request(s), \
                     {} overloaded retr(ies), memo {}",
                    pick("requests").to_compact(),
                    pick("overloaded_retries").to_compact(),
                    pick("memo").to_compact(),
                );
                artifact.serve = Some(summary);
            }
            Err(e) => {
                eprintln!("aov bench: serve load test failed: {e}");
                return 1;
            }
        }
    }
    for e in &artifact.examples {
        eprintln!(
            "aov bench: {:<9} wall {} µs (min of {}), memo hit rate {}",
            e.program,
            e.wall_us.min,
            e.runs,
            e.memo_hit_rate
                .map_or("n/a".to_string(), |r| format!("{:.1}%", r * 100.0)),
        );
    }
    if artifact.figures_enabled {
        let reproduced = artifact.figures.iter().filter(|f| f.reproduced).count();
        eprintln!(
            "aov bench: figures {reproduced}/{} reproduced",
            artifact.figures.len()
        );
    }

    let doc = artifact.to_json();
    if let Err(errors) = observatory::validate(&doc) {
        eprintln!("aov bench: internal error: artifact fails its own schema:");
        for e in &errors {
            eprintln!("  {e}");
        }
        return 1;
    }
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, doc.to_pretty()) {
                eprintln!("aov bench: cannot write {path}: {e}");
                return 1;
            }
            eprintln!("aov bench: artifact written to {path}");
        }
        None => {
            use std::io::Write;
            let _ = std::io::stdout().write_all(doc.to_pretty().as_bytes());
        }
    }

    if !artifact.figures.iter().all(|f| f.reproduced) {
        eprintln!("aov bench: FAILED: a figure did not reproduce");
        return 1;
    }

    match &opts.baseline {
        None => {
            eprintln!("aov bench: no baseline given; skipping comparison");
            0
        }
        Some(path) => {
            let baseline = match read_bench_artifact(path) {
                Ok((doc, upgraded)) => {
                    if upgraded {
                        eprintln!(
                            "aov bench: baseline {path} upgraded from {}",
                            observatory::SCHEMA_VERSION_V1
                        );
                    }
                    doc
                }
                Err(e) => {
                    eprintln!("aov bench: {e}");
                    return 1;
                }
            };
            let cmp = regress::compare(&baseline, &doc, &regress::Tolerance::default());
            eprint!("{}", cmp.render());
            if cmp.has_regressions() && opts.fail_on_regression {
                eprintln!("aov bench: FAILED: regressions beyond tolerance");
                1
            } else {
                0
            }
        }
    }
}

/// `aov pdiff BASE NEW`: noise-aware comparison of two `aov-profile/1`
/// artifacts. Exit 0 clean, 1 when any metric regresses beyond
/// tolerance, 64 on usage.
fn pdiff_main(args: &[String]) -> i32 {
    let mut paths: Vec<&str> = Vec::new();
    for arg in args {
        match arg.as_str() {
            p if !p.starts_with('-') => paths.push(p),
            _ => usage(),
        }
    }
    let [base_path, new_path] = paths[..] else {
        usage()
    };
    let mut docs = Vec::new();
    for path in [base_path, new_path] {
        let doc = match read_artifact(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("aov pdiff: {e}");
                return 1;
            }
        };
        if let Err(errors) = aov_engine::profile::validate(&doc) {
            eprintln!(
                "aov pdiff: {path}: not a valid {} artifact:",
                aov_engine::profile::SCHEMA
            );
            for e in &errors {
                eprintln!("  {e}");
            }
            return 1;
        }
        docs.push(doc);
    }
    let (base, new) = (&docs[0], &docs[1]);
    let cmp = aov_bench::pdiff::diff(base, new, &regress::Tolerance::default());
    print!("{}", aov_bench::pdiff::render(base, new, &cmp));
    if cmp.has_regressions() {
        eprintln!("aov pdiff: FAILED: regressions beyond tolerance");
        1
    } else {
        0
    }
}

/// `aov trend ARTIFACT ARTIFACT.. [--out FILE] [--compact]`: follow
/// every metric across a sequence of benchmark artifacts. Each input
/// is schema-checked (after the v1→v2 upgrade shim); the grouped
/// sparkline report goes to stdout and `--out` additionally writes the
/// `aov-trend/1` document. Exit 0 on success, 1 on any unreadable or
/// schema-invalid input, 64 on usage.
fn trend_main(args: &[String]) -> i32 {
    let mut paths: Vec<&str> = Vec::new();
    let mut out: Option<String> = None;
    let mut compact = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(f) => out = Some(f.clone()),
                None => usage(),
            },
            "--compact" => compact = true,
            p if !p.starts_with('-') => paths.push(p),
            _ => usage(),
        }
    }
    if paths.len() < 2 {
        eprintln!(
            "aov trend: need at least two artifacts, got {}",
            paths.len()
        );
        usage();
    }
    let mut inputs: Vec<(String, Json)> = Vec::new();
    for path in paths {
        let (doc, upgraded) = match read_bench_artifact(path) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("aov trend: {e}");
                return 1;
            }
        };
        if let Err(errors) = observatory::validate(&doc) {
            eprintln!("aov trend: {path}: schema violations:");
            for e in &errors {
                eprintln!("  {e}");
            }
            return 1;
        }
        if upgraded {
            eprintln!(
                "aov trend: {path}: upgraded from {}",
                observatory::SCHEMA_VERSION_V1
            );
        }
        // The label is the file name alone: the report column stays
        // narrow no matter where the artifacts live.
        let label = std::path::Path::new(path)
            .file_name()
            .map_or_else(|| path.to_string(), |n| n.to_string_lossy().into_owned());
        inputs.push((label, doc));
    }
    let trend = match aov_bench::trend::analyze(&inputs, &regress::Tolerance::default()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("aov trend: {e}");
            return 1;
        }
    };
    print!("{}", trend.render());
    if let Some(path) = &out {
        let doc = trend.to_json();
        if let Err(errors) = aov_bench::trend::validate(&doc) {
            eprintln!("aov trend: internal error: document fails its own schema:");
            for e in &errors {
                eprintln!("  {e}");
            }
            return 1;
        }
        let text = if compact {
            let mut line = doc.to_compact();
            line.push('\n');
            line
        } else {
            doc.to_pretty()
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("aov trend: cannot write {path}: {e}");
            return 1;
        }
        eprintln!("aov trend: document written to {path}");
    }
    0
}

/// String field accessor with a `"?"` fallback for rendering.
fn jstr<'a>(j: &'a Json, key: &str) -> &'a str {
    match j.get(key) {
        Some(Json::Str(s)) => s,
        _ => "?",
    }
}

/// Integer field accessor with a `0` fallback for rendering.
fn jint(j: &Json, key: &str) -> i64 {
    match j.get(key) {
        Some(Json::Int(n)) => *n,
        _ => 0,
    }
}

/// Array field accessor with an empty fallback for rendering.
fn jarr<'a>(j: &'a Json, key: &str) -> &'a [Json] {
    match j.get(key) {
        Some(Json::Arr(a)) => a,
        _ => &[],
    }
}

/// `aov inspect`: render (or, with `--check`, just validate) one
/// `aov-diag/1` crash-diagnostic bundle.
fn inspect_main(args: &[String]) -> i32 {
    let mut path: Option<&str> = None;
    let mut check = false;
    for arg in args {
        match arg.as_str() {
            "--check" => check = true,
            p if !p.starts_with('-') && path.is_none() => path = Some(p),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("aov inspect: {path}: {e}");
            return 1;
        }
    };
    // Access logs are JSONL, not one document: detect them by the
    // first line's schema tag before whole-file parsing can reject
    // them, then validate every line.
    if let Some(first) = text.lines().find(|l| !l.trim().is_empty()) {
        if let Ok(j) = Json::parse(first.trim()) {
            if j.get("schema") == Some(&Json::Str(aov_serve::telemetry::ACCESS_SCHEMA.to_string()))
            {
                return inspect_access_log(path, &text, check);
            }
        }
    }
    let doc = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("aov inspect: {path}: invalid JSON: {e}");
            return 1;
        }
    };
    // The schema tag picks the renderer: crash bundles and profile
    // artifacts share this entry point. Version gate and schema
    // validation run in both modes; --check just stops after the
    // verdict.
    let tag = match doc.get("schema") {
        Some(Json::Str(v)) => v.clone(),
        other => {
            eprintln!(
                "aov inspect: {path}: unsupported schema {other:?} (want {:?}, {:?} or {:?})",
                aov_engine::diag::SCHEMA,
                aov_engine::profile::SCHEMA,
                aov_bench::trend::SCHEMA_VERSION
            );
            return 1;
        }
    };
    let schema = match tag.as_str() {
        t if t == aov_engine::diag::SCHEMA => aov_engine::diag::diag_schema(),
        t if t == aov_engine::profile::SCHEMA => aov_engine::profile::profile_schema(),
        t if t == aov_bench::trend::SCHEMA_VERSION => aov_bench::trend::trend_schema(),
        t if t == aov_serve::protocol::SCHEMA => aov_serve::protocol::transcript_schema(),
        t if t == aov_serve::telemetry::SVCMETRICS_SCHEMA => {
            aov_serve::telemetry::svcmetrics_schema()
        }
        _ => {
            eprintln!(
                "aov inspect: {path}: unsupported schema {tag:?} (want {:?}, {:?}, {:?} or {:?})",
                aov_engine::diag::SCHEMA,
                aov_engine::profile::SCHEMA,
                aov_bench::trend::SCHEMA_VERSION,
                aov_serve::protocol::SCHEMA,
            );
            return 1;
        }
    };
    if let Err(errors) = aov_support::schema::validate(&doc, &schema) {
        eprintln!("aov inspect: {path}: schema violations:");
        for e in &errors {
            eprintln!("  {e}");
        }
        return 1;
    }
    if check {
        eprintln!("aov inspect: {path}: ok ({tag})");
        return 0;
    }
    if tag == aov_engine::profile::SCHEMA {
        render_profile_artifact(path, &doc);
    } else if tag == aov_bench::trend::SCHEMA_VERSION {
        render_trend_document(path, &doc);
    } else if tag == aov_serve::protocol::SCHEMA {
        render_transcript(path, &doc);
    } else if tag == aov_serve::telemetry::SVCMETRICS_SCHEMA {
        render_svcmetrics(path, &doc);
    } else {
        render_bundle(path, &doc);
    }
    0
}

/// `aov inspect` on an `aov-access/1` access log: validate every
/// JSONL line, then summarize outcomes and total-latency quantiles.
fn inspect_access_log(path: &str, text: &str, check: bool) -> i32 {
    let schema = aov_serve::telemetry::access_schema();
    let lat = aov_support::histogram::Histogram::new();
    let mut outcomes: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut lines = 0u64;
    for (no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = match Json::parse(line.trim()) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("aov inspect: {path}:{}: invalid JSON: {e}", no + 1);
                return 1;
            }
        };
        if let Err(errors) = aov_support::schema::validate(&doc, &schema) {
            eprintln!("aov inspect: {path}:{}: schema violations:", no + 1);
            for e in &errors {
                eprintln!("  {e}");
            }
            return 1;
        }
        lines += 1;
        *outcomes
            .entry(jstr(&doc, "outcome").to_string())
            .or_default() += 1;
        if let Some(p) = doc.get("phases") {
            lat.record(u64::try_from(jint(p, "total_us")).unwrap_or(0));
        }
    }
    if lines == 0 {
        eprintln!("aov inspect: {path}: empty access log");
        return 1;
    }
    if check {
        eprintln!("aov inspect: {path}: ok (aov-access/1, {lines} line(s))");
        return 0;
    }
    println!("== {path}: aov-access/1, {lines} request(s) ==");
    println!("\noutcomes:");
    for (outcome, n) in &outcomes {
        println!("  {outcome:<16} {n:>8}");
    }
    let snap = lat.snapshot();
    println!(
        "\ntotal latency µs: p50 {} p90 {} p99 {} max {}",
        snap.quantile(0.50),
        snap.quantile(0.90),
        snap.quantile(0.99),
        snap.max_value()
    );
    0
}

/// Human rendering of a validated `aov-serve/1` transcript: one line
/// per captured frame, direction-tagged.
fn render_transcript(path: &str, doc: &Json) {
    let frames = jarr(doc, "frames");
    println!(
        "== {path}: aov-serve/1 transcript, {} frame(s) ==",
        frames.len()
    );
    for f in frames {
        let dir = jstr(f, "dir");
        let arrow = if dir == "send" { "->" } else { "<-" };
        let frame = f.get("frame").cloned().unwrap_or(Json::Null);
        println!("  {arrow} {}", frame.to_compact());
    }
}

/// Human rendering of a validated `aov-trend/1` document: the artifact
/// ladder with drift factors, the summary line, and every non-flat
/// series with its change verdict.
fn render_trend_document(path: &str, doc: &Json) {
    let summary = doc.get("summary").cloned().unwrap_or_else(Json::obj);
    println!(
        "== {path}: trend over {} artifacts ({} series: {} flat, {} steps, {} drifts; {} fingerprint flips) ==",
        jarr(doc, "artifacts").len(),
        jint(&summary, "series"),
        jint(&summary, "flat"),
        jint(&summary, "steps"),
        jint(&summary, "drifts"),
        jint(&summary, "exact_flips"),
    );
    let jnum = |j: &Json, key: &str| -> f64 {
        match j.get(key) {
            Some(Json::Float(f)) => *f,
            Some(Json::Int(n)) => *n as f64,
            _ => 0.0,
        }
    };
    for (i, a) in jarr(doc, "artifacts").iter().enumerate() {
        println!(
            "  #{i} {:<16} {} drift ×{:.3} ({})",
            jstr(a, "label"),
            if matches!(a.get("calibrated"), Some(Json::Bool(true))) {
                "calibrated"
            } else {
                "uncalibrated"
            },
            jnum(a, "drift"),
            jstr(a, "drift_source"),
        );
    }
    let moved: Vec<&Json> = jarr(doc, "series")
        .iter()
        .filter(|s| s.get("change").is_some_and(|c| jstr(c, "kind") != "flat"))
        .collect();
    println!("\nnon-flat series ({}):", moved.len());
    for s in moved {
        let change = s.get("change").cloned().unwrap_or_else(Json::obj);
        let verdict = match jstr(&change, "kind") {
            "step" => format!(
                "STEP ×{:.2} at #{}",
                jnum(&change, "ratio"),
                jint(&change, "at")
            ),
            "drift" => format!("DRIFT ×{:.2}", jnum(&change, "ratio")),
            other => other.to_string(),
        };
        println!(
            "  {:<48} [{}] {}",
            jstr(s, "key"),
            jstr(s, "class"),
            verdict
        );
    }
    let flipped: Vec<&Json> = jarr(doc, "fingerprints")
        .iter()
        .filter(|f| jint(f, "flips") > 0)
        .collect();
    if !flipped.is_empty() {
        println!("\nfingerprint flips:");
        for f in flipped {
            println!("  {:<48} {} flip(s)", jstr(f, "key"), jint(f, "flips"));
        }
    }
}

/// Human rendering of a validated `aov-profile/1` artifact: identity,
/// the flame table with allocator columns, and the counter table.
fn render_profile_artifact(path: &str, doc: &Json) {
    println!(
        "== {path}: {} (health {}, wall {} µs) ==",
        jstr(doc, "program"),
        jstr(doc, "health"),
        jint(doc, "wall_us")
    );
    if let Some(id) = doc.get("identity") {
        println!(
            "engine {}, program digest {}, flame digest {}",
            jstr(id, "version"),
            jstr(id, "program_digest"),
            jstr(id, "flame_digest")
        );
    }
    let flame = jarr(doc, "flame");
    println!("\nflame ({} span name(s)):", flame.len());
    println!(
        "{:<34} {:>7} {:>12} {:>12} {:>9} {:>12} {:>8}",
        "span", "count", "total µs", "self µs", "allocs", "bytes", "max_bits"
    );
    // Artifact rows arrive in FlameTable order (total time, heaviest
    // first); render preserves it.
    for row in flame {
        println!(
            "{:<34} {:>7} {:>12} {:>12} {:>9} {:>12} {:>8}",
            jstr(row, "name"),
            jint(row, "count"),
            jint(row, "total_ns") / 1000,
            jint(row, "self_ns") / 1000,
            jint(row, "allocs"),
            jint(row, "alloc_bytes"),
            jint(row, "max_bits")
        );
    }
    let counters = jarr(doc, "counters");
    println!("\ncounters ({}):", counters.len());
    for c in counters {
        println!("  {:<40} {:>12}", jstr(c, "name"), jint(c, "count"));
    }
}

/// Human rendering of a validated bundle: identity, budget state, the
/// error chain, the stage ladder with allocator columns, the heaviest
/// allocating stages and the flight-recorder timeline tail.
fn render_bundle(path: &str, doc: &Json) {
    println!(
        "== {path}: {} (health {}) ==",
        jstr(doc, "program"),
        jstr(doc, "health")
    );
    if let Some(id) = doc.get("identity") {
        println!(
            "engine {}, program digest {}",
            jstr(id, "version"),
            jstr(id, "program_digest")
        );
    }
    if let Some(b) = doc.get("budget") {
        let limit = |k: &str| match b.get("limits").and_then(|l| l.get(k)) {
            Some(Json::Int(n)) => n.to_string(),
            _ => "-".to_string(),
        };
        println!(
            "workers {}, budget: pivots {} (spent {}), nodes {} (spent {}), \
             deadline {} ms, cancelled {}",
            jint(doc, "workers"),
            limit("pivots"),
            jint(b, "pivots_spent"),
            limit("nodes"),
            jint(b, "nodes_spent"),
            limit("ms"),
            matches!(b.get("cancelled"), Some(Json::Bool(true)))
        );
    }
    match doc.get("error") {
        Some(err @ Json::Obj(_)) => {
            let stage = match err.get("stage") {
                Some(Json::Str(s)) => s.as_str(),
                _ => "?",
            };
            println!("\nerror (stage {stage}):");
            for (depth, link) in jarr(err, "chain").iter().enumerate() {
                if let Json::Str(s) = link {
                    let arrow = if depth == 0 { "" } else { "<- " };
                    println!("  {}{arrow}{s}", "  ".repeat(depth));
                }
            }
        }
        _ => println!("\nerror: none recorded"),
    }
    println!("\nstages:");
    println!(
        "{:<18} {:>8} {:>10} {:>9} {:>12} {:>12} {:>8}  reason",
        "stage", "outcome", "micros", "allocs", "bytes", "peak", "max_bits"
    );
    for s in jarr(doc, "stages") {
        let a = |k: &str| s.get("alloc").map_or(0, |a| jint(a, k));
        println!(
            "{:<18} {:>8} {:>10} {:>9} {:>12} {:>12} {:>8}  {}",
            jstr(s, "name"),
            jstr(s, "outcome"),
            jint(s, "micros"),
            a("allocs"),
            a("bytes"),
            a("peak"),
            a("max_bits"),
            match s.get("reason") {
                Some(Json::Str(r)) => r.as_str(),
                _ => "",
            }
        );
    }
    let mut by_bytes: Vec<(&str, i64)> = jarr(doc, "stages")
        .iter()
        .map(|s| {
            (
                jstr(s, "name"),
                s.get("alloc").map_or(0, |a| jint(a, "bytes")),
            )
        })
        .collect();
    by_bytes.sort_by_key(|entry| std::cmp::Reverse(entry.1));
    println!("\ntop allocation stages:");
    for (name, bytes) in by_bytes.iter().take(3) {
        println!("  {name:<18} {bytes:>12} bytes");
    }
    if let Some(events) = doc.get("events") {
        let ring = jarr(events, "ring");
        let tail = &ring[ring.len().saturating_sub(20)..];
        println!(
            "\ntimeline tail ({} of {} recorded events):",
            tail.len(),
            jint(events, "recorded")
        );
        for e in tail {
            println!(
                "  {:>14} ns  t{:<2} {:<12} {:<26} a={} b={}",
                jint(e, "t_ns"),
                jint(e, "thread"),
                jstr(e, "kind"),
                jstr(e, "label"),
                jint(e, "a"),
                jint(e, "b")
            );
        }
    }
}

/// `aov fuzz`: run a differential fuzzing campaign (see [`aov::fuzz`]).
fn fuzz_main(args: &[String]) -> i32 {
    let mut seed: u64 = 1;
    let mut count: usize = 100;
    let mut quick = false;
    let mut workers = aov_bench::default_workers();
    let mut repro_dir: Option<String> = None;
    let mut out: Option<String> = None;
    let mut compact = false;
    let mut budget = BudgetSpec::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if parse_budget_flag(&mut budget, arg, &mut it) {
            continue;
        }
        match arg.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => usage(),
            },
            "--count" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => count = n,
                None => usage(),
            },
            "--quick" => quick = true,
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => workers = w,
                None => usage(),
            },
            "--repro-dir" => match it.next() {
                Some(d) => repro_dir = Some(d.clone()),
                None => usage(),
            },
            "--out" => match it.next() {
                Some(f) => out = Some(f.clone()),
                None => usage(),
            },
            "--compact" => compact = true,
            _ => usage(),
        }
    }
    if budget.ms.is_some() {
        eprintln!(
            "aov fuzz: wall-clock budgets are nondeterministic; use --budget-pivots/--budget-nodes"
        );
        std::process::exit(64);
    }
    let mut cfg = if quick {
        aov::fuzz::FuzzConfig::quick(seed, count)
    } else {
        aov::fuzz::FuzzConfig::new(seed, count)
    };
    cfg.workers = workers;
    if let Some(p) = budget.pivots {
        cfg.budget.pivots = Some(p);
    }
    if let Some(n) = budget.nodes {
        cfg.budget.nodes = Some(n);
    }
    if let Some(dir) = repro_dir {
        cfg.repro_dir = dir.into();
    }
    // The oracle re-executes every healthy case through the
    // interpreter; per-event allocator accounting would dominate.
    aov_support::alloc::set_counting(false);
    eprintln!(
        "aov fuzz: seed {seed}, {count} case(s), workers {workers}{}",
        if quick { ", quick" } else { "" }
    );
    let summary = aov::fuzz::run(&cfg, |case| {
        if case.verdict != aov::fuzz::Verdict::Ok {
            eprintln!(
                "aov fuzz: case {} ({}): {} — {}{}",
                case.index,
                case.program,
                case.verdict.name(),
                case.detail,
                case.repro
                    .as_ref()
                    .map_or(String::new(), |p| format!(" [repro {}]", p.display()))
            );
        }
    });
    eprintln!(
        "aov fuzz: {} ok, {} degraded, {} mismatch, {} failed, {} schema violation(s) in {} µs",
        summary.count(aov::fuzz::Verdict::Ok),
        summary.count(aov::fuzz::Verdict::Degraded),
        summary.count(aov::fuzz::Verdict::Mismatch),
        summary.count(aov::fuzz::Verdict::Failed),
        summary.schema_violations(),
        summary.total_micros
    );
    for (label, verdict) in [
        ("ok", aov::fuzz::Verdict::Ok),
        ("degraded", aov::fuzz::Verdict::Degraded),
    ] {
        if let Some((min, median, max)) = summary.timing(verdict) {
            eprintln!("aov fuzz: {label:<8} case wall µs: min {min}, median {median}, max {max}");
        }
    }
    let doc = summary.to_json();
    let text = if compact {
        let mut line = doc.to_compact();
        line.push('\n');
        line
    } else {
        doc.to_pretty()
    };
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("aov fuzz: cannot write {path}: {e}");
                return 2;
            }
            eprintln!("aov fuzz: summary written to {path}");
        }
        None => {
            use std::io::Write;
            let _ = std::io::stdout().write_all(text.as_bytes());
        }
    }
    summary.exit_code()
}

/// `aov aovd`: the persistent solver daemon. Binds, prints the
/// resolved address (CI captures it from the `listening on` line), and
/// serves until a `shutdown` frame or SIGTERM asks it to drain; both
/// paths complete queued and in-flight requests before exiting.
fn aovd_main(args: &[String]) -> i32 {
    let mut cfg = aov_serve::server::ServerConfig {
        addr: "127.0.0.1:7401".to_string(),
        ..aov_serve::server::ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => cfg.addr = a.clone(),
                None => usage(),
            },
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => cfg.workers = w,
                None => usage(),
            },
            "--queue" => match it.next().and_then(|q| q.parse().ok()) {
                Some(q) => cfg.queue_limit = q,
                None => usage(),
            },
            "--no-memo" => cfg.memo = false,
            "--memo-capacity" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => cfg.memo_capacity = n,
                None => usage(),
            },
            "--pivot-pool" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => cfg.pivot_pool = Some(n),
                None => usage(),
            },
            "--deadline-ms" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => cfg.default_deadline_ms = Some(n),
                None => usage(),
            },
            "--diag-dir" => match it.next() {
                Some(d) => cfg.diag_dir = Some(d.into()),
                None => usage(),
            },
            "--retry-after-ms" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => cfg.retry_after_ms = n,
                None => usage(),
            },
            "--access-log" => match it.next() {
                Some(f) => cfg.access_log = Some(f.into()),
                None => usage(),
            },
            "--access-log-max-bytes" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => cfg.access_log_max_bytes = n,
                None => usage(),
            },
            _ => usage(),
        }
    }
    // Daemon-level chaos comes from the environment only: there is no
    // --chaos flag here, mirroring how requests may not arm engine
    // sites either.
    if let Err(e) = chaos::install_from_env() {
        eprintln!("aovd: AOV_CHAOS: {e}");
        return 64;
    }
    let sigterm = aov_serve::server::sigterm_flag();
    let server = match aov_serve::server::Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("aovd: cannot start: {e}");
            return 2;
        }
    };
    println!("aovd: listening on {}", server.addr());
    loop {
        if sigterm.load(std::sync::atomic::Ordering::SeqCst) {
            eprintln!("aovd: SIGTERM, draining");
            server.drain();
        }
        if server.draining() {
            server.shutdown();
            eprintln!("aovd: drained cleanly");
            return 0;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// One flight-recorder event from an `events` frame, rendered as a
/// single tail line.
fn render_event(e: &Json) -> String {
    format!(
        "{:>12} ns  t{:<2} s{:<4} {:<12} {:<26} a={} b={}",
        jint(e, "t_ns"),
        jint(e, "thread"),
        jint(e, "session"),
        jstr(e, "kind"),
        jstr(e, "label"),
        jint(e, "a"),
        jint(e, "b")
    )
}

/// Runs a streaming request (`watch`, or a solve with `--follow`):
/// event batches tail to stderr as they arrive, the terminal frame
/// prints to stdout, and the exit code mirrors [`client_main`]'s
/// mapping.
fn client_stream(addr: &str, request: &Json) -> i32 {
    let outcome = aov_serve::client::stream(addr, request, |frame| match frame.get("type") {
        Some(Json::Str(t)) if t == "events" => {
            for e in jarr(frame, "events") {
                eprintln!("  {}", render_event(e));
            }
            if jint(frame, "dropped") > 0 {
                eprintln!(
                    "aov client: {} event(s) lost to ring overwrite",
                    jint(frame, "dropped")
                );
            }
        }
        Some(Json::Str(t)) if t == "watch" => {
            eprintln!("aov client: watching (session {})", jint(frame, "session"));
        }
        Some(Json::Str(t)) if t == "watch_end" => {
            eprintln!(
                "aov client: watch ended ({}): {} event(s) streamed, {} dropped",
                jstr(frame, "reason"),
                jint(frame, "events_sent"),
                jint(frame, "dropped_total")
            );
        }
        _ => {}
    });
    match outcome {
        Ok(frame) => {
            println!("{}", frame.to_pretty());
            match frame.get("type") {
                Some(Json::Str(t)) if t == "report" => match frame.get("exit_code") {
                    Some(Json::Int(code)) => i32::try_from(*code).unwrap_or(2),
                    _ => 2,
                },
                Some(Json::Str(t)) if t == "error" => 2,
                _ => 0,
            }
        }
        Err(e) => {
            eprintln!("aov client: {e}");
            2
        }
    }
}

/// `aov client`: one request to a running `aovd`, with retry + backoff.
/// Exit code mirrors the daemon's verdict: a report's own `exit_code`,
/// 2 for error frames and transport failures, 0 for the plain frames.
/// `--follow` upgrades a solve to a live stream of the session's
/// flight-recorder events; `--watch` tails the daemon's whole ring.
fn client_main(args: &[String]) -> i32 {
    let mut cfg = aov_serve::client::ClientConfig::default();
    let mut options = aov_serve::protocol::SolveOptions::default();
    let mut program: Option<(String, bool)> = None; // (text, is_example)
    let mut plain: Option<&str> = None;
    let mut transcript_path: Option<String> = None;
    let mut follow = false;
    let mut watch = false;
    let mut for_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if parse_budget_flag(&mut options.budget, arg, &mut it) {
            continue;
        }
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => cfg.addr = a.clone(),
                None => usage(),
            },
            "--example" => match it.next() {
                Some(name) => program = Some((name.clone(), true)),
                None => usage(),
            },
            "--stats" => plain = Some("stats"),
            "--health" => plain = Some("health"),
            "--shutdown" => plain = Some("shutdown"),
            "--metrics" => plain = Some("metrics"),
            "--follow" => follow = true,
            "--watch" => watch = true,
            "--for-ms" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => for_ms = Some(n),
                None => usage(),
            },
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => options.workers = w,
                None => usage(),
            },
            "--memoize" => options.memoize = true,
            "--deadline-ms" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => options.deadline_ms = Some(n),
                None => usage(),
            },
            "--chaos" => match it.next() {
                Some(spec) => options.chaos = Some(spec.clone()),
                None => usage(),
            },
            "--retries" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => cfg.retries = n,
                None => usage(),
            },
            "--transcript" => match it.next() {
                Some(f) => transcript_path = Some(f.clone()),
                None => usage(),
            },
            path if !path.starts_with('-') => match std::fs::read_to_string(path) {
                Ok(text) => program = Some((text, false)),
                Err(e) => {
                    eprintln!("aov client: {path}: {e}");
                    return 2;
                }
            },
            _ => usage(),
        }
    }
    if watch {
        // Bare tail of the daemon's ring: session 0 means "all".
        return client_stream(&cfg.addr, &aov_serve::protocol::watch_frame(1, 0, for_ms));
    }
    let request = match (plain, &program) {
        (Some(kind), _) => aov_serve::protocol::plain_frame(kind, 1),
        (None, Some((text, is_example))) => {
            aov_serve::protocol::solve_frame(1, (text.as_str(), *is_example), &options)
        }
        (None, None) => usage(),
    };
    if follow {
        if program.is_none() {
            usage();
        }
        // No retries on a followed solve: replaying the stream would
        // silently skip events recorded between attempts.
        return client_stream(&cfg.addr, &request.field("watch", true));
    }
    let mut transcript = aov_serve::client::Transcript::default();
    let outcome = aov_serve::client::call(&cfg, &request, Some(&mut transcript));
    if let Some(path) = &transcript_path {
        if let Err(e) = std::fs::write(path, format!("{}\n", transcript.to_json().to_pretty())) {
            eprintln!("aov client: cannot write transcript {path}: {e}");
        }
    }
    match outcome {
        Ok(outcome) => {
            // --metrics prints the inner aov-svcmetrics/1 document so
            // the output pipes straight into `aov inspect --check`.
            let printable = match (plain, outcome.frame.get("metrics")) {
                (Some("metrics"), Some(doc)) => doc.clone(),
                _ => outcome.frame.clone(),
            };
            println!("{}", printable.to_pretty());
            if outcome.overloaded_retries > 0 {
                eprintln!(
                    "aov client: {} attempt(s), {} shed with overloaded",
                    outcome.attempts, outcome.overloaded_retries
                );
            }
            match outcome.frame.get("type") {
                Some(Json::Str(t)) if t == "report" => match outcome.frame.get("exit_code") {
                    Some(Json::Int(code)) => i32::try_from(*code).unwrap_or(2),
                    _ => 2,
                },
                Some(Json::Str(t)) if t == "error" => 2,
                _ => 0,
            }
        }
        Err(e) => {
            eprintln!("aov client: {e}");
            2
        }
    }
}

/// `aov top [ADDR] [--interval-ms N] [--once]`: a live dashboard over
/// the daemon's `metrics` verb — uptime, rolling request/shed/memo-hit
/// windows, per-phase and per-verdict latency quantiles, and worker
/// states. `--once` renders a single frame without clearing the
/// screen (CI-friendly); otherwise it repaints every interval until
/// interrupted.
fn top_main(args: &[String]) -> i32 {
    let mut addr = "127.0.0.1:7401".to_string();
    let mut interval_ms: u64 = 1_000;
    let mut once = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval-ms" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => interval_ms = n,
                None => usage(),
            },
            "--once" => once = true,
            a if !a.starts_with('-') => addr = a.to_string(),
            _ => usage(),
        }
    }
    let cfg = aov_serve::client::ClientConfig {
        addr: addr.clone(),
        retries: 2,
        base_ms: 5,
        cap_ms: 200,
        seed: 0x709,
    };
    loop {
        let frame = match aov_serve::client::call(
            &cfg,
            &aov_serve::protocol::plain_frame("metrics", -2),
            None,
        ) {
            Ok(o) => o.frame,
            Err(e) => {
                eprintln!("aov top: {addr}: {e}");
                return 2;
            }
        };
        let Some(doc) = frame.get("metrics") else {
            eprintln!(
                "aov top: {addr}: no metrics block in {}",
                frame.to_compact()
            );
            return 2;
        };
        if !once {
            print!("\x1b[2J\x1b[H"); // clear + home: repaint in place
        }
        render_svcmetrics(&addr, doc);
        if once {
            return 0;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}

/// The dashboard body, shared by `aov top` and `aov inspect` on a
/// saved `aov-svcmetrics/1` document.
fn render_svcmetrics(origin: &str, doc: &Json) {
    println!(
        "== {origin}: aovd up {:.1} s — queue {} inflight {} served {} shed {} faults {} \
         restarts {}{} ==",
        jint(doc, "uptime_ms") as f64 / 1000.0,
        jint(doc, "queue_depth"),
        jint(doc, "inflight"),
        jint(doc, "served"),
        jint(doc, "overloaded"),
        jint(doc, "faults"),
        jint(doc, "worker_restarts"),
        if matches!(doc.get("draining"), Some(Json::Bool(true))) {
            " DRAINING"
        } else {
            ""
        },
    );
    if let Some(w) = doc.get("windows") {
        println!("\nrolling counts          1s       10s       60s");
        for key in ["requests", "shed", "memo_hits"] {
            if let Some(k) = w.get(key) {
                println!(
                    "  {:<16} {:>9} {:>9} {:>9}",
                    key,
                    jint(k, "s1"),
                    jint(k, "s10"),
                    jint(k, "s60")
                );
            }
        }
    }
    let table = |title: &str, rows: &[Json]| {
        println!(
            "\n{title:<18} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "count", "p50 µs", "p90 µs", "p99 µs", "p99.9 µs", "max µs"
        );
        for row in rows {
            let us = |k: &str| jint(row, k) / 1000;
            println!(
                "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                jstr(row, "name"),
                jint(row, "count"),
                us("p50_ns"),
                us("p90_ns"),
                us("p99_ns"),
                us("p999_ns"),
                us("max_ns"),
            );
        }
    };
    table("phase", jarr(doc, "phases"));
    table("verdict", jarr(doc, "verdicts"));
    let states: Vec<String> = jarr(doc, "workers")
        .iter()
        .map(|w| format!("w{}={}", jint(w, "id"), jstr(w, "state")))
        .collect();
    println!("\nworkers: {}", states.join(" "));
    if let Some(m) = doc.get("memo") {
        println!("memo: {}", m.to_compact());
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // --recorder-slots is global and position-independent: it must land
    // before the flight recorder's ring is first touched, whichever
    // subcommand runs. The AOV_RECORDER_SLOTS environment variable is
    // read lazily by the recorder itself; the flag wins because
    // set_slots overrides the environment.
    while let Some(i) = args.iter().position(|a| a == "--recorder-slots") {
        let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
            usage()
        };
        args.drain(i..=i + 1);
        if !aov_trace::recorder::set_slots(n) {
            eprintln!("aov: --recorder-slots: the recorder ring is already sized");
            std::process::exit(64);
        }
    }
    if args.first().map(String::as_str) == Some("bench") {
        std::process::exit(bench_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("trend") {
        std::process::exit(trend_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("inspect") {
        std::process::exit(inspect_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        std::process::exit(fuzz_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("pdiff") {
        std::process::exit(pdiff_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("aovd") {
        std::process::exit(aovd_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("client") {
        std::process::exit(client_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("top") {
        std::process::exit(top_main(&args[1..]));
    }
    let run_mode = args.first().map(String::as_str) == Some("run");
    let opts = parse(if run_mode { &args[1..] } else { &args }, run_mode);

    if let Some(path) = &opts.check_trace {
        std::process::exit(check_trace(path));
    }
    if let Some(path) = &opts.check_report {
        std::process::exit(check_report(path));
    }
    if opts.check_syntax {
        std::process::exit(check_syntax_main(&opts));
    }

    // Arm chaos injection: the --chaos flag wins over AOV_CHAOS.
    match &opts.chaos {
        Some(spec) => match chaos::ChaosSpec::parse(spec) {
            Ok(parsed) => chaos::install(parsed),
            Err(e) => {
                eprintln!("aov: --chaos: {e}");
                std::process::exit(64);
            }
        },
        None => {
            if let Err(e) = chaos::install_from_env() {
                eprintln!("aov: AOV_CHAOS: {e}");
                std::process::exit(64);
            }
        }
    }

    // Telemetry arming policy: the flight recorder always runs (its
    // ring feeds crash bundles and costs well under 1% of a run), but
    // the counting allocator's byte accounting only pays for itself
    // when something consumes the numbers — a flame table, a trace
    // file, or a crash bundle. Plain runs disarm it: Example 1 makes
    // ~27M heap operations in under half a second, so even a
    // nanosecond of per-event accounting busts the 1% telemetry
    // budget (see EXPERIMENTS.md for the measurements).
    let wants_alloc_telemetry = opts.profile
        || opts.mem
        || opts.trace.is_some()
        || opts.diag_dir.is_some()
        || opts.profile_out.is_some();
    if !wants_alloc_telemetry {
        aov_support::alloc::set_counting(false);
    }

    let tracing = opts.trace.is_some() || opts.profile || opts.profile_out.is_some();
    if tracing {
        aov_trace::set_enabled(true);
    }
    if opts.legacy_memo_keys {
        aov_lp::memo::set_legacy_keys(true);
    }

    // The sampler only reads: flight-recorder snapshots and relaxed
    // counter loads. Solver threads never see it.
    let sampler = opts.progress.then(|| {
        aov_engine::progress::ProgressSampler::start(
            std::time::Duration::from_secs(1),
            opts.budget.ms,
        )
    });

    let mut reports = Vec::new();
    let mut all_records: Vec<aov_trace::SpanRecord> = Vec::new();
    let mut any_degraded = false;
    let mut any_inequivalent = false;
    for spec in &opts.programs {
        let name = &spec.label().to_string();
        // Program resolution runs inside the loop so the parser's
        // `lang.parse`/`lang.lower` spans land in --profile/--trace.
        let mut pipeline = match spec {
            ProgramSpec::Builtin(name) => match Pipeline::for_example(name) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("aov: {e}");
                    std::process::exit(64);
                }
            },
            parser_path => Pipeline::new(load_source_program(parser_path).1),
        };
        pipeline = pipeline
            .workers(opts.workers)
            .memoize(opts.memoize)
            .machine(opts.machine)
            .runs(opts.runs)
            .budget(opts.budget);
        if let Some(ps) = &opts.params {
            pipeline = pipeline.check_params(ps.clone());
        }
        if let Some(dir) = &opts.diag_dir {
            pipeline = pipeline.diag_dir(dir.clone());
        }
        match pipeline.run() {
            Ok(report) => {
                if tracing {
                    let records = aov_trace::drain();
                    if opts.profile {
                        print_profile(name, &records, &report, opts.mem);
                    }
                    if let Some(path) = &opts.profile_out {
                        let doc = aov_engine::profile::build_profile(
                            &report,
                            &records,
                            &pipeline.program_digest(),
                        );
                        if let Err(e) = std::fs::write(path, format!("{}\n", doc.to_pretty())) {
                            eprintln!("aov: cannot write profile {path}: {e}");
                            std::process::exit(1);
                        }
                        eprintln!("aov: {name}: profile artifact written to {path}");
                    }
                    all_records.extend(records);
                }
                if let Some(path) = &report.diag_path {
                    eprintln!("aov: {name}: diagnostic bundle written to {path}");
                }
                match report.health() {
                    Health::Ok => {}
                    Health::Degraded | Health::Failed => {
                        any_degraded = true;
                        for stage in report.stages.iter().filter(|s| s.outcome.class() != "ok") {
                            eprintln!(
                                "aov: {name}: {} {}: {}",
                                stage.name,
                                stage.outcome.class(),
                                stage.outcome.reason().unwrap_or("")
                            );
                        }
                    }
                }
                any_inequivalent |= report.equivalent == Some(false);
                reports.push(report.to_json());
            }
            Err(e) => {
                // Hard failure: non-degradable error (illegal schedule
                // override, unsupported program, stage abort).
                eprintln!("aov: {name}: {e}");
                if let Some(dir) = &opts.diag_dir {
                    eprintln!("aov: {name}: diagnostic bundle written into {dir}");
                }
                std::process::exit(2);
            }
        }
    }

    if let Some(s) = sampler {
        s.finish();
    }

    if let Some(path) = &opts.trace {
        let metrics =
            aov_trace::metrics::snapshot(&all_records, &aov_support::counters::snapshot());
        let doc = aov_trace::chrome::chrome_trace(&all_records).field("aovMetrics", metrics);
        if let Err(e) = std::fs::write(path, doc.to_pretty()) {
            eprintln!("aov: cannot write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("aov: trace written to {path} ({} spans)", all_records.len());
    }

    let json = if reports.len() == 1 {
        reports.pop().unwrap()
    } else {
        Json::Arr(reports)
    };
    let text = if opts.compact {
        let mut line = json.to_compact();
        line.push('\n');
        line
    } else {
        json.to_pretty()
    };
    // Ignore broken pipes (e.g. `aov … | head`).
    use std::io::Write;
    let _ = std::io::stdout().write_all(text.as_bytes());
    std::process::exit(if any_degraded {
        3
    } else if any_inequivalent {
        1
    } else {
        0
    });
}

/// Per-example profile: flame table plus the run's memo economics;
/// `mem` adds the allocator/numeric-growth columns.
fn print_profile(
    name: &str,
    records: &[aov_trace::SpanRecord],
    report: &aov_engine::Report,
    mem: bool,
) {
    eprintln!("== profile: {name} ({} spans) ==", records.len());
    let table = aov_trace::flame::FlameTable::build(records);
    eprint!("{}", table.render());
    if mem {
        eprintln!("-- memory --");
        eprint!("{}", table.render_mem());
    }
    let hits = report.counter("lp.memo.hits");
    let misses = report.counter("lp.memo.misses");
    match report.memo_hit_rate() {
        Some(rate) => eprintln!(
            "memo: {hits} hits / {} lookups ({:.1}% hit rate, {})",
            hits + misses,
            rate * 100.0,
            if aov_lp::memo::legacy_keys() {
                "legacy keys"
            } else {
                "canonical keys"
            }
        ),
        None => eprintln!("memo: no lookups"),
    }
    eprintln!();
}
