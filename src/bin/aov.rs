//! The `aov` command line: run the instrumented pipeline on one of the
//! paper's examples and print a JSON report, or drive the benchmark
//! observatory.
//!
//! ```text
//! aov <example1|example2|example3|example4|all> [options]
//!
//!   --workers N        fan the per-orthant solvers out over N threads
//!                      (default: available parallelism, capped at 8)
//!   --sequential       shorthand for --workers 1
//!   --memoize          enable the LP memoization cache
//!   --legacy-memo-keys key the cache on raw model text instead of the
//!                      alpha-renamed canonical form (A/B comparison)
//!   --machine          include the §6 simulated-speedup stage
//!   --params A,B       parameter sizes for the equivalence oracle
//!   --runs N           repeat the pipeline N times; the report carries
//!                      the fastest run plus a min/median timing block
//!   --compact          one-line JSON instead of pretty-printed
//!   --trace FILE       write a Chrome trace-event JSON (load it in
//!                      Perfetto or chrome://tracing); the file also
//!                      carries an "aovMetrics" snapshot merging the
//!                      span flame table with the solver counters
//!   --profile          print a per-example flame table and memo
//!                      hit-rate summary to stderr
//!
//! aov bench [options]
//!
//!   Run the benchmark observatory: every example through the pipeline
//!   (memoization on), min/median timings over repeated runs, span and
//!   counter attribution, the engine-driven figure suite with output
//!   fingerprints — written as a versioned BENCH_<n>.json artifact.
//!
//!   --runs N              pipeline repetitions per example (default 1)
//!   --out FILE            write the artifact here (default: stdout)
//!   --baseline FILE       compare against a previous artifact and print
//!                         a noise-aware regression report
//!   --fail-on-regression  exit 1 when the comparison gates
//!   --examples A,B        subset of examples (default: all four)
//!   --workers N           solver fan-out threads
//!   --quick               machine-model figures at reduced sizes
//!   --no-figures          skip the figure suite
//!   --check FILE          validate an existing artifact against the
//!                         schema instead of running anything
//!
//! aov --check-trace FILE
//!
//!   Validate a previously written trace: parse the JSON and assert it
//!   contains pipeline root spans. Exit 0 when well-formed.
//! ```
//!
//! Exit status: 0 on success (and dynamic equivalence holding), 1 when a
//! stage fails, equivalence does not hold, an artifact is invalid or a
//! gated regression is found, 2 on a usage error.

use aov_bench::observatory::{self, SuiteConfig};
use aov_bench::regress;
use aov_engine::Pipeline;
use aov_support::{Json, ToJson};

struct Options {
    programs: Vec<String>,
    workers: usize,
    memoize: bool,
    legacy_memo_keys: bool,
    machine: bool,
    params: Option<Vec<i64>>,
    runs: usize,
    compact: bool,
    trace: Option<String>,
    profile: bool,
    check_trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: aov <example1|example2|example3|example4|all> \
         [--workers N] [--sequential] [--memoize] [--legacy-memo-keys] \
         [--machine] [--params A,B,..] [--runs N] [--compact] \
         [--trace FILE] [--profile]\n       \
         aov bench [--runs N] [--out FILE] [--baseline FILE] \
         [--fail-on-regression] [--examples A,B] [--workers N] [--quick] \
         [--no-figures] [--check FILE]\n       \
         aov --check-trace FILE"
    );
    std::process::exit(2);
}

fn parse(args: &[String]) -> Options {
    let mut opts = Options {
        programs: Vec::new(),
        workers: aov_bench::default_workers(),
        memoize: false,
        legacy_memo_keys: false,
        machine: false,
        params: None,
        runs: 1,
        compact: false,
        trace: None,
        profile: false,
        check_trace: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => opts.workers = w,
                None => usage(),
            },
            "--sequential" => opts.workers = 1,
            "--memoize" => opts.memoize = true,
            "--legacy-memo-keys" => opts.legacy_memo_keys = true,
            "--machine" => opts.machine = true,
            "--params" => match it.next() {
                Some(spec) => {
                    let parsed: Option<Vec<i64>> =
                        spec.split(',').map(|s| s.trim().parse().ok()).collect();
                    match parsed {
                        Some(ps) if !ps.is_empty() => opts.params = Some(ps),
                        _ => usage(),
                    }
                }
                None => usage(),
            },
            "--runs" => match it.next().and_then(|r| r.parse().ok()) {
                Some(r) if r >= 1 => opts.runs = r,
                _ => usage(),
            },
            "--compact" => opts.compact = true,
            "--trace" => match it.next() {
                Some(f) => opts.trace = Some(f.clone()),
                None => usage(),
            },
            "--profile" => opts.profile = true,
            "--check-trace" => match it.next() {
                Some(f) => opts.check_trace = Some(f.clone()),
                None => usage(),
            },
            "all" => {
                opts.programs.extend((1..=4).map(|k| format!("example{k}")));
            }
            name if !name.starts_with('-') => opts.programs.push(name.to_string()),
            _ => usage(),
        }
    }
    if opts.programs.is_empty() && opts.check_trace.is_none() {
        usage();
    }
    opts
}

/// Validates a written trace file: parses the JSON back (through
/// `aov_support::json`) and requires at least one `pipeline.*` root span
/// among the trace events.
fn check_trace(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("aov: {path}: {e}");
            return 1;
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("aov: {path}: invalid JSON: {e}");
            return 1;
        }
    };
    let Some(Json::Arr(events)) = json.get("traceEvents") else {
        eprintln!("aov: {path}: no traceEvents array");
        return 1;
    };
    let pipeline_spans = events
        .iter()
        .filter(|e| matches!(e.get("name"), Some(Json::Str(n)) if n.starts_with("pipeline.")))
        .count();
    if pipeline_spans == 0 {
        eprintln!("aov: {path}: no pipeline root spans in trace");
        return 1;
    }
    eprintln!(
        "aov: {path}: ok ({} events, {pipeline_spans} pipeline spans)",
        events.len()
    );
    0
}

struct BenchOptions {
    runs: usize,
    out: Option<String>,
    baseline: Option<String>,
    fail_on_regression: bool,
    examples: Vec<String>,
    workers: usize,
    quick: bool,
    figures: bool,
    check: Option<String>,
}

fn parse_bench(args: &[String]) -> BenchOptions {
    let mut opts = BenchOptions {
        runs: 1,
        out: None,
        baseline: None,
        fail_on_regression: false,
        examples: aov_bench::EXAMPLES
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        workers: aov_bench::default_workers(),
        quick: false,
        figures: true,
        check: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--runs" => match it.next().and_then(|r| r.parse().ok()) {
                Some(r) if r >= 1 => opts.runs = r,
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(f) => opts.out = Some(f.clone()),
                None => usage(),
            },
            "--baseline" => match it.next() {
                Some(f) => opts.baseline = Some(f.clone()),
                None => usage(),
            },
            "--fail-on-regression" => opts.fail_on_regression = true,
            "--examples" => match it.next() {
                Some(spec) => {
                    opts.examples = spec
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if opts.examples.is_empty() {
                        usage();
                    }
                }
                None => usage(),
            },
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => opts.workers = w,
                None => usage(),
            },
            "--quick" => opts.quick = true,
            "--no-figures" => opts.figures = false,
            "--check" => match it.next() {
                Some(f) => opts.check = Some(f.clone()),
                None => usage(),
            },
            _ => usage(),
        }
    }
    opts
}

/// Validates an artifact file: JSON parse, structural schema, version.
fn check_artifact(path: &str) -> i32 {
    let doc = match read_artifact(path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("aov bench: {e}");
            return 1;
        }
    };
    if let Err(errors) = observatory::validate(&doc) {
        eprintln!("aov bench: {path}: schema violations:");
        for e in &errors {
            eprintln!("  {e}");
        }
        return 1;
    }
    match doc.get("schema") {
        Some(Json::Str(v)) if v == observatory::SCHEMA_VERSION => {}
        other => {
            eprintln!(
                "aov bench: {path}: unsupported schema version {other:?} (want {:?})",
                observatory::SCHEMA_VERSION
            );
            return 1;
        }
    }
    eprintln!("aov bench: {path}: ok ({})", observatory::SCHEMA_VERSION);
    0
}

fn read_artifact(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))
}

fn bench_main(args: &[String]) -> i32 {
    let opts = parse_bench(args);
    if let Some(path) = &opts.check {
        return check_artifact(path);
    }
    let cfg = SuiteConfig {
        examples: opts.examples.clone(),
        runs: opts.runs,
        workers: opts.workers,
        quick: opts.quick,
        figures: opts.figures,
        ..SuiteConfig::default()
    };
    eprintln!(
        "aov bench: {} × {} run(s), workers {}{}",
        cfg.examples.join(","),
        cfg.runs,
        cfg.workers,
        if cfg.quick { ", quick" } else { "" }
    );
    let artifact = match observatory::run_suite(&cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("aov bench: {e}");
            return 1;
        }
    };
    for e in &artifact.examples {
        eprintln!(
            "aov bench: {:<9} wall {} µs (min of {}), memo hit rate {}",
            e.program,
            e.wall_us.min,
            e.runs,
            e.memo_hit_rate
                .map_or("n/a".to_string(), |r| format!("{:.1}%", r * 100.0)),
        );
    }
    if artifact.figures_enabled {
        let reproduced = artifact.figures.iter().filter(|f| f.reproduced).count();
        eprintln!(
            "aov bench: figures {reproduced}/{} reproduced",
            artifact.figures.len()
        );
    }

    let doc = artifact.to_json();
    if let Err(errors) = observatory::validate(&doc) {
        eprintln!("aov bench: internal error: artifact fails its own schema:");
        for e in &errors {
            eprintln!("  {e}");
        }
        return 1;
    }
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, doc.to_pretty()) {
                eprintln!("aov bench: cannot write {path}: {e}");
                return 1;
            }
            eprintln!("aov bench: artifact written to {path}");
        }
        None => {
            use std::io::Write;
            let _ = std::io::stdout().write_all(doc.to_pretty().as_bytes());
        }
    }

    if !artifact.figures.iter().all(|f| f.reproduced) {
        eprintln!("aov bench: FAILED: a figure did not reproduce");
        return 1;
    }

    match &opts.baseline {
        None => {
            eprintln!("aov bench: no baseline given; skipping comparison");
            0
        }
        Some(path) => {
            let baseline = match read_artifact(path) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("aov bench: {e}");
                    return 1;
                }
            };
            let cmp = regress::compare(&baseline, &doc, &regress::Tolerance::default());
            eprint!("{}", cmp.render());
            if cmp.has_regressions() && opts.fail_on_regression {
                eprintln!("aov bench: FAILED: regressions beyond tolerance");
                1
            } else {
                0
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench") {
        std::process::exit(bench_main(&args[1..]));
    }
    let opts = parse(&args);

    if let Some(path) = &opts.check_trace {
        std::process::exit(check_trace(path));
    }

    let tracing = opts.trace.is_some() || opts.profile;
    if tracing {
        aov_trace::set_enabled(true);
    }
    if opts.legacy_memo_keys {
        aov_lp::memo::set_legacy_keys(true);
    }

    let mut reports = Vec::new();
    let mut all_records: Vec<aov_trace::SpanRecord> = Vec::new();
    let mut all_equivalent = true;
    for name in &opts.programs {
        let mut pipeline = match Pipeline::for_example(name) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("aov: {e}");
                std::process::exit(2);
            }
        };
        pipeline = pipeline
            .workers(opts.workers)
            .memoize(opts.memoize)
            .machine(opts.machine)
            .runs(opts.runs);
        if let Some(ps) = &opts.params {
            pipeline = pipeline.check_params(ps.clone());
        }
        match pipeline.run() {
            Ok(report) => {
                if tracing {
                    let records = aov_trace::drain();
                    if opts.profile {
                        print_profile(name, &records, &report);
                    }
                    all_records.extend(records);
                }
                all_equivalent &= report.equivalent;
                reports.push(report.to_json());
            }
            Err(e) => {
                eprintln!("aov: {name}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &opts.trace {
        let metrics =
            aov_trace::metrics::snapshot(&all_records, &aov_support::counters::snapshot());
        let doc = aov_trace::chrome::chrome_trace(&all_records).field("aovMetrics", metrics);
        if let Err(e) = std::fs::write(path, doc.to_pretty()) {
            eprintln!("aov: cannot write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("aov: trace written to {path} ({} spans)", all_records.len());
    }

    let json = if reports.len() == 1 {
        reports.pop().unwrap()
    } else {
        Json::Arr(reports)
    };
    let text = if opts.compact {
        let mut line = json.to_compact();
        line.push('\n');
        line
    } else {
        json.to_pretty()
    };
    // Ignore broken pipes (e.g. `aov … | head`).
    use std::io::Write;
    let _ = std::io::stdout().write_all(text.as_bytes());
    std::process::exit(if all_equivalent { 0 } else { 1 });
}

/// Per-example profile: flame table plus the run's memo economics.
fn print_profile(name: &str, records: &[aov_trace::SpanRecord], report: &aov_engine::Report) {
    eprintln!("== profile: {name} ({} spans) ==", records.len());
    let table = aov_trace::flame::FlameTable::build(records);
    eprint!("{}", table.render());
    let hits = report.counter("lp.memo.hits");
    let misses = report.counter("lp.memo.misses");
    match report.memo_hit_rate() {
        Some(rate) => eprintln!(
            "memo: {hits} hits / {} lookups ({:.1}% hit rate, {})",
            hits + misses,
            rate * 100.0,
            if aov_lp::memo::legacy_keys() {
                "legacy keys"
            } else {
                "canonical keys"
            }
        ),
        None => eprintln!("memo: no lookups"),
    }
    eprintln!();
}
