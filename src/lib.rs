//! # aov — unified schedule and storage optimization
//!
//! An implementation of *"A Unified Framework for Schedule and Storage
//! Optimization"* (Thies, Vivien, Sheldon, Amarasinghe; PLDI 2001).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`numeric`] — arbitrary-precision integers and exact rationals.
//! * [`linalg`] — vectors/matrices over rationals and lattice tools.
//! * [`polyhedra`] — convex polyhedra, generators, projection.
//! * [`lp`] — exact simplex and branch-and-bound ILP.
//! * [`ir`] — affine loop-nest programs and dependence analysis.
//! * [`schedule`] — one-dimensional affine scheduling (Feautrier-style).
//! * [`core`] — occupancy vectors: the paper's three problems, the UOV
//!   baseline, the storage transformation and code generation.
//! * [`interp`] — dynamic semantic validation of storage mappings.
//! * [`machine`] — a simulated multiprocessor reproducing the paper's
//!   speedup experiments.
//! * [`engine`] — the instrumented end-to-end pipeline (stages, solver
//!   counters, parallel fan-out) behind the `aov` CLI.
//! * [`support`] — the zero-dependency runtime substrate (PRNG, JSON,
//!   bench harness, property-test runner, counter registry).
//! * [`trace`] — hierarchical tracing and solver profiling (spans,
//!   Chrome-trace export, flame tables, metrics snapshots).
//! * [`lang`] — the `.aov` textual frontend: lexer, parser, lowering to
//!   the IR with caret diagnostics, and a canonical pretty-printer.
//! * [`serve`] — solver-as-a-service: the `aovd` daemon (admission
//!   control, worker supervision, shared memo tier, chaos probes) and
//!   its backoff-retrying client.
//! * [`gen`] — the seeded program generator and shrinker behind
//!   `aov fuzz`.
//! * [`fuzz`] — the differential fuzz harness (`aov fuzz`): generated
//!   programs through the pipeline, reports schema-checked, healthy
//!   runs re-validated by an interpreter-based oracle.
//!
//! ## Quickstart
//!
//! ```
//! use aov::ir::examples::example1;
//! use aov::core::problems::AovSolver;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = example1();
//! let solution = AovSolver::new(&program)?.solve()?;
//! let v = &solution.vector_for("A").unwrap();
//! assert_eq!(v.components(), [1, 2]); // the paper's Figure 5 AOV
//! # Ok(())
//! # }
//! ```

pub mod fuzz;

pub use aov_core as core;
pub use aov_engine as engine;
pub use aov_gen as gen;
pub use aov_interp as interp;
pub use aov_ir as ir;
pub use aov_lang as lang;
pub use aov_linalg as linalg;
pub use aov_lp as lp;
pub use aov_machine as machine;
pub use aov_numeric as numeric;
pub use aov_polyhedra as polyhedra;
pub use aov_schedule as schedule;
pub use aov_serve as serve;
pub use aov_support as support;
pub use aov_trace as trace;
