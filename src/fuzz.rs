//! Differential fuzzing of the whole pipeline.
//!
//! Each case draws a seeded program from [`aov_gen`], runs it through the
//! instrumented [`aov_engine::Pipeline`], validates the emitted report
//! against [`aov_engine::report_schema`], and — for healthy runs —
//! re-derives the storage transforms from the *published* AOV vectors and
//! replays both executions through [`aov_interp`], asserting that the
//! transformed, scheduled program computes the same value for every
//! statement instance as the original. The engine's own equivalence
//! stage is thereby cross-checked by an oracle that only trusts the
//! report, not the engine's internals.
//!
//! Verdicts per case:
//!
//! * `ok` — every stage ran, both the engine's check and the independent
//!   oracle agree the semantics are preserved;
//! * `degraded` — a legitimate outcome: the program has no 1-d affine
//!   schedule (the generator seeds some on purpose) or a work budget
//!   tripped; the degradation ladder, not the fuzzer, owns these;
//! * `mismatch` — the differential oracle (or the engine's own check)
//!   refutes the transformation: a real storage/schedule bug;
//! * `failed` — a hard failure, an isolated panic, or a report that does
//!   not match the schema.
//!
//! Mismatching and failing cases are shrunk with [`aov_gen::shrink`] to a
//! minimal reproducer, written as a `.aov` file (plus a crash-diagnostic
//! bundle from re-running the shrunk case with a diag dir) so a failure
//! is actionable without re-running the fuzzer.
//!
//! Determinism: per-case seeds are `mix(seed, index)`, budgets are
//! work-based (pivots/nodes, never wall-clock), and the generator,
//! solver fan-out and shrinker are all deterministic — so a summary is a
//! pure function of `(seed, count, config)`, independent of `--workers`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

use aov_core::problems;
use aov_core::transform::StorageTransform;
use aov_engine::{report_schema, BudgetSpec, Health, Pipeline, Report};
use aov_gen::{generate, shrink::shrink, Flavor, GenConfig, Generated};
use aov_interp::validate::semantics_preserved;
use aov_ir::Program;
use aov_support::rng::mix;
use aov_support::{Json, ToJson};
use aov_trace::span;

/// Configuration for one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed; case `i` uses `mix(seed, i)`.
    pub seed: u64,
    /// Number of cases.
    pub count: usize,
    /// Solver fan-out threads per pipeline run.
    pub workers: usize,
    /// Smaller programs, tighter budgets, fewer shrink evaluations.
    pub quick: bool,
    /// Where minimal `.aov` repros and diag bundles land.
    pub repro_dir: PathBuf,
    /// Work budget per pipeline run. Wall-clock budgets are refused:
    /// their trips are nondeterministic and would make a campaign
    /// unreproducible.
    pub budget: BudgetSpec,
    /// Program-shape knobs passed to the generator.
    pub gen: GenConfig,
}

impl FuzzConfig {
    /// The default campaign shape for `seed`: full-size generator
    /// profile and a generous work budget (a budget trip is a
    /// legitimate degraded outcome, not a fuzzing bug, so the cap only
    /// exists to bound runaway cases).
    pub fn new(seed: u64, count: usize) -> Self {
        FuzzConfig {
            seed,
            count,
            workers: 1,
            quick: false,
            repro_dir: PathBuf::from("fuzz-repros"),
            budget: BudgetSpec {
                pivots: Some(2_000_000),
                nodes: Some(200_000),
                ms: None,
            },
            gen: GenConfig::default(),
        }
    }

    /// The `--quick` smoke profile: smaller programs, tighter budgets.
    pub fn quick(seed: u64, count: usize) -> Self {
        FuzzConfig {
            quick: true,
            budget: BudgetSpec {
                pivots: Some(400_000),
                nodes: Some(40_000),
                ms: None,
            },
            gen: GenConfig::quick(),
            ..FuzzConfig::new(seed, count)
        }
    }

    /// Shrink-phase budget: full pipeline evaluations per failing case.
    fn shrink_evals(&self) -> usize {
        if self.quick {
            15
        } else {
            40
        }
    }
}

/// Classification of one fuzz case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Healthy run, equivalence confirmed by engine and oracle.
    Ok,
    /// Unschedulable program or tripped budget — the ladder degraded
    /// deterministically, nothing to report.
    Degraded,
    /// The transformation changed observable semantics.
    Mismatch,
    /// Hard failure, isolated panic, or schema-invalid report.
    Failed,
}

impl Verdict {
    /// Stable lowercase name (used in JSON and file names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Degraded => "degraded",
            Verdict::Mismatch => "mismatch",
            Verdict::Failed => "failed",
        }
    }
}

/// The outcome of one fuzz case.
#[derive(Debug)]
pub struct CaseResult {
    /// Case index within the campaign.
    pub index: usize,
    /// The derived per-case seed (`mix(campaign_seed, index)`).
    pub seed: u64,
    /// Program name (`gen_{seed:016x}`).
    pub program: String,
    /// Generator flavor of the program.
    pub flavor: Flavor,
    /// Final classification.
    pub verdict: Verdict,
    /// One-line human explanation of the verdict.
    pub detail: String,
    /// Whether the emitted report matched [`report_schema`].
    pub schema_ok: bool,
    /// Path of the minimal `.aov` repro (mismatch/failed only).
    pub repro: Option<PathBuf>,
    /// Path of the crash-diagnostic bundle for the shrunk case.
    pub diag: Option<String>,
    /// Wall-clock for the case, including shrinking.
    pub micros: u128,
}

impl ToJson for CaseResult {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("index", self.index)
            .field("seed", format!("{:#018x}", self.seed).as_str())
            .field("program", self.program.as_str())
            .field(
                "flavor",
                match self.flavor {
                    Flavor::General => "general",
                    Flavor::UnschedulableBiased => "unschedulable_biased",
                },
            )
            .field("verdict", self.verdict.name())
            .field("detail", self.detail.as_str())
            .field("schema_ok", self.schema_ok)
            .field(
                "repro",
                self.repro
                    .as_ref()
                    .map_or(Json::Null, |p| Json::from(p.display().to_string().as_str())),
            )
            .field(
                "diag",
                self.diag
                    .as_ref()
                    .map_or(Json::Null, |p| Json::from(p.as_str())),
            )
            .field("micros", self.micros as i64)
    }
}

/// Aggregate result of a fuzzing campaign.
#[derive(Debug)]
pub struct FuzzSummary {
    /// The campaign seed.
    pub seed: u64,
    /// All case results, in index order.
    pub cases: Vec<CaseResult>,
    /// Total wall-clock for the campaign.
    pub total_micros: u128,
}

impl FuzzSummary {
    /// Number of cases with the given verdict.
    #[must_use]
    pub fn count(&self, v: Verdict) -> usize {
        self.cases.iter().filter(|c| c.verdict == v).count()
    }

    /// Number of reports that violated the report schema.
    #[must_use]
    pub fn schema_violations(&self) -> usize {
        self.cases.iter().filter(|c| !c.schema_ok).count()
    }

    /// Wall-time aggregate over the cases with the given verdict:
    /// `(min, median, max)` microseconds, `None` when no case has it.
    /// The median is the lower middle element — deterministic and
    /// integer, which matters more for campaign diffing than the
    /// half-step of precision an interpolated median would add.
    #[must_use]
    pub fn timing(&self, v: Verdict) -> Option<(u128, u128, u128)> {
        let mut times: Vec<u128> = self
            .cases
            .iter()
            .filter(|c| c.verdict == v)
            .map(|c| c.micros)
            .collect();
        times.sort_unstable();
        let (first, last) = (times.first()?, times.last()?);
        Some((*first, times[(times.len() - 1) / 2], *last))
    }

    /// Campaign exit code: failures dominate mismatches dominate ok.
    /// Degraded cases are expected (unschedulable seeds, budget trips)
    /// and do not affect the exit code.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        if self.count(Verdict::Failed) > 0 || self.schema_violations() > 0 {
            2
        } else if self.count(Verdict::Mismatch) > 0 {
            1
        } else {
            0
        }
    }
}

impl ToJson for FuzzSummary {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("schema", "aov-fuzz/1")
            .field("seed", format!("{:#018x}", self.seed).as_str())
            .field("count", self.cases.len())
            .field(
                "verdicts",
                Json::obj()
                    .field("ok", self.count(Verdict::Ok))
                    .field("degraded", self.count(Verdict::Degraded))
                    .field("mismatch", self.count(Verdict::Mismatch))
                    .field("failed", self.count(Verdict::Failed)),
            )
            .field("schema_violations", self.schema_violations())
            .field("total_micros", self.total_micros as i64)
            .field("timing", {
                let verdicts = [
                    ("ok", Verdict::Ok),
                    ("degraded", Verdict::Degraded),
                    ("mismatch", Verdict::Mismatch),
                    ("failed", Verdict::Failed),
                ];
                let mut obj = Json::obj();
                for (name, v) in verdicts {
                    obj = obj.field(
                        name,
                        match self.timing(v) {
                            Some((min, median, max)) => Json::obj()
                                .field("min_micros", min as i64)
                                .field("median_micros", median as i64)
                                .field("max_micros", max as i64),
                            None => Json::Null,
                        },
                    );
                }
                obj
            })
            .field(
                "cases",
                self.cases.iter().map(ToJson::to_json).collect::<Vec<_>>(),
            )
    }
}

/// Structural schema of [`FuzzSummary::to_json`], pinned so campaign
/// summaries stay machine-readable the way pipeline reports do.
pub fn summary_schema() -> aov_support::schema::Schema {
    use aov_support::schema::Schema;
    let case = Schema::object([
        ("index", Schema::Int, true),
        ("seed", Schema::Str, true),
        ("program", Schema::Str, true),
        ("flavor", Schema::Str, true),
        ("verdict", Schema::Str, true),
        ("detail", Schema::Str, true),
        ("schema_ok", Schema::Bool, true),
        ("repro", Schema::nullable(Schema::Str), true),
        ("diag", Schema::nullable(Schema::Str), true),
        ("micros", Schema::Int, true),
    ]);
    Schema::object([
        ("schema", Schema::Str, true),
        ("seed", Schema::Str, true),
        ("count", Schema::Int, true),
        (
            "verdicts",
            Schema::object([
                ("ok", Schema::Int, true),
                ("degraded", Schema::Int, true),
                ("mismatch", Schema::Int, true),
                ("failed", Schema::Int, true),
            ]),
            true,
        ),
        ("schema_violations", Schema::Int, true),
        ("total_micros", Schema::Int, true),
        (
            "timing",
            {
                let agg = Schema::nullable(Schema::object([
                    ("min_micros", Schema::Int, true),
                    ("median_micros", Schema::Int, true),
                    ("max_micros", Schema::Int, true),
                ]));
                Schema::object([
                    ("ok", agg.clone(), true),
                    ("degraded", agg.clone(), true),
                    ("mismatch", agg.clone(), true),
                    ("failed", agg, true),
                ])
            },
            true,
        ),
        ("cases", Schema::array(case), true),
    ])
}

/// How one pipeline+oracle evaluation of a program went. Shared by the
/// main loop and the shrink predicate so a repro is kept only when it
/// reproduces the *same class* of failure.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Evaluation {
    Ok,
    Degraded(String),
    Mismatch(String),
    Failed(String),
}

impl Evaluation {
    fn verdict(&self) -> Verdict {
        match self {
            Evaluation::Ok => Verdict::Ok,
            Evaluation::Degraded(_) => Verdict::Degraded,
            Evaluation::Mismatch(_) => Verdict::Mismatch,
            Evaluation::Failed(_) => Verdict::Failed,
        }
    }

    fn detail(&self) -> String {
        match self {
            Evaluation::Ok => "equivalence confirmed by engine and oracle".to_string(),
            Evaluation::Degraded(s) | Evaluation::Mismatch(s) | Evaluation::Failed(s) => s.clone(),
        }
    }
}

/// Runs the full campaign. Progress lines go to stderr via `progress`
/// (pass a no-op to silence).
pub fn run(cfg: &FuzzConfig, mut progress: impl FnMut(&CaseResult)) -> FuzzSummary {
    let t0 = Instant::now();
    let mut cases = Vec::with_capacity(cfg.count);
    for index in 0..cfg.count {
        let case = run_case(cfg, index);
        progress(&case);
        cases.push(case);
    }
    FuzzSummary {
        seed: cfg.seed,
        cases,
        total_micros: t0.elapsed().as_micros(),
    }
}

/// One case: generate, evaluate, and on mismatch/failure shrink and
/// write a repro.
fn run_case(cfg: &FuzzConfig, index: usize) -> CaseResult {
    let t0 = Instant::now();
    let case_seed = mix(cfg.seed, index as u64);
    let _span = span!("fuzz.case", index = index, seed = case_seed);
    let g: Generated = generate(case_seed, &cfg.gen);
    let (eval, schema_ok) = evaluate(cfg, &g.program, &g.check_params);

    let mut repro = None;
    let mut diag = None;
    if matches!(eval, Evaluation::Mismatch(_) | Evaluation::Failed(_)) {
        let want = eval.verdict();
        let small = shrink(
            &g.program,
            |p| evaluate(cfg, p, &g.check_params).0.verdict() == want,
            cfg.shrink_evals(),
        );
        let (r, d) = write_repro(cfg, index, case_seed, &small, &g.check_params);
        repro = r;
        diag = d;
    }

    CaseResult {
        index,
        seed: case_seed,
        program: g.program.name().to_string(),
        flavor: g.flavor,
        verdict: eval.verdict(),
        detail: eval.detail(),
        schema_ok,
        repro,
        diag,
        micros: t0.elapsed().as_micros(),
    }
}

/// Pipeline + schema check + independent differential oracle for one
/// program. Returns the evaluation and whether the report (if any)
/// matched the schema.
fn evaluate(cfg: &FuzzConfig, program: &Program, check_params: &[i64]) -> (Evaluation, bool) {
    let pipeline = Pipeline::new(program.clone())
        .workers(cfg.workers)
        .check_params(check_params.to_vec())
        .budget(cfg.budget);
    // Stage panics are isolated inside the engine; this outer guard only
    // catches harness-level bugs, which classify as failures too.
    let report = match catch_unwind(AssertUnwindSafe(|| pipeline.run())) {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => return (Evaluation::Failed(format!("engine error: {e}")), true),
        Err(payload) => {
            return (
                Evaluation::Failed(format!("panic: {}", panic_message(&payload))),
                true,
            )
        }
    };
    let schema_ok = aov_support::schema::validate(&report.to_json(), &report_schema()).is_ok();
    let eval = classify(program, check_params, &report);
    if !schema_ok {
        return (
            Evaluation::Failed("report violates the report schema".to_string()),
            false,
        );
    }
    (eval, schema_ok)
}

/// Maps a completed report to an evaluation, applying the independent
/// oracle to healthy runs.
fn classify(program: &Program, check_params: &[i64], report: &Report) -> Evaluation {
    if report.health() == Health::Failed {
        let stage = report
            .stages
            .iter()
            .find(|s| s.outcome.class() == "failed")
            .map_or("?", |s| s.name);
        return Evaluation::Failed(format!("stage {stage} failed hard"));
    }
    if report.equivalent == Some(false) {
        return Evaluation::Mismatch("engine equivalence stage refuted the transform".to_string());
    }
    if report.health() == Health::Degraded {
        let why: Vec<String> = report
            .stages
            .iter()
            .filter(|s| s.outcome.class() != "ok")
            .map(|s| format!("{} {}", s.name, s.outcome.class()))
            .collect();
        return Evaluation::Degraded(why.join(", "));
    }
    oracle(program, check_params, report)
}

/// The independent differential oracle: rebuild the storage transforms
/// from the report's published AOV vectors, re-derive a legal schedule
/// for them, and replay both executions through the interpreter.
fn oracle(program: &Program, check_params: &[i64], report: &Report) -> Evaluation {
    let Some(aov) = &report.aov else {
        // A healthy run without vectors has nothing to refute.
        return Evaluation::Ok;
    };
    let vectors = aov.vectors().to_vec();
    let p = program.clone();
    let params = check_params.to_vec();
    let out = catch_unwind(AssertUnwindSafe(move || -> Result<bool, String> {
        let transforms = p
            .arrays()
            .iter()
            .enumerate()
            .zip(&vectors)
            .map(|((aidx, _), v)| StorageTransform::new(&p, aov_ir::ArrayId(aidx), v))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("reported AOV is not transformable: {e}"))?;
        let sched = problems::best_schedule_for_ov(&p, &vectors)
            .map_err(|e| format!("no schedule for the reported AOV: {e}"))?;
        Ok(semantics_preserved(&p, &params, &sched, &transforms))
    }));
    match out {
        Ok(Ok(true)) => Evaluation::Ok,
        Ok(Ok(false)) => Evaluation::Mismatch(
            "oracle: transformed execution differs from reference values".to_string(),
        ),
        Ok(Err(e)) => Evaluation::Mismatch(format!("oracle: {e}")),
        Err(payload) => Evaluation::Failed(format!("oracle panic: {}", panic_message(&payload))),
    }
}

/// Writes the minimal `.aov` repro and re-runs the shrunk case with a
/// diag dir so the bundle lands next to it. Both writes are
/// best-effort: a failing disk must not mask the fuzzing verdict.
fn write_repro(
    cfg: &FuzzConfig,
    index: usize,
    case_seed: u64,
    small: &Program,
    check_params: &[i64],
) -> (Option<PathBuf>, Option<String>) {
    let Ok(source) = aov_lang::to_source(small) else {
        return (None, None);
    };
    if std::fs::create_dir_all(&cfg.repro_dir).is_err() {
        return (None, None);
    }
    let path = cfg
        .repro_dir
        .join(format!("case_{index:04}_{case_seed:016x}.aov"));
    if std::fs::write(&path, &source).is_err() {
        return (None, None);
    }
    // A bundle for the shrunk case: stage ladder, error chain, budget
    // state and the flight-recorder tail (see `aov inspect`). The diag
    // hook fires for any non-Ok health and for refuted equivalence.
    let diag = Pipeline::new(small.clone())
        .workers(cfg.workers)
        .check_params(check_params.to_vec())
        .budget(cfg.budget)
        .diag_dir(&cfg.repro_dir)
        .run()
        .ok()
        .and_then(|r| r.diag_path);
    (Some(path), diag)
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(cfg: &FuzzConfig) -> FuzzSummary {
        run(cfg, |_| {})
    }

    /// A small campaign completes with schema-valid reports and no
    /// mismatches; unschedulable seeds surface as degraded, not failed.
    #[test]
    fn quick_campaign_is_clean() {
        let cfg = FuzzConfig::quick(7, 12);
        let summary = quiet(&cfg);
        assert_eq!(summary.cases.len(), 12);
        assert_eq!(summary.schema_violations(), 0);
        assert_eq!(summary.count(Verdict::Mismatch), 0, "{:#?}", summary.cases);
        assert_eq!(summary.count(Verdict::Failed), 0, "{:#?}", summary.cases);
        assert_eq!(summary.exit_code(), 0);
    }

    /// Per-verdict wall-time aggregates: sorted min/median/max over
    /// exactly the cases carrying the verdict, `None` for absent ones.
    #[test]
    fn timing_aggregates_per_verdict() {
        let case = |index, verdict, micros| CaseResult {
            index,
            seed: index as u64,
            program: format!("gen_{index}"),
            flavor: Flavor::General,
            verdict,
            detail: String::new(),
            schema_ok: true,
            repro: None,
            diag: None,
            micros,
        };
        let summary = FuzzSummary {
            seed: 1,
            cases: vec![
                case(0, Verdict::Ok, 500),
                case(1, Verdict::Degraded, 9000),
                case(2, Verdict::Ok, 100),
                case(3, Verdict::Ok, 300),
                case(4, Verdict::Ok, 200),
            ],
            total_micros: 10_100,
        };
        // Even count: the median is the lower middle element.
        assert_eq!(summary.timing(Verdict::Ok), Some((100, 200, 500)));
        assert_eq!(summary.timing(Verdict::Degraded), Some((9000, 9000, 9000)));
        assert_eq!(summary.timing(Verdict::Mismatch), None);
        let json = summary.to_json();
        let timing = json.get("timing").expect("timing object");
        assert_eq!(
            timing.get("ok").and_then(|t| t.get("median_micros")),
            Some(&Json::Int(200))
        );
        assert_eq!(timing.get("mismatch"), Some(&Json::Null));
    }

    /// Summaries match their own schema.
    #[test]
    fn summary_matches_schema() {
        let summary = quiet(&FuzzConfig::quick(3, 4));
        aov_support::schema::validate(&summary.to_json(), &summary_schema())
            .expect("summary schema");
    }

    /// The campaign is a pure function of (seed, count, config):
    /// worker count changes nothing observable.
    #[test]
    fn campaign_is_deterministic_across_workers() {
        let print = |workers: usize| {
            let mut cfg = FuzzConfig::quick(11, 6);
            cfg.workers = workers;
            quiet(&cfg)
                .cases
                .iter()
                .map(|c| (c.seed, c.verdict, c.detail.clone()))
                .collect::<Vec<_>>()
        };
        let base = print(1);
        for workers in 2..=4 {
            assert_eq!(print(workers), base, "workers {workers}");
        }
    }

    /// `fuzz.case` spans are emitted per case.
    #[test]
    fn emits_case_spans() {
        aov_trace::set_enabled(true);
        aov_trace::clear();
        let _ = quiet(&FuzzConfig::quick(5, 2));
        let names: Vec<String> = aov_trace::drain().into_iter().map(|r| r.name).collect();
        aov_trace::set_enabled(false);
        assert_eq!(
            names.iter().filter(|n| n.as_str() == "fuzz.case").count(),
            2,
            "{names:?}"
        );
    }

    /// A forced mismatch (via a broken oracle summary) is classified,
    /// shrunk and written out. Exercised indirectly: degraded verdicts
    /// never write repros, mismatch classification is covered by the
    /// unit classify() path below.
    #[test]
    fn classify_flags_refuted_equivalence() {
        let g = generate(1, &GenConfig::quick());
        let report = Pipeline::new(g.program.clone())
            .check_params(g.check_params.clone())
            .run()
            .expect("pipeline runs");
        let mut refuted = report;
        refuted.equivalent = Some(false);
        let eval = classify(&g.program, &g.check_params, &refuted);
        assert_eq!(eval.verdict(), Verdict::Mismatch);
    }
}
