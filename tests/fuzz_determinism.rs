//! Determinism contracts behind `aov fuzz`: the generator is a pure
//! function of `(seed, config)`, and a generated program's pipeline
//! outcome is a pure function of the program — independent of the
//! worker count. Together these make a fuzz campaign reproducible from
//! its seed alone, which is what the repro files rely on.

use aov::engine::{Pipeline, Report};
use aov::gen::{generate, GenConfig};
use aov::lang::parse;

/// Everything about a run that must be reproducible: per stage its
/// name, outcome class and reason, plus the printed occupancy vectors
/// and the equivalence verdict. Timings are deliberately excluded.
fn fingerprint(r: &Report) -> String {
    let mut out = String::new();
    for s in &r.stages {
        out.push_str(&format!(
            "{}:{}:{}\n",
            s.name,
            s.outcome.class(),
            s.outcome.reason().unwrap_or("")
        ));
    }
    out.push_str(&format!("aov={:?}\n", r.aov));
    out.push_str(&format!("equivalent={:?}\n", r.equivalent));
    out
}

#[test]
fn generator_is_deterministic_per_seed() {
    let cfg = GenConfig::default();
    for seed in [1u64, 42, 0xdead_beef] {
        let a = generate(seed, &cfg);
        let b = generate(seed, &cfg);
        assert_eq!(a.source, b.source, "seed {seed}: source must be stable");
        assert_eq!(a.check_params, b.check_params, "seed {seed}");
        // The printed source parses back to the generated program.
        let reparsed = parse(&a.source).expect("generated source parses");
        assert!(
            aov::lang::structural_eq(&a.program, &reparsed),
            "seed {seed}: printed source must round-trip"
        );
    }
}

#[test]
fn pipeline_fingerprint_is_worker_independent() {
    // A quick-profile seed keeps the solve cheap; the work-budget trip
    // points (if any) are deterministic, so every worker count must
    // produce the same stage story.
    let generated = generate(7, &GenConfig::quick());
    let mut prints = Vec::new();
    for workers in 1..=4 {
        let report = Pipeline::new(generated.program.clone())
            .workers(workers)
            .check_params(generated.check_params.clone())
            .run()
            .expect("pipeline completes");
        prints.push(fingerprint(&report));
    }
    for w in 1..prints.len() {
        assert_eq!(
            prints[0],
            prints[w],
            "workers=1 vs workers={}: fingerprints diverge",
            w + 1
        );
    }
}
