//! The parser path is pipeline-equivalent to the hand-built path.
//!
//! For every corpus program, running the *parsed* `examples/NAME.aov`
//! file through the pipeline must produce a JSON report byte-identical
//! to the hand-built constructor's — once run-local noise (wall-clock
//! micros and allocator columns) is normalized away. Everything the
//! solvers decide — vectors, objectives, schedules, stage outcomes,
//! counters, code, equivalence — must match exactly, or the frontend
//! changed program semantics somewhere.

use aov::engine::Pipeline;
use aov::lang::{corpus, parse};
use aov::support::{Json, ToJson};

/// Replaces timing- and allocator-dependent values so two reports of
/// the same computation compare byte-equal: `micros`/`total_micros`
/// become 0, `alloc` objects are dropped (their `peak` column sees
/// process-wide allocator state, which other tests in the same process
/// perturb), and `*_bits_max` counters are removed (they are watermark
/// counters against process-wide maxima — only the first run of two
/// identical computations records them).
fn normalize(j: &Json) -> Json {
    match j {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(k, v)| match k.as_str() {
                    "micros" | "total_micros" => (k.clone(), Json::Int(0)),
                    "alloc" => (k.clone(), Json::Null),
                    "counters" => (k.clone(), drop_watermarks(v)),
                    _ => (k.clone(), normalize(v)),
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(normalize).collect()),
        other => other.clone(),
    }
}

/// Filters watermark (`*_bits_max`) entries out of a counters array.
fn drop_watermarks(counters: &Json) -> Json {
    let Json::Arr(items) = counters else {
        return normalize(counters);
    };
    Json::Arr(
        items
            .iter()
            .filter(|item| match item {
                Json::Obj(fields) => !fields.iter().any(|(k, v)| {
                    k == "name" && matches!(v, Json::Str(s) if s.ends_with("_bits_max"))
                }),
                _ => true,
            })
            .map(normalize)
            .collect(),
    )
}

/// Runs one program through the pipeline and returns its normalized
/// report text. `budget_pivots` bounds solver work (deterministically)
/// for the expensive corpus entries.
fn report_text(program: aov::ir::Program, budget_pivots: Option<u64>) -> String {
    let mut pipeline = Pipeline::new(program);
    if let Some(n) = budget_pivots {
        pipeline = pipeline.budget_pivots(n);
    }
    let report = pipeline.run().expect("pipeline completes");
    normalize(&report.to_json()).to_pretty()
}

/// Per-corpus-program solver budget: `example3` costs over a minute at
/// full depth (see BENCH_2.json), so its parity check runs under a
/// pivot budget that completes the schedule and Problem 1 stages but
/// trips the AOV Farkas stage (~20 s) — the trip point is
/// deterministic, so both paths still produce byte-identical
/// (degraded) reports, which is all parser parity needs.
fn budget_for(name: &str) -> Option<u64> {
    (name == "example3").then_some(1_000)
}

#[test]
fn parsed_corpus_reports_match_hand_built_reports() {
    for name in corpus::names() {
        let parsed = parse(corpus::source(name).expect("corpus source"))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let hand = corpus::hand_built(name).expect("hand-built program");
        let budget = budget_for(name);
        let from_parser = report_text(parsed, budget);
        let from_hand = report_text(hand, budget);
        assert_eq!(
            from_parser, from_hand,
            "{name}: parser-path report differs from hand-built report"
        );
    }
}
