//! Randomized end-to-end cross-validation: generate random uniform
//! stencil programs, solve the AOV problem with both independent engines
//! (Farkas LP and exact candidate enumeration), verify agreement, and
//! confirm the result dynamically with the interpreter.

use aov::core::{check::Checker, problems, transform::StorageTransform};
use aov::interp::validate::semantics_preserved;
use aov::ir::{Expr, Program, ProgramBuilder};
use aov::linalg::AffineExpr;
use aov::schedule::{legal, scheduler, Schedule};
use aov_support::{props, Rng};

/// 1–3 distinct read offsets in `[-2, 2]`, sorted (mirrors the original
/// ordered-set generator).
fn random_offsets(g: &mut Rng) -> Vec<i64> {
    let len = g.usize_in(1, 3);
    let mut out: Vec<i64> = Vec::new();
    while out.len() < len {
        let d = g.i64_in(-2, 2);
        if !out.contains(&d) {
            out.push(d);
        }
    }
    out.sort_unstable();
    out
}

/// A random 2-D stencil `A[i][j] = f(A[i-d1][j-1], …)` with 1–3 distinct
/// reads, all carried by the `j` loop (so a schedule always exists).
fn stencil_program(offsets: &[i64]) -> Program {
    let mut b = ProgramBuilder::new("random_stencil");
    let n = b.param_min("n", 1);
    let m = b.param_min("m", 1);
    let a = b.array("A", 2);
    let mut s = b.statement("S", &["i", "j"]);
    s.bound(0, s.constant(1), s.param(n));
    s.bound(1, s.constant(1), s.param(m));
    s.writes(a);
    let mut reads = Vec::new();
    for &di in offsets {
        let idx = vec![&s.iter(0) - &s.constant(di), &s.iter(1) - &s.constant(1)];
        reads.push(Expr::Read(s.read(a, idx)));
    }
    s.body(Expr::call("f", reads));
    b.add_statement(s);
    b.build().expect("random stencil is well-formed")
}

props! {
    #![cases = 12, seed = 0x57E2_C115]

    fn solvers_agree_and_semantics_hold(g) {
        let offsets = random_offsets(g);
        let p = stencil_program(&offsets);

        // Both engines find vectors with the same (optimal) objective.
        let farkas = problems::aov(&p).expect("AOV exists for j-carried stencils");
        let search = problems::aov_search(&p, 8).expect("search must find it too");
        assert_eq!(
            farkas.objective(),
            search.objective(),
            "objective mismatch for offsets {:?}: farkas {} vs search {}",
            &offsets,
            &farkas,
            &search
        );

        // Both answers pass the exact checker.
        let mut checker = Checker::new(&p);
        let a = p.array_by_name("A").unwrap();
        for r in [&farkas, &search] {
            let v = r.vector_for("A").unwrap();
            assert!(
                checker.valid_for_all_schedules(a, v.components()).unwrap(),
                "checker rejects {} for offsets {:?}",
                v,
                &offsets
            );
        }

        // Dynamic confirmation under the scheduler's pick and a skewed
        // legal schedule.
        let v = farkas.vector_for("A").unwrap();
        let t = StorageTransform::new(&p, a, v).expect("transformable");
        let sched = scheduler::find_schedule(&p).expect("schedulable");
        assert!(semantics_preserved(&p, &[7, 6], &sched, std::slice::from_ref(&t)));
        // A steep skew is legal for any j-carried stencil with |di| <= 2:
        // Θ = i + 4j satisfies 4 - di·1 >= 1.
        let skew = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[1, 4, 0, 0], 0)]);
        assert!(legal::is_legal(&p, &skew));
        assert!(semantics_preserved(&p, &[7, 6], &skew, std::slice::from_ref(&t)));
    }

    /// Schedule-specific vectors (Problem 1) are never longer than AOVs
    /// and always validate dynamically under their schedule.
    fn problem1_consistent_on_random_stencils(g) {
        let offsets = random_offsets(g);
        let p = stencil_program(&offsets);
        let row = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
        assert!(legal::is_legal(&p, &row));
        let specific = problems::ov_for_schedule(&p, &row).expect("solvable");
        let universal = problems::aov(&p).expect("solvable");
        let sv = specific.vector_for("A").unwrap();
        let uv = universal.vector_for("A").unwrap();
        assert!(sv.manhattan() <= uv.manhattan());
        let a = p.array_by_name("A").unwrap();
        let t = StorageTransform::new(&p, a, sv).expect("transformable");
        assert!(semantics_preserved(&p, &[6, 6], &row, &[t]));
    }
}
