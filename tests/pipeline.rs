//! Cross-crate integration tests: the full pipeline per example program
//! (IR → dependences → schedules → occupancy vectors → transform →
//! dynamic validation), plus agreement between independent solvers.

use aov::core::{check::Checker, problems, transform::StorageTransform, uov, OccupancyVector};
use aov::interp::validate::semantics_preserved;
use aov::ir::examples;
use aov::linalg::AffineExpr;
use aov::schedule::{legal, scheduler, Schedule};

/// End-to-end on Example 1: every stage feeds the next and the final
/// artifact is dynamically equivalent.
#[test]
fn example1_end_to_end() {
    let p = examples::example1();
    p.validate().expect("well-formed");
    let deps = aov::ir::analysis::dependences(&p);
    assert_eq!(deps.len(), 3);

    let sched = scheduler::find_schedule(&p).expect("schedulable");
    assert!(legal::is_legal(&p, &sched));

    let aov = problems::aov(&p).expect("AOV exists");
    let v = aov.vector_for("A").unwrap();
    assert_eq!(v.components(), [1, 2]);

    let a = p.array_by_name("A").unwrap();
    let t = StorageTransform::new(&p, a, v).expect("transformable");
    assert_eq!(t.transformed_size(&[40, 30]), 2 * 40 + 30 - 2);
    assert!(semantics_preserved(&p, &[10, 9], &sched, &[t]));
}

/// The Farkas LP solver and the exact enumeration solver agree on every
/// program where both run.
#[test]
fn farkas_and_search_agree() {
    for p in [
        examples::example1(),
        examples::example2(),
        examples::example4(),
        examples::prefix_sum(),
        examples::wavefront2d(),
        examples::heat1d(),
    ] {
        let lp = problems::aov(&p).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        let search = problems::aov_search(&p, 6).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        assert_eq!(lp, search, "solver disagreement on {}", p.name());
    }
}

/// Problem 1 LP vs exact search across schedules on Example 1.
#[test]
fn problem1_methods_agree_across_schedules() {
    let p = examples::example1();
    for theta in [
        AffineExpr::from_i64(&[0, 1, 0, 0], 0),
        AffineExpr::from_i64(&[1, 2, 0, 0], 0),
        AffineExpr::from_i64(&[1, 3, 0, 0], 0),
        AffineExpr::from_i64(&[-1, 3, 0, 0], 0),
    ] {
        let s = Schedule::uniform_for(&p, &[theta]);
        let lp = problems::ov_for_schedule(&p, &s).expect("solvable");
        let search = problems::ov_for_schedule_search(&p, &s, 6).expect("solvable");
        assert_eq!(
            lp.vector_for("A").unwrap().manhattan(),
            search.vector_for("A").unwrap().manhattan(),
            "objective mismatch under {}",
            s.display(&p)
        );
    }
}

/// The AOV is always valid for the specific best schedule, and the
/// schedule-specific OV is never longer than the AOV.
#[test]
fn aov_dominates_schedule_specific_ov() {
    for p in [
        examples::example1(),
        examples::example2(),
        examples::wavefront2d(),
    ] {
        let sched = scheduler::find_schedule(&p).expect("schedulable");
        let specific = problems::ov_for_schedule(&p, &sched).expect("solvable");
        let universal = problems::aov(&p).expect("solvable");
        let checker = Checker::new(&p);
        for (aidx, a) in p.arrays().iter().enumerate() {
            let aid = aov::ir::ArrayId(aidx);
            let sv = specific.vector_for(a.name()).unwrap();
            let uv = universal.vector_for(a.name()).unwrap();
            assert!(
                sv.manhattan() <= uv.manhattan(),
                "{}: specific {sv} longer than AOV {uv}",
                p.name()
            );
            assert!(checker.valid_for_schedule(aid, uv.components(), &sched));
        }
    }
}

/// UOV ⊆ AOV ⊆ schedule-specific, as the paper's §7 hierarchy demands.
#[test]
fn uov_is_also_an_aov() {
    let p = examples::example1();
    let u = uov::shortest_uov(&p, aov::ir::ArrayId(0), 6).expect("stencil");
    assert_eq!(u.components(), [0, 3]);
    let mut checker = Checker::new(&p);
    assert!(checker
        .valid_for_all_schedules(aov::ir::ArrayId(0), u.components())
        .expect("checkable"));
}

/// Problem 2 round-trip: the schedule found for an OV validates both
/// statically and dynamically, and tightening storage eventually kills
/// schedulability.
#[test]
fn problem2_roundtrip_and_budget_cliff() {
    let p = examples::example1();
    let v = OccupancyVector::new(vec![0, 2]);
    let sched = problems::best_schedule_for_ov(&p, std::slice::from_ref(&v)).expect("schedulable");
    assert!(legal::is_legal(&p, &sched));
    let a = p.array_by_name("A").unwrap();
    let t = StorageTransform::new(&p, a, &v).expect("transformable");
    assert!(semantics_preserved(&p, &[8, 8], &sched, &[t]));
    // v = (0,0) admits no schedule.
    assert!(matches!(
        problems::best_schedule_for_ov(&p, &[OccupancyVector::new(vec![0, 0])]),
        Err(aov::core::CoreError::Unschedulable)
    ));
}

/// Example 4's cross-array pipeline end to end (non-uniform h).
#[test]
fn example4_end_to_end() {
    let p = examples::example4();
    let aovs = problems::aov(&p).expect("solvable");
    let ts: Vec<StorageTransform> = p
        .arrays()
        .iter()
        .enumerate()
        .map(|(k, a)| {
            StorageTransform::new(&p, aov::ir::ArrayId(k), aovs.vector_for(a.name()).unwrap())
                .expect("transformable")
        })
        .collect();
    let sched = problems::best_schedule_for_ov(&p, aovs.vectors()).expect("schedulable");
    assert!(semantics_preserved(&p, &[7], &sched, &ts));
}

/// The auxiliary programs survive the full pipeline too.
#[test]
fn auxiliary_programs_end_to_end() {
    for p in [
        examples::prefix_sum(),
        examples::wavefront2d(),
        examples::heat1d(),
    ] {
        let aovs = problems::aov(&p).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        let ts: Vec<StorageTransform> = p
            .arrays()
            .iter()
            .enumerate()
            .map(|(k, a)| {
                StorageTransform::new(&p, aov::ir::ArrayId(k), aovs.vector_for(a.name()).unwrap())
                    .expect("transformable")
            })
            .collect();
        let sched = problems::best_schedule_for_ov(&p, aovs.vectors()).expect("schedulable");
        let params: Vec<i64> = (0..p.num_params()).map(|_| 6).collect();
        assert!(
            semantics_preserved(&p, &params, &sched, &ts),
            "{} transformed run diverged",
            p.name()
        );
    }
}

/// Dynamically confirm that vectors REJECTED by the static analysis
/// really do break semantics for some legal schedule (no false alarms in
/// the other direction for these witnesses).
#[test]
fn rejected_vectors_break_dynamically() {
    let p = examples::example1();
    let a = p.array_by_name("A").unwrap();
    // (0,1) is not an AOV; witness schedule Θ = i + 2j breaks it.
    let t = StorageTransform::new(&p, a, &OccupancyVector::new(vec![0, 1])).unwrap();
    let witness = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[1, 2, 0, 0], 0)]);
    assert!(legal::is_legal(&p, &witness));
    assert!(!semantics_preserved(&p, &[8, 7], &witness, &[t]));
}
