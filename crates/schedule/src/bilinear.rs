//! Forms linear in a set of unknowns with coefficients affine in a
//! domain space.
//!
//! Both the schedule constraints (Eq. 2, linear in the scheduling
//! parameters with coefficients affine in `(i, N)`) and the storage
//! constraints (Eq. 3, additionally involving the occupancy vector) are
//! instances of this shape. The linearization of §4.4 turns such a form,
//! quantified over a polyhedral domain, into finitely many affine
//! constraints over the unknowns.

use aov_linalg::{AffineExpr, QVector};
use aov_numeric::Rational;

/// A form `F(u, x) = Σ_e coeffs[e](x) · u_e + constant(x)` — linear in
/// the unknowns `u`, affine in the domain point `x`.
///
/// # Examples
///
/// ```
/// use aov_schedule::BilinearForm;
/// use aov_linalg::{AffineExpr, QVector};
///
/// // F(u, x) = (x0 + 1)·u0 − 2, over 1 unknown and 1 domain dim.
/// let f = BilinearForm::new(
///     vec![AffineExpr::from_i64(&[1], 1)],
///     AffineExpr::from_i64(&[0], -2),
/// );
/// let at3 = f.at_point(&QVector::from_i64(&[3]));
/// assert_eq!(at3, AffineExpr::from_i64(&[4], -2)); // 4·u0 − 2
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BilinearForm {
    coeffs: Vec<AffineExpr>,
    constant: AffineExpr,
}

impl BilinearForm {
    /// Builds from per-unknown coefficient forms and a constant form
    /// (all over the same domain space).
    ///
    /// # Panics
    ///
    /// Panics if the forms disagree on the domain dimension.
    pub fn new(coeffs: Vec<AffineExpr>, constant: AffineExpr) -> Self {
        for c in &coeffs {
            assert_eq!(c.dim(), constant.dim(), "mixed domain dimensions");
        }
        BilinearForm { coeffs, constant }
    }

    /// The zero form with `n_unknowns` unknowns over `domain_dim` dims.
    pub fn zero(n_unknowns: usize, domain_dim: usize) -> Self {
        BilinearForm {
            coeffs: vec![AffineExpr::zero(domain_dim); n_unknowns],
            constant: AffineExpr::zero(domain_dim),
        }
    }

    /// Number of unknowns.
    pub fn num_unknowns(&self) -> usize {
        self.coeffs.len()
    }

    /// Dimension of the domain space.
    pub fn domain_dim(&self) -> usize {
        self.constant.dim()
    }

    /// Coefficient form of unknown `e`.
    pub fn coeff(&self, e: usize) -> &AffineExpr {
        &self.coeffs[e]
    }

    /// Constant form.
    pub fn constant(&self) -> &AffineExpr {
        &self.constant
    }

    /// Adds `w(x) · u_e` to the form.
    pub fn add_to_coeff(&mut self, e: usize, w: &AffineExpr) {
        self.coeffs[e] = &self.coeffs[e] + w;
    }

    /// Adds `w(x)` to the constant part.
    pub fn add_to_constant(&mut self, w: &AffineExpr) {
        self.constant = &self.constant + w;
    }

    /// The negated form `−F` (used to flip between the causality
    /// orientation `Θ_R − Θ_T` and the storage orientation `Θ_T − Θ_R`).
    pub fn negated(&self) -> BilinearForm {
        BilinearForm {
            coeffs: self.coeffs.iter().map(|c| -c).collect(),
            constant: -&self.constant,
        }
    }

    /// Substitutes the domain variables: `x_k := subs[k](y)`, producing a
    /// form over the new domain space `y`.
    ///
    /// # Panics
    ///
    /// Panics if `subs.len() != self.domain_dim()`.
    pub fn substitute_domain(&self, subs: &[AffineExpr]) -> BilinearForm {
        BilinearForm {
            coeffs: self.coeffs.iter().map(|c| c.substitute(subs)).collect(),
            constant: self.constant.substitute(subs),
        }
    }

    /// Instantiates the domain point, yielding an affine form over the
    /// unknowns alone.
    pub fn at_point(&self, x: &QVector) -> AffineExpr {
        let coeffs: QVector = self.coeffs.iter().map(|c| c.eval(x)).collect();
        AffineExpr::from_parts(coeffs, self.constant.eval(x))
    }

    /// The linear part along a domain direction `r`: the affine form (over
    /// the unknowns) `F(u, x + t·r) − F(u, x)` divided by `t`. Used for
    /// the ray conditions of Theorem 1 on unbounded parameter domains.
    pub fn linear_part_along(&self, r: &QVector) -> AffineExpr {
        let coeffs: QVector = self.coeffs.iter().map(|c| c.coeffs().dot(r)).collect();
        AffineExpr::from_parts(coeffs, self.constant.coeffs().dot(r))
    }

    /// Fixes the unknowns to concrete values, yielding an affine form over
    /// the domain space.
    pub fn fix_unknowns(&self, u: &QVector) -> AffineExpr {
        assert_eq!(u.dim(), self.coeffs.len(), "unknown count mismatch");
        let mut acc = self.constant.clone();
        for (c, uv) in self.coeffs.iter().zip(u.iter()) {
            if !uv.is_zero() {
                acc = &acc + &c.scale(uv);
            }
        }
        acc
    }

    /// Evaluates fully.
    pub fn eval(&self, u: &QVector, x: &QVector) -> Rational {
        self.at_point(x).eval(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BilinearForm {
        // F(u, (x, y)) = (x + y)·u0 + (2x − 1)·u1 + (y + 3)
        BilinearForm::new(
            vec![
                AffineExpr::from_i64(&[1, 1], 0),
                AffineExpr::from_i64(&[2, 0], -1),
            ],
            AffineExpr::from_i64(&[0, 1], 3),
        )
    }

    #[test]
    fn at_point_and_eval() {
        let f = sample();
        let at = f.at_point(&QVector::from_i64(&[1, 2]));
        assert_eq!(at, AffineExpr::from_i64(&[3, 1], 5));
        assert_eq!(
            f.eval(&QVector::from_i64(&[10, 100]), &QVector::from_i64(&[1, 2])),
            Rational::from(3 * 10 + 100 + 5)
        );
    }

    #[test]
    fn substitute_domain_composes() {
        let f = sample();
        // x := t, y := 2t + 1 (new domain is 1-d).
        let g =
            f.substitute_domain(&[AffineExpr::from_i64(&[1], 0), AffineExpr::from_i64(&[2], 1)]);
        assert_eq!(g.domain_dim(), 1);
        // At t = 2 ⇒ (x, y) = (2, 5).
        assert_eq!(
            g.at_point(&QVector::from_i64(&[2])),
            f.at_point(&QVector::from_i64(&[2, 5]))
        );
    }

    #[test]
    fn linear_part_drops_constants() {
        let f = sample();
        let lp = f.linear_part_along(&QVector::from_i64(&[1, 0]));
        // Coefficient of u0 grows by 1 per unit x, u1 by 2, constant by 0.
        assert_eq!(lp, AffineExpr::from_i64(&[1, 2], 0));
        let lp_y = f.linear_part_along(&QVector::from_i64(&[0, 1]));
        assert_eq!(lp_y, AffineExpr::from_i64(&[1, 0], 1));
    }

    #[test]
    fn fix_unknowns_gives_domain_form() {
        let f = sample();
        let g = f.fix_unknowns(&QVector::from_i64(&[1, 1]));
        // (x+y) + (2x−1) + (y+3) = 3x + 2y + 2.
        assert_eq!(g, AffineExpr::from_i64(&[3, 2], 2));
    }
}
