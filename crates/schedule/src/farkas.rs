//! The affine form of Farkas' lemma (Theorem 2 of the paper).
//!
//! An affine form `Φ(e)` is nonnegative everywhere on a nonempty
//! polyhedron `D = {e | g_j·e + b_j >= 0}` iff it is a nonnegative affine
//! combination `Φ(e) ≡ λ_0 + Σ_j λ_j (g_j·e + b_j)` with all `λ >= 0`.
//! Equating coefficients of each `e`-coordinate (and the constants)
//! produces linear equations between the `λ`s and whatever unknowns
//! `Φ`'s coefficients carry — for the AOV problem those unknowns are the
//! occupancy-vector components, and the equations stay linear (§4.5.3).

use crate::BilinearForm;
use aov_linalg::AffineExpr;
use aov_numeric::Rational;

/// One equation of a Farkas system: `lhs(u) − Σ_j multipliers[j]·λ_j = 0`,
/// where `u` are the outer unknowns (e.g. the occupancy vectors) and `λ`
/// are the Farkas multipliers (`λ_0` is always the last entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarkasEquation {
    /// Affine form over the outer unknowns.
    pub lhs: AffineExpr,
    /// Coefficient of each multiplier `λ_1 … λ_p, λ_0`.
    pub multipliers: Vec<Rational>,
}

/// A linear system expressing `target(u, e) >= 0 ∀ e ∈ D` via Farkas
/// multipliers, where `D = {e | rows[j](e) >= 0}`.
#[derive(Debug, Clone)]
pub struct FarkasSystem {
    /// One equation per `e`-coordinate plus one for the constants.
    pub equations: Vec<FarkasEquation>,
    /// Number of multipliers (`rows.len() + 1`, the `+1` being `λ_0`).
    pub num_multipliers: usize,
}

/// Builds the Farkas system for `target(u, e) >= 0` over
/// `D = {e | rows[j](e) >= 0}`.
///
/// `target` is a [`BilinearForm`] whose *domain* is the `e`-space and
/// whose unknowns are `u`; `rows` are affine forms over `e`.
///
/// The identity `target(u, e) ≡ λ_0 + Σ_j λ_j rows[j](e)` is equated
/// coefficient-wise: for each `e`-coordinate `k`,
/// `coeff_k(u) = Σ_j λ_j · rows[j].coeff(k)`, and for the constants,
/// `const(u) = λ_0 + Σ_j λ_j · rows[j].const`.
///
/// # Panics
///
/// Panics if a row's dimension differs from `target.domain_dim()`.
pub fn farkas_system(target: &BilinearForm, rows: &[AffineExpr]) -> FarkasSystem {
    let _span = aov_trace::span!("farkas.system", rows = rows.len());
    let e_dim = target.domain_dim();
    for r in rows {
        assert_eq!(r.dim(), e_dim, "Farkas row dimension mismatch");
    }
    let n_mult = rows.len() + 1;
    let mut equations = Vec::with_capacity(e_dim + 1);
    // Per e-coordinate: lhs = coefficient of e_k in target, as an affine
    // form over u. target = Σ_u coeffs[u](e)·u + constant(e); the
    // coefficient of e_k is an affine form over u: Σ_u coeffs[u].coeff(k)·u
    // + constant.coeff(k).
    for k in 0..e_dim {
        let u_coeffs: aov_linalg::QVector = (0..target.num_unknowns())
            .map(|u| target.coeff(u).coeff(k).clone())
            .collect();
        let lhs = AffineExpr::from_parts(u_coeffs, target.constant().coeff(k).clone());
        let mut multipliers: Vec<Rational> = rows.iter().map(|r| r.coeff(k).clone()).collect();
        multipliers.push(Rational::zero()); // λ_0 has no e-part
        equations.push(FarkasEquation { lhs, multipliers });
    }
    // Constant terms.
    let u_coeffs: aov_linalg::QVector = (0..target.num_unknowns())
        .map(|u| target.coeff(u).constant_term().clone())
        .collect();
    let lhs = AffineExpr::from_parts(u_coeffs, target.constant().constant_term().clone());
    let mut multipliers: Vec<Rational> = rows.iter().map(|r| r.constant_term().clone()).collect();
    multipliers.push(Rational::one()); // λ_0
    equations.push(FarkasEquation { lhs, multipliers });
    FarkasSystem {
        equations,
        num_multipliers: n_mult,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_linalg::QVector;
    use aov_lp::{Cmp, LpOutcome, Model};

    /// Check the Farkas reduction on the paper's §5.1.4 system:
    /// storage rows over (a, b) must be nonneg combinations of the
    /// schedule rows 2a+b−1, b−1, −a+b−1.
    #[test]
    fn example1_storage_row_is_representable() {
        // Target: a·v_i + b·v_j − 2a − b >= 0 over R, unknowns (v_i, v_j),
        // e-space (a, b).
        let target = BilinearForm::new(
            vec![
                AffineExpr::from_i64(&[1, 0], 0), // coeff of v_i = a
                AffineExpr::from_i64(&[0, 1], 0), // coeff of v_j = b
            ],
            AffineExpr::from_i64(&[-2, -1], 0), // −2a − b
        );
        let rows = vec![
            AffineExpr::from_i64(&[2, 1], -1),
            AffineExpr::from_i64(&[0, 1], -1),
            AffineExpr::from_i64(&[-1, 1], -1),
        ];
        let sys = farkas_system(&target, &rows);
        assert_eq!(sys.equations.len(), 3); // a, b, const
        assert_eq!(sys.num_multipliers, 4);

        // Build the LP over (v_i, v_j, λ1..λ3, λ0) and check that
        // v = (1, 2) is feasible while v = (0, 1) is not (the paper's
        // AOV vs a too-short vector).
        let check = |vi: i64, vj: i64| -> bool {
            let mut m = Model::new();
            let _v0 = m.add_var("v_i");
            let _v1 = m.add_var("v_j");
            let mut lambdas = Vec::new();
            for j in 0..sys.num_multipliers {
                lambdas.push(m.add_nonneg_var(format!("l{j}")));
            }
            let total = 2 + sys.num_multipliers;
            for eq in &sys.equations {
                // lhs(v) − Σ λ_j mult_j = 0
                let mut e = eq.lhs.embed(total, &[0, 1]);
                for (j, c) in eq.multipliers.iter().enumerate() {
                    e = &e - &AffineExpr::var(total, 2 + j).scale(c);
                }
                m.constrain(e, Cmp::Eq);
            }
            // Fix v.
            m.constrain(
                &AffineExpr::var(total, 0) - &AffineExpr::constant(total, vi.into()),
                Cmp::Eq,
            );
            m.constrain(
                &AffineExpr::var(total, 1) - &AffineExpr::constant(total, vj.into()),
                Cmp::Eq,
            );
            matches!(m.solve_lp(), LpOutcome::Optimal(_))
        };
        assert!(check(1, 2), "paper AOV (1,2) must be representable");
        assert!(check(0, 3), "UOV (0,3) is also an AOV");
        assert!(!check(0, 1), "(0,1) is not valid for all schedules");
        assert!(!check(0, 0), "(0,0) reuses immediately, never valid");
    }

    /// Coefficient matching against direct evaluation: if the Farkas
    /// equations hold for some λ >= 0, then target >= 0 on sample points
    /// of D.
    #[test]
    fn farkas_certificate_implies_nonnegativity() {
        // D = {(x, y) | x >= 0, y >= 0, 4 - x - y >= 0} (a triangle).
        let rows = vec![
            AffineExpr::from_i64(&[1, 0], 0),
            AffineExpr::from_i64(&[0, 1], 0),
            AffineExpr::from_i64(&[-1, -1], 4),
        ];
        // target(u, (x,y)) = u0·x + (4 − x − y): nonneg on D iff u0 >= …
        let target = BilinearForm::new(
            vec![AffineExpr::from_i64(&[1, 0], 0)],
            AffineExpr::from_i64(&[-1, -1], 4),
        );
        let sys = farkas_system(&target, &rows);
        // u0 = 1: target = x + 4 − x − y = 4 − y >= 0 on D ✓
        // representable: λ for row3 = 1 gives 4−x−y; need u0·x − x… :
        // target − (4−x−y) = u0 x − … let the LP decide.
        let feasible = |u0: i64| -> bool {
            let mut m = Model::new();
            m.add_var("u0");
            for j in 0..sys.num_multipliers {
                m.add_nonneg_var(format!("l{j}"));
            }
            let total = 1 + sys.num_multipliers;
            for eq in &sys.equations {
                let mut e = eq.lhs.embed(total, &[0]);
                for (j, c) in eq.multipliers.iter().enumerate() {
                    e = &e - &AffineExpr::var(total, 1 + j).scale(c);
                }
                m.constrain(e, Cmp::Eq);
            }
            m.constrain(
                &AffineExpr::var(total, 0) - &AffineExpr::constant(total, u0.into()),
                Cmp::Eq,
            );
            matches!(m.solve_lp(), LpOutcome::Optimal(_))
        };
        for u0 in -3i64..=3 {
            let farkas_ok = feasible(u0);
            // Brute-force truth on integer samples of D.
            let mut truth = true;
            for x in 0..=4i64 {
                for y in 0..=(4 - x) {
                    let val = target.eval(&QVector::from_i64(&[u0]), &QVector::from_i64(&[x, y]));
                    if val.is_negative() {
                        truth = false;
                    }
                }
            }
            assert_eq!(farkas_ok, truth, "u0 = {u0}");
        }
    }
}
