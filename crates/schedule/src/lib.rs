//! One-dimensional affine scheduling for the `aov` workspace.
//!
//! Implements the schedule half of Thies et al. (PLDI 2001):
//!
//! * [`ScheduleSpace`] — the coordinate space `ℰ` of all scheduling
//!   parameters `Θ_S(i, N) = a_S·i + b_S·N + c_S` (§4.1),
//! * [`Schedule`] — a concrete point of `ℰ`, i.e. one affine schedule
//!   per statement,
//! * [`BilinearForm`] and [`linearize::eliminate_to_linear`] — the
//!   vertex-based linearization of §4.4.2–4.4.3 (Theorem 1): eliminate
//!   the iteration vector at parameterized domain vertices, then the
//!   structural parameters at the vertices/rays of the parameter domain,
//! * [`legal::schedule_constraints`] / [`legal::legal_schedule_polyhedron`]
//!   — the causality constraints (Eq. 2 / Eq. 11) and the polyhedron `ℛ`
//!   of legal schedules,
//! * [`farkas`] — the affine form of Farkas' lemma (Theorem 2), used by
//!   the AOV solver in `aov-core`,
//! * [`scheduler::find_schedule`] — a Feautrier-style LP scheduler
//!   picking a shortest-coefficient legal schedule.
//!
//! # Examples
//!
//! ```
//! use aov_ir::examples::example1;
//! use aov_schedule::{legal, scheduler};
//!
//! let p = example1();
//! let sched = scheduler::find_schedule(&p).expect("example1 is schedulable");
//! assert!(legal::is_legal(&p, &sched));
//! ```

// Library code must surface failures as values (see `aov-fault`);
// `unwrap`/`expect` are reserved for tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod bilinear;
pub mod farkas;
pub mod legal;
pub mod linearize;
pub mod scheduler;
mod space;

pub use bilinear::BilinearForm;
pub use space::{Schedule, ScheduleSpace};
