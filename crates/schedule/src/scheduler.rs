//! A Feautrier-style one-dimensional LP scheduler.
//!
//! Searches the legal-schedule polyhedron ℛ for a "small" schedule:
//! integer coefficients minimizing (lexicographically, via weights) the
//! total magnitude of iteration coefficients, then parameter
//! coefficients, then constants. This favors maximally parallel
//! schedules like the paper's `Θ = j` for Example 1.

use crate::{legal, Schedule, ScheduleSpace};
use aov_fault::{AovError, Budget};
use aov_ir::Program;
use aov_linalg::AffineExpr;
use aov_lp::{Cmp, Model};
use aov_polyhedra::{Constraint, PolyhedraError};

/// Outcome of scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No one-dimensional affine schedule satisfies the dependences
    /// (a multi-dimensional schedule would be required; see Feautrier,
    /// part II).
    Infeasible,
    /// Polyhedral machinery failed.
    Polyhedra(PolyhedraError),
    /// A runtime fault (budget trip, cancellation, injected fault)
    /// interrupted the search before a verdict.
    Fault(AovError),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Infeasible => {
                write!(f, "no one-dimensional affine schedule exists")
            }
            ScheduleError::Polyhedra(e) => write!(f, "polyhedral failure: {e}"),
            ScheduleError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<PolyhedraError> for ScheduleError {
    fn from(e: PolyhedraError) -> Self {
        ScheduleError::Polyhedra(e)
    }
}

impl From<AovError> for ScheduleError {
    fn from(e: AovError) -> Self {
        ScheduleError::Fault(e)
    }
}

/// Finds a legal schedule with small integer coefficients.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] when ℛ is empty (no one-dimensional
/// affine schedule exists).
pub fn find_schedule(p: &Program) -> Result<Schedule, ScheduleError> {
    find_schedule_with(p, &[])
}

/// Finds a legal schedule additionally satisfying `extra` affine
/// constraints over the schedule space (used for Problem 2: a schedule
/// valid for given occupancy vectors).
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] when no schedule satisfies the combined
/// constraints.
pub fn find_schedule_with(p: &Program, extra: &[Constraint]) -> Result<Schedule, ScheduleError> {
    find_schedule_with_budgeted(p, extra, &Budget::unlimited())
}

/// [`find_schedule_with`] under a [`Budget`] checked at LP pivot / ILP
/// node granularity.
///
/// # Errors
///
/// [`ScheduleError::Fault`] when the budget trips or a fault is
/// injected; [`ScheduleError::Infeasible`] when no schedule satisfies
/// the combined constraints.
pub fn find_schedule_with_budgeted(
    p: &Program,
    extra: &[Constraint],
    budget: &Budget,
) -> Result<Schedule, ScheduleError> {
    let (space, rows) = legal::schedule_constraints(p)?;
    solve_budgeted(p, &space, rows, extra, budget)
}

/// Shared LP construction for schedule search (unlimited budget).
pub fn solve(
    p: &Program,
    space: &ScheduleSpace,
    rows: Vec<AffineExpr>,
    extra: &[Constraint],
) -> Result<Schedule, ScheduleError> {
    solve_budgeted(p, space, rows, extra, &Budget::unlimited())
}

/// Shared LP construction for schedule search, under `budget`.
///
/// # Errors
///
/// [`ScheduleError::Fault`] on budget trips/injected faults,
/// [`ScheduleError::Infeasible`] when the combined constraints have no
/// integer solution.
///
/// # Panics
///
/// Panics when an `extra` constraint's dimension disagrees with the
/// schedule space (caller invariant).
pub fn solve_budgeted(
    p: &Program,
    space: &ScheduleSpace,
    rows: Vec<AffineExpr>,
    extra: &[Constraint],
    budget: &Budget,
) -> Result<Schedule, ScheduleError> {
    aov_fault::chaos::tick("schedule.solve").map_err(ScheduleError::Fault)?;
    let mut m = Model::new();
    for name in space.vars().names() {
        let v = m.add_var(name.clone());
        m.set_integer(v);
    }
    for r in rows {
        m.constrain(r, Cmp::Ge);
    }
    for c in extra {
        assert_eq!(c.dim(), space.dim(), "extra constraint dimension");
        m.constrain(
            c.expr().clone(),
            if c.is_equality() { Cmp::Eq } else { Cmp::Ge },
        );
    }
    // Objective: weighted Manhattan norms — iteration coefficients
    // dominate, then parameter coefficients, then constants.
    let mut objective = AffineExpr::zero(space.dim());
    let mut abs_terms: Vec<(aov_lp::VarId, i64)> = Vec::new();
    for s in p.stmt_ids() {
        let st = p.statement(s);
        for k in 0..st.depth() {
            abs_terms.push((aov_lp::VarId::from_index(space.iter_coeff(s, k)), 100));
        }
        for j in 0..p.num_params() {
            abs_terms.push((aov_lp::VarId::from_index(space.param_coeff(s, j)), 10));
        }
        abs_terms.push((aov_lp::VarId::from_index(space.const_coeff(s)), 1));
    }
    let _ = &mut objective;
    let mut obj_terms: Vec<(usize, i64)> = Vec::new();
    for (var, weight) in abs_terms {
        let a = m.add_abs_bound(var, format!("abs_{}", var.index()));
        obj_terms.push((a.index(), weight));
    }
    let total = m.num_vars();
    let mut obj = AffineExpr::zero(total);
    for (idx, w) in obj_terms {
        obj = &obj + &AffineExpr::var(total, idx).scale(&w.into());
    }
    m.minimize(obj);
    match m.solve_ilp_budgeted(budget)? {
        aov_lp::LpOutcome::Optimal(sol) => {
            let point: aov_linalg::QVector = (0..space.dim())
                .map(|k| sol.values.as_slice()[k].clone())
                .collect();
            Ok(space.schedule_at(&point))
        }
        aov_lp::LpOutcome::Infeasible => Err(ScheduleError::Infeasible),
        aov_lp::LpOutcome::Unbounded => {
            unreachable!("objective is a nonnegative weighted norm")
        }
        // The node-limit backstop: no verdict, which for schedule
        // existence is indistinguishable from "none found".
        aov_lp::LpOutcome::LimitReached => Err(ScheduleError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples::{example1, example2, example3, example4, prefix_sum, wavefront2d};
    use aov_ir::StmtId;

    #[test]
    fn example1_scheduler_finds_row_schedule() {
        let p = example1();
        let s = find_schedule(&p).unwrap();
        assert!(legal::is_legal(&p, &s));
        // The minimal-coefficient legal schedule is Θ = j (+ const 0).
        let th = s.theta(StmtId(0));
        assert_eq!(th.coeff(0).to_i64(), Some(0));
        assert_eq!(th.coeff(1).to_i64(), Some(1));
    }

    #[test]
    fn example2_schedule_found_and_legal() {
        let p = example2();
        let s = find_schedule(&p).unwrap();
        assert!(legal::is_legal(&p, &s));
    }

    #[test]
    fn example3_schedule_found_and_legal() {
        let p = example3();
        let s = find_schedule(&p).unwrap();
        assert!(legal::is_legal(&p, &s));
    }

    #[test]
    fn example4_schedule_found_and_legal() {
        let p = example4();
        let s = find_schedule(&p).unwrap();
        assert!(legal::is_legal(&p, &s));
    }

    #[test]
    fn auxiliary_programs_schedulable() {
        for p in [prefix_sum(), wavefront2d()] {
            let s = find_schedule(&p).unwrap();
            assert!(legal::is_legal(&p, &s), "{}", p.name());
        }
    }

    #[test]
    fn extra_constraints_respected() {
        let p = example1();
        let space = ScheduleSpace::new(&p);
        // Force a_i = 1 via an extra equality.
        let dim = space.dim();
        let c = Constraint::eq0(
            &AffineExpr::var(dim, space.iter_coeff(StmtId(0), 0))
                - &AffineExpr::constant(dim, 1.into()),
        );
        let s = find_schedule_with(&p, &[c]).unwrap();
        assert!(legal::is_legal(&p, &s));
        assert_eq!(s.theta(StmtId(0)).coeff(0).to_i64(), Some(1));
    }

    #[test]
    fn contradictory_extras_infeasible() {
        let p = example1();
        let space = ScheduleSpace::new(&p);
        let dim = space.dim();
        // a_j = 0 contradicts b - 1 >= 0 (paper constraint b >= 1).
        let c = Constraint::eq0(AffineExpr::var(dim, space.iter_coeff(StmtId(0), 1)));
        assert_eq!(
            find_schedule_with(&p, &[c]).unwrap_err(),
            ScheduleError::Infeasible
        );
    }
}
