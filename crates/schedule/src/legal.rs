//! Causality (schedule) constraints and the legal-schedule polyhedron ℛ.

use crate::{linearize, BilinearForm, Schedule, ScheduleSpace};
use aov_ir::{analysis, Dependence, Program};
use aov_linalg::{AffineExpr, QVector};
use aov_polyhedra::{Constraint, PolyhedraError, Polyhedron};

/// The causality form of a dependence (Eq. 2 of the paper):
///
/// `F(Θ, (i, N)) = Θ_R(i, N) − Θ_T(h(i, N), N) − 1`
///
/// as a [`BilinearForm`] over the schedule space (unknowns) and the
/// target statement's space `(i, N)` (domain).
pub fn causality_form(p: &Program, space: &ScheduleSpace, dep: &Dependence) -> BilinearForm {
    // The storage variant differs only in the producer's iteration point
    // and the constant; share the skeleton.
    difference_form(p, space, dep, &dep.h, 1)
}

/// Builds `Θ_target(i, N) − Θ_source(src_iter(i, N), N) − slack` over the
/// target space. Shared by the causality constraints (src = h, slack = 1)
/// and `aov-core`'s storage constraints (src = h + v, slack varies).
pub fn difference_form(
    p: &Program,
    space: &ScheduleSpace,
    dep: &Dependence,
    src_iter: &[AffineExpr],
    slack: i64,
) -> BilinearForm {
    let r = p.statement(dep.target);
    let dim = r.depth() + p.num_params();
    let mut f = BilinearForm::zero(space.dim(), dim);
    // + Θ_R(i, N)
    for k in 0..r.depth() {
        f.add_to_coeff(space.iter_coeff(dep.target, k), &AffineExpr::var(dim, k));
    }
    for j in 0..p.num_params() {
        f.add_to_coeff(
            space.param_coeff(dep.target, j),
            &AffineExpr::var(dim, r.depth() + j),
        );
    }
    f.add_to_coeff(
        space.const_coeff(dep.target),
        &AffineExpr::constant(dim, 1.into()),
    );
    // − Θ_T(src_iter(i, N), N)
    let t = p.statement(dep.source);
    assert_eq!(src_iter.len(), t.depth(), "source iteration arity");
    for (k, hk) in src_iter.iter().enumerate() {
        assert_eq!(hk.dim(), dim, "source iteration over target space");
        f.add_to_coeff(space.iter_coeff(dep.source, k), &-hk);
    }
    for j in 0..p.num_params() {
        f.add_to_coeff(
            space.param_coeff(dep.source, j),
            &-&AffineExpr::var(dim, r.depth() + j),
        );
    }
    f.add_to_coeff(
        space.const_coeff(dep.source),
        &AffineExpr::constant(dim, (-1).into()),
    );
    // − slack
    f.add_to_constant(&AffineExpr::constant(dim, (-slack).into()));
    f
}

/// Linearized causality constraints (Eq. 11): affine forms over the
/// schedule space, each required `>= 0`.
///
/// # Errors
///
/// Propagates [`PolyhedraError`] from domain-vertex elimination.
pub fn schedule_constraints(
    p: &Program,
) -> Result<(ScheduleSpace, Vec<AffineExpr>), PolyhedraError> {
    let space = ScheduleSpace::new(p);
    let deps = analysis::dependences(p);
    let mut out: Vec<AffineExpr> = Vec::new();
    for dep in &deps {
        let form = causality_form(p, &space, dep);
        let depth = p.statement(dep.target).depth();
        let rows = linearize::eliminate_to_linear(&form, &dep.domain, depth, p.param_domain())?;
        for r in rows {
            if !out.contains(&r) {
                out.push(r);
            }
        }
    }
    Ok((space, out))
}

/// The polyhedron ℛ of legal one-dimensional affine schedules, in the
/// schedule space ℰ.
///
/// # Errors
///
/// Propagates [`PolyhedraError`] from domain-vertex elimination.
pub fn legal_schedule_polyhedron(
    p: &Program,
) -> Result<(ScheduleSpace, Polyhedron), PolyhedraError> {
    let (space, rows) = schedule_constraints(p)?;
    let poly =
        Polyhedron::from_constraints(space.dim(), rows.into_iter().map(Constraint::ge0).collect());
    Ok((space, poly))
}

/// Explains *why* no one-dimensional affine schedule exists: re-adds
/// each dependence's causality constraints in order and names the first
/// dependence whose constraints make ℛ empty.
///
/// Diagnostic-quality path only (it rebuilds the polyhedron per
/// dependence); callers invoke it after the scheduler has already
/// reported infeasibility. Never fails: polyhedral errors degrade to a
/// generic message.
pub fn unschedulable_diagnostic(p: &Program) -> String {
    let scan = || -> Result<String, PolyhedraError> {
        let space = ScheduleSpace::new(p);
        let deps = analysis::dependences(p);
        let mut cons: Vec<Constraint> = Vec::new();
        for (k, dep) in deps.iter().enumerate() {
            let form = causality_form(p, &space, dep);
            let depth = p.statement(dep.target).depth();
            let rows = linearize::eliminate_to_linear(&form, &dep.domain, depth, p.param_domain())?;
            cons.extend(rows.into_iter().map(Constraint::ge0));
            let poly = Polyhedron::from_constraints(space.dim(), cons.clone());
            if poly.is_empty() {
                let source = p.statement(dep.source).name().to_string();
                let target = p.statement(dep.target).name().to_string();
                return Ok(format!(
                    "no one-dimensional affine schedule exists: causality of \
                     dependence #{k} ({source} -> {target}, read #{} of {target}) \
                     is unsatisfiable together with the dependences before it",
                    dep.access
                ));
            }
        }
        // ℛ is non-empty but has no integer point (or the caller
        // mis-diagnosed); stay truthful without naming a dependence.
        Ok("no one-dimensional affine schedule exists".to_string())
    };
    scan().unwrap_or_else(|e| {
        format!("no one-dimensional affine schedule exists (diagnostic unavailable: {e})")
    })
}

/// Exact legality check of a concrete schedule: every dependence's
/// causality form must be nonnegative over its domain (jointly with the
/// parameter domain).
pub fn is_legal(p: &Program, sched: &Schedule) -> bool {
    let space = ScheduleSpace::new(p);
    let point = point_of(p, &space, sched);
    for dep in analysis::dependences(p) {
        let form = causality_form(p, &space, &dep);
        let over_domain = form.fix_unknowns(&point);
        let depth = p.statement(dep.target).depth();
        let region = dep.domain.intersect(&p.embed_param_domain(depth));
        if !region.implies_nonneg(&over_domain) {
            return false;
        }
    }
    true
}

/// Encodes a concrete schedule as a point of ℰ.
pub fn point_of(p: &Program, space: &ScheduleSpace, sched: &Schedule) -> QVector {
    let mut pt = QVector::zeros(space.dim());
    for s in p.stmt_ids() {
        let st = p.statement(s);
        let th = sched.theta(s);
        for k in 0..st.depth() {
            pt[space.iter_coeff(s, k)] = th.coeff(k).clone();
        }
        for j in 0..p.num_params() {
            pt[space.param_coeff(s, j)] = th.coeff(st.depth() + j).clone();
        }
        pt[space.const_coeff(s)] = th.constant_term().clone();
    }
    pt
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples::{example1, example2, example4, prefix_sum};
    use aov_ir::StmtId;

    /// §5.1.1: Example 1's simplified schedule constraints are
    /// 2a + b − 1 >= 0, b − 1 >= 0, −a + b − 1 >= 0.
    #[test]
    fn example1_constraints_match_paper() {
        let p = example1();
        let (space, rows) = schedule_constraints(&p).unwrap();
        // Project each row onto (a_i, a_j) — param/const coefficients are
        // zero for uniform dependences.
        let ai = space.iter_coeff(StmtId(0), 0);
        let aj = space.iter_coeff(StmtId(0), 1);
        let mut got: Vec<(i64, i64, i64)> = rows
            .iter()
            .map(|r| {
                for (k, c) in r.coeffs().iter().enumerate() {
                    assert!(
                        k == ai || k == aj || c.is_zero(),
                        "unexpected coefficient in {r:?}"
                    );
                }
                (
                    r.coeff(ai).to_i64().unwrap(),
                    r.coeff(aj).to_i64().unwrap(),
                    r.constant_term().to_i64().unwrap(),
                )
            })
            .collect();
        got.sort_unstable();
        got.dedup();
        let mut want = vec![(2, 1, -1), (0, 1, -1), (-1, 1, -1)];
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn example1_row_schedule_is_legal_column_is_not() {
        let p = example1();
        // Θ = j: legal (rows in parallel).
        let row = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
        assert!(is_legal(&p, &row));
        // Θ = i: illegal (ignores the j-carried dependences).
        let col = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[1, 0, 0, 0], 0)]);
        assert!(!is_legal(&p, &col));
        // Θ = i + 2j: legal (satisfies 2a+b=4>=1, b=2>=1, -a+b=1>=1).
        let skew = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[1, 2, 0, 0], 0)]);
        assert!(is_legal(&p, &skew));
        // Θ = -i + j: illegal (−a+b−1 = 0 - wait, a=-1: -a+b = 2 >= 1 ok;
        // 2a+b = -1 < 1): illegal.
        let bad = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[-1, 1, 0, 0], 0)]);
        assert!(!is_legal(&p, &bad));
    }

    #[test]
    fn example2_interleaved_schedule_legal() {
        let p = example2();
        // Θ1 = 2(i + j), Θ2 = 2(i + j) + 1: classic interleaving.
        let s = Schedule::uniform_for(
            &p,
            &[
                AffineExpr::from_i64(&[2, 2, 0, 0], 0),
                AffineExpr::from_i64(&[2, 2, 0, 0], 1),
            ],
        );
        assert!(is_legal(&p, &s));
        // Θ1 = Θ2 = i + j is also legal: the unit dependence distances
        // provide the required separation.
        let tight = Schedule::uniform_for(
            &p,
            &[
                AffineExpr::from_i64(&[1, 1, 0, 0], 0),
                AffineExpr::from_i64(&[1, 1, 0, 0], 0),
            ],
        );
        assert!(is_legal(&p, &tight));
        // But shifting S2 one step earlier breaks S2's read of A[i][j-1]:
        // Θ2(i,j) − Θ1(i,j−1) − 1 = −1 < 0.
        let bad = Schedule::uniform_for(
            &p,
            &[
                AffineExpr::from_i64(&[1, 1, 0, 0], 0),
                AffineExpr::from_i64(&[1, 1, 0, 0], -1),
            ],
        );
        assert!(!is_legal(&p, &bad));
    }

    #[test]
    fn example4_needs_parameter_coefficients() {
        let p = example4();
        // S2(i) reads A[i][n−i]; Θ1 = i + j suffices for S1, and S2 must
        // wait until row i is done: Θ2 = i + n + 1 works:
        //   Θ2(i) − Θ1(i, n−i) − 1 = (i+n+1) − (i + n−i) − 1 = i >= 0…
        //   at i >= 1 ✓; and Θ1(i,j) − Θ2(i−1) − 1 = i+j − (i−1+n+1) − 1
        //   = j − n − 1 < 0 ✗ — so that one is illegal.
        let bad = Schedule::uniform_for(
            &p,
            &[
                AffineExpr::from_i64(&[1, 1, 0], 0),
                AffineExpr::from_i64(&[1, 1], 1), // i + n + 1
            ],
        );
        assert!(!is_legal(&p, &bad));
        // Θ1 = n·i + j, Θ2 = n·i + n + 1: S1(i, ·) occupies
        // [ni+1, ni+n], S2(i) at ni+n+1, S1(i+1, 1) at ni+n+1 — conflict;
        // use Θ1 = (n+2)i + j, Θ2 = (n+2)i + n + 1.
        // Θ1 coefficients over (i, j, n): i-coeff can't be n·… (affine
        // only), so encode via params: a_i = 0? Instead check a known-legal
        // sequential schedule exists among affine ones:
        // Θ1 = 2n·i… not affine. Use Θ1 = i·K? Not expressible — instead
        // verify the scheduler test in scheduler.rs finds something.
        let p2 = prefix_sum();
        let ok = Schedule::uniform_for(&p2, &[AffineExpr::from_i64(&[1, 0], 0)]);
        assert!(is_legal(&p2, &ok));
    }

    /// §5.2: Example 2's linearization evaluates the two causality
    /// constraints at the four rectangle corners and the parameter
    /// vertex/rays (24 raw rows); the ray rows force the `n` and `m`
    /// coefficients of the two statements to coincide (the paper's
    /// `d1 = d2`, `e1 = e2`).
    #[test]
    fn example2_linearization_matches_paper_5_2() {
        let p = example2();
        let (space, rows) = schedule_constraints(&p).unwrap();
        // 2 dependences × 4 vertices × (1 param vertex + 2 rays) = 24
        // rows before deduplication; dedup keeps it below.
        assert!(rows.len() <= 24, "got {} rows", rows.len());
        assert!(rows.len() >= 6, "got {} rows", rows.len());
        let poly = Polyhedron::from_constraints(
            space.dim(),
            rows.into_iter().map(Constraint::ge0).collect(),
        );
        let s1 = p.stmt_by_name("S1").unwrap();
        let s2 = p.stmt_by_name("S2").unwrap();
        let dim = space.dim();
        for j in 0..p.num_params() {
            let diff = &AffineExpr::var(dim, space.param_coeff(s1, j))
                - &AffineExpr::var(dim, space.param_coeff(s2, j));
            assert!(
                poly.implies_nonneg(&diff) && poly.implies_nonneg(&-&diff),
                "parameter coefficient {j} must be equal across statements"
            );
        }
    }

    #[test]
    fn legal_polyhedron_contains_known_schedules() {
        let p = example1();
        let (space, poly) = legal_schedule_polyhedron(&p).unwrap();
        let row = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
        assert!(poly.contains(&point_of(&p, &space, &row)));
        let col = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[1, 0, 0, 0], 0)]);
        assert!(!poly.contains(&point_of(&p, &space, &col)));
    }
}
