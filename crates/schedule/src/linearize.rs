//! Vertex-based constraint linearization (§4.4 of the paper).
//!
//! Given a [`BilinearForm`] `F(u, (i, N))` that must be nonnegative for
//! all `i` in a (parameterized) polytope and all `N` in the parameter
//! domain, produce finitely many affine constraints over `u`:
//!
//! 1. eliminate `i` at the parameterized vertices of the domain
//!    (§4.4.2, using chamber decomposition when the vertex structure
//!    varies),
//! 2. eliminate `N` at the vertices and rays of each chamber's parameter
//!    region (§4.4.3; rays contribute "linear part nonnegative"
//!    constraints per Theorem 1, lines contribute equalities encoded as
//!    two inequalities).

use crate::BilinearForm;
use aov_polyhedra::{param, PolyhedraError, Polyhedron};

/// Linearizes `F(u, (i, N)) >= 0  ∀ (i, N) ∈ system, N ∈ param_domain`
/// into affine constraints `g(u) >= 0`.
///
/// * `form` — over domain space `(i, N)` (`n_elim` iteration dims
///   followed by the parameter dims).
/// * `system` — polyhedron over the same space (the constraint's
///   domain `Z` or `P_j`).
/// * `param_domain` — polyhedron over the parameter dims only.
///
/// # Errors
///
/// Propagates [`PolyhedraError`] from the parameterized-vertex
/// computation (unbounded iteration domains, pathological chambers).
pub fn eliminate_to_linear(
    form: &BilinearForm,
    system: &Polyhedron,
    n_elim: usize,
    param_domain: &Polyhedron,
) -> Result<Vec<aov_linalg::AffineExpr>, PolyhedraError> {
    Ok(
        eliminate_to_linear_tagged(form, system, n_elim, param_domain)?
            .into_iter()
            .map(|(e, _)| e)
            .collect(),
    )
}

/// Where a linearized row came from — a parameter-domain vertex (the form
/// evaluated at a point) or a ray/line (the form's linear part along a
/// direction). The storage solvers need the distinction: point rows carry
/// the `v·Θ` coupling of the occupancy vector, direction rows do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// Evaluated at a concrete `(i, N)` point.
    Point,
    /// Linear part along an unbounded parameter direction.
    Direction,
}

/// As [`eliminate_to_linear`], tagging each row with its [`RowKind`].
pub fn eliminate_to_linear_tagged(
    form: &BilinearForm,
    system: &Polyhedron,
    n_elim: usize,
    param_domain: &Polyhedron,
) -> Result<Vec<(aov_linalg::AffineExpr, RowKind)>, PolyhedraError> {
    assert_eq!(
        form.domain_dim(),
        system.dim(),
        "form/system domain mismatch"
    );
    let n_params = system.dim() - n_elim;
    assert_eq!(param_domain.dim(), n_params, "param domain dimension");

    let chambers = param::parameterized_vertices(system, n_elim, param_domain)?;
    let mut out = Vec::new();
    for chamber in &chambers {
        if chamber.vertices.is_empty() {
            continue; // empty polytope on this chamber: nothing to require
        }
        let gens = chamber.domain.generators();
        for vertex in &chamber.vertices {
            // Substitute i := Γ(N): the domain space becomes N alone.
            let mut subs = vertex.coords.clone();
            for j in 0..n_params {
                subs.push(aov_linalg::AffineExpr::var(n_params, j));
            }
            let over_params = form.substitute_domain(&subs);
            for w in &gens.vertices {
                push_nontrivial(&mut out, over_params.at_point(w), RowKind::Point);
            }
            for r in &gens.rays {
                push_nontrivial(
                    &mut out,
                    over_params.linear_part_along(r),
                    RowKind::Direction,
                );
            }
            for l in &gens.lines {
                let lin = over_params.linear_part_along(l);
                push_nontrivial(&mut out, lin.clone(), RowKind::Direction);
                push_nontrivial(&mut out, -&lin, RowKind::Direction);
            }
        }
    }
    Ok(out)
}

fn push_nontrivial(
    out: &mut Vec<(aov_linalg::AffineExpr, RowKind)>,
    e: aov_linalg::AffineExpr,
    kind: RowKind,
) {
    if e.is_constant() {
        // A constant >= 0 requirement: either trivially true (drop) or a
        // contradiction (keep — the LP will report infeasibility).
        if !e.constant_term().is_negative() {
            return;
        }
    }
    if !out.iter().any(|(x, k)| *x == e && *k == kind) {
        out.push((e, kind));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_linalg::{AffineExpr, QVector};
    use aov_polyhedra::Constraint;

    fn ge(coeffs: &[i64], c: i64) -> Constraint {
        Constraint::ge0(AffineExpr::from_i64(coeffs, c))
    }

    /// Paper §5.1.1: for uniform dependences, the iteration vector drops
    /// out and a single constraint per dependence remains.
    #[test]
    fn uniform_form_yields_single_constraint() {
        // F(u, (i, j, n, m)) = 2·u0 + u1 − 1 (no domain dependence at all):
        // mimics Θ(i,j) − Θ(i−2, j−1) − 1 with Θ = a·i + b·j.
        let form = BilinearForm::new(
            vec![
                AffineExpr::constant(4, 2.into()),
                AffineExpr::constant(4, 1.into()),
            ],
            AffineExpr::constant(4, (-1).into()),
        );
        // Domain: rectangle 1<=i<=n, 1<=j<=m; params n,m >= 1.
        let system = Polyhedron::from_constraints(
            4,
            vec![
                ge(&[1, 0, 0, 0], -1),
                ge(&[-1, 0, 1, 0], 0),
                ge(&[0, 1, 0, 0], -1),
                ge(&[0, -1, 0, 1], 0),
            ],
        );
        let params = Polyhedron::from_constraints(2, vec![ge(&[1, 0], -1), ge(&[0, 1], -1)]);
        let cs = eliminate_to_linear(&form, &system, 2, &params).unwrap();
        // All vertices and rays give the same constraint 2u0 + u1 - 1 >= 0.
        assert_eq!(cs, vec![AffineExpr::from_i64(&[2, 1], -1)]);
    }

    /// When coefficients genuinely depend on (i, N), distinct constraints
    /// appear for distinct vertices, and parameter rays add linear-part
    /// constraints (§5.2's 24-constraint expansion, in miniature).
    #[test]
    fn vertex_and_ray_constraints() {
        // F(u, (i, n)) = i·u0 − n: requires i·u0 >= n on 0 <= i <= n,
        // n >= 1 (unbounded).
        let form = BilinearForm::new(
            vec![AffineExpr::from_i64(&[1, 0], 0)],
            AffineExpr::from_i64(&[0, -1], 0),
        );
        let system = Polyhedron::from_constraints(2, vec![ge(&[1, 0], 0), ge(&[-1, 1], 0)]);
        let params = Polyhedron::from_constraints(1, vec![ge(&[1], -1)]);
        let cs = eliminate_to_linear(&form, &system, 1, &params).unwrap();
        // Vertices i=0 and i=n; param vertex n=1 and ray n→∞:
        //   i=0: −n >= 0 at n=1 → constant −1 (kept as contradiction);
        //        ray: −1 >= 0 → constant (kept as contradiction).
        // Infeasibility must be visible in the constraint set: some
        // constraint is constant-negative.
        assert!(
            cs.iter()
                .any(|c| c.is_constant() && c.constant_term().is_negative()),
            "expected an infeasible constant constraint, got {cs:?}"
        );
        // And the i=n vertex yields n-dependent rows like u0 − 1 >= 0
        // (vertex n=1) plus ray row u0 − ... — check u0-involving row
        // exists.
        assert!(cs.iter().any(|c| !c.coeff(0).is_zero()));
    }

    /// The constraint domain `Z` can be empty (paper Example 3): no
    /// constraints are produced.
    #[test]
    fn empty_system_produces_nothing() {
        let form = BilinearForm::new(vec![AffineExpr::from_i64(&[1, 0], 0)], AffineExpr::zero(2));
        let system = Polyhedron::from_constraints(
            2,
            vec![ge(&[1, 0], -2), ge(&[-1, 0], 1)], // 2 <= i <= 1: empty
        );
        let params = Polyhedron::from_constraints(1, vec![ge(&[1], -1)]);
        let cs = eliminate_to_linear(&form, &system, 1, &params).unwrap();
        assert!(cs.is_empty());
    }

    /// Correctness spot check: every produced constraint is implied by
    /// the original quantified statement, and conversely the produced
    /// set forces nonnegativity at sampled domain points.
    #[test]
    fn linearization_sound_on_samples() {
        // F(u, (i, n)) = (n − i)·u0 + i·u1 − n over 0<=i<=n, 1<=n<=6.
        let form = BilinearForm::new(
            vec![
                AffineExpr::from_i64(&[-1, 1], 0),
                AffineExpr::from_i64(&[1, 0], 0),
            ],
            AffineExpr::from_i64(&[0, -1], 0),
        );
        let system = Polyhedron::from_constraints(2, vec![ge(&[1, 0], 0), ge(&[-1, 1], 0)]);
        let params = Polyhedron::from_constraints(1, vec![ge(&[1], -1), ge(&[-1], 6)]);
        let cs = eliminate_to_linear(&form, &system, 1, &params).unwrap();
        // For a grid of u values: u satisfies all linearized constraints
        // ⇔ F(u, ·) >= 0 on all integer domain points.
        for u0 in -2i64..=3 {
            for u1 in -2i64..=3 {
                let u = QVector::from_i64(&[u0, u1]);
                let lin_ok = cs.iter().all(|c| !c.eval(&u).is_negative());
                let mut true_ok = true;
                for n in 1i64..=6 {
                    for i in 0..=n {
                        let x = QVector::from_i64(&[i, n]);
                        if form.eval(&u, &x).is_negative() {
                            true_ok = false;
                        }
                    }
                }
                assert_eq!(lin_ok, true_ok, "u = ({u0}, {u1})");
            }
        }
    }
}
