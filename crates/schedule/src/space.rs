//! The schedule coordinate space `ℰ` and concrete schedules.

use aov_ir::{Program, StmtId};
use aov_linalg::{AffineExpr, QVector, VarSet};
use aov_numeric::Rational;
use std::fmt;

/// The space `ℰ` of scheduling parameters for a program.
///
/// For each statement `S` of depth `d_S` the space has `d_S` iteration
/// coefficients `a_S`, one coefficient `b_S` per structural parameter,
/// and a constant `c_S` — laid out consecutively per statement:
/// `Θ_S(i, N) = a_S·i + b_S·N + c_S` (paper §4.1).
///
/// # Examples
///
/// ```
/// use aov_ir::examples::example2;
/// use aov_schedule::ScheduleSpace;
///
/// let p = example2();
/// let space = ScheduleSpace::new(&p);
/// // Two statements, each with 2 iter coeffs + 2 param coeffs + 1 const.
/// assert_eq!(space.dim(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct ScheduleSpace {
    offsets: Vec<usize>,
    depths: Vec<usize>,
    num_params: usize,
    total: usize,
    vars: VarSet,
}

impl ScheduleSpace {
    /// Builds the space for a program.
    pub fn new(p: &Program) -> Self {
        let mut offsets = Vec::new();
        let mut depths = Vec::new();
        let mut vars = VarSet::new();
        let mut total = 0usize;
        for s in p.statements() {
            offsets.push(total);
            depths.push(s.depth());
            for it in s.iters() {
                vars.add(format!("a_{}_{}", s.name(), it));
            }
            for pn in p.params().names() {
                vars.add(format!("b_{}_{}", s.name(), pn));
            }
            vars.add(format!("c_{}", s.name()));
            total += s.depth() + p.num_params() + 1;
        }
        ScheduleSpace {
            offsets,
            depths,
            num_params: p.num_params(),
            total,
            vars,
        }
    }

    /// Total dimension of `ℰ`.
    pub fn dim(&self) -> usize {
        self.total
    }

    /// Number of statements covered.
    pub fn num_statements(&self) -> usize {
        self.offsets.len()
    }

    /// Index of iteration coefficient `k` of statement `s`.
    pub fn iter_coeff(&self, s: StmtId, k: usize) -> usize {
        assert!(k < self.depths[s.0], "iter coefficient out of range");
        self.offsets[s.0] + k
    }

    /// Index of structural-parameter coefficient `j` of statement `s`.
    pub fn param_coeff(&self, s: StmtId, j: usize) -> usize {
        assert!(j < self.num_params, "param coefficient out of range");
        self.offsets[s.0] + self.depths[s.0] + j
    }

    /// Index of the constant coefficient of statement `s`.
    pub fn const_coeff(&self, s: StmtId) -> usize {
        self.offsets[s.0] + self.depths[s.0] + self.num_params
    }

    /// Named variables (for LP model construction and display).
    pub fn vars(&self) -> &VarSet {
        &self.vars
    }

    /// Reconstructs a [`Schedule`] from a point of `ℰ`.
    ///
    /// # Panics
    ///
    /// Panics if `point.dim() != self.dim()`.
    pub fn schedule_at(&self, point: &QVector) -> Schedule {
        assert_eq!(point.dim(), self.total, "schedule point dimension");
        let mut thetas = Vec::with_capacity(self.offsets.len());
        for s in 0..self.offsets.len() {
            let depth = self.depths[s];
            let dim = depth + self.num_params;
            let mut coeffs = QVector::zeros(dim);
            for k in 0..depth {
                coeffs[k] = point[self.iter_coeff(StmtId(s), k)].clone();
            }
            for j in 0..self.num_params {
                coeffs[depth + j] = point[self.param_coeff(StmtId(s), j)].clone();
            }
            let constant = point[self.const_coeff(StmtId(s))].clone();
            thetas.push(AffineExpr::from_parts(coeffs, constant));
        }
        Schedule { thetas }
    }
}

/// A concrete one-dimensional affine schedule: one `Θ_S` per statement,
/// each an affine form over the statement's space (iters ++ params).
///
/// # Examples
///
/// ```
/// use aov_ir::{examples::example1, StmtId};
/// use aov_schedule::Schedule;
/// use aov_linalg::AffineExpr;
///
/// let p = example1();
/// // The row-parallel schedule Θ(i, j) = j of the paper's Figure 3.
/// let sched = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
/// assert_eq!(
///     sched.eval(StmtId(0), &[4, 7], &[100, 100]),
///     aov_numeric::Rational::from(7)
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    thetas: Vec<AffineExpr>,
}

impl Schedule {
    /// Builds from per-statement affine forms (over iters ++ params).
    ///
    /// # Panics
    ///
    /// Panics if the count or dimensions disagree with the program.
    pub fn uniform_for(p: &Program, thetas: &[AffineExpr]) -> Self {
        assert_eq!(
            thetas.len(),
            p.statements().len(),
            "one theta per statement"
        );
        for (s, th) in p.statements().iter().zip(thetas) {
            assert_eq!(
                th.dim(),
                s.depth() + p.num_params(),
                "theta dimension for {}",
                s.name()
            );
        }
        Schedule {
            thetas: thetas.to_vec(),
        }
    }

    /// The scheduling function of a statement.
    pub fn theta(&self, s: StmtId) -> &AffineExpr {
        &self.thetas[s.0]
    }

    /// All scheduling functions in statement order.
    pub fn thetas(&self) -> &[AffineExpr] {
        &self.thetas
    }

    /// Evaluates `Θ_S(i, N)`.
    pub fn eval(&self, s: StmtId, iters: &[i64], params: &[i64]) -> Rational {
        let point: Vec<i64> = iters.iter().chain(params).copied().collect();
        self.thetas[s.0].eval_i64(&point)
    }

    /// Renders the schedule with a program's names.
    pub fn display<'a>(&'a self, p: &'a Program) -> impl fmt::Display + 'a {
        DisplaySchedule { sched: self, p }
    }
}

struct DisplaySchedule<'a> {
    sched: &'a Schedule,
    p: &'a Program,
}

impl fmt::Display for DisplaySchedule<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, th) in self.p.statements().iter().zip(&self.sched.thetas) {
            let space = s.space(self.p.params());
            writeln!(f, "Θ_{} = {}", s.name(), th.display(&space))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples::{example1, example4};

    #[test]
    fn space_layout() {
        let p = example4();
        let space = ScheduleSpace::new(&p);
        // S1: 2 iters + 1 param + 1 const = 4; S2: 1 + 1 + 1 = 3.
        assert_eq!(space.dim(), 7);
        assert_eq!(space.iter_coeff(StmtId(0), 1), 1);
        assert_eq!(space.param_coeff(StmtId(0), 0), 2);
        assert_eq!(space.const_coeff(StmtId(0)), 3);
        assert_eq!(space.iter_coeff(StmtId(1), 0), 4);
        assert_eq!(space.const_coeff(StmtId(1)), 6);
        assert_eq!(space.vars().name(0), "a_S1_i");
        assert_eq!(space.vars().name(6), "c_S2");
    }

    #[test]
    fn schedule_roundtrip_through_space() {
        let p = example1();
        let space = ScheduleSpace::new(&p);
        // Θ(i, j, n, m) = 2i + 3j + n + 5.
        let mut pt = QVector::zeros(space.dim());
        pt[space.iter_coeff(StmtId(0), 0)] = 2.into();
        pt[space.iter_coeff(StmtId(0), 1)] = 3.into();
        pt[space.param_coeff(StmtId(0), 0)] = 1.into();
        pt[space.const_coeff(StmtId(0))] = 5.into();
        let sched = space.schedule_at(&pt);
        assert_eq!(
            sched.eval(StmtId(0), &[1, 1], &[10, 20]),
            Rational::from(20)
        );
    }

    #[test]
    #[should_panic(expected = "theta dimension")]
    fn uniform_for_checks_dims() {
        let p = example1();
        let _ = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[1], 0)]);
    }
}
