//! Integer-lattice utilities for the occupancy-vector storage transform.
//!
//! Transforming an array under an occupancy vector `v` (Strout et al.;
//! §3.2 of Thies et al.) projects the data space onto the hyperplane
//! perpendicular to `v`. Concretely we complete `v` to a unimodular basis:
//! a matrix `U` with `|det U| = 1` and `U·v = (g, 0, …, 0)ᵀ` where
//! `g = gcd(v)`. Rows `2..n` of `U·x` are the projected coordinates and the
//! first coordinate modulo `g` is the *modulation* needed when `v` crosses
//! `g > 1` lattice points.

use aov_numeric::extended_gcd;

/// Greatest common divisor of all components (nonnegative; 0 for the zero
/// vector).
///
/// # Examples
///
/// ```
/// assert_eq!(aov_linalg::lattice::gcd_vec(&[4, -6, 8]), 2);
/// assert_eq!(aov_linalg::lattice::gcd_vec(&[0, 0]), 0);
/// ```
pub fn gcd_vec(v: &[i64]) -> i64 {
    v.iter().fold(0i64, |g, &x| aov_numeric::gcd(g, x))
}

/// Divides out the gcd, returning `(g, primitive_vector)`.
///
/// # Panics
///
/// Panics if `v` is the zero vector.
pub fn primitive(v: &[i64]) -> (i64, Vec<i64>) {
    let g = gcd_vec(v);
    assert!(g != 0, "zero vector has no primitive form");
    (g, v.iter().map(|&x| x / g).collect())
}

/// Completes `v` to a unimodular basis: returns `U` (row-major `n × n`,
/// `|det U| = 1`) such that `U·v = (g, 0, …, 0)ᵀ` with `g = gcd(v) > 0`.
///
/// Each off-first row of `U` is a lattice vector orthogonal to `v` in the
/// sense of the elimination (the image of `v` is supported on the first
/// coordinate only); together the rows form a basis of `ℤⁿ`.
///
/// # Panics
///
/// Panics if `v` is the zero vector, or on (astronomically unlikely for
/// the small vectors of this domain) `i64` overflow.
///
/// # Examples
///
/// ```
/// let u = aov_linalg::lattice::unimodular_completion(&[1, 2]);
/// // U * (1,2)^T = (1, 0)^T
/// assert_eq!(u[0][0] * 1 + u[0][1] * 2, 1);
/// assert_eq!(u[1][0] * 1 + u[1][1] * 2, 0);
/// ```
pub fn unimodular_completion(v: &[i64]) -> Vec<Vec<i64>> {
    let n = v.len();
    assert!(v.iter().any(|&x| x != 0), "zero vector cannot be completed");
    let mut u: Vec<Vec<i64>> = (0..n)
        .map(|i| (0..n).map(|j| i64::from(i == j)).collect())
        .collect();
    let mut w = v.to_vec();
    for i in 1..n {
        if w[i] == 0 {
            continue;
        }
        let (g, x, y) = extended_gcd(w[0], w[i]);
        // The 2x2 block [[x, y], [-w[i]/g, w[0]/g]] has determinant 1 and
        // maps (w[0], w[i]) to (g, 0).
        let (a, b) = (x, y);
        let (c, d) = (-w[i] / g, w[0] / g);
        let (head, tail) = u.split_at_mut(1);
        for (x0, xi) in head[0].iter_mut().zip(tail[i - 1].iter_mut()) {
            let (r0, ri) = (*x0, *xi);
            *x0 = a
                .checked_mul(r0)
                .and_then(|p| b.checked_mul(ri).and_then(|q| p.checked_add(q)))
                .expect("unimodular completion overflow");
            *xi = c
                .checked_mul(r0)
                .and_then(|p| d.checked_mul(ri).and_then(|q| p.checked_add(q)))
                .expect("unimodular completion overflow");
        }
        w[0] = g;
        w[i] = 0;
    }
    if w[0] < 0 {
        // Flip the first row so the image of v is +gcd.
        for x in u[0].iter_mut() {
            *x = -*x;
        }
    }
    u
}

/// Applies a row-major integer matrix to a vector.
///
/// # Panics
///
/// Panics on dimension mismatch or overflow.
pub fn apply(m: &[Vec<i64>], v: &[i64]) -> Vec<i64> {
    m.iter()
        .map(|row| {
            assert_eq!(row.len(), v.len(), "matrix-vector dimension mismatch");
            row.iter()
                .zip(v)
                .map(|(&a, &b)| a.checked_mul(b).expect("overflow"))
                .try_fold(0i64, |acc, t| acc.checked_add(t))
                .expect("overflow")
        })
        .collect()
}

/// Determinant of a small integer matrix (exact, via rational elimination).
pub fn determinant(m: &[Vec<i64>]) -> i64 {
    let rows: Vec<&[i64]> = m.iter().map(|r| r.as_slice()).collect();
    crate::QMatrix::from_i64(&rows)
        .determinant()
        .to_i64()
        .expect("integer matrix has integer determinant")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_vec_basics() {
        assert_eq!(gcd_vec(&[6, 9]), 3);
        assert_eq!(gcd_vec(&[-4, 6]), 2);
        assert_eq!(gcd_vec(&[5]), 5);
        assert_eq!(gcd_vec(&[0, 7, 0]), 7);
        assert_eq!(gcd_vec(&[0, 0]), 0);
    }

    #[test]
    fn primitive_divides_out() {
        assert_eq!(primitive(&[2, 4]), (2, vec![1, 2]));
        assert_eq!(primitive(&[-3, 6]), (3, vec![-1, 2]));
        assert_eq!(primitive(&[1, 2]), (1, vec![1, 2]));
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn primitive_zero_panics() {
        let _ = primitive(&[0, 0]);
    }

    fn check_completion(v: &[i64]) {
        let u = unimodular_completion(v);
        let g = gcd_vec(v);
        let img = apply(&u, v);
        assert_eq!(img[0], g, "image first coord for {v:?}");
        for (k, &x) in img.iter().enumerate().skip(1) {
            assert_eq!(x, 0, "image coord {k} for {v:?}");
        }
        assert_eq!(determinant(&u).abs(), 1, "unimodularity for {v:?}");
    }

    #[test]
    fn completion_2d() {
        for v in [
            [1i64, 2],
            [0, 1],
            [1, 0],
            [2, 0],
            [0, 2],
            [-1, 2],
            [3, 5],
            [4, 6],
            [-4, -6],
        ] {
            check_completion(&v);
        }
    }

    #[test]
    fn completion_3d() {
        for v in [
            [1i64, 1, 1],
            [2, 4, 6],
            [0, 0, 5],
            [3, 0, 2],
            [-1, 2, -3],
            [6, 10, 15],
        ] {
            check_completion(&v);
        }
    }

    #[test]
    fn completion_paper_example1_aov() {
        // AOV (1,2) of the paper's Example 1: the projected coordinate must
        // be proportional to 2i - j (the paper maps A[i][j] -> A[2i-j+m]).
        let u = unimodular_completion(&[1, 2]);
        // Second row is orthogonal to (1,2) in the image sense; the
        // projected coordinate is u[1]·(i,j), a primitive normal of (1,2).
        let row = &u[1];
        assert_eq!(row[0] + row[1] * 2, 0);
        assert_eq!(gcd_vec(row).abs(), 1);
    }

    #[test]
    fn modulation_when_gcd_greater_than_one() {
        // v = (0,2) crosses 2 lattice points; g = 2 requires modulation.
        let v = [0i64, 2];
        let u = unimodular_completion(&v);
        let img = apply(&u, &v);
        assert_eq!(img, vec![2, 0]);
    }
}
