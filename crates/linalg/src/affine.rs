//! Affine expressions over a named variable space.
//!
//! An [`AffineExpr`] is `c·x + b` for a coefficient vector `c` and constant
//! `b`, where `x` ranges over the variables of a [`VarSet`]. These are the
//! common currency of the whole analysis: dependence functions, schedules,
//! schedule/storage constraints and Farkas combinations are all affine
//! expressions over various spaces.

use crate::QVector;
use aov_numeric::Rational;
use std::collections::HashMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An ordered set of named variables defining a coordinate space.
///
/// # Examples
///
/// ```
/// use aov_linalg::VarSet;
///
/// let mut vars = VarSet::new();
/// let i = vars.add("i");
/// let j = vars.add("j");
/// assert_eq!((i, j), (0, 1));
/// assert_eq!(vars.index("j"), Some(1));
/// assert_eq!(vars.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarSet {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl VarSet {
    /// An empty variable set.
    pub fn new() -> Self {
        VarSet::default()
    }

    /// Builds a variable set from names.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut vs = VarSet::new();
        for n in names {
            vs.add(n);
        }
        vs
    }

    /// Adds a variable, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if the name is already present.
    pub fn add<S: Into<String>>(&mut self, name: S) -> usize {
        let name = name.into();
        assert!(
            !self.index.contains_key(&name),
            "duplicate variable {name:?}"
        );
        let idx = self.names.len();
        self.index.insert(name.clone(), idx);
        self.names.push(name);
        idx
    }

    /// Index of a variable by name.
    pub fn index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Name of the variable at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// All names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// An affine expression `c·x + b` over a variable space of fixed dimension.
///
/// The dimension is implicit; operations panic on dimension mismatch.
///
/// # Examples
///
/// ```
/// use aov_linalg::AffineExpr;
/// use aov_numeric::Rational;
///
/// // 2i - j + 3  over (i, j)
/// let e = AffineExpr::from_i64(&[2, -1], 3);
/// assert_eq!(e.eval_i64(&[5, 4]), Rational::from(9));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    coeffs: QVector,
    constant: Rational,
}

impl AffineExpr {
    /// The zero expression over `dim` variables.
    pub fn zero(dim: usize) -> Self {
        AffineExpr {
            coeffs: QVector::zeros(dim),
            constant: Rational::zero(),
        }
    }

    /// A constant expression over `dim` variables.
    pub fn constant(dim: usize, c: Rational) -> Self {
        AffineExpr {
            coeffs: QVector::zeros(dim),
            constant: c,
        }
    }

    /// The single variable `x_i` over `dim` variables.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn var(dim: usize, i: usize) -> Self {
        AffineExpr {
            coeffs: QVector::unit(dim, i),
            constant: Rational::zero(),
        }
    }

    /// Builds from integer coefficients and constant.
    pub fn from_i64(coeffs: &[i64], constant: i64) -> Self {
        AffineExpr {
            coeffs: QVector::from_i64(coeffs),
            constant: Rational::from(constant),
        }
    }

    /// Builds from rational parts.
    pub fn from_parts(coeffs: QVector, constant: Rational) -> Self {
        AffineExpr { coeffs, constant }
    }

    /// Coefficient vector.
    pub fn coeffs(&self) -> &QVector {
        &self.coeffs
    }

    /// Constant term.
    pub fn constant_term(&self) -> &Rational {
        &self.constant
    }

    /// Coefficient of variable `i`.
    pub fn coeff(&self, i: usize) -> &Rational {
        &self.coeffs[i]
    }

    /// Dimension of the underlying variable space.
    pub fn dim(&self) -> usize {
        self.coeffs.dim()
    }

    /// `true` when all coefficients are zero.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_zero()
    }

    /// `true` when the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.is_constant() && self.constant.is_zero()
    }

    /// Evaluates at a rational point.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn eval(&self, x: &QVector) -> Rational {
        &self.coeffs.dot(x) + &self.constant
    }

    /// Evaluates at an integer point.
    pub fn eval_i64(&self, x: &[i64]) -> Rational {
        self.eval(&QVector::from_i64(x))
    }

    /// Scales the whole expression by `s`.
    pub fn scale(&self, s: &Rational) -> AffineExpr {
        AffineExpr {
            coeffs: self.coeffs.scale(s),
            constant: &self.constant * s,
        }
    }

    /// Substitutes each variable `x_i` by the affine expression `subs[i]`
    /// (all over a common target space), yielding an expression over the
    /// target space.
    ///
    /// This is affine composition: if `self` describes `f(x)` and `subs`
    /// describe `x = g(y)`, the result describes `f(g(y))`.
    ///
    /// # Panics
    ///
    /// Panics if `subs.len() != self.dim()` or the substitutes disagree on
    /// their dimension.
    pub fn substitute(&self, subs: &[AffineExpr]) -> AffineExpr {
        assert_eq!(subs.len(), self.dim(), "substitution arity mismatch");
        let target_dim = subs.first().map_or(0, AffineExpr::dim);
        let mut acc = AffineExpr::constant(target_dim, self.constant.clone());
        for (i, sub) in subs.iter().enumerate() {
            assert_eq!(sub.dim(), target_dim, "substitutes of mixed dimension");
            if !self.coeffs[i].is_zero() {
                acc = &acc + &sub.scale(&self.coeffs[i]);
            }
        }
        acc
    }

    /// Embeds the expression into a larger space: variable `i` of `self`
    /// becomes variable `map[i]` of the target space of dimension
    /// `target_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != self.dim()` or any target index is out of
    /// range.
    pub fn embed(&self, target_dim: usize, map: &[usize]) -> AffineExpr {
        assert_eq!(map.len(), self.dim(), "embedding map arity mismatch");
        let mut coeffs = QVector::zeros(target_dim);
        for (i, &t) in map.iter().enumerate() {
            assert!(t < target_dim, "embedding target out of range");
            coeffs[t] = &coeffs[t] + &self.coeffs[i];
        }
        AffineExpr {
            coeffs,
            constant: self.constant.clone(),
        }
    }

    /// Renders the expression using `vars` for variable names.
    pub fn display<'a>(&'a self, vars: &'a VarSet) -> impl fmt::Display + 'a {
        DisplayExpr { expr: self, vars }
    }

    /// Multiplies through by the lcm of coefficient denominators so all
    /// coefficients and the constant are integers; returns the scaled
    /// expression (same sign, same zero set for `>= 0` constraints).
    pub fn clear_denominators(&self) -> AffineExpr {
        let mut l = aov_numeric::BigInt::one();
        for c in self.coeffs.iter().chain(std::iter::once(&self.constant)) {
            let d = c.denom();
            let g = aov_numeric::gcd_big(&l, d);
            l = &l * &(d / &g);
        }
        self.scale(&Rational::from(l))
    }
}

struct DisplayExpr<'a> {
    expr: &'a AffineExpr,
    vars: &'a VarSet,
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (i, c) in self.expr.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            let name = self.vars.name(i);
            if wrote {
                write!(f, " {} ", if c.is_negative() { "-" } else { "+" })?;
            } else if c.is_negative() {
                write!(f, "-")?;
            }
            let a = c.abs();
            if a == Rational::one() {
                write!(f, "{name}")?;
            } else {
                write!(f, "{a}*{name}")?;
            }
            wrote = true;
        }
        let k = &self.expr.constant;
        if !k.is_zero() || !wrote {
            if wrote {
                write!(
                    f,
                    " {} {}",
                    if k.is_negative() { "-" } else { "+" },
                    k.abs()
                )?;
            } else {
                write!(f, "{k}")?;
            }
        }
        Ok(())
    }
}

impl Add<&AffineExpr> for &AffineExpr {
    type Output = AffineExpr;
    fn add(self, rhs: &AffineExpr) -> AffineExpr {
        AffineExpr {
            coeffs: &self.coeffs + &rhs.coeffs,
            constant: &self.constant + &rhs.constant,
        }
    }
}

impl Sub<&AffineExpr> for &AffineExpr {
    type Output = AffineExpr;
    fn sub(self, rhs: &AffineExpr) -> AffineExpr {
        AffineExpr {
            coeffs: &self.coeffs - &rhs.coeffs,
            constant: &self.constant - &rhs.constant,
        }
    }
}

impl Neg for &AffineExpr {
    type Output = AffineExpr;
    fn neg(self) -> AffineExpr {
        AffineExpr {
            coeffs: -&self.coeffs,
            constant: -&self.constant,
        }
    }
}

impl Mul<&AffineExpr> for &Rational {
    type Output = AffineExpr;
    fn mul(self, rhs: &AffineExpr) -> AffineExpr {
        rhs.scale(self)
    }
}

macro_rules! forward_affine_binop {
    ($($trait:ident, $method:ident);*) => {$(
        impl $trait<AffineExpr> for AffineExpr {
            type Output = AffineExpr;
            fn $method(self, rhs: AffineExpr) -> AffineExpr { (&self).$method(&rhs) }
        }
        impl $trait<&AffineExpr> for AffineExpr {
            type Output = AffineExpr;
            fn $method(self, rhs: &AffineExpr) -> AffineExpr { (&self).$method(rhs) }
        }
        impl $trait<AffineExpr> for &AffineExpr {
            type Output = AffineExpr;
            fn $method(self, rhs: AffineExpr) -> AffineExpr { self.$method(&rhs) }
        }
    )*};
}
forward_affine_binop!(Add, add; Sub, sub);

impl Neg for AffineExpr {
    type Output = AffineExpr;
    fn neg(self) -> AffineExpr {
        -&self
    }
}

impl fmt::Debug for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AffineExpr({:?} + {})", self.coeffs, self.constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varset_basics() {
        let vs = VarSet::from_names(["i", "j", "n"]);
        assert_eq!(vs.len(), 3);
        assert_eq!(vs.index("n"), Some(2));
        assert_eq!(vs.index("zz"), None);
        assert_eq!(vs.name(0), "i");
        assert_eq!(vs.names(), &["i".to_string(), "j".into(), "n".into()]);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn varset_rejects_duplicates() {
        let _ = VarSet::from_names(["i", "i"]);
    }

    #[test]
    fn eval_and_ops() {
        let e = AffineExpr::from_i64(&[2, -1], 3); // 2i - j + 3
        assert_eq!(e.eval_i64(&[5, 4]), Rational::from(9));
        let f = AffineExpr::from_i64(&[0, 1], -1); // j - 1
        assert_eq!((&e + &f).eval_i64(&[1, 1]), Rational::from(4));
        assert_eq!((&e - &f).eval_i64(&[1, 1]), Rational::from(4));
        assert_eq!((-&e).eval_i64(&[0, 0]), Rational::from(-3));
        assert_eq!(
            e.scale(&Rational::from(2)).eval_i64(&[1, 0]),
            Rational::from(10)
        );
    }

    #[test]
    fn substitution_composes() {
        // f(i, j) = i + 2j; substitute i = u - 1, j = u + v.
        let f = AffineExpr::from_i64(&[1, 2], 0);
        let gi = AffineExpr::from_i64(&[1, 0], -1);
        let gj = AffineExpr::from_i64(&[1, 1], 0);
        let comp = f.substitute(&[gi, gj]);
        // = (u-1) + 2(u+v) = 3u + 2v - 1
        assert_eq!(comp, AffineExpr::from_i64(&[3, 2], -1));
    }

    #[test]
    fn embedding() {
        // i + 2j over (i,j) embedded into (a, i, j, b).
        let e = AffineExpr::from_i64(&[1, 2], 5);
        let emb = e.embed(4, &[1, 2]);
        assert_eq!(emb, AffineExpr::from_i64(&[0, 1, 2, 0], 5));
    }

    #[test]
    fn display_pretty() {
        let vs = VarSet::from_names(["i", "j"]);
        assert_eq!(
            AffineExpr::from_i64(&[2, -1], 3).display(&vs).to_string(),
            "2*i - j + 3"
        );
        assert_eq!(
            AffineExpr::from_i64(&[0, 0], 0).display(&vs).to_string(),
            "0"
        );
        assert_eq!(
            AffineExpr::from_i64(&[-1, 0], 0).display(&vs).to_string(),
            "-i"
        );
        assert_eq!(
            AffineExpr::from_i64(&[0, 1], -2).display(&vs).to_string(),
            "j - 2"
        );
    }

    #[test]
    fn clear_denominators() {
        let e = AffineExpr::from_parts(
            QVector::from_vec(vec![Rational::new(1, 2), Rational::new(2, 3)]),
            Rational::new(-1, 6),
        );
        let cleared = e.clear_denominators();
        assert_eq!(cleared, AffineExpr::from_i64(&[3, 4], -1));
    }

    #[test]
    fn constant_detection() {
        assert!(AffineExpr::constant(2, Rational::from(4)).is_constant());
        assert!(!AffineExpr::var(2, 0).is_constant());
        assert!(AffineExpr::zero(3).is_zero());
    }
}
