//! Dense vectors of exact rationals.

use aov_numeric::Rational;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense vector of [`Rational`]s.
///
/// # Examples
///
/// ```
/// use aov_linalg::QVector;
/// use aov_numeric::Rational;
///
/// let v = QVector::from_i64(&[1, -2, 3]);
/// let w = QVector::from_i64(&[0, 1, 1]);
/// assert_eq!((&v + &w).as_slice()[1], Rational::from(-1));
/// assert_eq!(v.dot(&w), Rational::from(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct QVector {
    elems: Vec<Rational>,
}

impl QVector {
    /// The zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        QVector {
            elems: vec![Rational::zero(); dim],
        }
    }

    /// Builds a vector from rationals.
    pub fn from_vec(elems: Vec<Rational>) -> Self {
        QVector { elems }
    }

    /// Builds a vector from machine integers.
    pub fn from_i64(elems: &[i64]) -> Self {
        QVector {
            elems: elems.iter().map(|&v| Rational::from(v)).collect(),
        }
    }

    /// The `i`-th standard basis vector in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn unit(dim: usize, i: usize) -> Self {
        assert!(i < dim, "unit index {i} out of range for dimension {dim}");
        let mut v = QVector::zeros(dim);
        v.elems[i] = Rational::one();
        v
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.elems.len()
    }

    /// Returns `true` when every component is zero.
    pub fn is_zero(&self) -> bool {
        self.elems.iter().all(Rational::is_zero)
    }

    /// Immutable view of the components.
    pub fn as_slice(&self) -> &[Rational] {
        &self.elems
    }

    /// Mutable view of the components.
    pub fn as_mut_slice(&mut self) -> &mut [Rational] {
        &mut self.elems
    }

    /// Iterator over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, Rational> {
        self.elems.iter()
    }

    /// Inner product.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &QVector) -> Rational {
        assert_eq!(self.dim(), other.dim(), "dot of mismatched dimensions");
        self.elems
            .iter()
            .zip(other.elems.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Multiplies every component by `s`.
    pub fn scale(&self, s: &Rational) -> QVector {
        QVector {
            elems: self.elems.iter().map(|v| v * s).collect(),
        }
    }

    /// Manhattan norm `Σ|x_i|`.
    pub fn manhattan(&self) -> Rational {
        self.elems.iter().map(Rational::abs).sum()
    }

    /// Exact integer components if every entry is an integer fitting `i64`.
    pub fn to_i64(&self) -> Option<Vec<i64>> {
        self.elems.iter().map(Rational::to_i64).collect()
    }

    /// Appends a component.
    pub fn push(&mut self, v: Rational) {
        self.elems.push(v);
    }
}

impl From<Vec<Rational>> for QVector {
    fn from(elems: Vec<Rational>) -> Self {
        QVector { elems }
    }
}

impl FromIterator<Rational> for QVector {
    fn from_iter<T: IntoIterator<Item = Rational>>(iter: T) -> Self {
        QVector {
            elems: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for QVector {
    type Item = Rational;
    type IntoIter = std::vec::IntoIter<Rational>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.into_iter()
    }
}

impl<'a> IntoIterator for &'a QVector {
    type Item = &'a Rational;
    type IntoIter = std::slice::Iter<'a, Rational>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.iter()
    }
}

impl Index<usize> for QVector {
    type Output = Rational;
    fn index(&self, i: usize) -> &Rational {
        &self.elems[i]
    }
}

impl IndexMut<usize> for QVector {
    fn index_mut(&mut self, i: usize) -> &mut Rational {
        &mut self.elems[i]
    }
}

impl Add<&QVector> for &QVector {
    type Output = QVector;
    fn add(self, rhs: &QVector) -> QVector {
        assert_eq!(self.dim(), rhs.dim(), "adding mismatched dimensions");
        self.elems
            .iter()
            .zip(&rhs.elems)
            .map(|(a, b)| a + b)
            .collect()
    }
}

impl Sub<&QVector> for &QVector {
    type Output = QVector;
    fn sub(self, rhs: &QVector) -> QVector {
        assert_eq!(self.dim(), rhs.dim(), "subtracting mismatched dimensions");
        self.elems
            .iter()
            .zip(&rhs.elems)
            .map(|(a, b)| a - b)
            .collect()
    }
}

impl Neg for &QVector {
    type Output = QVector;
    fn neg(self) -> QVector {
        self.elems.iter().map(|v| -v).collect()
    }
}

impl Mul<&QVector> for &Rational {
    type Output = QVector;
    fn mul(self, rhs: &QVector) -> QVector {
        rhs.scale(self)
    }
}

impl fmt::Display for QVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for QVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QVector{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(QVector::zeros(3).dim(), 3);
        assert!(QVector::zeros(3).is_zero());
        assert_eq!(QVector::unit(3, 1).as_slice()[1], Rational::one());
        assert!(!QVector::unit(3, 1).is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unit_out_of_range() {
        let _ = QVector::unit(2, 2);
    }

    #[test]
    fn arithmetic() {
        let v = QVector::from_i64(&[1, 2, 3]);
        let w = QVector::from_i64(&[4, 5, 6]);
        assert_eq!(&v + &w, QVector::from_i64(&[5, 7, 9]));
        assert_eq!(&w - &v, QVector::from_i64(&[3, 3, 3]));
        assert_eq!(-&v, QVector::from_i64(&[-1, -2, -3]));
        assert_eq!(v.dot(&w), Rational::from(32));
        assert_eq!(
            v.scale(&Rational::new(1, 2)),
            QVector::from_vec(vec![
                Rational::new(1, 2),
                Rational::from(1),
                Rational::new(3, 2)
            ])
        );
    }

    #[test]
    fn manhattan_norm() {
        assert_eq!(
            QVector::from_i64(&[1, -2, 3]).manhattan(),
            Rational::from(6)
        );
        assert_eq!(QVector::zeros(4).manhattan(), Rational::zero());
    }

    #[test]
    fn integer_roundtrip() {
        assert_eq!(QVector::from_i64(&[3, -4]).to_i64(), Some(vec![3, -4]));
        let half = QVector::from_vec(vec![Rational::new(1, 2)]);
        assert_eq!(half.to_i64(), None);
    }

    #[test]
    fn display() {
        assert_eq!(QVector::from_i64(&[1, -2]).to_string(), "(1, -2)");
    }
}
