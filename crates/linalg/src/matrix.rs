//! Dense rational matrices with exact Gaussian elimination.

use crate::QVector;
use aov_numeric::Rational;
use std::fmt;
use std::ops::{Index, IndexMut, Mul};

/// A dense matrix of [`Rational`]s in row-major order.
///
/// All algorithms are exact: Gaussian elimination with partial
/// (first-nonzero) pivoting over the rationals never introduces error.
///
/// # Examples
///
/// ```
/// use aov_linalg::QMatrix;
///
/// let m = QMatrix::from_i64(&[&[1, 2], &[3, 4]]);
/// assert_eq!(m.rank(), 2);
/// assert!(m.inverse().is_some());
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct QMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl QMatrix {
    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        QMatrix {
            rows,
            cols,
            data: vec![Rational::zero(); rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = QMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::one();
        }
        m
    }

    /// Builds a matrix from rows of machine integers.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_i64(rows: &[&[i64]]) -> Self {
        let ncols = rows.first().map_or(0, |r| r.len());
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "ragged rows in matrix literal"
        );
        QMatrix {
            rows: rows.len(),
            cols: ncols,
            data: rows
                .iter()
                .flat_map(|r| r.iter().map(|&v| Rational::from(v)))
                .collect(),
        }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal dimensions.
    pub fn from_rows(rows: Vec<QVector>) -> Self {
        let ncols = rows.first().map_or(0, QVector::dim);
        assert!(
            rows.iter().all(|r| r.dim() == ncols),
            "ragged rows in matrix"
        );
        QMatrix {
            rows: rows.len(),
            cols: ncols,
            data: rows.into_iter().flat_map(QVector::into_iter).collect(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// A copy of row `r` as a vector.
    pub fn row(&self, r: usize) -> QVector {
        QVector::from_vec(self.data[r * self.cols..(r + 1) * self.cols].to_vec())
    }

    /// A copy of column `c` as a vector.
    pub fn col(&self, c: usize) -> QVector {
        (0..self.rows).map(|r| self[(r, c)].clone()).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> QMatrix {
        let mut t = QMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)].clone();
            }
        }
        t
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.ncols()`.
    pub fn mul_vec(&self, v: &QVector) -> QVector {
        assert_eq!(v.dim(), self.cols, "matrix-vector dimension mismatch");
        (0..self.rows).map(|r| self.row(r).dot(v)).collect()
    }

    /// Reduced row echelon form; returns `(rref, pivot_columns)`.
    pub fn rref(&self) -> (QMatrix, Vec<usize>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut lead = 0usize;
        for col in 0..m.cols {
            if lead >= m.rows {
                break;
            }
            // Find a pivot row.
            let Some(pr) = (lead..m.rows).find(|&r| !m[(r, col)].is_zero()) else {
                continue;
            };
            m.swap_rows(lead, pr);
            let inv = m[(lead, col)].recip();
            for c in col..m.cols {
                m[(lead, c)] = &m[(lead, c)] * &inv;
            }
            for r in 0..m.rows {
                if r != lead && !m[(r, col)].is_zero() {
                    let factor = m[(r, col)].clone();
                    for c in col..m.cols {
                        let delta = &factor * &m[(lead, c)];
                        m[(r, c)] = &m[(r, c)] - &delta;
                    }
                }
            }
            pivots.push(col);
            lead += 1;
        }
        (m, pivots)
    }

    /// Rank of the matrix.
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// Determinant (square matrices only), by fraction-free elimination.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn determinant(&self) -> Rational {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let n = self.rows;
        let mut m = self.clone();
        let mut det = Rational::one();
        for col in 0..n {
            let Some(pr) = (col..n).find(|&r| !m[(r, col)].is_zero()) else {
                return Rational::zero();
            };
            if pr != col {
                m.swap_rows(col, pr);
                det = -det;
            }
            det = &det * &m[(col, col)];
            let inv = m[(col, col)].recip();
            for r in col + 1..n {
                if m[(r, col)].is_zero() {
                    continue;
                }
                let factor = &m[(r, col)] * &inv;
                for c in col..n {
                    let delta = &factor * &m[(col, c)];
                    m[(r, c)] = &m[(r, c)] - &delta;
                }
            }
        }
        det
    }

    /// Solves `self * x = b` for square nonsingular `self`.
    ///
    /// Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b` has the wrong dimension.
    pub fn solve(&self, b: &QVector) -> Option<QVector> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(b.dim(), self.rows, "rhs dimension mismatch");
        let mut aug = QMatrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            for c in 0..self.cols {
                aug[(r, c)] = self[(r, c)].clone();
            }
            aug[(r, self.cols)] = b[r].clone();
        }
        let (rr, pivots) = aug.rref();
        if pivots.len() < self.rows || pivots.contains(&self.cols) {
            return None;
        }
        Some((0..self.rows).map(|r| rr[(r, self.cols)].clone()).collect())
    }

    /// The inverse, or `None` when singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<QMatrix> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut aug = QMatrix::zeros(n, 2 * n);
        for r in 0..n {
            for c in 0..n {
                aug[(r, c)] = self[(r, c)].clone();
            }
            aug[(r, n + r)] = Rational::one();
        }
        let (rr, pivots) = aug.rref();
        if pivots.len() < n || pivots.iter().any(|&p| p >= n) {
            return None;
        }
        let mut inv = QMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                inv[(r, c)] = rr[(r, n + c)].clone();
            }
        }
        Some(inv)
    }

    /// A basis of the (right) nullspace `{x | self * x = 0}`.
    pub fn nullspace(&self) -> Vec<QVector> {
        let (rr, pivots) = self.rref();
        let free: Vec<usize> = (0..self.cols).filter(|c| !pivots.contains(c)).collect();
        let mut basis = Vec::with_capacity(free.len());
        for &f in &free {
            let mut v = QVector::zeros(self.cols);
            v[f] = Rational::one();
            for (prow, &pcol) in pivots.iter().enumerate() {
                v[pcol] = -&rr[(prow, f)];
            }
            basis.push(v);
        }
        basis
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

impl Index<(usize, usize)> for QMatrix {
    type Output = Rational;
    fn index(&self, (r, c): (usize, usize)) -> &Rational {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for QMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Rational {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Mul<&QMatrix> for &QMatrix {
    type Output = QMatrix;
    fn mul(self, rhs: &QMatrix) -> QMatrix {
        assert_eq!(self.cols, rhs.rows, "matrix product dimension mismatch");
        let mut out = QMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for c in 0..rhs.cols {
                let mut acc = Rational::zero();
                for k in 0..self.cols {
                    acc += &(&self[(r, k)] * &rhs[(k, c)]);
                }
                out[(r, c)] = acc;
            }
        }
        out
    }
}

impl fmt::Display for QMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl fmt::Debug for QMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QMatrix({}x{})\n{}", self.rows, self.cols, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_product() {
        let i3 = QMatrix::identity(3);
        let m = QMatrix::from_i64(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 10]]);
        assert_eq!(&i3 * &m, m);
        assert_eq!(&m * &i3, m);
    }

    #[test]
    fn rref_and_rank() {
        let m = QMatrix::from_i64(&[&[1, 2, 3], &[2, 4, 6], &[1, 0, 1]]);
        assert_eq!(m.rank(), 2);
        let full = QMatrix::from_i64(&[&[1, 0], &[0, 2]]);
        assert_eq!(full.rank(), 2);
        assert_eq!(QMatrix::zeros(3, 3).rank(), 0);
    }

    #[test]
    fn determinant() {
        assert_eq!(
            QMatrix::from_i64(&[&[1, 2], &[3, 4]]).determinant(),
            Rational::from(-2)
        );
        assert_eq!(
            QMatrix::from_i64(&[&[2, 0, 0], &[0, 3, 0], &[0, 0, 4]]).determinant(),
            Rational::from(24)
        );
        assert_eq!(
            QMatrix::from_i64(&[&[1, 2], &[2, 4]]).determinant(),
            Rational::zero()
        );
        // Row swap flips sign.
        assert_eq!(
            QMatrix::from_i64(&[&[0, 1], &[1, 0]]).determinant(),
            Rational::from(-1)
        );
    }

    #[test]
    fn solve_nonsingular() {
        let m = QMatrix::from_i64(&[&[2, 1], &[1, 3]]);
        let b = QVector::from_i64(&[5, 10]);
        let x = m.solve(&b).unwrap();
        assert_eq!(m.mul_vec(&x), b);
        assert_eq!(x, QVector::from_i64(&[1, 3]));
    }

    #[test]
    fn solve_singular_is_none() {
        let m = QMatrix::from_i64(&[&[1, 2], &[2, 4]]);
        assert!(m.solve(&QVector::from_i64(&[1, 3])).is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        let m = QMatrix::from_i64(&[&[1, 2, 0], &[0, 1, 0], &[2, 0, 1]]);
        let inv = m.inverse().unwrap();
        assert_eq!(&m * &inv, QMatrix::identity(3));
        assert_eq!(&inv * &m, QMatrix::identity(3));
        assert!(QMatrix::from_i64(&[&[1, 1], &[1, 1]]).inverse().is_none());
    }

    #[test]
    fn nullspace_basis() {
        let m = QMatrix::from_i64(&[&[1, 2, 3]]);
        let ns = m.nullspace();
        assert_eq!(ns.len(), 2);
        for v in &ns {
            assert!(m.mul_vec(v).is_zero());
        }
        // Full-rank square matrix has trivial nullspace.
        assert!(QMatrix::from_i64(&[&[1, 0], &[0, 1]])
            .nullspace()
            .is_empty());
    }

    #[test]
    fn transpose() {
        let m = QMatrix::from_i64(&[&[1, 2, 3], &[4, 5, 6]]);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t[(2, 1)], Rational::from(6));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn rows_and_cols() {
        let m = QMatrix::from_i64(&[&[1, 2], &[3, 4]]);
        assert_eq!(m.row(1), QVector::from_i64(&[3, 4]));
        assert_eq!(m.col(0), QVector::from_i64(&[1, 3]));
    }
}
