//! Exact rational linear algebra for the `aov` workspace.
//!
//! Provides the dense kernels the polyhedral library and LP solver are
//! built on:
//!
//! * [`QVector`] — a vector of [`aov_numeric::Rational`]s,
//! * [`QMatrix`] — a dense rational matrix with Gaussian elimination,
//!   rank, solving, inversion and nullspace computation,
//! * [`AffineExpr`] / [`VarSet`] — affine forms `c·x + b` over a named
//!   variable space (the workhorse representation for schedules,
//!   dependence functions and Farkas elimination),
//! * [`lattice`] — integer-lattice utilities (primitive vectors,
//!   unimodular completion) used by the occupancy-vector storage
//!   transformation.
//!
//! # Examples
//!
//! ```
//! use aov_linalg::{QMatrix, QVector};
//! use aov_numeric::Rational;
//!
//! let m = QMatrix::from_i64(&[&[2, 1], &[1, 3]]);
//! let b = QVector::from_i64(&[5, 10]);
//! let x = m.solve(&b).expect("nonsingular");
//! assert_eq!(x, QVector::from_i64(&[1, 3]));
//! ```

mod affine;
pub mod lattice;
mod matrix;
mod vector;

pub use affine::{AffineExpr, VarSet};
pub use matrix::QMatrix;
pub use vector::QVector;
