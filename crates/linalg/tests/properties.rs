//! Property tests for the exact linear algebra kernels.

use aov_linalg::{lattice, AffineExpr, QMatrix, QVector};
use aov_numeric::Rational;
use aov_support::{prop_assume, props, Rng};

fn small_matrix(g: &mut Rng, n: usize) -> QMatrix {
    let rows: Vec<Vec<i64>> = (0..n).map(|_| g.vec_i64(-9, 9, n)).collect();
    let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
    QMatrix::from_i64(&refs)
}

fn small_vec(g: &mut Rng, n: usize) -> QVector {
    QVector::from_i64(&g.vec_i64(-9, 9, n))
}

props! {
    #![cases = 256, seed = 0x11A1_6EB2]

    fn solve_is_inverse_application(g) {
        let m = small_matrix(g, 3);
        let b = small_vec(g, 3);
        match m.solve(&b) {
            Some(x) => {
                assert_eq!(m.mul_vec(&x), b);
                assert!(m.inverse().is_some());
            }
            None => assert!(m.inverse().is_none()),
        }
    }

    fn inverse_roundtrips(g) {
        let m = small_matrix(g, 3);
        if let Some(inv) = m.inverse() {
            assert_eq!(&m * &inv, QMatrix::identity(3));
            assert_eq!(&inv * &m, QMatrix::identity(3));
        }
    }

    fn rank_plus_nullity(g) {
        let m = small_matrix(g, 4);
        let rank = m.rank();
        let ns = m.nullspace();
        assert_eq!(rank + ns.len(), 4);
        for v in &ns {
            assert!(m.mul_vec(v).is_zero());
        }
    }

    fn determinant_zero_iff_singular(g) {
        let m = small_matrix(g, 3);
        let det = m.determinant();
        assert_eq!(det.is_zero(), m.inverse().is_none());
    }

    fn determinant_multiplicative(g) {
        let a = small_matrix(g, 3);
        let b = small_matrix(g, 3);
        let prod = &a * &b;
        assert_eq!(prod.determinant(), &a.determinant() * &b.determinant());
    }

    fn transpose_involution_and_rank(g) {
        let m = small_matrix(g, 3);
        assert_eq!(m.transpose().transpose(), m.clone());
        assert_eq!(m.transpose().rank(), m.rank());
    }

    fn affine_substitution_is_composition(g) {
        let fc = g.vec_i64(-5, 5, 2);
        let f0 = g.i64_in(-5, 5);
        let g1 = g.vec_i64(-5, 5, 3);
        let c1 = g.i64_in(-5, 5);
        let g2 = g.vec_i64(-5, 5, 3);
        let c2 = g.i64_in(-5, 5);
        let y = g.vec_i64(-5, 5, 3);
        let f = AffineExpr::from_i64(&fc, f0);
        let s1 = AffineExpr::from_i64(&g1, c1);
        let s2 = AffineExpr::from_i64(&g2, c2);
        let comp = f.substitute(&[s1.clone(), s2.clone()]);
        let inner = [s1.eval_i64(&y), s2.eval_i64(&y)];
        let direct = &(&inner[0] * &Rational::from(fc[0])
            + &inner[1] * &Rational::from(fc[1]))
            + &Rational::from(f0);
        assert_eq!(comp.eval_i64(&y), direct);
    }

    fn unimodular_completion_properties(g) {
        let n = g.usize_in(2, 4);
        let v = g.vec_i64(-20, 20, n);
        prop_assume!(v.iter().any(|&x| x != 0));
        let u = lattice::unimodular_completion(&v);
        let d = lattice::gcd_vec(&v);
        let img = lattice::apply(&u, &v);
        assert_eq!(img[0], d);
        for &x in &img[1..] {
            assert_eq!(x, 0);
        }
        assert_eq!(lattice::determinant(&u).abs(), 1);
    }
}
