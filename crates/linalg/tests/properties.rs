//! Property tests for the exact linear algebra kernels.

use aov_linalg::{lattice, AffineExpr, QMatrix, QVector};
use aov_numeric::Rational;
use proptest::prelude::*;

fn small_matrix(n: usize) -> impl Strategy<Value = QMatrix> {
    proptest::collection::vec(proptest::collection::vec(-9i64..=9, n), n).prop_map(move |rows| {
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        QMatrix::from_i64(&refs)
    })
}

fn small_vec(n: usize) -> impl Strategy<Value = QVector> {
    proptest::collection::vec(-9i64..=9, n).prop_map(|v| QVector::from_i64(&v))
}

proptest! {
    #[test]
    fn solve_is_inverse_application(m in small_matrix(3), b in small_vec(3)) {
        match m.solve(&b) {
            Some(x) => {
                prop_assert_eq!(m.mul_vec(&x), b);
                prop_assert!(m.inverse().is_some());
            }
            None => prop_assert!(m.inverse().is_none()),
        }
    }

    #[test]
    fn inverse_roundtrips(m in small_matrix(3)) {
        if let Some(inv) = m.inverse() {
            prop_assert_eq!(&m * &inv, QMatrix::identity(3));
            prop_assert_eq!(&inv * &m, QMatrix::identity(3));
        }
    }

    #[test]
    fn rank_plus_nullity(m in small_matrix(4)) {
        let rank = m.rank();
        let ns = m.nullspace();
        prop_assert_eq!(rank + ns.len(), 4);
        for v in &ns {
            prop_assert!(m.mul_vec(v).is_zero());
        }
    }

    #[test]
    fn determinant_zero_iff_singular(m in small_matrix(3)) {
        let det = m.determinant();
        prop_assert_eq!(det.is_zero(), m.inverse().is_none());
    }

    #[test]
    fn determinant_multiplicative(a in small_matrix(3), b in small_matrix(3)) {
        let prod = &a * &b;
        prop_assert_eq!(prod.determinant(), &a.determinant() * &b.determinant());
    }

    #[test]
    fn transpose_involution_and_rank(m in small_matrix(3)) {
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        prop_assert_eq!(m.transpose().rank(), m.rank());
    }

    #[test]
    fn affine_substitution_is_composition(
        fc in proptest::collection::vec(-5i64..=5, 2), f0 in -5i64..=5,
        g1 in proptest::collection::vec(-5i64..=5, 3), c1 in -5i64..=5,
        g2 in proptest::collection::vec(-5i64..=5, 3), c2 in -5i64..=5,
        y in proptest::collection::vec(-5i64..=5, 3),
    ) {
        let f = AffineExpr::from_i64(&fc, f0);
        let s1 = AffineExpr::from_i64(&g1, c1);
        let s2 = AffineExpr::from_i64(&g2, c2);
        let comp = f.substitute(&[s1.clone(), s2.clone()]);
        let inner = [s1.eval_i64(&y), s2.eval_i64(&y)];
        let direct = &(&inner[0] * &Rational::from(fc[0])
            + &inner[1] * &Rational::from(fc[1]))
            + &Rational::from(f0);
        prop_assert_eq!(comp.eval_i64(&y), direct);
    }

    #[test]
    fn unimodular_completion_properties(v in proptest::collection::vec(-20i64..=20, 2..=4)) {
        prop_assume!(v.iter().any(|&x| x != 0));
        let u = lattice::unimodular_completion(&v);
        let g = lattice::gcd_vec(&v);
        let img = lattice::apply(&u, &v);
        prop_assert_eq!(img[0], g);
        for &x in &img[1..] {
            prop_assert_eq!(x, 0);
        }
        prop_assert_eq!(lattice::determinant(&u).abs(), 1);
    }
}
