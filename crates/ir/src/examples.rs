//! The paper's example programs (Thies et al., PLDI 2001, §5) plus
//! auxiliary programs used in tests and benchmarks.

use crate::{Expr, Program, ProgramBuilder};
use aov_polyhedra::Constraint;

/// **Example 1** (Figure 1): the 3-point stencil
///
/// ```text
/// for j = 1 to m
///   for i = 1 to n
///     A[i][j] = f(A[i-2][j-1], A[i][j-1], A[i+1][j-1])
/// ```
///
/// One statement, three uniform self-dependences. The paper derives:
/// shortest OV `(0,1)` for the row-parallel schedule `Θ = j` (Fig. 3),
/// schedule range `a/b ∈ (−1/2, 1/2)` for OV `(0,2)` (Fig. 4), and AOV
/// `(1,2)` (Fig. 5) giving the transformed code `A[2i−j+m]` (Fig. 6).
pub fn example1() -> Program {
    let mut b = ProgramBuilder::new("example1");
    let n = b.param_min("n", 1);
    let m = b.param_min("m", 1);
    let a = b.array("A", 2);
    let mut s = b.statement("S", &["i", "j"]);
    s.bound(0, s.constant(1), s.param(n));
    s.bound(1, s.constant(1), s.param(m));
    s.writes(a);
    let (i, j) = (s.iter(0), s.iter(1));
    let r1 = s.read(a, vec![&i - &s.constant(2), &j - &s.constant(1)]);
    let r2 = s.read(a, vec![i.clone(), &j - &s.constant(1)]);
    let r3 = s.read(a, vec![&i + &s.constant(1), &j - &s.constant(1)]);
    s.body(Expr::call(
        "f",
        vec![Expr::Read(r1), Expr::Read(r2), Expr::Read(r3)],
    ));
    b.add_statement(s);
    b.build().expect("example1 is well-formed")
}

/// **Example 2** (Figure 7): the two-statement stencil from Lim & Lam.
///
/// ```text
/// for i = 1 to n
///   for j = 1 to m
///     A[i][j] = f(B[i-1][j])   (S1)
///     B[i][j] = g(A[i][j-1])   (S2)
/// ```
///
/// The paper finds AOV `(1,1)` for both arrays (Fig. 9) and uses this
/// program for the Figure 15 speedup experiment (diagonal strips).
pub fn example2() -> Program {
    let mut b = ProgramBuilder::new("example2");
    let n = b.param_min("n", 1);
    let m = b.param_min("m", 1);
    let a = b.array("A", 2);
    let bb = b.array("B", 2);

    let mut s1 = b.statement("S1", &["i", "j"]);
    s1.bound(0, s1.constant(1), s1.param(n));
    s1.bound(1, s1.constant(1), s1.param(m));
    s1.writes(a);
    let r = s1.read(bb, vec![&s1.iter(0) - &s1.constant(1), s1.iter(1)]);
    s1.body(Expr::call("f", vec![Expr::Read(r)]));
    b.add_statement(s1);

    let mut s2 = b.statement("S2", &["i", "j"]);
    s2.bound(0, s2.constant(1), s2.param(n));
    s2.bound(1, s2.constant(1), s2.param(m));
    s2.writes(bb);
    let r = s2.read(a, vec![s2.iter(0), &s2.iter(1) - &s2.constant(1)]);
    s2.body(Expr::call("g", vec![Expr::Read(r)]));
    b.add_statement(s2);

    b.build().expect("example2 is well-formed")
}

/// **Example 3** (Figure 10): 3-string Needleman–Wunsch multiple sequence
/// alignment by dynamic programming.
///
/// ```text
/// for i = 1 to imax, j = 1 to jmax, k = 1 to kmax
///   if (i==1) or (j==1) or (k==1) then
///     D[i][j][k] = f(i,j,k)                                (S1)
///   else
///     D[i][j][k] = min( D[i-1][j-1][k-1] + w(a_i,b_j,c_k),
///                       D[i][j-1][k-1]  + w(GAP,b_j,c_k),
///                       D[i-1][j][k-1]  + w(a_i,GAP,c_k),
///                       D[i-1][j-1][k]  + w(a_i,b_j,GAP),
///                       D[i-1][j][k]    + w(a_i,GAP,GAP),
///                       D[i][j-1][k]    + w(GAP,b_j,GAP),
///                       D[i][j][k-1]    + w(GAP,GAP,c_k) ) (S2)
/// ```
///
/// The boundary statement's domain (`i==1 ∨ j==1 ∨ k==1`) is a union, so
/// it is split into three disjoint polyhedral statements `S1a` (`i==1`),
/// `S1b` (`j==1, i>=2`) and `S1c` (`k==1, i>=2, j>=2`) — a standard
/// statement-splitting normalization that preserves the paper's
/// dependences. The paper finds AOV `(1,1,1)` (Fig. 11) and uses this
/// program for the Figure 16 speedup experiment.
pub fn example3() -> Program {
    let mut b = ProgramBuilder::new("example3");
    let imax = b.param_min("imax", 2);
    let jmax = b.param_min("jmax", 2);
    let kmax = b.param_min("kmax", 2);
    let d = b.array("D", 3);

    // Boundary pieces: f(i, j, k).
    let boundary_body = Expr::call("f", vec![Expr::Iter(0), Expr::Iter(1), Expr::Iter(2)]);
    {
        let mut s = b.statement("S1a", &["i", "j", "k"]);
        s.bound(0, s.constant(1), s.constant(1)); // i == 1
        s.bound(1, s.constant(1), s.param(jmax));
        s.bound(2, s.constant(1), s.param(kmax));
        s.writes(d);
        s.body(boundary_body.clone());
        b.add_statement(s);
    }
    {
        let mut s = b.statement("S1b", &["i", "j", "k"]);
        s.bound(0, s.constant(2), s.param(imax)); // i >= 2
        s.bound(1, s.constant(1), s.constant(1)); // j == 1
        s.bound(2, s.constant(1), s.param(kmax));
        s.writes(d);
        s.body(boundary_body.clone());
        b.add_statement(s);
    }
    {
        let mut s = b.statement("S1c", &["i", "j", "k"]);
        s.bound(0, s.constant(2), s.param(imax));
        s.bound(1, s.constant(2), s.param(jmax)); // j >= 2
        s.bound(2, s.constant(1), s.constant(1)); // k == 1
        s.writes(d);
        s.body(boundary_body);
        b.add_statement(s);
    }

    // Interior: the 7-way min.
    let mut s2 = b.statement("S2", &["i", "j", "k"]);
    s2.bound(0, s2.constant(2), s2.param(imax));
    s2.bound(1, s2.constant(2), s2.param(jmax));
    s2.bound(2, s2.constant(2), s2.param(kmax));
    s2.writes(d);
    let offsets: [(i64, i64, i64); 7] = [
        (-1, -1, -1),
        (0, -1, -1),
        (-1, 0, -1),
        (-1, -1, 0),
        (-1, 0, 0),
        (0, -1, 0),
        (0, 0, -1),
    ];
    let mut args = Vec::new();
    for &(oi, oj, ok) in &offsets {
        let idx = vec![
            &s2.iter(0) + &s2.constant(oi),
            &s2.iter(1) + &s2.constant(oj),
            &s2.iter(2) + &s2.constant(ok),
        ];
        let r = s2.read(d, idx);
        // w's arguments encode which strings contribute (GAP = 0 flag).
        args.push(Expr::call(
            "add",
            vec![
                Expr::Read(r),
                Expr::call(
                    "w",
                    vec![
                        Expr::Const(i64::from(oi != 0)),
                        Expr::Const(i64::from(oj != 0)),
                        Expr::Const(i64::from(ok != 0)),
                        Expr::Iter(0),
                        Expr::Iter(1),
                        Expr::Iter(2),
                    ],
                ),
            ],
        ));
    }
    s2.body(Expr::call("min", args));
    b.add_statement(s2);

    b.build().expect("example3 is well-formed")
}

/// **Example 4** (Figure 12): non-uniform dependences.
///
/// ```text
/// for i = 1 to n
///   for j = 1 to n
///     A[i][j] = B[i-1] + j     (S1)
///   B[i] = A[i][n-i]           (S2)
/// ```
///
/// `S2` reads `A[i][n-i]` — an affine, non-uniform access. The paper
/// finds AOVs `v_A = (1,1)` and `v_B = (1)` (Fig. 14).
pub fn example4() -> Program {
    let mut b = ProgramBuilder::new("example4");
    let n = b.param_min("n", 1);
    let a = b.array("A", 2);
    let bb = b.array("B", 1);

    let mut s1 = b.statement("S1", &["i", "j"]);
    s1.bound(0, s1.constant(1), s1.param(n));
    s1.bound(1, s1.constant(1), s1.param(n));
    s1.writes(a);
    let r = s1.read(bb, vec![&s1.iter(0) - &s1.constant(1)]);
    s1.body(Expr::call("add", vec![Expr::Read(r), Expr::Iter(1)]));
    b.add_statement(s1);

    let mut s2 = b.statement("S2", &["i"]);
    s2.bound(0, s2.constant(1), s2.param(n));
    s2.writes(bb);
    let idx = &s2.param(n) - &s2.iter(0); // n - i
    let r = s2.read(a, vec![s2.iter(0), idx]);
    s2.body(Expr::call("g", vec![Expr::Read(r)]));
    b.add_statement(s2);

    b.build().expect("example4 is well-formed")
}

/// Example 1 with constant loop bounds (no structural parameters) —
/// used by the tilability checks, where sequential loop orders must be
/// expressible as one-dimensional affine schedules.
pub fn example1_sized(n: i64, m: i64) -> Program {
    let mut b = ProgramBuilder::new("example1_sized");
    let a = b.array("A", 2);
    let mut s = b.statement("S", &["i", "j"]);
    s.bound(0, s.constant(1), s.constant(n));
    s.bound(1, s.constant(1), s.constant(m));
    s.writes(a);
    let (i, j) = (s.iter(0), s.iter(1));
    let r1 = s.read(a, vec![&i - &s.constant(2), &j - &s.constant(1)]);
    let r2 = s.read(a, vec![i.clone(), &j - &s.constant(1)]);
    let r3 = s.read(a, vec![&i + &s.constant(1), &j - &s.constant(1)]);
    s.body(Expr::call(
        "f",
        vec![Expr::Read(r1), Expr::Read(r2), Expr::Read(r3)],
    ));
    b.add_statement(s);
    b.build().expect("example1_sized is well-formed")
}

/// [`wavefront2d`] with constant loop bounds (see [`example1_sized`]).
pub fn wavefront2d_sized(n: i64, m: i64) -> Program {
    let mut b = ProgramBuilder::new("wavefront2d_sized");
    let a = b.array("A", 2);
    let mut s = b.statement("S", &["i", "j"]);
    s.bound(0, s.constant(1), s.constant(n));
    s.bound(1, s.constant(1), s.constant(m));
    s.writes(a);
    let (i, j) = (s.iter(0), s.iter(1));
    let r1 = s.read(a, vec![&i - &s.constant(1), j.clone()]);
    let r2 = s.read(a, vec![i, &j - &s.constant(1)]);
    s.body(Expr::call("f", vec![Expr::Read(r1), Expr::Read(r2)]));
    b.add_statement(s);
    b.build().expect("wavefront2d_sized is well-formed")
}

/// Auxiliary: 1-D symmetric 3-point stencil over time (`heat equation`
/// style), used for extra coverage beyond the paper's examples.
///
/// ```text
/// for t = 1 to T
///   for i = 1 to n
///     A[i][t] = f(A[i-1][t-1], A[i][t-1], A[i+1][t-1])
/// ```
pub fn heat1d() -> Program {
    let mut b = ProgramBuilder::new("heat1d");
    let n = b.param_min("n", 1);
    let t = b.param_min("T", 1);
    let a = b.array("A", 2);
    let mut s = b.statement("S", &["i", "t"]);
    s.bound(0, s.constant(1), s.param(n));
    s.bound(1, s.constant(1), s.param(t));
    s.writes(a);
    let (i, tt) = (s.iter(0), s.iter(1));
    let r1 = s.read(a, vec![&i - &s.constant(1), &tt - &s.constant(1)]);
    let r2 = s.read(a, vec![i.clone(), &tt - &s.constant(1)]);
    let r3 = s.read(a, vec![&i + &s.constant(1), &tt - &s.constant(1)]);
    s.body(Expr::call(
        "f",
        vec![Expr::Read(r1), Expr::Read(r2), Expr::Read(r3)],
    ));
    b.add_statement(s);
    b.build().expect("heat1d is well-formed")
}

/// Auxiliary: a 1-D running reduction (prefix chain), the smallest
/// program with a nontrivial occupancy vector (`v = 1`).
///
/// ```text
/// for i = 1 to n
///   P[i] = add(P[i-1], i)
/// ```
pub fn prefix_sum() -> Program {
    let mut b = ProgramBuilder::new("prefix_sum");
    let n = b.param_min("n", 1);
    let p = b.array("P", 1);
    let mut s = b.statement("S", &["i"]);
    s.bound(0, s.constant(1), s.param(n));
    s.writes(p);
    let r = s.read(p, vec![&s.iter(0) - &s.constant(1)]);
    s.body(Expr::call("add", vec![Expr::Read(r), Expr::Iter(0)]));
    b.add_statement(s);
    b.build().expect("prefix_sum is well-formed")
}

/// Auxiliary: a 2-D wavefront (Gauss–Seidel-like sweep) with dependences
/// `(1,0)` and `(0,1)`; its AOV analysis exercises diagonal storage
/// collapses.
///
/// ```text
/// for i = 1 to n
///   for j = 1 to m
///     A[i][j] = f(A[i-1][j], A[i][j-1])
/// ```
pub fn wavefront2d() -> Program {
    let mut b = ProgramBuilder::new("wavefront2d");
    let n = b.param_min("n", 1);
    let m = b.param_min("m", 1);
    let a = b.array("A", 2);
    let mut s = b.statement("S", &["i", "j"]);
    s.bound(0, s.constant(1), s.param(n));
    s.bound(1, s.constant(1), s.param(m));
    s.writes(a);
    let (i, j) = (s.iter(0), s.iter(1));
    let r1 = s.read(a, vec![&i - &s.constant(1), j.clone()]);
    let r2 = s.read(a, vec![i, &j - &s.constant(1)]);
    s.body(Expr::call("f", vec![Expr::Read(r1), Expr::Read(r2)]));
    b.add_statement(s);
    b.build().expect("wavefront2d is well-formed")
}

/// Auxiliary: a program with **no one-dimensional affine schedule**.
///
/// ```text
/// for i = 1 to n
///   for j = 1 to m
///     A[i][j] = f(A[i][j-1], A[i-1][m])
/// ```
///
/// The intra-row chain `A[i][j-1]` forces the schedule coefficient of
/// `j` to be at least 1, while the read of the previous row's *last*
/// element `A[i-1][m]` needs `Θ(i,1) − Θ(i−1,m) ≥ 1`, i.e.
/// `a + b(1−m) ≥ 1` for every `m` — impossible with `b ≥ 1` once `m`
/// is unbounded. (Sequential execution is fine; `Θ = m·i + j` is just
/// not affine.) Used by the degradation-ladder tests: the `schedule`
/// stage must degrade with `Unschedulable` while schedule-independent
/// stages proceed.
pub fn unschedulable() -> Program {
    let mut b = ProgramBuilder::new("unschedulable");
    let n = b.param_min("n", 1);
    let m = b.param_min("m", 1);
    let a = b.array("A", 2);
    let mut s = b.statement("S", &["i", "j"]);
    s.bound(0, s.constant(1), s.param(n));
    s.bound(1, s.constant(1), s.param(m));
    s.writes(a);
    let (i, j) = (s.iter(0), s.iter(1));
    let r1 = s.read(a, vec![i.clone(), &j - &s.constant(1)]);
    let r2 = s.read(a, vec![&i - &s.constant(1), s.param(m)]);
    s.body(Expr::call("f", vec![Expr::Read(r1), Expr::Read(r2)]));
    b.add_statement(s);
    b.build().expect("unschedulable is well-formed")
}

/// Auxiliary: Example 1 with the iteration domain restricted by an extra
/// non-rectangular constraint `i <= j + K`; exercises the
/// parameterized-vertex machinery on non-box domains.
pub fn skewed_stencil() -> Program {
    let mut b = ProgramBuilder::new("skewed_stencil");
    let n = b.param_min("n", 1);
    let m = b.param_min("m", 1);
    let a = b.array("A", 2);
    let mut s = b.statement("S", &["i", "j"]);
    s.bound(0, s.constant(1), s.param(n));
    s.bound(1, s.constant(1), s.param(m));
    // i <= j + n (always-ish true but non-rectangular).
    let expr = &(&s.iter(1) + &s.param(n)) - &s.iter(0);
    s.constraint(Constraint::ge0(expr));
    s.writes(a);
    let (i, j) = (s.iter(0), s.iter(1));
    let r1 = s.read(a, vec![&i - &s.constant(2), &j - &s.constant(1)]);
    let r2 = s.read(a, vec![i.clone(), &j - &s.constant(1)]);
    let r3 = s.read(a, vec![&i + &s.constant(1), &j - &s.constant(1)]);
    s.body(Expr::call(
        "f",
        vec![Expr::Read(r1), Expr::Read(r2), Expr::Read(r3)],
    ));
    b.add_statement(s);
    b.build().expect("skewed_stencil is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_validate() {
        for p in [
            example1(),
            example2(),
            example3(),
            example4(),
            heat1d(),
            prefix_sum(),
            wavefront2d(),
            skewed_stencil(),
        ] {
            assert!(p.validate().is_ok(), "{} invalid", p.name());
        }
    }

    #[test]
    fn example1_shape() {
        let p = example1();
        assert_eq!(p.num_params(), 2);
        assert_eq!(p.arrays().len(), 1);
        assert_eq!(p.statements().len(), 1);
        assert_eq!(p.statements()[0].reads().len(), 3);
    }

    #[test]
    fn example3_shape() {
        let p = example3();
        assert_eq!(p.statements().len(), 4); // 3 boundary pieces + interior
        assert_eq!(p.arrays().len(), 1);
        let s2 = p.statement(p.stmt_by_name("S2").unwrap());
        assert_eq!(s2.reads().len(), 7);
        // Writers of D are pairwise disjoint (validated) and cover the
        // boundary.
        assert_eq!(p.writers_of(p.array_by_name("D").unwrap()).len(), 4);
    }

    #[test]
    fn example4_shape() {
        let p = example4();
        assert_eq!(p.statements().len(), 2);
        let s2 = p.statement(p.stmt_by_name("S2").unwrap());
        assert_eq!(s2.depth(), 1);
        assert_eq!(p.array(p.array_by_name("B").unwrap()).dim(), 1);
    }

    #[test]
    fn display_smoke() {
        let p = example2();
        let text = p.to_string();
        assert!(text.contains("S1"));
        assert!(text.contains("read#0"));
    }
}
