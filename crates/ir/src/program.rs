//! Programs: arrays, parameters, statements, accesses.

use crate::Expr;
use aov_linalg::{AffineExpr, VarSet};
use aov_polyhedra::{Constraint, Polyhedron};
use std::fmt;

/// Identifier of an array in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// Identifier of a statement in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub usize);

/// An array of the program. Its data space equals the iteration space of
/// the statement(s) writing it (single-assignment form, §3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Array {
    name: String,
    dim: usize,
}

impl Array {
    /// Array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// A read access `A[g(i, N)]` of a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    array: ArrayId,
    /// One affine index expression per array dimension, over the
    /// statement space (iters ++ params).
    index: Vec<AffineExpr>,
}

impl Access {
    /// The accessed array.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// Index expressions (over statement iters ++ params).
    pub fn index(&self) -> &[AffineExpr] {
        &self.index
    }
}

/// A statement `S(i): A[i] = body(reads…)` with a polyhedral domain.
#[derive(Debug, Clone)]
pub struct Statement {
    name: String,
    iters: Vec<String>,
    /// Domain over (iters ++ params).
    domain: Polyhedron,
    writes: ArrayId,
    reads: Vec<Access>,
    body: Expr,
}

impl Statement {
    /// Statement name (e.g. `"S1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Loop index names, outermost first.
    pub fn iters(&self) -> &[String] {
        &self.iters
    }

    /// Number of enclosing loops.
    pub fn depth(&self) -> usize {
        self.iters.len()
    }

    /// Iteration domain over (iters ++ params).
    pub fn domain(&self) -> &Polyhedron {
        &self.domain
    }

    /// The array written (at index = iteration vector).
    pub fn writes(&self) -> ArrayId {
        self.writes
    }

    /// The read accesses.
    pub fn reads(&self) -> &[Access] {
        &self.reads
    }

    /// The body expression.
    pub fn body(&self) -> &Expr {
        &self.body
    }

    /// Variable names of the statement space (iters ++ params).
    pub fn space(&self, params: &VarSet) -> VarSet {
        let mut vs = VarSet::new();
        for it in &self.iters {
            vs.add(it.clone());
        }
        for p in params.names() {
            vs.add(p.clone());
        }
        vs
    }
}

/// A single-assignment affine program (the paper's input domain).
///
/// Build with [`ProgramBuilder`]; see [`crate::examples`] for the paper's
/// programs.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    params: VarSet,
    /// Domain of structural parameters (over params only).
    param_domain: Polyhedron,
    arrays: Vec<Array>,
    statements: Vec<Statement>,
}

impl Program {
    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Structural parameters.
    pub fn params(&self) -> &VarSet {
        &self.params
    }

    /// Number of structural parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Constraints on the structural parameters.
    pub fn param_domain(&self) -> &Polyhedron {
        &self.param_domain
    }

    /// All arrays.
    pub fn arrays(&self) -> &[Array] {
        &self.arrays
    }

    /// All statements.
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// An array by id.
    pub fn array(&self, id: ArrayId) -> &Array {
        &self.arrays[id.0]
    }

    /// A statement by id.
    pub fn statement(&self, id: StmtId) -> &Statement {
        &self.statements[id.0]
    }

    /// Statement ids in order.
    pub fn stmt_ids(&self) -> impl Iterator<Item = StmtId> {
        (0..self.statements.len()).map(StmtId)
    }

    /// Ids of statements writing `array`.
    pub fn writers_of(&self, array: ArrayId) -> Vec<StmtId> {
        self.stmt_ids()
            .filter(|&s| self.statement(s).writes == array)
            .collect()
    }

    /// Looks up an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name).map(ArrayId)
    }

    /// Looks up a statement by name.
    pub fn stmt_by_name(&self, name: &str) -> Option<StmtId> {
        self.statements
            .iter()
            .position(|s| s.name == name)
            .map(StmtId)
    }

    /// Checks the single-assignment structural invariants:
    ///
    /// * every array is written by at least one statement,
    /// * each writer of an array has depth equal to the array's dimension
    ///   (data space = iteration space),
    /// * the domains of two writers of the same array are disjoint (each
    ///   cell is assigned once), checked jointly with the parameter
    ///   domain.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (aid, a) in self.arrays.iter().enumerate() {
            let writers = self.writers_of(ArrayId(aid));
            if writers.is_empty() {
                return Err(format!("array {} is never written", a.name));
            }
            for &w in &writers {
                if self.statement(w).depth() != a.dim {
                    return Err(format!(
                        "statement {} (depth {}) writes {}-d array {}",
                        self.statement(w).name,
                        self.statement(w).depth(),
                        a.dim,
                        a.name
                    ));
                }
            }
            for (x, &w1) in writers.iter().enumerate() {
                for &w2 in writers.iter().skip(x + 1) {
                    let joint = self
                        .statement(w1)
                        .domain()
                        .intersect(self.statement(w2).domain())
                        .intersect(&self.embed_param_domain(self.statement(w1).depth()));
                    if !joint.is_empty() {
                        return Err(format!(
                            "writers {} and {} of array {} overlap",
                            self.statement(w1).name,
                            self.statement(w2).name,
                            a.name
                        ));
                    }
                }
            }
        }
        for s in &self.statements {
            for acc in s.reads() {
                let arr = self.array(acc.array);
                if acc.index.len() != arr.dim {
                    return Err(format!(
                        "access to {} in {} has {} indices, array has {}",
                        arr.name,
                        s.name,
                        acc.index.len(),
                        arr.dim
                    ));
                }
                for e in &acc.index {
                    if e.dim() != s.depth() + self.num_params() {
                        return Err(format!("access index in {} over wrong space", s.name));
                    }
                }
            }
        }
        Ok(())
    }

    /// The parameter domain lifted to a statement space with `depth`
    /// leading iteration dimensions.
    pub fn embed_param_domain(&self, depth: usize) -> Polyhedron {
        let np = self.num_params();
        let dim = depth + np;
        let map: Vec<usize> = (depth..dim).collect();
        Polyhedron::from_constraints(
            dim,
            self.param_domain
                .constraints()
                .iter()
                .map(|c| {
                    let e = c.expr().embed(dim, &map);
                    if c.is_equality() {
                        Constraint::eq0(e)
                    } else {
                        Constraint::ge0(e)
                    }
                })
                .collect(),
        )
    }

    /// A statement's domain intersected with the (embedded) parameter
    /// domain — the set of `(i, N)` that can actually occur.
    pub fn full_domain(&self, s: StmtId) -> Polyhedron {
        let st = self.statement(s);
        st.domain().intersect(&self.embed_param_domain(st.depth()))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} params {:?}", self.name, self.params.names())?;
        for s in &self.statements {
            let space = s.space(&self.params);
            writeln!(
                f,
                "  {}{:?}: writes {}",
                s.name, s.iters, self.arrays[s.writes.0].name
            )?;
            writeln!(f, "    domain {}", s.domain.display(&space))?;
            for (k, acc) in s.reads.iter().enumerate() {
                let idx: Vec<String> = acc
                    .index
                    .iter()
                    .map(|e| e.display(&space).to_string())
                    .collect();
                writeln!(
                    f,
                    "    read#{k}: {}[{}]",
                    self.arrays[acc.array.0].name,
                    idx.join("][")
                )?;
            }
            writeln!(f, "    body {}", s.body)?;
        }
        Ok(())
    }
}

/// Builder for [`Program`]s.
///
/// # Examples
///
/// ```
/// use aov_ir::{ProgramBuilder, Expr};
/// use aov_linalg::AffineExpr;
///
/// let mut b = ProgramBuilder::new("copy");
/// let n = b.param_min("n", 1);
/// let a = b.array("A", 1);
/// let mut s = b.statement("S", &["i"]);
/// s.bound(0, s.constant(1), s.param(n)); // 1 <= i <= n
/// s.writes(a);
/// let r = s.read(a, vec![s.iter(0) - s.constant(1)]);
/// s.body(Expr::call("f", vec![Expr::Read(r)]));
/// b.add_statement(s);
/// let p = b.build().unwrap();
/// assert_eq!(p.statements()[0].name(), "S");
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    params: VarSet,
    param_constraints: Vec<Constraint>,
    arrays: Vec<Array>,
    statements: Vec<Statement>,
}

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new<S: Into<String>>(name: S) -> Self {
        ProgramBuilder {
            name: name.into(),
            params: VarSet::new(),
            param_constraints: Vec::new(),
            arrays: Vec::new(),
            statements: Vec::new(),
        }
    }

    /// Adds a structural parameter.
    pub fn param<S: Into<String>>(&mut self, name: S) -> usize {
        self.params.add(name)
    }

    /// Adds a structural parameter with a lower bound (e.g. `n >= 1`).
    ///
    /// The constraint is recorded in the parameter domain; the domain may
    /// be unbounded above (handled by the ray form of Theorem 1).
    pub fn param_min<S: Into<String>>(&mut self, name: S, min: i64) -> usize {
        let k = self.param(name);
        self.param_constraints
            .push(PendingParamMin { k, min }.into());
        k
    }

    /// Adds an arbitrary constraint over the parameters (dimension =
    /// number of parameters *at build time*; smaller expressions are
    /// padded).
    pub fn param_constraint(&mut self, c: Constraint) {
        self.param_constraints.push(c);
    }

    /// Declares an array.
    pub fn array<S: Into<String>>(&mut self, name: S, dim: usize) -> ArrayId {
        let id = ArrayId(self.arrays.len());
        self.arrays.push(Array {
            name: name.into(),
            dim,
        });
        id
    }

    /// Starts a statement with the given loop indices (outermost first).
    pub fn statement<S: Into<String>>(&mut self, name: S, iters: &[&str]) -> StatementBuilder {
        StatementBuilder::new(name.into(), iters, self.params.len())
    }

    /// Adds a finished statement.
    ///
    /// # Panics
    ///
    /// Panics if the statement has no written array or no body.
    pub fn add_statement(&mut self, s: StatementBuilder) -> StmtId {
        let id = StmtId(self.statements.len());
        self.statements.push(s.finish());
        id
    }

    /// Builds and validates the program.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation (see [`Program::validate`]).
    pub fn build(self) -> Result<Program, String> {
        let np = self.params.len();
        let mut cs = Vec::new();
        for c in self.param_constraints {
            // Pad to the final parameter count.
            let e = c.expr();
            assert!(e.dim() <= np, "parameter constraint over too many dims");
            let map: Vec<usize> = (0..e.dim()).collect();
            let e = e.embed(np, &map);
            cs.push(if c.is_equality() {
                Constraint::eq0(e)
            } else {
                Constraint::ge0(e)
            });
        }
        let p = Program {
            name: self.name,
            params: self.params,
            param_domain: Polyhedron::from_constraints(np, cs),
            arrays: self.arrays,
            statements: self.statements,
        };
        p.validate()?;
        Ok(p)
    }
}

/// Internal helper so `param_min` can be written before all params exist.
struct PendingParamMin {
    k: usize,
    min: i64,
}

impl From<PendingParamMin> for Constraint {
    fn from(p: PendingParamMin) -> Constraint {
        // x_k - min >= 0 over a space of k+1 dims; padded at build time.
        Constraint::ge0(
            &AffineExpr::var(p.k + 1, p.k) - &AffineExpr::constant(p.k + 1, p.min.into()),
        )
    }
}

/// Builder for a single [`Statement`].
#[derive(Debug, Clone)]
pub struct StatementBuilder {
    name: String,
    iters: Vec<String>,
    num_params: usize,
    constraints: Vec<Constraint>,
    writes: Option<ArrayId>,
    reads: Vec<Access>,
    body: Option<Expr>,
}

impl StatementBuilder {
    fn new(name: String, iters: &[&str], num_params: usize) -> Self {
        StatementBuilder {
            name,
            iters: iters.iter().map(|s| s.to_string()).collect(),
            num_params,
            constraints: Vec::new(),
            writes: None,
            reads: Vec::new(),
            body: None,
        }
    }

    /// Dimension of the statement space (iters ++ params).
    pub fn dim(&self) -> usize {
        self.iters.len() + self.num_params
    }

    /// Affine expression for loop index `k`.
    pub fn iter(&self, k: usize) -> AffineExpr {
        assert!(k < self.iters.len(), "iter index out of range");
        AffineExpr::var(self.dim(), k)
    }

    /// Affine expression for structural parameter `k`.
    pub fn param(&self, k: usize) -> AffineExpr {
        assert!(k < self.num_params, "param index out of range");
        AffineExpr::var(self.dim(), self.iters.len() + k)
    }

    /// Affine constant over the statement space.
    pub fn constant(&self, v: i64) -> AffineExpr {
        AffineExpr::constant(self.dim(), v.into())
    }

    /// Adds `lo <= iter_k <= hi`.
    pub fn bound(&mut self, k: usize, lo: AffineExpr, hi: AffineExpr) {
        let it = self.iter(k);
        self.constraints.push(Constraint::ge(it.clone(), lo));
        self.constraints.push(Constraint::le(it, hi));
    }

    /// Adds an arbitrary domain constraint (over iters ++ params).
    pub fn constraint(&mut self, c: Constraint) {
        assert_eq!(c.dim(), self.dim(), "constraint dimension mismatch");
        self.constraints.push(c);
    }

    /// Sets the written array.
    pub fn writes(&mut self, a: ArrayId) {
        self.writes = Some(a);
    }

    /// Adds a read access; returns its index for [`Expr::Read`].
    pub fn read(&mut self, a: ArrayId, index: Vec<AffineExpr>) -> usize {
        for e in &index {
            assert_eq!(e.dim(), self.dim(), "access index dimension mismatch");
        }
        self.reads.push(Access { array: a, index });
        self.reads.len() - 1
    }

    /// Sets the body expression.
    pub fn body(&mut self, e: Expr) {
        self.body = Some(e);
    }

    fn finish(self) -> Statement {
        let dim = self.iters.len() + self.num_params;
        Statement {
            name: self.name,
            iters: self.iters,
            domain: Polyhedron::from_constraints(dim, self.constraints),
            writes: self.writes.expect("statement writes no array"),
            reads: self.reads,
            body: self.body.expect("statement has no body"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_program() -> Program {
        let mut b = ProgramBuilder::new("p");
        let n = b.param_min("n", 1);
        let a = b.array("A", 1);
        let mut s = b.statement("S", &["i"]);
        s.bound(0, s.constant(1), s.param(n));
        s.writes(a);
        let r = s.read(a, vec![&s.iter(0) - &s.constant(1)]);
        s.body(Expr::call("f", vec![Expr::Read(r)]));
        b.add_statement(s);
        b.build().unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let p = simple_program();
        assert_eq!(p.name(), "p");
        assert_eq!(p.num_params(), 1);
        assert_eq!(p.arrays().len(), 1);
        assert_eq!(p.statements().len(), 1);
        let s = &p.statements()[0];
        assert_eq!(s.depth(), 1);
        assert_eq!(s.reads().len(), 1);
        assert_eq!(p.writers_of(ArrayId(0)), vec![StmtId(0)]);
        assert_eq!(p.array_by_name("A"), Some(ArrayId(0)));
        assert_eq!(p.stmt_by_name("S"), Some(StmtId(0)));
        assert_eq!(p.array_by_name("zzz"), None);
    }

    #[test]
    fn validation_catches_unwritten_array() {
        let mut b = ProgramBuilder::new("bad");
        b.param_min("n", 1);
        let a = b.array("A", 1);
        let _b2 = b.array("B", 1);
        let mut s = b.statement("S", &["i"]);
        s.bound(0, s.constant(1), s.constant(10));
        s.writes(a);
        s.body(Expr::Const(0));
        b.add_statement(s);
        let err = b.build().unwrap_err();
        assert!(err.contains("never written"), "{err}");
    }

    #[test]
    fn validation_catches_dim_mismatch() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.array("A", 2); // 2-d array
        let mut s = b.statement("S", &["i"]); // 1-d statement
        s.bound(0, s.constant(1), s.constant(10));
        s.writes(a);
        s.body(Expr::Const(0));
        b.add_statement(s);
        assert!(b.build().is_err());
    }

    #[test]
    fn validation_catches_overlapping_writers() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.array("A", 1);
        for name in ["S1", "S2"] {
            let mut s = b.statement(name, &["i"]);
            s.bound(0, s.constant(1), s.constant(10));
            s.writes(a);
            s.body(Expr::Const(0));
            b.add_statement(s);
        }
        let err = b.build().unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn disjoint_writers_allowed() {
        // Like the paper's Example 3: boundary writer + interior writer.
        let mut b = ProgramBuilder::new("ok");
        let a = b.array("A", 1);
        let mut s1 = b.statement("S1", &["i"]);
        s1.bound(0, s1.constant(1), s1.constant(1)); // i == 1
        s1.writes(a);
        s1.body(Expr::Const(0));
        b.add_statement(s1);
        let mut s2 = b.statement("S2", &["i"]);
        s2.bound(0, s2.constant(2), s2.constant(10));
        s2.writes(a);
        s2.body(Expr::Const(1));
        b.add_statement(s2);
        assert!(b.build().is_ok());
    }

    #[test]
    fn full_domain_includes_params() {
        let p = simple_program();
        // (i, n) = (5, 3) violates i <= n.
        let full = p.full_domain(StmtId(0));
        assert!(!full.contains(&aov_linalg::QVector::from_i64(&[5, 3])));
        assert!(full.contains(&aov_linalg::QVector::from_i64(&[3, 5])));
        // (i, n) = (1, 0) violates n >= 1.
        assert!(!full.contains(&aov_linalg::QVector::from_i64(&[1, 0])));
    }
}
