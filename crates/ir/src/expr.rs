//! Statement-body expressions (for the interpreter and code generator).

use std::fmt;

/// The right-hand side of a statement, as an expression tree.
///
/// Array reads refer to the statement's [`Access`](crate::Access) list by
/// index; function symbols (`f`, `g`, `w`, `min`, `add`, …) are resolved
/// by the interpreter — unknown names get deterministic uninterpreted
/// (hash-mixing) semantics so that *any* reordering or storage bug
/// changes the observable output.
///
/// # Examples
///
/// ```
/// use aov_ir::Expr;
///
/// // f(read#0, read#1)
/// let e = Expr::call("f", vec![Expr::Read(0), Expr::Read(1)]);
/// assert_eq!(e.to_string(), "f(read#0, read#1)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// The value loaded by read access `k` of the statement.
    Read(usize),
    /// Function application.
    Call(String, Vec<Expr>),
    /// Integer literal.
    Const(i64),
    /// Value of the statement's `k`-th loop index.
    Iter(usize),
    /// Value of the program's `k`-th structural parameter.
    Param(usize),
}

impl Expr {
    /// Convenience constructor for [`Expr::Call`].
    pub fn call<S: Into<String>>(name: S, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// All read-access indices appearing in the expression.
    pub fn reads(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Read(k) => out.push(*k),
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_reads(out);
                }
            }
            Expr::Const(_) | Expr::Iter(_) | Expr::Param(_) => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Read(k) => write!(f, "read#{k}"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Iter(k) => write!(f, "iter#{k}"),
            Expr::Param(k) => write!(f, "param#{k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_collected_in_order() {
        let e = Expr::call(
            "min",
            vec![
                Expr::call("add", vec![Expr::Read(2), Expr::Const(1)]),
                Expr::Read(0),
                Expr::Iter(1),
            ],
        );
        assert_eq!(e.reads(), vec![2, 0]);
    }

    #[test]
    fn display() {
        let e = Expr::call("f", vec![Expr::Read(0), Expr::Param(1), Expr::Const(-3)]);
        assert_eq!(e.to_string(), "f(read#0, param#1, -3)");
    }
}
