//! Value-based dependence analysis.
//!
//! For the paper's program class (single assignment, data space =
//! iteration space) the producer of a read `A[g(i, N)]` is exactly the
//! writer statement `T` of `A` whose domain contains `g(i, N)` — so the
//! dependences `(R, T, h, P)` of §4.1 are computed by intersecting access
//! relations with writer domains. This matches what a full array
//! dataflow analysis (Feautrier [6], the Omega test [15]) produces on
//! this class.

use crate::{Program, StmtId};
use aov_linalg::AffineExpr;
use aov_polyhedra::{Constraint, Polyhedron};

/// A flow dependence: `target(i)` reads the value produced by
/// `source(h(i, N))`, for every `i` in `domain`.
///
/// This is the paper's 4-tuple `P_j = (R_j, T_j, P_j, h_j)` with
/// `target = R`, `source = T`.
#[derive(Debug, Clone)]
pub struct Dependence {
    /// Producer statement `T`.
    pub source: StmtId,
    /// Consumer statement `R`.
    pub target: StmtId,
    /// Iteration of `T` read by `R(i)`: one affine expression per source
    /// loop dimension, over the target space (iters ++ params).
    pub h: Vec<AffineExpr>,
    /// Subset of the target's iteration space where the dependence is
    /// active (over target iters ++ params).
    pub domain: Polyhedron,
    /// Which read access of `target` induces the dependence.
    pub access: usize,
}

impl Dependence {
    /// `true` when source and target have equal depth and `h` is a
    /// constant-distance translation `h(i) = i - d`; returns `d`.
    pub fn uniform_distance(&self) -> Option<Vec<i64>> {
        let dim = self.h.first()?.dim();
        let depth = self.h.len();
        let mut dist = Vec::with_capacity(depth);
        for (k, e) in self.h.iter().enumerate() {
            // Expect e = i_k + c.
            for (j, c) in e.coeffs().iter().enumerate() {
                let expect = if j == k {
                    aov_numeric::Rational::one()
                } else {
                    aov_numeric::Rational::zero()
                };
                if *c != expect {
                    return None;
                }
            }
            if !e.constant_term().is_integer() {
                return None;
            }
            dist.push(-(e.constant_term().to_i64()?));
            let _ = dim;
        }
        Some(dist)
    }
}

/// Computes all flow dependences of the program.
///
/// For each read access `A[g(i, N)]` of a statement `R` and each writer
/// `T` of `A`, emits a dependence with
/// `domain = D_R ∩ {i | g(i, N) ∈ D_T}` when that domain is nonempty for
/// some parameter value in the program's parameter domain.
pub fn dependences(p: &Program) -> Vec<Dependence> {
    let mut out = Vec::new();
    for target in p.stmt_ids() {
        let r = p.statement(target);
        let r_dim = r.depth() + p.num_params();
        for (acc_idx, acc) in r.reads().iter().enumerate() {
            for source in p.writers_of(acc.array()) {
                let t = p.statement(source);
                // Substitution mapping the source space (t_iters ++ params)
                // into the target space: t_iter_k -> g_k, param_j -> param_j.
                let mut subs: Vec<AffineExpr> = acc.index().to_vec();
                for j in 0..p.num_params() {
                    subs.push(AffineExpr::var(r_dim, r.depth() + j));
                }
                let mut domain = r.domain().clone();
                for c in t.domain().constraints() {
                    let e = c.expr().substitute(&subs);
                    domain.add_constraint(if c.is_equality() {
                        Constraint::eq0(e)
                    } else {
                        Constraint::ge0(e)
                    });
                }
                // Keep only dependences possible for some parameters.
                let joint = domain.intersect(&p.embed_param_domain(r.depth()));
                if joint.is_empty() {
                    continue;
                }
                out.push(Dependence {
                    source,
                    target,
                    h: acc.index().to_vec(),
                    domain,
                    access: acc_idx,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{example1, example2, example3, example4};

    #[test]
    fn example1_has_three_uniform_self_dependences() {
        let p = example1();
        let deps = dependences(&p);
        assert_eq!(deps.len(), 3);
        let mut dists: Vec<Vec<i64>> = deps
            .iter()
            .map(|d| {
                assert_eq!(d.source, d.target);
                d.uniform_distance().expect("stencil deps are uniform")
            })
            .collect();
        dists.sort();
        // h1 = (i-2, j-1), h2 = (i, j-1), h3 = (i+1, j-1): distances
        // d = i - h(i).
        assert_eq!(dists, vec![vec![-1, 1], vec![0, 1], vec![2, 1]]);
    }

    #[test]
    fn example2_cross_statement_dependences() {
        let p = example2();
        let deps = dependences(&p);
        assert_eq!(deps.len(), 2);
        let s1 = p.stmt_by_name("S1").unwrap();
        let s2 = p.stmt_by_name("S2").unwrap();
        // S1 reads B[i-1][j] produced by S2; S2 reads A[i][j-1] from S1.
        assert!(deps
            .iter()
            .any(|d| d.target == s1 && d.source == s2 && d.uniform_distance() == Some(vec![1, 0])));
        assert!(deps
            .iter()
            .any(|d| d.target == s2 && d.source == s1 && d.uniform_distance() == Some(vec![0, 1])));
    }

    #[test]
    fn example3_dependences_split_by_writer() {
        let p = example3();
        let deps = dependences(&p);
        let s2 = p.stmt_by_name("S2").unwrap();
        // All 7 interior (S2 -> S2) dependences must be present.
        let from_s2 = deps
            .iter()
            .filter(|d| d.target == s2 && d.source == s2)
            .count();
        assert_eq!(from_s2, 7);
        // Boundary dependences: a read with offset o can come from the
        // i==1 plane only when o_i == -1 (4 of 7 offsets), and likewise
        // for j and k: 4 + 4 + 4 = 12.
        for name in ["S1a", "S1b", "S1c"] {
            let sb = p.stmt_by_name(name).unwrap();
            let cnt = deps
                .iter()
                .filter(|d| d.target == s2 && d.source == sb)
                .count();
            assert_eq!(cnt, 4, "boundary deps from {name}");
            // Boundary statements have no reads.
            assert!(deps.iter().all(|d| d.target != sb));
        }
        assert_eq!(deps.len(), 19);
    }

    #[test]
    fn example4_non_uniform_dependence() {
        let p = example4();
        let deps = dependences(&p);
        assert_eq!(deps.len(), 2);
        let s2 = p.stmt_by_name("S2").unwrap();
        // S2 reads A[i][n-i]: h = (i, n-i), not uniform.
        let d = deps.iter().find(|d| d.target == s2).unwrap();
        assert!(d.uniform_distance().is_none());
    }

    #[test]
    fn inactive_dependences_are_pruned() {
        // A read whose producer domain can never contain the index.
        use crate::{Expr, ProgramBuilder};
        let mut b = ProgramBuilder::new("pruned");
        let n = b.param_min("n", 1);
        let a = b.array("A", 1);
        let bb = b.array("B", 1);
        let mut s1 = b.statement("S1", &["i"]);
        s1.bound(0, s1.constant(1), s1.param(n));
        s1.writes(a);
        s1.body(Expr::Const(1));
        b.add_statement(s1);
        let mut s2 = b.statement("S2", &["i"]);
        s2.bound(0, s2.constant(1), s2.param(n));
        s2.writes(bb);
        // reads A[i + n]: outside A's domain [1, n] whenever i >= 1.
        let idx = &s2.iter(0) + &s2.param(n);
        let r = s2.read(a, vec![idx]);
        s2.body(Expr::call("f", vec![Expr::Read(r)]));
        b.add_statement(s2);
        let p = b.build().unwrap();
        assert!(dependences(&p).is_empty());
    }
}
