//! Program IR for the `aov` workspace.
//!
//! Represents the input domain of Thies et al. (PLDI 2001, §3.1):
//! single-assignment programs with static control flow, affine loop
//! bounds and affine array accesses, where the data space of each array
//! coincides with the iteration space of the statement(s) writing it.
//!
//! * [`Program`] / [`ProgramBuilder`] — arrays, structural parameters
//!   with a parameter domain, and statements with polyhedral iteration
//!   domains, one written array, affine read accesses and an expression
//!   body (used by the interpreter).
//! * [`Dependence`] — the paper's 4-tuples `P = (R, T, h, P)`:
//!   statement `R` at iteration `i ∈ P` depends on `T(h(i, N))`.
//! * [`analysis::dependences`] — exact value-based dependence analysis
//!   for this program class.
//! * [`examples`] — the paper's Examples 1–4 plus auxiliary programs.
//!
//! # Examples
//!
//! ```
//! use aov_ir::examples::example1;
//!
//! let p = example1();
//! assert_eq!(p.statements().len(), 1);
//! let deps = aov_ir::analysis::dependences(&p);
//! assert_eq!(deps.len(), 3); // the three stencil reads
//! ```

pub mod analysis;
pub mod examples;
mod expr;
mod program;

pub use expr::Expr;
pub use program::{
    Access, Array, ArrayId, Program, ProgramBuilder, Statement, StatementBuilder, StmtId,
};

pub use analysis::Dependence;
