//! Golden round-trip tests over the built-in `.aov` corpus.
//!
//! Pins three properties per corpus program:
//! 1. the checked-in file is byte-identical to the canonical printer
//!    output of the hand-built program (printer golden),
//! 2. parsing the file yields a program structurally identical to the
//!    hand-built one (parser golden),
//! 3. print → parse → print is a fixed point.

use aov_lang::{corpus, parse, structural_eq, to_source};

#[test]
fn corpus_files_match_printer_output() {
    for name in corpus::names() {
        let hand = corpus::hand_built(name).unwrap();
        let printed = to_source(&hand).unwrap_or_else(|e| panic!("{name}: {e}"));
        let file = corpus::source(name).unwrap();
        assert_eq!(
            printed, file,
            "{name}.aov is stale — regenerate with \
             `cargo test -p aov-lang regenerate_corpus -- --ignored`"
        );
    }
}

#[test]
fn corpus_files_parse_to_hand_built_programs() {
    for name in corpus::names() {
        let parsed = parse(corpus::source(name).unwrap())
            .unwrap_or_else(|e| panic!("{name}: {}", e.render(&format!("{name}.aov"))));
        let hand = corpus::hand_built(name).unwrap();
        assert!(
            structural_eq(&parsed, &hand),
            "{name}: parsed program differs from hand-built"
        );
        assert!(parsed.validate().is_ok(), "{name}: parsed program invalid");
    }
}

#[test]
fn print_parse_print_is_fixed_point() {
    for name in corpus::names() {
        let s1 = corpus::source(name).unwrap();
        let p = parse(s1).unwrap();
        let s2 = to_source(&p).unwrap();
        assert_eq!(s1, s2, "{name}: print∘parse not a fixed point");
    }
}

#[test]
fn auxiliary_examples_roundtrip_structurally() {
    use aov_ir::examples;
    for p in [
        examples::heat1d(),
        examples::prefix_sum(),
        examples::wavefront2d(),
        examples::skewed_stencil(),
        examples::example1_sized(3, 4),
        examples::wavefront2d_sized(4, 4),
    ] {
        let src = to_source(&p).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        let back = parse(&src).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        assert!(
            structural_eq(&p, &back),
            "{} differs after round-trip",
            p.name()
        );
    }
}
