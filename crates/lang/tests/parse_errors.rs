//! Negative corpus: every malformed input must produce a caret
//! diagnostic pointing at a sensible line/column — never a panic, never
//! a silent acceptance.

use aov_lang::parse;

/// (source, expected message fragment, expected 1-based line).
const NEGATIVE: &[(&str, &str, u32)] = &[
    // Lexer errors.
    ("program p$;\n", "unexpected character", 1),
    (
        "program p;\nparam n >= 99999999999999999999;\n",
        "out of range",
        2,
    ),
    // Parser errors.
    ("", "expected keyword `program`", 1),
    ("program ;\n", "expected program name", 1),
    ("program p\nparam n;\n", "expected `;`", 2),
    (
        "program p;\nbogus x;\n",
        "expected `param`, `assume`, `array` or `stmt`",
        2,
    ),
    ("program p;\narray A;\n", "expected `[`", 2),
    (
        "program p;\narray A[0];\n",
        "dimensionality must be >= 1",
        2,
    ),
    (
        "program p;\nstmt S() {}\n",
        "expected loop iterator name",
        2,
    ),
    (
        "program p;\narray A[1];\nstmt S(i) {\n  1 <= i <= 4;\n",
        "unclosed statement block",
        5,
    ),
    (
        "program p;\narray A[1];\nstmt S(i) {\n  i;\n  A[i] = 0;\n}\n",
        "relational operator",
        4,
    ),
    (
        "program p;\narray A[1];\nstmt S(i) {\n  1 <= i <= 4;\n  A[i] = ;\n}\n",
        "expected an expression",
        5,
    ),
    (
        "program p;\narray A[1];\nstmt S(i) {\n  1 <= i <= 4;\n  A[i] = 1;\n  A[i] = 2;\n}\n",
        "more than one write",
        6,
    ),
    (
        "program p;\narray A[1];\nstmt S(i) {\n  1 <= i <= 4;\n}\n",
        "has no write",
        3,
    ),
    // Lowering errors.
    ("program p;\nparam n;\nparam n;\n", "duplicate parameter", 3),
    (
        "program p;\narray A[1];\narray A[2];\n",
        "duplicate array",
        3,
    ),
    (
        "program p;\narray A[1];\nstmt S(i) {\n  1 <= i <= 4;\n  B[i] = 0;\n}\n",
        "unknown array `B`",
        5,
    ),
    (
        "program p;\narray A[1];\nstmt S(i) {\n  1 <= q <= 4;\n  A[i] = 0;\n}\n",
        "unknown variable `q`",
        4,
    ),
    (
        "program p;\narray A[1];\nstmt S(i, i) {\n  1 <= i <= 4;\n  A[i] = 0;\n}\n",
        "duplicate loop iterator",
        3,
    ),
    (
        "program p;\nparam n >= 1;\narray A[1];\nstmt S(n) {\n  1 <= n <= 4;\n  A[n] = 0;\n}\n",
        "shadows a structural parameter",
        4,
    ),
    (
        "program p;\narray A[1];\nstmt S(i) {\n  1 <= i <= 4;\n  A[2*i] = 0;\n}\n",
        "must be the loop iterator",
        5,
    ),
    (
        "program p;\narray A[2];\nstmt S(i) {\n  1 <= i <= 4;\n  A[i] = 0;\n}\n",
        "write to `A` has 1 indices",
        5,
    ),
    (
        "program p;\narray A[1];\nstmt S(i) {\n  1 <= i <= 4;\n  A[i] = A[i - 1][i];\n}\n",
        "read of `A` has 2 indices",
        5,
    ),
    (
        "program p;\narray A[1];\nstmt S(i) {\n  1 <= i <= 4;\n  A[i] = 0;\n}\nparam n;\n",
        "parameters must be declared before statements",
        7,
    ),
    // Validation failures surface as diagnostics, too.
    (
        "program p;\narray A[1];\narray B[1];\nstmt S(i) {\n  1 <= i <= 4;\n  A[i] = 0;\n}\n",
        "never written",
        1,
    ),
];

#[test]
fn negative_corpus_produces_caret_diagnostics() {
    for (src, fragment, line) in NEGATIVE {
        let err = match parse(src) {
            Err(e) => e,
            Ok(_) => panic!("accepted malformed input:\n{src}"),
        };
        assert!(
            err.message.contains(fragment),
            "wrong message for:\n{src}\n  got: {}\n  want fragment: {fragment}",
            err.message
        );
        assert_eq!(
            err.line, *line,
            "wrong line for:\n{src}\n  got {} want {line} ({})",
            err.line, err.message
        );
        // Renders without panicking and includes the caret scaffolding.
        let rendered = err.render("test.aov");
        assert!(rendered.contains("error: "), "{rendered}");
        assert!(rendered.contains("^"), "{rendered}");
        assert!(rendered.contains(&format!("test.aov:{}:{}", err.line, err.col)));
    }
}

#[test]
fn diagnostic_points_at_offending_column() {
    let err = parse("program p;\nparam n >= ;\n").unwrap_err();
    assert_eq!((err.line, err.col), (2, 12));
    assert_eq!(err.line_text, "param n >= ;");
}
