//! Canonical pretty-printer: [`Program`] → `.aov` source.
//!
//! The output is designed to reparse to a structurally identical program
//! (checked by a built-in self-check), which is what makes golden-file
//! round-trip tests and generator shrink-repro files possible:
//!
//! * constraints are stored normalized (integer, coprime coefficients),
//!   and normalization is idempotent, so printing a stored constraint and
//!   reparsing it reproduces the constraint exactly;
//! * adjacent constraint pairs in `bound()` shape are re-sugared to
//!   `lo <= i <= hi;` chains, which lower back to the same two
//!   constraints in the same order;
//! * `param_min`-shaped leading parameter constraints are re-sugared to
//!   `param n >= min;`, everything else becomes an `assume`;
//! * array reads are inlined into the body in read-index order, so the
//!   reparse registers them with identical indices.

use aov_ir::{Expr, Program, Statement};
use aov_linalg::{AffineExpr, VarSet};
use aov_numeric::Rational;
use aov_polyhedra::Constraint;
use std::fmt;

/// Why a program could not be rendered as `.aov` source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrintError(pub String);

impl fmt::Display for PrintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot print program: {}", self.0)
    }
}

impl std::error::Error for PrintError {}

const KEYWORDS: [&str; 5] = ["program", "param", "array", "stmt", "assume"];

fn check_ident(name: &str, what: &str) -> Result<(), PrintError> {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if !head_ok || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(PrintError(format!(
            "{what} `{name}` is not a valid identifier"
        )));
    }
    if KEYWORDS.contains(&name) {
        return Err(PrintError(format!(
            "{what} `{name}` collides with a keyword"
        )));
    }
    Ok(())
}

fn int_of(r: &Rational, what: &str) -> Result<i64, PrintError> {
    r.to_i64()
        .filter(|_| r.is_integer())
        .ok_or_else(|| PrintError(format!("{what} {r} is not a (small) integer")))
}

/// Renders an affine expression in the canonical parseable form
/// (`2*i - j + 3`, `-i`, `0`, ...). All coefficients must be integers.
fn render_affine(e: &AffineExpr, vars: &VarSet) -> Result<String, PrintError> {
    let mut out = String::new();
    for k in 0..e.dim() {
        let c = int_of(e.coeff(k), "coefficient")?;
        if c == 0 {
            continue;
        }
        if out.is_empty() {
            if c < 0 {
                out.push('-');
            }
        } else {
            out.push_str(if c < 0 { " - " } else { " + " });
        }
        let a = c.unsigned_abs();
        if a != 1 {
            out.push_str(&format!("{a}*"));
        }
        out.push_str(vars.name(k));
    }
    let k = int_of(e.constant_term(), "constant")?;
    if k != 0 || out.is_empty() {
        if out.is_empty() {
            out.push_str(&k.to_string());
        } else {
            out.push_str(if k < 0 { " - " } else { " + " });
            out.push_str(&k.unsigned_abs().to_string());
        }
    }
    Ok(out)
}

/// Renders a constraint as a standalone line (`expr >= 0` / `expr == 0`).
fn render_constraint(c: &Constraint, vars: &VarSet) -> Result<String, PrintError> {
    let rel = if c.is_equality() { "==" } else { ">=" };
    Ok(format!("{} {rel} 0", render_affine(c.expr(), vars)?))
}

/// Recognizes the `param_min` shape: `+1·x_k - min >= 0` with no other
/// coefficients. Returns `min`.
fn param_min_shape(c: &Constraint, k: usize) -> Option<i64> {
    if c.is_equality() {
        return None;
    }
    let e = c.expr();
    if e.coeff(k) != &Rational::from(1) {
        return None;
    }
    for j in 0..e.dim() {
        if j != k && !e.coeff(j).is_zero() {
            return None;
        }
    }
    let konst = e.constant_term();
    konst
        .is_integer()
        .then(|| konst.to_i64())
        .flatten()
        .map(|v| -v)
}

/// Recognizes a `bound()`-shaped pair: `c1 = it_k - lo >= 0`,
/// `c2 = hi - it_k >= 0` for some iterator `k < depth`. Returns the
/// rendered `lo <= it <= hi` chain.
fn bound_pair(c1: &Constraint, c2: &Constraint, depth: usize, vars: &VarSet) -> Option<String> {
    if c1.is_equality() || c2.is_equality() {
        return None;
    }
    let one = Rational::from(1);
    for k in 0..depth {
        if c1.expr().coeff(k) == &one && c2.expr().coeff(k) == &-&one {
            let it = AffineExpr::var(c1.dim(), k);
            let lo = &it - c1.expr();
            let hi = &it + c2.expr();
            let (Ok(lo), Ok(hi)) = (render_affine(&lo, vars), render_affine(&hi, vars)) else {
                return None;
            };
            return Some(format!("{lo} <= {} <= {hi}", vars.name(k)));
        }
    }
    None
}

fn render_access(
    p: &Program,
    s: &Statement,
    read: usize,
    vars: &VarSet,
) -> Result<String, PrintError> {
    let acc = &s.reads()[read];
    let name = p.array(acc.array()).name();
    check_ident(name, "array name")?;
    let mut out = String::from(name);
    for idx in acc.index() {
        out.push('[');
        out.push_str(&render_affine(idx, vars)?);
        out.push(']');
    }
    Ok(out)
}

fn render_body(p: &Program, s: &Statement, e: &Expr, vars: &VarSet) -> Result<String, PrintError> {
    match e {
        Expr::Read(k) => {
            if *k >= s.reads().len() {
                return Err(PrintError(format!("body references missing read #{k}")));
            }
            render_access(p, s, *k, vars)
        }
        Expr::Call(name, args) => {
            check_ident(name, "function name")?;
            let rendered: Vec<String> = args
                .iter()
                .map(|a| render_body(p, s, a, vars))
                .collect::<Result<_, _>>()?;
            Ok(format!("{name}({})", rendered.join(", ")))
        }
        Expr::Const(v) => Ok(v.to_string()),
        Expr::Iter(k) => {
            let name = s
                .iters()
                .get(*k)
                .ok_or_else(|| PrintError(format!("body references missing iterator #{k}")))?;
            Ok(name.clone())
        }
        Expr::Param(k) => {
            if *k >= p.num_params() {
                return Err(PrintError(format!(
                    "body references missing parameter #{k}"
                )));
            }
            Ok(p.params().names()[*k].clone())
        }
    }
}

fn render_stmt(p: &Program, s: &Statement, out: &mut String) -> Result<(), PrintError> {
    check_ident(s.name(), "statement name")?;
    for it in s.iters() {
        check_ident(it, "iterator name")?;
    }
    let vars = s.space(p.params());
    out.push_str(&format!("stmt {}({}) {{\n", s.name(), s.iters().join(", ")));

    // Domain constraints: re-sugar adjacent bound pairs, print the rest
    // bare. Either form reparses to the identical constraint sequence.
    let cs = s.domain().constraints();
    let mut i = 0;
    while i < cs.len() {
        if i + 1 < cs.len() {
            if let Some(line) = bound_pair(&cs[i], &cs[i + 1], s.depth(), &vars) {
                out.push_str(&format!("  {line};\n"));
                i += 2;
                continue;
            }
        }
        out.push_str(&format!("  {};\n", render_constraint(&cs[i], &vars)?));
        i += 1;
    }

    // The body's reads must be exactly 0..n in pre-order: the reparse
    // registers reads as it meets them, so any other shape would permute
    // the access list.
    let seen = s.body().reads();
    let want: Vec<usize> = (0..s.reads().len()).collect();
    if seen != want {
        return Err(PrintError(format!(
            "statement `{}` body reads {seen:?} are not exactly 0..{} in order",
            s.name(),
            s.reads().len()
        )));
    }

    let array = p.array(s.writes()).name();
    check_ident(array, "array name")?;
    let mut lhs = String::from(array);
    for it in s.iters() {
        lhs.push('[');
        lhs.push_str(it);
        lhs.push(']');
    }
    let body = render_body(p, s, s.body(), &vars)?;
    out.push_str(&format!("  {lhs} = {body};\n}}\n"));
    Ok(())
}

/// Renders `p` as `.aov` source and self-checks that the output reparses
/// to a structurally identical program.
///
/// # Errors
///
/// Returns a [`PrintError`] when the program cannot be expressed in the
/// surface language (non-integer coefficients, invalid identifiers,
/// out-of-order read references) or the self-check fails.
pub fn to_source(p: &Program) -> Result<String, PrintError> {
    check_ident(p.name(), "program name")?;
    let mut out = format!("program {};\n", p.name());

    if p.num_params() > 0 {
        out.push('\n');
    }
    let pcs = p.param_domain().constraints();
    let mut ptr = 0;
    for (k, name) in p.params().names().iter().enumerate() {
        check_ident(name, "parameter name")?;
        if ptr < pcs.len() {
            if let Some(min) = param_min_shape(&pcs[ptr], k) {
                out.push_str(&format!("param {name} >= {min};\n"));
                ptr += 1;
                continue;
            }
        }
        out.push_str(&format!("param {name};\n"));
    }
    for c in &pcs[ptr..] {
        out.push_str(&format!("assume {};\n", render_constraint(c, p.params())?));
    }

    if !p.arrays().is_empty() {
        out.push('\n');
    }
    for a in p.arrays() {
        check_ident(a.name(), "array name")?;
        out.push_str(&format!("array {}[{}];\n", a.name(), a.dim()));
    }

    for s in p.statements() {
        out.push('\n');
        render_stmt(p, s, &mut out)?;
    }

    // Self-check: the output must reparse to the same structure.
    match crate::parse(&out) {
        Ok(back) if crate::structural_eq(p, &back) => Ok(out),
        Ok(_) => Err(PrintError(
            "round-trip self-check failed: reparse differs structurally".into(),
        )),
        Err(d) => Err(PrintError(format!(
            "round-trip self-check failed to reparse: {d}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples;

    #[test]
    fn all_examples_print_and_roundtrip() {
        for p in [
            examples::example1(),
            examples::example2(),
            examples::example3(),
            examples::example4(),
            examples::unschedulable(),
            examples::heat1d(),
            examples::prefix_sum(),
            examples::wavefront2d(),
            examples::skewed_stencil(),
            examples::example1_sized(4, 5),
        ] {
            // to_source self-checks the round-trip already; just unwrap.
            let src = to_source(&p).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert!(src.starts_with(&format!("program {};", p.name())));
        }
    }

    #[test]
    fn printing_is_a_fixed_point() {
        let p = examples::example3();
        let s1 = to_source(&p).unwrap();
        let p2 = crate::parse(&s1).unwrap();
        let s2 = to_source(&p2).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn bound_sugar_is_recovered() {
        let src = to_source(&examples::example1()).unwrap();
        assert!(src.contains("1 <= i <= n;"), "{src}");
        assert!(src.contains("1 <= j <= m;"), "{src}");
        assert!(src.contains("param n >= 1;"), "{src}");
    }

    #[test]
    fn non_bound_constraints_print_bare() {
        let src = to_source(&examples::skewed_stencil()).unwrap();
        // The extra `i <= j + n` constraint is not a bound pair.
        assert!(src.contains(">= 0;"), "{src}");
    }
}
