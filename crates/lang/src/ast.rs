//! Spanned syntax tree for `.aov` programs (the parser's output, the
//! lowering pass's input).

use crate::diag::Span;

/// A whole `.aov` source file.
#[derive(Debug, Clone)]
pub struct Ast {
    pub name: String,
    pub name_span: Span,
    pub items: Vec<Item>,
}

/// A top-level declaration.
#[derive(Debug, Clone)]
pub enum Item {
    /// `param n;` or `param n >= 1;`
    Param {
        name: String,
        span: Span,
        min: Option<i64>,
    },
    /// `assume <chain>;` — a constraint over the structural parameters.
    Assume(RelChain),
    /// `array A[2];`
    Array {
        name: String,
        span: Span,
        dim: usize,
        dim_span: Span,
    },
    /// `stmt S(i, j) { ... }`
    Stmt(StmtAst),
}

/// A statement block.
#[derive(Debug, Clone)]
pub struct StmtAst {
    pub name: String,
    pub span: Span,
    pub iters: Vec<(String, Span)>,
    /// Domain constraints, in source order.
    pub constraints: Vec<RelChain>,
    /// The single write access (LHS of the `=`).
    pub write: WriteAst,
    pub body: Bexpr,
}

/// The write access `A[i][j]` on the left of `=`.
#[derive(Debug, Clone)]
pub struct WriteAst {
    pub array: String,
    pub span: Span,
    /// One index expression per array dimension; lowering checks each is
    /// exactly the corresponding loop iterator.
    pub indices: Vec<Aff>,
}

/// A chained relation `e0 op e1 op e2 ...` (at least one operator); each
/// adjacent pair lowers to one constraint.
#[derive(Debug, Clone)]
pub struct RelChain {
    pub exprs: Vec<Aff>,
    pub ops: Vec<(RelOp, Span)>,
}

/// Relational operator in a constraint chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    Le,
    Lt,
    Ge,
    Gt,
    Eq,
}

/// A syntactic affine expression: a signed sum of terms.
#[derive(Debug, Clone)]
pub struct Aff {
    pub terms: Vec<AffTerm>,
    pub span: Span,
}

/// One term of an affine expression: `coeff` (sign folded in) times an
/// optional variable.
#[derive(Debug, Clone)]
pub struct AffTerm {
    pub coeff: i64,
    pub var: Option<(String, Span)>,
}

/// A statement-body expression.
#[derive(Debug, Clone)]
pub enum Bexpr {
    /// Integer literal (sign folded in).
    Int(i64, Span),
    /// A loop iterator or structural parameter.
    Var(String, Span),
    /// `f(a, b, ...)`
    Call(String, Span, Vec<Bexpr>),
    /// `A[aff][aff]...`
    Read(String, Span, Vec<Aff>),
    /// `a + b` / `a - b` sugar (lowers to `add`/`sub` calls).
    Binop(BinOp, Box<Bexpr>, Box<Bexpr>),
}

/// Body-level binary operator sugar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
}
