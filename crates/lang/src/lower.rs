//! Lowering from the spanned [`Ast`] to an [`aov_ir::Program`].
//!
//! Lowering is where name resolution and structural checks happen; every
//! failure is reported as a caret [`Diagnostic`], never a panic. The
//! produced builder calls mirror the hand-built examples exactly
//! (`param_min`, `bound`-shaped constraint pairs, reads added in body
//! order), so a parsed example is structurally identical to its
//! hand-built twin.

use crate::ast::*;
use crate::diag::{Diagnostic, Span};
use aov_ir::{ArrayId, Expr, Program, ProgramBuilder, StatementBuilder};
use aov_linalg::AffineExpr;
use aov_polyhedra::Constraint;
use std::collections::HashMap;

/// Lowers a parsed file to a validated [`Program`].
///
/// # Errors
///
/// Returns a [`Diagnostic`] for unknown names, duplicate declarations,
/// malformed writes, or any [`Program::validate`] violation.
pub fn lower(src: &str, ast: &Ast) -> Result<Program, Diagnostic> {
    let mut b = ProgramBuilder::new(ast.name.clone());
    let mut params: Vec<String> = Vec::new();
    let mut arrays: HashMap<String, (ArrayId, usize)> = HashMap::new();
    let mut stmt_names: Vec<String> = Vec::new();
    let mut saw_stmt = false;

    for item in &ast.items {
        match item {
            Item::Param { name, span, min } => {
                if saw_stmt {
                    return fail(src, *span, "parameters must be declared before statements");
                }
                if params.iter().any(|p| p == name) {
                    return fail(src, *span, format!("duplicate parameter `{name}`"));
                }
                match min {
                    Some(m) => {
                        b.param_min(name.clone(), *m);
                    }
                    None => {
                        b.param(name.clone());
                    }
                }
                params.push(name.clone());
            }
            Item::Assume(chain) => {
                // Assumptions range over the parameters declared so far;
                // the builder pads them to the final parameter count.
                let scope = Scope::params_only(&params);
                for c in lower_chain(src, chain, &scope)? {
                    b.param_constraint(c);
                }
            }
            Item::Array {
                name, span, dim, ..
            } => {
                if arrays.contains_key(name) {
                    return fail(src, *span, format!("duplicate array `{name}`"));
                }
                let id = b.array(name.clone(), *dim);
                arrays.insert(name.clone(), (id, *dim));
            }
            Item::Stmt(s) => {
                saw_stmt = true;
                if stmt_names.iter().any(|n| n == &s.name) {
                    return fail(src, s.span, format!("duplicate statement `{}`", s.name));
                }
                stmt_names.push(s.name.clone());
                lower_stmt(src, s, &params, &arrays, &mut b)?;
            }
        }
    }

    b.build()
        .map_err(|e| Diagnostic::at(src, ast.name_span, format!("invalid program: {e}")))
}

fn fail<T, S: Into<String>>(src: &str, span: Span, msg: S) -> Result<T, Diagnostic> {
    Err(Diagnostic::at(src, span, msg.into()))
}

/// A variable scope mapping names to coordinates of an affine space.
struct Scope<'a> {
    iters: &'a [(String, Span)],
    params: &'a [String],
}

impl<'a> Scope<'a> {
    fn params_only(params: &'a [String]) -> Self {
        Scope { iters: &[], params }
    }

    fn dim(&self) -> usize {
        self.iters.len() + self.params.len()
    }

    fn resolve(&self, name: &str) -> Option<usize> {
        if let Some(k) = self.iters.iter().position(|(n, _)| n == name) {
            return Some(k);
        }
        self.params
            .iter()
            .position(|p| p == name)
            .map(|k| self.iters.len() + k)
    }
}

/// Lowers a syntactic affine expression over `scope`.
fn lower_aff(src: &str, aff: &Aff, scope: &Scope) -> Result<AffineExpr, Diagnostic> {
    let mut coeffs = vec![0i64; scope.dim()];
    let mut constant = 0i64;
    for t in &aff.terms {
        match &t.var {
            None => constant = constant.saturating_add(t.coeff),
            Some((name, span)) => match scope.resolve(name) {
                Some(k) => coeffs[k] = coeffs[k].saturating_add(t.coeff),
                None => {
                    return fail(src, *span, format!("unknown variable `{name}`"));
                }
            },
        }
    }
    Ok(AffineExpr::from_i64(&coeffs, constant))
}

/// Lowers a relation chain to one constraint per adjacent pair.
fn lower_chain(src: &str, chain: &RelChain, scope: &Scope) -> Result<Vec<Constraint>, Diagnostic> {
    let exprs: Vec<AffineExpr> = chain
        .exprs
        .iter()
        .map(|a| lower_aff(src, a, scope))
        .collect::<Result<_, _>>()?;
    let one = AffineExpr::constant(scope.dim(), 1.into());
    let mut out = Vec::new();
    for (k, (op, _)) in chain.ops.iter().enumerate() {
        let (a, b) = (&exprs[k], &exprs[k + 1]);
        out.push(match op {
            RelOp::Le => Constraint::le(a.clone(), b.clone()),
            RelOp::Lt => Constraint::ge0(&(b - a) - &one),
            RelOp::Ge => Constraint::ge(a.clone(), b.clone()),
            RelOp::Gt => Constraint::ge0(&(a - b) - &one),
            RelOp::Eq => Constraint::eq0(a - b),
        });
    }
    Ok(out)
}

fn lower_stmt(
    src: &str,
    s: &StmtAst,
    params: &[String],
    arrays: &HashMap<String, (ArrayId, usize)>,
    b: &mut ProgramBuilder,
) -> Result<(), Diagnostic> {
    // Iterator names must be unique and disjoint from parameter names
    // (the statement space `iters ++ params` is a single VarSet).
    for (k, (name, span)) in s.iters.iter().enumerate() {
        if s.iters[..k].iter().any(|(n, _)| n == name) {
            return fail(src, *span, format!("duplicate loop iterator `{name}`"));
        }
        if params.iter().any(|p| p == name) {
            return fail(
                src,
                *span,
                format!("loop iterator `{name}` shadows a structural parameter"),
            );
        }
    }
    let iter_names: Vec<&str> = s.iters.iter().map(|(n, _)| n.as_str()).collect();
    let mut sb = b.statement(s.name.clone(), &iter_names);
    let scope = Scope {
        iters: &s.iters,
        params,
    };

    for chain in &s.constraints {
        for c in lower_chain(src, chain, &scope)? {
            sb.constraint(c);
        }
    }

    // The write: indices must be exactly the iteration vector (the IR's
    // single-assignment form has data space = iteration space).
    let Some(&(aid, adim)) = arrays.get(&s.write.array) else {
        return fail(
            src,
            s.write.span,
            format!("unknown array `{}`", s.write.array),
        );
    };
    if s.write.indices.len() != adim {
        return fail(
            src,
            s.write.span,
            format!(
                "write to `{}` has {} indices, array is {}-dimensional",
                s.write.array,
                s.write.indices.len(),
                adim
            ),
        );
    }
    for (r, idx) in s.write.indices.iter().enumerate() {
        let e = lower_aff(src, idx, &scope)?;
        if r >= s.iters.len() || e != AffineExpr::var(scope.dim(), r) {
            let want = s
                .iters
                .get(r)
                .map(|(n, _)| n.clone())
                .unwrap_or_else(|| "?".into());
            return fail(
                src,
                idx.span,
                format!(
                    "write index {} of `{}` must be the loop iterator `{want}`",
                    r + 1,
                    s.write.array
                ),
            );
        }
    }
    sb.writes(aid);

    let body = lower_bexpr(src, &s.body, &scope, arrays, &mut sb)?;
    sb.body(body);
    b.add_statement(sb);
    Ok(())
}

/// Lowers a body expression, registering array reads on `sb` in source
/// order (so `Expr::Read` indices match textual appearance).
fn lower_bexpr(
    src: &str,
    e: &Bexpr,
    scope: &Scope,
    arrays: &HashMap<String, (ArrayId, usize)>,
    sb: &mut StatementBuilder,
) -> Result<Expr, Diagnostic> {
    match e {
        Bexpr::Int(v, _) => Ok(Expr::Const(*v)),
        Bexpr::Var(name, span) => {
            let Some(k) = scope.resolve(name) else {
                return fail(src, *span, format!("unknown variable `{name}`"));
            };
            if k < scope.iters.len() {
                Ok(Expr::Iter(k))
            } else {
                Ok(Expr::Param(k - scope.iters.len()))
            }
        }
        Bexpr::Call(name, _, args) => {
            let mut lowered = Vec::with_capacity(args.len());
            for a in args {
                lowered.push(lower_bexpr(src, a, scope, arrays, sb)?);
            }
            Ok(Expr::call(name.clone(), lowered))
        }
        Bexpr::Read(name, span, indices) => {
            let Some(&(aid, adim)) = arrays.get(name) else {
                return fail(src, *span, format!("unknown array `{name}`"));
            };
            if indices.len() != adim {
                return fail(
                    src,
                    *span,
                    format!(
                        "read of `{name}` has {} indices, array is {adim}-dimensional",
                        indices.len()
                    ),
                );
            }
            let idx: Vec<AffineExpr> = indices
                .iter()
                .map(|a| lower_aff(src, a, scope))
                .collect::<Result<_, _>>()?;
            Ok(Expr::Read(sb.read(aid, idx)))
        }
        Bexpr::Binop(op, a, b) => {
            let la = lower_bexpr(src, a, scope, arrays, sb)?;
            let lb = lower_bexpr(src, b, scope, arrays, sb)?;
            let name = match op {
                BinOp::Add => "add",
                BinOp::Sub => "sub",
            };
            Ok(Expr::call(name, vec![la, lb]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ast;

    fn lower_src(src: &str) -> Result<Program, Diagnostic> {
        lower(src, &parse_ast(src)?)
    }

    #[test]
    fn lowers_prefix_sum_identically() {
        let src = "program prefix_sum;\nparam n >= 1;\narray P[1];\nstmt S(i) {\n  1 <= i <= n;\n  P[i] = add(P[i - 1], i);\n}\n";
        let p = lower_src(src).unwrap();
        let hand = aov_ir::examples::prefix_sum();
        assert_eq!(p.name(), hand.name());
        assert_eq!(p.param_domain(), hand.param_domain());
        assert_eq!(p.statements()[0].domain(), hand.statements()[0].domain());
        assert_eq!(p.statements()[0].body(), hand.statements()[0].body());
        assert_eq!(p.statements()[0].reads(), hand.statements()[0].reads());
    }

    #[test]
    fn plus_sugar_lowers_to_add_call() {
        let src = "program p;\nparam n >= 1;\narray A[1];\nstmt S(i) {\n  1 <= i <= n;\n  A[i] = A[i - 1] + i;\n}\n";
        let p = lower_src(src).unwrap();
        assert_eq!(
            p.statements()[0].body(),
            &Expr::call("add", vec![Expr::Read(0), Expr::Iter(0)])
        );
    }

    #[test]
    fn unknown_variable_is_diagnosed() {
        let src = "program p;\narray A[1];\nstmt S(i) {\n  1 <= i <= q;\n  A[i] = 0;\n}\n";
        let err = lower_src(src).unwrap_err();
        assert!(
            err.message.contains("unknown variable `q`"),
            "{}",
            err.message
        );
        assert_eq!(err.line, 4);
    }

    #[test]
    fn write_index_must_be_iteration_vector() {
        let src = "program p;\nparam n >= 1;\narray A[1];\nstmt S(i) {\n  1 <= i <= n;\n  A[i - 1] = 0;\n}\n";
        let err = lower_src(src).unwrap_err();
        assert!(
            err.message.contains("must be the loop iterator"),
            "{}",
            err.message
        );
    }

    #[test]
    fn iterator_shadowing_param_is_diagnosed() {
        let src =
            "program p;\nparam n >= 1;\narray A[1];\nstmt S(n) {\n  1 <= n <= 4;\n  A[n] = 0;\n}\n";
        let err = lower_src(src).unwrap_err();
        assert!(err.message.contains("shadows"), "{}", err.message);
    }

    #[test]
    fn build_violations_become_diagnostics() {
        // 2-d array written by a 1-d statement.
        let src = "program p;\narray A[2];\nstmt S(i) {\n  1 <= i <= 4;\n  A[i] = 0;\n}\n";
        let err = lower_src(src).unwrap_err();
        assert!(err.message.contains("indices"), "{}", err.message);
    }
}
