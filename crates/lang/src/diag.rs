//! Caret-span diagnostics for parse and lowering errors.

use std::fmt;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

/// A parse/lowering error with enough context to render a caret under the
/// offending source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the error.
    pub line: u32,
    /// 1-based column of the error.
    pub col: u32,
    /// The full source line the error points into (empty if out of range).
    pub line_text: String,
}

impl Diagnostic {
    /// Builds a diagnostic at `span`, capturing the source line from `src`.
    pub fn at<S: Into<String>>(src: &str, span: Span, message: S) -> Self {
        let line_text = src
            .lines()
            .nth(span.line.saturating_sub(1) as usize)
            .unwrap_or("")
            .to_string();
        Diagnostic {
            message: message.into(),
            line: span.line,
            col: span.col,
            line_text,
        }
    }

    /// Renders the classic three-line caret form, naming `file`:
    ///
    /// ```text
    /// error: expected `;`
    ///  --> prog.aov:3:12
    ///   |
    /// 3 | param n >= 1
    ///   |            ^
    /// ```
    pub fn render(&self, file: &str) -> String {
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        let caret_pad = " ".repeat(self.col.saturating_sub(1) as usize);
        format!(
            "error: {msg}\n{pad} --> {file}:{line}:{col}\n{pad} |\n{gutter} | {text}\n{pad} | {caret_pad}^\n",
            msg = self.message,
            line = self.line,
            col = self.col,
            text = self.line_text,
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_line_and_renders_caret() {
        let src = "first line\nparam n >= ;\nlast";
        let d = Diagnostic::at(src, Span { line: 2, col: 12 }, "expected integer");
        assert_eq!(d.line_text, "param n >= ;");
        let r = d.render("p.aov");
        assert!(r.contains("error: expected integer"));
        assert!(r.contains("--> p.aov:2:12"));
        assert!(r.contains("2 | param n >= ;"));
        // Caret under column 12.
        let caret_line = r.lines().last().unwrap();
        assert_eq!(caret_line.find('^'), Some(4 + 11));
    }

    #[test]
    fn out_of_range_line_is_empty() {
        let d = Diagnostic::at("one", Span { line: 9, col: 1 }, "eof");
        assert_eq!(d.line_text, "");
        assert!(d.to_string().contains("9:1"));
    }
}
