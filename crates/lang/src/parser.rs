//! Recursive-descent parser for the `.aov` surface language.
//!
//! Grammar (EBNF; `#` comments and whitespace are skipped by the lexer):
//!
//! ```text
//! file      := "program" IDENT ";" item* EOF
//! item      := "param" IDENT (">=" int)? ";"
//!            | "assume" relchain ";"
//!            | "array" IDENT "[" INT "]" ";"
//!            | "stmt" IDENT "(" IDENT ("," IDENT)* ")" "{" line* "}"
//! line      := IDENT "[" aff "]" ("[" aff "]")* "=" bexpr ";"   -- the write
//!            | relchain ";"                                     -- a constraint
//! relchain  := aff (relop aff)+          relop := "<=" | "<" | ">=" | ">" | "=="
//! aff       := ["-"] aterm (("+" | "-") aterm)*
//! aterm     := INT ("*" IDENT)? | IDENT
//! bexpr     := bterm (("+" | "-") bterm)*
//! bterm     := int
//!            | IDENT "(" [bexpr ("," bexpr)*] ")"               -- call
//!            | IDENT ("[" aff "]")+                             -- array read
//!            | IDENT                                            -- iter/param
//! int       := ["-"] INT
//! ```

use crate::ast::*;
use crate::diag::{Diagnostic, Span};
use crate::lexer::{lex, Tok, Token};

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
}

/// Parses source text into a spanned [`Ast`].
///
/// # Errors
///
/// Returns a caret [`Diagnostic`] describing the first syntax error.
pub fn parse_ast(src: &str) -> Result<Ast, Diagnostic> {
    let toks = lex(src)?;
    Parser { src, toks, pos: 0 }.file()
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, span: Span, msg: String) -> Result<T, Diagnostic> {
        Err(Diagnostic::at(self.src, span, msg))
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Token, Diagnostic> {
        if self.peek() == want {
            Ok(self.bump())
        } else {
            self.err(
                self.span(),
                format!("expected {what}, found {}", self.peek().describe()),
            )
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok((s, span))
            }
            other => self.err(span, format!("expected {what}, found {}", other.describe())),
        }
    }

    /// A possibly negated integer literal.
    fn int(&mut self, what: &str) -> Result<(i64, Span), Diagnostic> {
        let span = self.span();
        let neg = if *self.peek() == Tok::Minus {
            self.bump();
            true
        } else {
            false
        };
        match *self.peek() {
            Tok::Int(v) => {
                self.bump();
                Ok((if neg { -v } else { v }, span))
            }
            ref other => self.err(span, format!("expected {what}, found {}", other.describe())),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<Span, Diagnostic> {
        let span = self.span();
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(span)
            }
            other => self.err(
                span,
                format!("expected keyword `{kw}`, found {}", other.describe()),
            ),
        }
    }

    fn file(mut self) -> Result<Ast, Diagnostic> {
        self.keyword("program")?;
        let (name, name_span) = self.ident("program name")?;
        self.expect(&Tok::Semi, "`;` after program name")?;
        let mut items = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(kw) => match kw.as_str() {
                    "param" => items.push(self.param()?),
                    "assume" => items.push(self.assume()?),
                    "array" => items.push(self.array()?),
                    "stmt" => items.push(Item::Stmt(self.stmt()?)),
                    other => {
                        return self.err(
                            self.span(),
                            format!(
                                "expected `param`, `assume`, `array` or `stmt`, found `{other}`"
                            ),
                        )
                    }
                },
                other => {
                    return self.err(
                        self.span(),
                        format!("expected a declaration, found {}", other.describe()),
                    )
                }
            }
        }
        Ok(Ast {
            name,
            name_span,
            items,
        })
    }

    fn param(&mut self) -> Result<Item, Diagnostic> {
        self.keyword("param")?;
        let (name, span) = self.ident("parameter name")?;
        let min = if *self.peek() == Tok::Ge {
            self.bump();
            Some(self.int("parameter lower bound")?.0)
        } else {
            None
        };
        self.expect(&Tok::Semi, "`;` after parameter declaration")?;
        Ok(Item::Param { name, span, min })
    }

    fn assume(&mut self) -> Result<Item, Diagnostic> {
        self.keyword("assume")?;
        let chain = self.relchain()?;
        self.expect(&Tok::Semi, "`;` after assumption")?;
        Ok(Item::Assume(chain))
    }

    fn array(&mut self) -> Result<Item, Diagnostic> {
        self.keyword("array")?;
        let (name, span) = self.ident("array name")?;
        self.expect(&Tok::LBracket, "`[` after array name")?;
        let dim_span = self.span();
        let (dim, _) = self.int("array dimensionality")?;
        if dim < 1 {
            return self.err(
                dim_span,
                format!("array dimensionality must be >= 1, got {dim}"),
            );
        }
        self.expect(&Tok::RBracket, "`]` after array dimensionality")?;
        self.expect(&Tok::Semi, "`;` after array declaration")?;
        Ok(Item::Array {
            name,
            span,
            dim: dim as usize,
            dim_span,
        })
    }

    fn stmt(&mut self) -> Result<StmtAst, Diagnostic> {
        self.keyword("stmt")?;
        let (name, span) = self.ident("statement name")?;
        self.expect(&Tok::LParen, "`(` after statement name")?;
        let mut iters = vec![self.ident("loop iterator name")?];
        while *self.peek() == Tok::Comma {
            self.bump();
            iters.push(self.ident("loop iterator name")?);
        }
        self.expect(&Tok::RParen, "`)` after loop iterators")?;
        self.expect(&Tok::LBrace, "`{` to open the statement body")?;

        let mut constraints = Vec::new();
        let mut write: Option<(WriteAst, Bexpr)> = None;
        loop {
            match self.peek() {
                Tok::RBrace => {
                    self.bump();
                    break;
                }
                Tok::Eof => {
                    return self.err(self.span(), "unclosed statement block (missing `}`)".into())
                }
                Tok::Ident(_) if *self.peek2() == Tok::LBracket => {
                    // The write access: `A[i][j] = body;`
                    let wspan = self.span();
                    if write.is_some() {
                        return self
                            .err(wspan, format!("statement `{name}` has more than one write"));
                    }
                    let (array, aspan) = self.ident("array name")?;
                    let mut indices = Vec::new();
                    while *self.peek() == Tok::LBracket {
                        self.bump();
                        indices.push(self.aff()?);
                        self.expect(&Tok::RBracket, "`]` after index expression")?;
                    }
                    self.expect(&Tok::Assign, "`=` after write access")?;
                    let body = self.bexpr()?;
                    self.expect(&Tok::Semi, "`;` after statement body")?;
                    write = Some((
                        WriteAst {
                            array,
                            span: aspan,
                            indices,
                        },
                        body,
                    ));
                }
                _ => {
                    let chain = self.relchain()?;
                    self.expect(&Tok::Semi, "`;` after constraint")?;
                    constraints.push(chain);
                }
            }
        }
        let Some((write, body)) = write else {
            return self.err(
                span,
                format!("statement `{name}` has no write (`A[...] = ...;`)"),
            );
        };
        Ok(StmtAst {
            name,
            span,
            iters,
            constraints,
            write,
            body,
        })
    }

    fn relchain(&mut self) -> Result<RelChain, Diagnostic> {
        let mut exprs = vec![self.aff()?];
        let mut ops = Vec::new();
        loop {
            let span = self.span();
            let op = match self.peek() {
                Tok::Le => RelOp::Le,
                Tok::Lt => RelOp::Lt,
                Tok::Ge => RelOp::Ge,
                Tok::Gt => RelOp::Gt,
                Tok::EqEq => RelOp::Eq,
                _ => break,
            };
            self.bump();
            ops.push((op, span));
            exprs.push(self.aff()?);
        }
        if ops.is_empty() {
            return self.err(
                self.span(),
                format!(
                    "expected a relational operator (`<=`, `<`, `>=`, `>`, `==`), found {}",
                    self.peek().describe()
                ),
            );
        }
        Ok(RelChain { exprs, ops })
    }

    /// `["-"] aterm (("+"|"-") aterm)*`
    fn aff(&mut self) -> Result<Aff, Diagnostic> {
        let span = self.span();
        let mut terms = Vec::new();
        let mut sign: i64 = if *self.peek() == Tok::Minus {
            self.bump();
            -1
        } else {
            1
        };
        loop {
            terms.push(self.aterm(sign)?);
            sign = match self.peek() {
                Tok::Plus => 1,
                Tok::Minus => -1,
                _ => break,
            };
            self.bump();
        }
        Ok(Aff { terms, span })
    }

    /// `INT ("*" IDENT)? | IDENT`, with `sign` folded into the coefficient.
    fn aterm(&mut self, sign: i64) -> Result<AffTerm, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                let coeff = sign.checked_mul(v).ok_or_else(|| {
                    Diagnostic::at(self.src, span, "coefficient out of range".to_string())
                })?;
                if *self.peek() == Tok::Star {
                    self.bump();
                    let var = self.ident("variable after `*`")?;
                    Ok(AffTerm {
                        coeff,
                        var: Some(var),
                    })
                } else {
                    Ok(AffTerm { coeff, var: None })
                }
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(AffTerm {
                    coeff: sign,
                    var: Some((s, span)),
                })
            }
            other => self.err(
                span,
                format!(
                    "expected an affine term (integer or variable), found {}",
                    other.describe()
                ),
            ),
        }
    }

    /// `bterm (("+"|"-") bterm)*` — sugar lowering to `add`/`sub` happens
    /// in the lowering pass.
    fn bexpr(&mut self) -> Result<Bexpr, Diagnostic> {
        let mut e = self.bterm()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.bterm()?;
            e = Bexpr::Binop(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn bterm(&mut self) -> Result<Bexpr, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(_) | Tok::Minus => {
                let (v, span) = self.int("integer literal")?;
                Ok(Bexpr::Int(v, span))
            }
            Tok::Ident(name) => {
                self.bump();
                match self.peek() {
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if *self.peek() != Tok::RParen {
                            args.push(self.bexpr()?);
                            while *self.peek() == Tok::Comma {
                                self.bump();
                                args.push(self.bexpr()?);
                            }
                        }
                        self.expect(&Tok::RParen, "`)` after call arguments")?;
                        Ok(Bexpr::Call(name, span, args))
                    }
                    Tok::LBracket => {
                        let mut indices = Vec::new();
                        while *self.peek() == Tok::LBracket {
                            self.bump();
                            indices.push(self.aff()?);
                            self.expect(&Tok::RBracket, "`]` after index expression")?;
                        }
                        Ok(Bexpr::Read(name, span, indices))
                    }
                    _ => Ok(Bexpr::Var(name, span)),
                }
            }
            other => self.err(
                span,
                format!("expected an expression, found {}", other.describe()),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let ast = parse_ast(
            "program p;\nparam n >= 1;\narray A[1];\nstmt S(i) {\n  1 <= i <= n;\n  A[i] = f(A[i - 1]);\n}\n",
        )
        .unwrap();
        assert_eq!(ast.name, "p");
        assert_eq!(ast.items.len(), 3);
        let Item::Stmt(s) = &ast.items[2] else {
            panic!("expected stmt")
        };
        assert_eq!(s.iters.len(), 1);
        assert_eq!(s.constraints.len(), 1);
        assert_eq!(s.constraints[0].exprs.len(), 3);
        assert_eq!(s.write.array, "A");
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse_ast("program p\n").unwrap_err();
        assert!(err.message.contains("expected `;`"), "{}", err.message);
        assert!(err.message.contains("end of input"), "{}", err.message);
    }

    #[test]
    fn rejects_double_write() {
        let err = parse_ast("program p;\narray A[1];\nstmt S(i) {\n  A[i] = 1;\n  A[i] = 2;\n}\n")
            .unwrap_err();
        assert!(
            err.message.contains("more than one write"),
            "{}",
            err.message
        );
        assert_eq!(err.line, 5);
    }

    #[test]
    fn rejects_constraint_without_relation() {
        let err = parse_ast("program p;\nstmt S(i) {\n  i + 1;\n}\n").unwrap_err();
        assert!(
            err.message.contains("relational operator"),
            "{}",
            err.message
        );
    }
}
