//! Tokenizer for the `.aov` surface language.
//!
//! Hand-rolled, zero-dependency, with 1-based line/column positions on
//! every token so the parser can produce caret diagnostics.

use crate::diag::{Diagnostic, Span};

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`program`, `param`, `array`, `stmt`,
    /// `assume` are recognized contextually by the parser).
    Ident(String),
    /// Non-negative integer literal (unary minus is a separate token).
    Int(i64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Star,
    Plus,
    Minus,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// End of input (always the last token).
    Eof,
}

impl Tok {
    /// Human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Star => "`*`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Assign => "`=`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenizes `src`, returning the token stream (terminated by [`Tok::Eof`]).
///
/// `#` starts a comment running to end of line.
///
/// # Errors
///
/// Returns a caret [`Diagnostic`] on the first unrecognized character or
/// malformed literal.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = src.chars().peekable();

    macro_rules! push {
        ($tok:expr, $line:expr, $col:expr) => {
            toks.push(Token {
                tok: $tok,
                span: Span {
                    line: $line,
                    col: $col,
                },
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
                col += 1;
            }
            '#' => {
                // Comment to end of line.
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(s), tline, tcol);
            }
            '0'..='9' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                match s.parse::<i64>() {
                    Ok(v) => push!(Tok::Int(v), tline, tcol),
                    Err(_) => {
                        return Err(Diagnostic::at(
                            src,
                            Span {
                                line: tline,
                                col: tcol,
                            },
                            format!("integer literal `{s}` out of range"),
                        ))
                    }
                }
            }
            '(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | '*' | '+' | '-' => {
                chars.next();
                col += 1;
                let t = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    '*' => Tok::Star,
                    '+' => Tok::Plus,
                    _ => Tok::Minus,
                };
                push!(t, tline, tcol);
            }
            '=' | '<' | '>' => {
                chars.next();
                col += 1;
                let two = chars.peek() == Some(&'=');
                if two {
                    chars.next();
                    col += 1;
                }
                let t = match (c, two) {
                    ('=', true) => Tok::EqEq,
                    ('=', false) => Tok::Assign,
                    ('<', true) => Tok::Le,
                    ('<', false) => Tok::Lt,
                    ('>', true) => Tok::Ge,
                    _ => Tok::Gt,
                };
                push!(t, tline, tcol);
            }
            _ => {
                return Err(Diagnostic::at(
                    src,
                    Span {
                        line: tline,
                        col: tcol,
                    },
                    format!("unexpected character `{c}`"),
                ));
            }
        }
    }
    push!(Tok::Eof, line, col);
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_all_token_kinds() {
        let toks = lex("stmt S(i) { 1 <= i >= 0 < 2 > -3; A[2*i] == = } # c\nx").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::Ident(s) if s == "stmt"));
        assert!(kinds.contains(&&Tok::Le));
        assert!(kinds.contains(&&Tok::Ge));
        assert!(kinds.contains(&&Tok::Lt));
        assert!(kinds.contains(&&Tok::Gt));
        assert!(kinds.contains(&&Tok::EqEq));
        assert!(kinds.contains(&&Tok::Assign));
        assert!(kinds.contains(&&Tok::Star));
        assert!(kinds.contains(&&Tok::Minus));
        assert_eq!(kinds.last(), Some(&&Tok::Eof));
        // The comment swallowed the rest of line 1; `x` is on line 2.
        let x = toks
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "x"))
            .unwrap();
        assert_eq!((x.span.line, x.span.col), (2, 1));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("ab cd\n  ef").unwrap();
        assert_eq!((toks[0].span.line, toks[0].span.col), (1, 1));
        assert_eq!((toks[1].span.line, toks[1].span.col), (1, 4));
        assert_eq!((toks[2].span.line, toks[2].span.col), (2, 3));
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("param n @ 1;").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!((err.line, err.col), (1, 9));
    }

    #[test]
    fn rejects_overflowing_integer() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"));
    }
}
