//! The built-in `.aov` corpus: the paper's four examples plus the
//! unschedulable stress program, serialized by [`crate::to_source`] and
//! checked in under `examples/` at the workspace root.
//!
//! The files are the canonical printer output — the golden tests in
//! `tests/roundtrip.rs` pin `to_source(hand_built) == file bytes` and
//! `parse(file) ≡ hand_built`, so any grammar or printer drift shows up
//! as a corpus diff. Regenerate after an intentional change with
//! `cargo test -p aov-lang regenerate_corpus -- --ignored`.

/// Names and source text of the built-in corpus, in paper order.
pub const SOURCES: [(&str, &str); 5] = [
    ("example1", include_str!("../../../examples/example1.aov")),
    ("example2", include_str!("../../../examples/example2.aov")),
    ("example3", include_str!("../../../examples/example3.aov")),
    ("example4", include_str!("../../../examples/example4.aov")),
    (
        "unschedulable",
        include_str!("../../../examples/unschedulable.aov"),
    ),
];

/// Source text of a built-in corpus program by name.
pub fn source(name: &str) -> Option<&'static str> {
    SOURCES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
}

/// The corpus program names, in order.
pub fn names() -> impl Iterator<Item = &'static str> {
    SOURCES.iter().map(|(n, _)| *n)
}

/// The hand-built twin of a corpus program.
pub fn hand_built(name: &str) -> Option<aov_ir::Program> {
    use aov_ir::examples;
    Some(match name {
        "example1" => examples::example1(),
        "example2" => examples::example2(),
        "example3" => examples::example3(),
        "example4" => examples::example4(),
        "unschedulable" => examples::unschedulable(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rewrites the corpus files from the hand-built programs. Run after
    /// an intentional grammar/printer change, then review the diff:
    /// `cargo test -p aov-lang regenerate_corpus -- --ignored`
    #[test]
    #[ignore]
    fn regenerate_corpus() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
        for name in names() {
            let p = hand_built(name).unwrap();
            let src = crate::to_source(&p).unwrap();
            std::fs::write(root.join(format!("{name}.aov")), src).unwrap();
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(source("example1").is_some());
        assert!(source("nope").is_none());
        assert!(hand_built("unschedulable").is_some());
        assert!(hand_built("nope").is_none());
        assert_eq!(names().count(), 5);
    }
}
