//! `aov-lang`: the textual frontend for the `aov` workspace.
//!
//! A hand-rolled, zero-dependency lexer + recursive-descent parser for a
//! small affine loop-nest language (`.aov` files), lowered to
//! [`aov_ir::Program`] with line/column caret diagnostics, plus a
//! canonical pretty-printer so every program the IR can express in the
//! surface syntax round-trips exactly.
//!
//! ```text
//! program example1;
//!
//! param n >= 1;
//! param m >= 1;
//!
//! array A[2];
//!
//! stmt S(i, j) {
//!   1 <= i <= n;
//!   1 <= j <= m;
//!   A[i][j] = f(A[i - 2][j - 1], A[i][j - 1], A[i + 1][j - 1]);
//! }
//! ```
//!
//! # Examples
//!
//! ```
//! let src = aov_lang::corpus::source("example1").unwrap();
//! let parsed = aov_lang::parse(src).unwrap();
//! let hand = aov_ir::examples::example1();
//! assert!(aov_lang::structural_eq(&parsed, &hand));
//! ```

// Library code must surface failures as values (see `aov-fault`);
// `unwrap`/`expect` are reserved for tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod corpus;
mod diag;
pub mod lexer;
mod lower;
pub mod parser;
mod printer;

pub use diag::{Diagnostic, Span};
pub use printer::{to_source, PrintError};

use aov_ir::Program;

/// Parses `.aov` source into a validated [`Program`].
///
/// Runs under the `lang.parse` (syntax) and `lang.lower` (name
/// resolution + IR construction) trace spans.
///
/// # Errors
///
/// Returns a caret [`Diagnostic`] for the first syntax or lowering error.
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let ast = {
        let _span = aov_trace::span!("lang.parse", bytes = src.len());
        parser::parse_ast(src)?
    };
    let _span = aov_trace::span!("lang.lower", items = ast.items.len());
    lower::lower(src, &ast)
}

/// Structural equality of two programs: same name, parameters, parameter
/// domain, arrays, and statements (name, iterators, domain, write, reads,
/// body). [`Program`] doesn't implement `PartialEq`, so round-trip tests
/// compare through this.
pub fn structural_eq(a: &Program, b: &Program) -> bool {
    if a.name() != b.name()
        || a.params() != b.params()
        || a.param_domain() != b.param_domain()
        || a.arrays() != b.arrays()
        || a.statements().len() != b.statements().len()
    {
        return false;
    }
    a.statements().iter().zip(b.statements()).all(|(x, y)| {
        x.name() == y.name()
            && x.iters() == y.iters()
            && x.domain() == y.domain()
            && x.writes() == y.writes()
            && x.reads() == y.reads()
            && x.body() == y.body()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples;

    #[test]
    fn structural_eq_detects_differences() {
        let a = examples::example1();
        assert!(structural_eq(&a, &examples::example1()));
        assert!(!structural_eq(&a, &examples::example2()));
        assert!(!structural_eq(&a, &examples::example1_sized(4, 4)));
    }

    #[test]
    fn parse_emits_trace_spans() {
        aov_trace::set_enabled(true);
        aov_trace::clear();
        let _ = parse("program p;\narray A[1];\nstmt S(i) {\n  1 <= i <= 4;\n  A[i] = 0;\n}\n")
            .unwrap();
        let names: Vec<String> = aov_trace::drain().into_iter().map(|r| r.name).collect();
        aov_trace::set_enabled(false);
        assert!(names.iter().any(|n| n == "lang.parse"), "{names:?}");
        assert!(names.iter().any(|n| n == "lang.lower"), "{names:?}");
    }
}
