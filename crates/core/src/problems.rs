//! The paper's three schedule/storage problems (§4.5).

use crate::check::Checker;
use crate::objective::{evenness, objective_value, LENGTH_WEIGHT};
use crate::storage::{
    dependence_active_in_pattern, sign_patterns, storage_forms_for_dep, storage_rows_concrete,
    Orthant,
};
use crate::{CoreError, OccupancyVector, OvSpace};
use aov_fault::{AovError, Budget};
use aov_ir::{analysis, Program};
use aov_linalg::AffineExpr;
use aov_lp::{Cmp, LpOutcome, Model};
use aov_polyhedra::{Constraint, Polyhedron};
use aov_schedule::farkas::farkas_system;
use aov_schedule::{legal, scheduler, Schedule, ScheduleSpace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::PoisonError;

/// Default search radius (max Manhattan length) for the exact
/// candidate-enumeration solvers.
pub const DEFAULT_SEARCH_RADIUS: i64 = 8;

/// Solves the per-orthant subproblems with a deterministic reduction.
///
/// The sequential scan keeps the first pattern achieving a strictly
/// smaller objective, which is exactly the minimum under the key
/// `(objective, pattern index)`. The parallel branch distributes
/// patterns over `std::thread::scope` workers and reduces by the same
/// key, so both modes return bit-identical results. The incumbent bound
/// is shared for pruning; the parallel branch prunes strictly (`>`
/// instead of `>=`) so equal-objective patterns with smaller indices are
/// never lost to a later-indexed pattern that merely finished first.
///
/// Fault behaviour: each orthant solve runs under `catch_unwind`, so a
/// panicking worker surfaces as [`AovError::WorkerPanic`] instead of
/// poisoning the whole `std::thread::scope`. The fan-out runs under a
/// [`Budget::child`] scope: the first failure cancels the child, so
/// losing siblings stop pivoting, while the caller's budget — and any
/// later pipeline stage sharing it — stays live. Sibling cancellation
/// errors are ranked below the primary cause in the error reduction,
/// keeping the reported failure deterministic. Under a *finite* budget,
/// incumbent pruning is disabled: pruning makes the per-pattern work
/// depend on completion order, and solving every pattern is what makes
/// the budget trip point worker-count-invariant.
type OrthantSolution = (i64, Vec<OccupancyVector>);
type OrthantSolver<'a> =
    &'a (dyn Fn(&Orthant, &Budget) -> Result<Option<OrthantSolution>, AovError> + Sync);

fn fan_out_patterns(
    patterns: &[Orthant],
    workers: usize,
    budget: &Budget,
    site: &'static str,
    prune: &(dyn Fn(&Orthant) -> i64 + Sync),
    solve: OrthantSolver<'_>,
) -> Result<Option<OrthantSolution>, AovError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let pruning = budget.is_unlimited();
    // Child scope: shares the work counters (limits stay global) but
    // owns the cancel flag, so first-failure cancellation of this
    // fan-out cannot poison later stages using the parent budget.
    let scoped = budget.child();
    let run_one = |pat: &Orthant| -> Result<Option<OrthantSolution>, AovError> {
        match catch_unwind(AssertUnwindSafe(|| -> Result<_, AovError> {
            scoped.check(site)?;
            aov_fault::chaos::tick(site)?;
            solve(pat, &scoped)
        })) {
            Ok(r) => r,
            Err(payload) => Err(AovError::from_panic(site, payload.as_ref())),
        }
    };
    if workers <= 1 || patterns.len() <= 1 {
        let mut best: Option<(i64, Vec<OccupancyVector>)> = None;
        for pat in patterns {
            if pruning {
                if let Some((bound, _)) = &best {
                    if prune(pat) >= *bound {
                        continue;
                    }
                }
            }
            if let Some((obj, vs)) = run_one(pat)? {
                if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                    best = Some((obj, vs));
                }
            }
        }
        return Ok(best);
    }
    let next = AtomicUsize::new(0);
    let bound = Mutex::new(i64::MAX);
    let results: Mutex<Vec<(usize, i64, Vec<OccupancyVector>)>> = Mutex::new(Vec::new());
    let failures: Mutex<Vec<(usize, AovError)>> = Mutex::new(Vec::new());
    // Worker spans adopt the caller's span so the trace stays one tree.
    let ctx = aov_trace::current_context();
    std::thread::scope(|s| {
        for _ in 0..workers.min(patterns.len()) {
            s.spawn(|| {
                let _adopt = aov_trace::adopt(&ctx);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= patterns.len() || scoped.is_cancelled() {
                        break;
                    }
                    let pat = &patterns[i];
                    if pruning && prune(pat) > *lock(&bound) {
                        continue;
                    }
                    aov_support::static_counter!("core.fanout.patterns")
                        .fetch_add(1, Ordering::Relaxed);
                    match run_one(pat) {
                        Ok(Some((obj, vs))) => {
                            let mut b = lock(&bound);
                            if obj < *b {
                                *b = obj;
                            }
                            drop(b);
                            lock(&results).push((i, obj, vs));
                        }
                        Ok(None) => {}
                        Err(e) => {
                            // First failure wins; cancel the siblings
                            // (losing orthants stop pivoting at their
                            // next budget checkpoint).
                            lock(&failures).push((i, e));
                            scoped.cancel();
                        }
                    }
                }
            });
        }
    });
    let failures = failures
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    if !failures.is_empty() {
        // Deterministic reduction of concurrent failures: the primary
        // cause (lowest pattern index among non-cancellation errors)
        // beats the cancellations it triggered. Every real budget trip
        // carries the identical (resource, limit, site) payload, so the
        // reported error is worker-count-invariant.
        let cause = failures
            .into_iter()
            .min_by_key(|(i, e)| (e.is_cancellation(), *i))
            .map(|(_, e)| e);
        return Err(cause.unwrap_or(AovError::Internal {
            detail: "failure set emptied during reduction".to_string(),
        }));
    }
    Ok(results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .min_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)))
        .map(|(_, obj, vs)| (obj, vs)))
}

/// Poison-tolerant lock: orthant workers isolate panics via
/// `catch_unwind`, so a poisoned mutex still guards consistent data.
fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Extracts an integral candidate and its exact objective from an ILP
/// outcome (the reduction key of [`fan_out_patterns`]).
fn candidate_of(ov_space: &OvSpace, outcome: LpOutcome) -> Option<(i64, Vec<OccupancyVector>)> {
    if let LpOutcome::Optimal(sol) = outcome {
        let point: Option<Vec<i64>> = (0..ov_space.dim())
            .map(|k| sol.values.as_slice()[k].to_i64())
            .collect();
        let point = point?;
        let vectors = ov_space.split(&point);
        let obj: i64 = vectors
            .iter()
            .map(|v| objective_value(v.components()))
            .sum();
        Some((obj, vectors))
    } else {
        None
    }
}

/// Occupancy vectors per array (array order of the program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OvResult {
    names: Vec<String>,
    vectors: Vec<OccupancyVector>,
}

impl OvResult {
    pub(crate) fn new(p: &Program, vectors: Vec<OccupancyVector>) -> Self {
        OvResult {
            names: p.arrays().iter().map(|a| a.name().to_string()).collect(),
            vectors,
        }
    }

    /// Vector of the array with the given name.
    pub fn vector_for(&self, array: &str) -> Option<&OccupancyVector> {
        self.names
            .iter()
            .position(|n| n == array)
            .map(|k| &self.vectors[k])
    }

    /// All vectors in array order.
    pub fn vectors(&self) -> &[OccupancyVector] {
        &self.vectors
    }

    /// Total objective (sum over arrays).
    pub fn objective(&self) -> i64 {
        self.vectors
            .iter()
            .map(|v| objective_value(v.components()))
            .sum()
    }
}

impl std::fmt::Display for OvResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (n, v) in self.names.iter().zip(&self.vectors) {
            writeln!(f, "v_{n} = {v}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Problem 1: an occupancy vector for a given schedule (§4.5.1)
// ---------------------------------------------------------------------

/// Shortest occupancy vectors valid for the given schedule, by the
/// paper's LP method: substitute the schedule into the linearized
/// storage constraints and minimize the two-term objective, solving once
/// per sign orthant (closed orthants; exact `Z`-emptiness pruning per
/// orthant).
///
/// # Errors
///
/// * [`CoreError::IllegalSchedule`] — the schedule violates dependences.
/// * [`CoreError::NoVectorFound`] — no orthant admits a valid vector.
pub fn ov_for_schedule(p: &Program, sched: &Schedule) -> Result<OvResult, CoreError> {
    ov_for_schedule_with(p, sched, 1)
}

/// [`ov_for_schedule`] with the per-orthant subproblems fanned out over
/// `workers` threads (`<= 1` means sequential). Results are bit-identical
/// to the sequential solver regardless of worker count.
///
/// # Errors
///
/// As for [`ov_for_schedule`].
pub fn ov_for_schedule_with(
    p: &Program,
    sched: &Schedule,
    workers: usize,
) -> Result<OvResult, CoreError> {
    ov_for_schedule_budgeted(p, sched, workers, &Budget::unlimited())
}

/// [`ov_for_schedule_with`] under a [`Budget`]: every simplex pivot and
/// branch-and-bound node in the per-orthant ILPs charges the budget, and
/// exhaustion surfaces as [`CoreError::Fault`] with the trip site.
///
/// # Errors
///
/// As for [`ov_for_schedule`], plus [`CoreError::Fault`] on budget
/// exhaustion, cancellation, or an isolated worker panic.
pub fn ov_for_schedule_budgeted(
    p: &Program,
    sched: &Schedule,
    workers: usize,
    budget: &Budget,
) -> Result<OvResult, CoreError> {
    if !legal::is_legal(p, sched) {
        return Err(CoreError::IllegalSchedule);
    }
    let space = ScheduleSpace::new(p);
    let ov_space = OvSpace::new(p);
    let deps = analysis::dependences(p);
    let theta = legal::point_of(p, &space, sched);
    // Pattern-independent rows, instantiated at the schedule point.
    let mut dep_rows: Vec<Vec<AffineExpr>> = Vec::with_capacity(deps.len());
    for (didx, dep) in deps.iter().enumerate() {
        let _span = aov_trace::span!("core.storage_forms_for_dep", dep = didx);
        let forms = storage_forms_for_dep(p, &space, &ov_space, dep)?;
        dep_rows.push(forms.iter().map(|f| f.at_point(&theta)).collect());
    }
    let patterns: Vec<Orthant> = sign_patterns(ov_space.dim())
        .into_iter()
        .filter(|pat| !pattern_has_zero_array(p, &ov_space, pat))
        .collect();
    let solve = |pattern: &Orthant, b: &Budget| {
        let _span = aov_trace::span!("p1.orthant", pattern = pattern_label(pattern));
        let mut m = Model::new();
        for name in ov_space.vars().names() {
            let v = m.add_var(name.clone());
            m.set_integer(v);
        }
        for (dep, rows) in deps.iter().zip(&dep_rows) {
            if !dependence_active_in_pattern(p, &ov_space, dep, pattern) {
                continue;
            }
            for r in rows {
                m.constrain(r.clone(), Cmp::Ge);
            }
        }
        let obj = install_pattern_objective(&mut m, p, &ov_space, pattern);
        m.minimize(obj);
        Ok(candidate_of(&ov_space, m.solve_ilp_budgeted(b)?))
    };
    fan_out_patterns(
        &patterns,
        workers,
        budget,
        "p1.orthant",
        &|_| i64::MIN,
        &solve,
    )?
    .map(|(_, vs)| OvResult::new(p, vs))
    .ok_or(CoreError::NoVectorFound)
}

/// Compact trace label for a sign pattern, e.g. `+0-`.
fn pattern_label(pattern: &Orthant) -> String {
    pattern
        .iter()
        .map(|&s| match s.cmp(&0) {
            std::cmp::Ordering::Greater => '+',
            std::cmp::Ordering::Equal => '0',
            std::cmp::Ordering::Less => '-',
        })
        .collect()
}

/// A pattern whose slice for some array is all zeros encodes the zero
/// vector for that array — never a realizable occupancy vector.
fn pattern_has_zero_array(p: &Program, ov_space: &OvSpace, pattern: &Orthant) -> bool {
    p.arrays().iter().enumerate().any(|(aidx, a)| {
        (0..a.dim()).all(|k| pattern[ov_space.component(aov_ir::ArrayId(aidx), k)] == 0)
    })
}

/// Exact cross-check for Problem 1: enumerate integer candidates per
/// array by increasing objective and validate each with the exact
/// checker.
///
/// # Errors
///
/// * [`CoreError::IllegalSchedule`] — the schedule violates dependences.
/// * [`CoreError::NoVectorFound`] — nothing within `max_radius`.
pub fn ov_for_schedule_search(
    p: &Program,
    sched: &Schedule,
    max_radius: i64,
) -> Result<OvResult, CoreError> {
    if !legal::is_legal(p, sched) {
        return Err(CoreError::IllegalSchedule);
    }
    let checker = Checker::new(p);
    let mut vectors = Vec::new();
    for (aidx, a) in p.arrays().iter().enumerate() {
        let aid = aov_ir::ArrayId(aidx);
        let found = search_shells(a.dim(), max_radius, |v| {
            checker.valid_for_schedule(aid, v, sched)
        });
        match found {
            Some(v) => vectors.push(OccupancyVector::new(v)),
            None => return Err(CoreError::NoVectorFound),
        }
    }
    Ok(OvResult::new(p, vectors))
}

// ---------------------------------------------------------------------
// Problem 2: schedules for given occupancy vectors (§4.5.2)
// ---------------------------------------------------------------------

/// The polyhedron of affine schedules valid for the given occupancy
/// vectors: causality constraints (Eq. 11) plus instantiated storage
/// constraints (Eq. 10).
///
/// # Errors
///
/// Propagates polyhedral failures.
pub fn schedules_for_ov(
    p: &Program,
    vectors: &[OccupancyVector],
) -> Result<(ScheduleSpace, Polyhedron), CoreError> {
    let (space, mut rows) = legal::schedule_constraints(p)?;
    let deps = analysis::dependences(p);
    for r in storage_rows_concrete(p, &space, &deps, vectors)? {
        if !rows.contains(&r) {
            rows.push(r);
        }
    }
    let poly =
        Polyhedron::from_constraints(space.dim(), rows.into_iter().map(Constraint::ge0).collect());
    Ok((space, poly))
}

/// A best (smallest-coefficient) schedule valid for the given occupancy
/// vectors, or [`CoreError::Unschedulable`] when the vectors are too
/// short for any affine schedule.
///
/// # Errors
///
/// * [`CoreError::Unschedulable`] — no schedule respects both the
///   dependences and the storage constraints.
pub fn best_schedule_for_ov(
    p: &Program,
    vectors: &[OccupancyVector],
) -> Result<Schedule, CoreError> {
    best_schedule_for_ov_budgeted(p, vectors, &Budget::unlimited())
}

/// [`best_schedule_for_ov`] under a [`Budget`]: the scheduling ILP
/// charges the budget per pivot and per branch-and-bound node.
///
/// # Errors
///
/// As for [`best_schedule_for_ov`], plus [`CoreError::Fault`] on budget
/// exhaustion or cancellation.
pub fn best_schedule_for_ov_budgeted(
    p: &Program,
    vectors: &[OccupancyVector],
    budget: &Budget,
) -> Result<Schedule, CoreError> {
    let (space, mut rows) = {
        let _s = aov_trace::span!("p2.legal_constraints");
        legal::schedule_constraints(p)?
    };
    let deps = {
        let _s = aov_trace::span!("p2.dependences");
        analysis::dependences(p)
    };
    {
        let _s = aov_trace::span!("p2.storage_rows", deps = deps.len());
        for r in storage_rows_concrete(p, &space, &deps, vectors)? {
            if !rows.contains(&r) {
                rows.push(r);
            }
        }
    }
    let _s = aov_trace::span!("p2.solve", rows = rows.len());
    Ok(scheduler::solve_budgeted(p, &space, rows, &[], budget)?)
}

// ---------------------------------------------------------------------
// Problem 3: the AOV (§4.5.3)
// ---------------------------------------------------------------------

/// Shortest Affine Occupancy Vectors by the paper's Farkas method: each
/// linearized storage constraint, affine in Θ with coefficients affine in
/// `v`, is equated to a nonnegative combination of the schedule
/// constraints; the resulting system is linear in `(v, λ)` and one ILP
/// per sign orthant minimizes the two-term objective.
///
/// # Errors
///
/// * [`CoreError::Unschedulable`] — the program has no one-dimensional
///   affine schedule, so "valid for all legal schedules" is vacuous.
/// * [`CoreError::NoVectorFound`] — no orthant admits a vector.
pub fn aov(p: &Program) -> Result<OvResult, CoreError> {
    aov_with(p, 1)
}

/// [`aov`] with the per-orthant Farkas ILPs fanned out over `workers`
/// threads (`<= 1` means sequential). The reduction is deterministic:
/// results are bit-identical to the sequential solver for any worker
/// count.
///
/// # Errors
///
/// As for [`aov`].
pub fn aov_with(p: &Program, workers: usize) -> Result<OvResult, CoreError> {
    aov_budgeted(p, workers, &Budget::unlimited())
}

/// [`aov_with`] under a [`Budget`]: every simplex pivot and
/// branch-and-bound node in the per-orthant Farkas ILPs charges the
/// budget. A trip cancels the sibling orthants (scoped to this call —
/// the caller's budget stays live) and surfaces as [`CoreError::Fault`]
/// with the deterministic trip site.
///
/// # Errors
///
/// As for [`aov`], plus [`CoreError::Fault`] on budget exhaustion,
/// cancellation, or an isolated worker panic.
pub fn aov_budgeted(p: &Program, workers: usize, budget: &Budget) -> Result<OvResult, CoreError> {
    let (space, sched_rows) = legal::schedule_constraints(p)?;
    // Farkas needs ℛ nonempty; also drop redundant rows to shrink the
    // multiplier count.
    let legal_poly = Polyhedron::from_constraints(
        space.dim(),
        sched_rows.iter().cloned().map(Constraint::ge0).collect(),
    );
    if legal_poly.is_empty() {
        return Err(CoreError::Unschedulable);
    }
    let reduced = legal_poly.remove_redundant();
    let sched_rows: Vec<AffineExpr> = reduced
        .constraints()
        .iter()
        .map(|c| c.expr().clone())
        .collect();

    let ov_space = OvSpace::new(p);
    let deps = analysis::dependences(p);
    // Pattern-independent storage forms and Farkas systems, per dep.
    let mut dep_systems: Vec<Vec<aov_schedule::farkas::FarkasSystem>> =
        Vec::with_capacity(deps.len());
    for (didx, dep) in deps.iter().enumerate() {
        let _span = aov_trace::span!("core.storage_forms_for_dep", dep = didx);
        let forms = storage_forms_for_dep(p, &space, &ov_space, dep)?;
        dep_systems.push(
            forms
                .iter()
                .map(|f| farkas_system(f, &sched_rows))
                .collect(),
        );
    }
    let patterns: Vec<Orthant> = sign_patterns(ov_space.dim())
        .into_iter()
        .filter(|pat| !pattern_has_zero_array(p, &ov_space, pat))
        .collect();
    // Bound: with |v| >= objective of the incumbent, skip the pattern
    // early by its minimum possible length.
    let prune = |pattern: &Orthant| -> i64 {
        let min_len: i64 = pattern.iter().map(|&s| i64::from(s != 0)).sum();
        LENGTH_WEIGHT * min_len
    };
    let solve = |pattern: &Orthant, b: &Budget| {
        let _span = aov_trace::span!("aov.orthant", pattern = pattern_label(pattern));
        let mut m = Model::new();
        {
            let _build = aov_trace::span!("farkas.model_build");
            for name in ov_space.vars().names() {
                let v = m.add_var(name.clone());
                m.set_integer(v);
            }
            let mut fi = 0usize;
            for (dep, systems) in deps.iter().zip(&dep_systems) {
                if !dependence_active_in_pattern(p, &ov_space, dep, pattern) {
                    continue;
                }
                for sys in systems {
                    // Fresh multipliers for this storage row.
                    let lambda_base = m.num_vars();
                    for j in 0..sys.num_multipliers {
                        m.add_nonneg_var(format!("lam_{fi}_{j}"));
                    }
                    fi += 1;
                    let total = m.num_vars();
                    for eq in &sys.equations {
                        // lhs(v) − Σ_j mult_j λ_j == 0.
                        let map: Vec<usize> = (0..ov_space.dim()).collect();
                        let mut e = eq.lhs.embed(total, &map);
                        for (j, c) in eq.multipliers.iter().enumerate() {
                            if !c.is_zero() {
                                e = &e - &AffineExpr::var(total, lambda_base + j).scale(c);
                            }
                        }
                        m.constrain(e, Cmp::Eq);
                    }
                }
            }
            let obj = install_pattern_objective(&mut m, p, &ov_space, pattern);
            m.minimize(obj);
        }
        Ok(candidate_of(&ov_space, m.solve_ilp_budgeted(b)?))
    };
    fan_out_patterns(&patterns, workers, budget, "aov.orthant", &prune, &solve)?
        .map(|(_, vs)| OvResult::new(p, vs))
        .ok_or(CoreError::NoVectorFound)
}

/// Exact cross-check for Problem 3: enumerate integer candidates per
/// array and validate each against every legal schedule via the exact
/// checker.
///
/// # Errors
///
/// * [`CoreError::Unschedulable`] / [`CoreError::NoVectorFound`] as for
///   [`aov`].
pub fn aov_search(p: &Program, max_radius: i64) -> Result<OvResult, CoreError> {
    aov_search_with(p, max_radius, 1)
}

/// [`aov_search`] with the per-array searches fanned out over `workers`
/// threads (`<= 1` means sequential). Arrays are independent, so the
/// result is bit-identical to the sequential search.
///
/// # Errors
///
/// As for [`aov_search`].
pub fn aov_search_with(
    p: &Program,
    max_radius: i64,
    workers: usize,
) -> Result<OvResult, CoreError> {
    let mut checker = Checker::new(p);
    if checker.legal_polyhedron()?.is_empty() {
        return Err(CoreError::Unschedulable);
    }
    let narrays = p.arrays().len();
    let search_one = |aidx: usize, checker: &mut Checker| -> Result<OccupancyVector, CoreError> {
        let _span = aov_trace::span!("aov.search_array", array = aidx);
        let aid = aov_ir::ArrayId(aidx);
        let dim = p.arrays()[aidx].dim();
        let mut err: Option<CoreError> = None;
        let found = {
            let e = &mut err;
            search_shells(dim, max_radius, |v| {
                match checker.valid_for_all_schedules(aid, v) {
                    Ok(ok) => ok,
                    Err(pe) => {
                        *e = Some(CoreError::Polyhedra(pe));
                        false
                    }
                }
            })
        };
        if let Some(e) = err {
            return Err(e);
        }
        found
            .map(OccupancyVector::new)
            .ok_or(CoreError::NoVectorFound)
    };
    if workers <= 1 || narrays <= 1 {
        let mut vectors = Vec::with_capacity(narrays);
        for aidx in 0..narrays {
            vectors.push(search_one(aidx, &mut checker)?);
        }
        return Ok(OvResult::new(p, vectors));
    }
    // One checker per thread (its legality cache is not shareable);
    // results land in array order. Each per-array search runs under
    // `catch_unwind` so a panicking worker surfaces as a structured
    // `WorkerPanic` for its slot instead of aborting the scope.
    let mut slots: Vec<Option<Result<OccupancyVector, CoreError>>> = Vec::new();
    slots.resize_with(narrays, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<Result<OccupancyVector, CoreError>>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    let ctx = aov_trace::current_context();
    std::thread::scope(|s| {
        for _ in 0..workers.min(narrays) {
            s.spawn(|| {
                let _adopt = aov_trace::adopt(&ctx);
                let mut local = Checker::new(p);
                loop {
                    let aidx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if aidx >= narrays {
                        break;
                    }
                    let r = catch_unwind(AssertUnwindSafe(|| search_one(aidx, &mut local)))
                        .unwrap_or_else(|payload| {
                            Err(CoreError::Fault(AovError::from_panic(
                                "aov.search_array",
                                payload.as_ref(),
                            )))
                        });
                    **lock(&slot_refs[aidx]) = Some(r);
                }
            });
        }
    });
    drop(slot_refs);
    let mut vectors = Vec::with_capacity(narrays);
    for slot in slots {
        match slot {
            Some(r) => vectors.push(r?),
            None => {
                return Err(CoreError::Fault(AovError::Internal {
                    detail: "array search slot left unfilled".to_string(),
                }))
            }
        }
    }
    Ok(OvResult::new(p, vectors))
}

// ---------------------------------------------------------------------
// Ergonomic wrapper
// ---------------------------------------------------------------------

/// Builder-style entry point for the AOV analysis.
///
/// # Examples
///
/// ```
/// use aov_ir::examples::example2;
/// use aov_core::problems::AovSolver;
///
/// # fn main() -> Result<(), aov_core::CoreError> {
/// let p = example2();
/// let sol = AovSolver::new(&p)?.solve()?;
/// assert_eq!(sol.vector_for("A").unwrap().components(), [1, 1]);
/// assert_eq!(sol.vector_for("B").unwrap().components(), [1, 1]);
/// # Ok(())
/// # }
/// ```
pub struct AovSolver<'a> {
    p: &'a Program,
}

impl<'a> AovSolver<'a> {
    /// Validates the program and prepares a solver.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidProgram`] when the program violates the
    /// single-assignment structural invariants.
    pub fn new(p: &'a Program) -> Result<Self, CoreError> {
        p.validate().map_err(CoreError::InvalidProgram)?;
        Ok(AovSolver { p })
    }

    /// Runs the Farkas AOV analysis (Problem 3).
    ///
    /// # Errors
    ///
    /// As for [`aov`].
    pub fn solve(&self) -> Result<OvResult, CoreError> {
        aov(self.p)
    }

    /// Runs the exact enumeration solver instead.
    ///
    /// # Errors
    ///
    /// As for [`aov_search`].
    pub fn solve_by_search(&self) -> Result<OvResult, CoreError> {
        aov_search(self.p, DEFAULT_SEARCH_RADIUS)
    }
}

// ---------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------

/// Adds the sign-pattern constraints (`v_k >= 1`, `v_k <= -1` or
/// `v_k == 0`) and the two-term objective; returns the objective
/// expression. Within a pattern `|v_k| = sign_k · v_k` exactly.
fn install_pattern_objective(
    m: &mut Model,
    p: &Program,
    ov_space: &OvSpace,
    pattern: &Orthant,
) -> AffineExpr {
    let vdim = ov_space.dim();
    for (k, &sign) in pattern.iter().enumerate().take(vdim) {
        let var = AffineExpr::var(vdim, k);
        if sign == 0 {
            m.constrain(var, Cmp::Eq);
        } else {
            let e = &var.scale(&i64::from(sign).into()) - &AffineExpr::constant(vdim, 1.into());
            m.constrain(e, Cmp::Ge);
        }
    }
    let mut objective_parts: Vec<AffineExpr> = Vec::new();
    for (aidx, a) in p.arrays().iter().enumerate() {
        let aid = aov_ir::ArrayId(aidx);
        let abs_exprs: Vec<AffineExpr> = (0..a.dim())
            .map(|k| {
                let idx = ov_space.component(aid, k);
                AffineExpr::var(vdim, idx).scale(&i64::from(pattern[idx]).into())
            })
            .collect();
        // Length term.
        let sum = abs_exprs
            .iter()
            .fold(AffineExpr::zero(vdim), |acc, e| &acc + e);
        objective_parts.push(sum.scale(&LENGTH_WEIGHT.into()));
        // Evenness term: d_{kl} >= ±(|v_k| − |v_l|).
        for k in 0..a.dim() {
            for l in k + 1..a.dim() {
                let d = m.add_nonneg_var(format!("d_{}_{k}_{l}", a.name()));
                let total = m.num_vars();
                let map: Vec<usize> = (0..vdim).collect();
                let tk = abs_exprs[k].embed(total, &map);
                let tl = abs_exprs[l].embed(total, &map);
                let dv = AffineExpr::var(total, d.index());
                m.constrain(&dv - &(&tk - &tl), Cmp::Ge);
                m.constrain(&dv - &(&tl - &tk), Cmp::Ge);
                objective_parts.push(dv);
            }
        }
    }
    // Pad and sum.
    let total = m.num_vars();
    let mut obj = AffineExpr::zero(total);
    for part in objective_parts {
        let map: Vec<usize> = (0..part.dim()).collect();
        obj = &obj + &part.embed(total, &map);
    }
    obj
}

/// Enumerates integer vectors by increasing Manhattan length, breaking
/// ties by the evenness term, and returns the first (hence objective-
/// minimal) vector accepted by `valid`.
fn search_shells(
    dim: usize,
    max_radius: i64,
    mut valid: impl FnMut(&[i64]) -> bool,
) -> Option<Vec<i64>> {
    for r in 1..=max_radius {
        let mut shell = enumerate_shell(dim, r);
        shell.sort_by_key(|v| {
            (
                evenness(v),
                // Deterministic final order: prefer nonnegative, then lex.
                v.iter().filter(|&&c| c < 0).count(),
                v.clone(),
            )
        });
        for v in shell {
            if valid(&v) {
                return Some(v);
            }
        }
    }
    None
}

/// Crate-internal re-export of the shell enumerator (used by the UOV
/// baseline search).
pub(crate) fn enumerate_shell_for_tests(dim: usize, r: i64) -> Vec<Vec<i64>> {
    enumerate_shell(dim, r)
}

/// All integer vectors with Manhattan length exactly `r`.
fn enumerate_shell(dim: usize, r: i64) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    let mut cur = vec![0i64; dim];
    fn rec(k: usize, remaining: i64, cur: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
        if k + 1 == cur.len() {
            for s in [remaining, -remaining] {
                cur[k] = s;
                out.push(cur.clone());
                if remaining == 0 {
                    break;
                }
            }
            return;
        }
        for mag in 0..=remaining {
            for s in [mag, -mag] {
                cur[k] = s;
                rec(k + 1, remaining - mag, cur, out);
                if mag == 0 {
                    break;
                }
            }
        }
    }
    rec(0, r, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples::{example1, example2, example4, prefix_sum, wavefront2d};
    use aov_linalg::QVector;

    #[test]
    fn shell_enumeration_counts() {
        // |{v ∈ Z^2 : |v|_1 = 1}| = 4; r = 2 -> 8.
        assert_eq!(enumerate_shell(2, 1).len(), 4);
        assert_eq!(enumerate_shell(2, 2).len(), 8);
        assert_eq!(enumerate_shell(1, 3).len(), 2);
        assert_eq!(enumerate_shell(3, 1).len(), 6);
        // No duplicates.
        let mut s = enumerate_shell(3, 2);
        let n = s.len();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), n);
    }

    #[test]
    fn fig3_problem1_lp_and_search_agree() {
        let p = example1();
        let row = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
        let lp = ov_for_schedule(&p, &row).unwrap();
        let search = ov_for_schedule_search(&p, &row, 6).unwrap();
        // Figure 3: shortest OV for the row-parallel schedule is (0, 1).
        assert_eq!(lp.vector_for("A").unwrap().components(), [0, 1]);
        assert_eq!(search.vector_for("A").unwrap().components(), [0, 1]);
    }

    #[test]
    fn problem1_rejects_illegal_schedule() {
        let p = example1();
        let col = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[1, 0, 0, 0], 0)]);
        assert!(matches!(
            ov_for_schedule(&p, &col),
            Err(CoreError::IllegalSchedule)
        ));
    }

    #[test]
    fn fig5_aov_example1() {
        let p = example1();
        let r = aov(&p).unwrap();
        assert_eq!(r.vector_for("A").unwrap().components(), [1, 2]);
        let s = aov_search(&p, 6).unwrap();
        assert_eq!(s.vector_for("A").unwrap().components(), [1, 2]);
    }

    #[test]
    fn fig9_aov_example2() {
        let p = example2();
        let r = aov(&p).unwrap();
        assert_eq!(r.vector_for("A").unwrap().components(), [1, 1]);
        assert_eq!(r.vector_for("B").unwrap().components(), [1, 1]);
    }

    /// Figure 11: Example 3's AOV is (1,1,1). This is the heaviest
    /// analysis in the suite (19 dependences, 3 parameters, 27 sign
    /// patterns); it doubles as a stress test of the Farkas path.
    #[test]
    fn fig11_aov_example3() {
        let p = aov_ir::examples::example3();
        let r = aov(&p).unwrap();
        assert_eq!(r.vector_for("D").unwrap().components(), [1, 1, 1]);
    }

    #[test]
    fn fig14_aov_example4() {
        let p = example4();
        let r = aov(&p).unwrap();
        // The paper reports v_A = (1,1); our exact dependence domains
        // (S2 reads A[i][n-i] only for i <= n-1) admit the strictly
        // shorter (1,0), which causality alone protects:
        // Θ1(i+1, ·) >= Θ2(i) + 1 for every legal schedule. The exact
        // checker confirms both; see EXPERIMENTS.md.
        assert_eq!(r.vector_for("A").unwrap().components(), [1, 0]);
        assert_eq!(r.vector_for("B").unwrap().components(), [1]);
        let mut checker = Checker::new(&p);
        let a = p.array_by_name("A").unwrap();
        assert!(checker.valid_for_all_schedules(a, &[1, 0]).unwrap());
        assert!(checker.valid_for_all_schedules(a, &[1, 1]).unwrap());
        let s = aov_search(&p, 6).unwrap();
        assert_eq!(s.vector_for("A").unwrap().components(), [1, 0]);
    }

    #[test]
    fn aov_auxiliary_programs() {
        let p = prefix_sum();
        let r = aov(&p).unwrap();
        assert_eq!(r.vector_for("P").unwrap().components(), [1]);
        let p = wavefront2d();
        let r = aov(&p).unwrap();
        // Dependences (1,0) and (0,1): storage rows a·vi + b·vj − a and
        // … − b over R = {a,b >= 1}: (1,1) works, length-2; (0,2)/(2,0)
        // fail one row; so (1,1).
        assert_eq!(r.vector_for("A").unwrap().components(), [1, 1]);
    }

    #[test]
    fn fig4_problem2_schedule_range() {
        let p = example1();
        // Given OV (0, 2), the legal schedules satisfy b >= 2a, b >= 1+a,
        // b >= 1−2a (paper §5.1.3): slope a/b ∈ (−1/2, 1/2).
        let (space, poly) = schedules_for_ov(&p, &[OccupancyVector::new(vec![0, 2])]).unwrap();
        let sid = aov_ir::StmtId(0);
        let mk = |a: i64, b: i64| {
            let mut pt = QVector::zeros(space.dim());
            pt[space.iter_coeff(sid, 0)] = a.into();
            pt[space.iter_coeff(sid, 1)] = b.into();
            pt
        };
        assert!(poly.contains(&mk(0, 1))); // Θ = j
        assert!(poly.contains(&mk(1, 3))); // slope 1/3
        assert!(poly.contains(&mk(-1, 3))); // slope -1/3
        assert!(poly.contains(&mk(1, 2))); // slope 1/2 attained at b = 2a
        assert!(!poly.contains(&mk(2, 3))); // slope 2/3 violates b >= 2a
        assert!(!poly.contains(&mk(-2, 3))); // slope -2/3 violates 2a+b >= 1
        assert!(!poly.contains(&mk(1, 0))); // columns
    }

    #[test]
    fn problem2_best_schedule_exists_and_respects_storage() {
        let p = example1();
        let v = OccupancyVector::new(vec![0, 2]);
        let s = best_schedule_for_ov(&p, std::slice::from_ref(&v)).unwrap();
        assert!(legal::is_legal(&p, &s));
        let checker = Checker::new(&p);
        assert!(checker.valid_for_schedule(aov_ir::ArrayId(0), v.components(), &s));
    }

    #[test]
    fn problem2_too_short_vector_unschedulable() {
        let p = example1();
        // v = (0, 0): values overwritten as produced; no affine schedule
        // can satisfy read-before-overwrite together with causality.
        let r = best_schedule_for_ov(&p, &[OccupancyVector::new(vec![0, 0])]);
        assert!(matches!(r, Err(CoreError::Unschedulable)));
    }
}
