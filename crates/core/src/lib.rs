//! The unified schedule/storage optimization framework of Thies, Vivien,
//! Sheldon & Amarasinghe (PLDI 2001).
//!
//! Occupancy vectors (§3.2) define storage reuse: transforming array `A`
//! under `v` stores iterations `i` and `i + k·v` in the same cell. This
//! crate implements the paper's three problems:
//!
//! 1. [`problems::ov_for_schedule`] — the shortest occupancy vector valid
//!    for a *given* affine schedule (§4.5.1),
//! 2. [`problems::schedules_for_ov`] / [`problems::best_schedule_for_ov`]
//!    — the affine schedules valid for *given* occupancy vectors
//!    (§4.5.2),
//! 3. [`problems::aov`] / [`problems::AovSolver`] — the shortest *Affine
//!    Occupancy Vector*, valid for every legal one-dimensional affine
//!    schedule, via the affine form of Farkas' lemma (§4.5.3).
//!
//! Each LP-based solver has an independent exact cross-check
//! ([`check`] + the `_search` variants in [`problems`]) that enumerates
//! integer candidate vectors by increasing objective and decides validity
//! per candidate. The [`uov`] module implements Strout et al.'s
//! schedule-independent Universal Occupancy Vector as the baseline the
//! paper compares against, and [`transform`]/[`codegen`] implement the
//! storage transformation (projection onto the hyperplane perpendicular
//! to `v`, with modulation) and the transformed pseudo-code of the
//! paper's Figures 2, 6, 9, 11 and 14.
//!
//! # Examples
//!
//! ```
//! use aov_ir::examples::example1;
//! use aov_core::problems::AovSolver;
//!
//! # fn main() -> Result<(), aov_core::CoreError> {
//! let program = example1();
//! let solution = AovSolver::new(&program)?.solve()?;
//! let v = solution.vector_for("A").unwrap();
//! assert_eq!(v.components(), [1, 2]); // the paper's Figure 5 AOV
//! # Ok(())
//! # }
//! ```

pub mod check;
pub mod codegen;
pub mod multi_ov;
mod objective;
mod ov;
pub mod problems;
pub mod storage;
pub mod tiling;
pub mod transform;
pub mod uov;

pub use objective::{evenness, objective_value, LENGTH_WEIGHT};
pub use ov::{OccupancyVector, OvSpace};

use aov_fault::AovError;
use aov_polyhedra::PolyhedraError;
use aov_schedule::scheduler::ScheduleError;

/// Errors from the schedule/storage solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Polyhedral machinery failed (unbounded domain, chamber explosion).
    Polyhedra(PolyhedraError),
    /// No legal one-dimensional affine schedule exists, so occupancy
    /// vector problems over "all legal schedules" are vacuous.
    Unschedulable,
    /// No valid occupancy vector was found within the search bounds.
    NoVectorFound,
    /// The given schedule is not legal for the program.
    IllegalSchedule,
    /// The program violates the single-assignment structural invariants.
    InvalidProgram(String),
    /// The request is outside the implemented fragment (e.g. storage
    /// offsets that would be piecewise in the parameters).
    Unsupported(String),
    /// A runtime fault (budget trip, cancellation, worker panic,
    /// injected fault) interrupted the solve before a verdict.
    Fault(AovError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Polyhedra(e) => write!(f, "polyhedral failure: {e}"),
            CoreError::Unschedulable => {
                write!(f, "no one-dimensional affine schedule exists")
            }
            CoreError::NoVectorFound => {
                write!(f, "no valid occupancy vector within search bounds")
            }
            CoreError::IllegalSchedule => write!(f, "schedule violates dependences"),
            CoreError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
            CoreError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            CoreError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    /// Exposes the wrapped layer error so diagnostic bundles can walk
    /// the full `source()` chain (engine → core → fault → budget).
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Polyhedra(e) => Some(e),
            CoreError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PolyhedraError> for CoreError {
    fn from(e: PolyhedraError) -> Self {
        CoreError::Polyhedra(e)
    }
}

impl From<AovError> for CoreError {
    fn from(e: AovError) -> Self {
        CoreError::Fault(e)
    }
}

impl From<ScheduleError> for CoreError {
    fn from(e: ScheduleError) -> Self {
        match e {
            ScheduleError::Infeasible => CoreError::Unschedulable,
            ScheduleError::Polyhedra(p) => CoreError::Polyhedra(p),
            ScheduleError::Fault(e) => CoreError::Fault(e),
        }
    }
}
