//! Occupancy vectors and the joint per-array coordinate space.

use aov_ir::{ArrayId, Program};
use aov_linalg::VarSet;
use std::fmt;

/// An integer occupancy vector for one array (§3.2 of the paper).
///
/// Transforming the array under `v` maps data-space points `x` and
/// `x + k·v` (k ∈ ℤ) to the same storage cell.
///
/// # Examples
///
/// ```
/// use aov_core::OccupancyVector;
///
/// let v = OccupancyVector::new(vec![1, 2]);
/// assert_eq!(v.components(), [1, 2]);
/// assert_eq!(v.manhattan(), 3);
/// assert_eq!(v.to_string(), "(1, 2)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OccupancyVector {
    components: Vec<i64>,
}

impl OccupancyVector {
    /// Builds from components.
    pub fn new(components: Vec<i64>) -> Self {
        OccupancyVector { components }
    }

    /// The components.
    pub fn components(&self) -> &[i64] {
        &self.components
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// Whether all components are zero (never a useful OV).
    pub fn is_zero(&self) -> bool {
        self.components.iter().all(|&c| c == 0)
    }

    /// Manhattan length `Σ|v_k|` — the paper's primary objective.
    pub fn manhattan(&self) -> i64 {
        self.components.iter().map(|c| c.abs()).sum()
    }

    /// Squared Euclidean length (reporting only).
    pub fn euclidean_sq(&self) -> i64 {
        self.components.iter().map(|c| c * c).sum()
    }
}

impl fmt::Display for OccupancyVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.len() == 1 {
            return write!(f, "{}", self.components[0]);
        }
        write!(f, "(")?;
        for (k, c) in self.components.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// The joint coordinate space of all arrays' occupancy-vector components
/// (the unknowns of the storage LPs).
///
/// # Examples
///
/// ```
/// use aov_ir::examples::example4;
/// use aov_core::OvSpace;
///
/// let p = example4();
/// let space = OvSpace::new(&p);
/// assert_eq!(space.dim(), 3); // A is 2-d, B is 1-d
/// ```
#[derive(Debug, Clone)]
pub struct OvSpace {
    offsets: Vec<usize>,
    dims: Vec<usize>,
    total: usize,
    vars: VarSet,
}

impl OvSpace {
    /// Builds the space for a program (one slice per array, in array
    /// order).
    pub fn new(p: &Program) -> Self {
        let mut offsets = Vec::new();
        let mut dims = Vec::new();
        let mut vars = VarSet::new();
        let mut total = 0usize;
        for a in p.arrays() {
            offsets.push(total);
            dims.push(a.dim());
            for k in 0..a.dim() {
                vars.add(format!("v_{}_{}", a.name(), k));
            }
            total += a.dim();
        }
        OvSpace {
            offsets,
            dims,
            total,
            vars,
        }
    }

    /// Total dimension (sum of array dims).
    pub fn dim(&self) -> usize {
        self.total
    }

    /// Index of component `k` of `array`'s vector.
    pub fn component(&self, array: ArrayId, k: usize) -> usize {
        assert!(k < self.dims[array.0], "component out of range");
        self.offsets[array.0] + k
    }

    /// Dimension of one array's vector.
    pub fn array_dim(&self, array: ArrayId) -> usize {
        self.dims[array.0]
    }

    /// Named variables (for LP display).
    pub fn vars(&self) -> &VarSet {
        &self.vars
    }

    /// Splits a joint integer point into per-array vectors.
    pub fn split(&self, point: &[i64]) -> Vec<OccupancyVector> {
        assert_eq!(point.len(), self.total, "joint point dimension");
        self.offsets
            .iter()
            .zip(&self.dims)
            .map(|(&off, &d)| OccupancyVector::new(point[off..off + d].to_vec()))
            .collect()
    }

    /// Concatenates per-array vectors into a joint point.
    pub fn join(&self, vectors: &[OccupancyVector]) -> Vec<i64> {
        assert_eq!(vectors.len(), self.offsets.len(), "one vector per array");
        let mut out = Vec::with_capacity(self.total);
        for (v, &d) in vectors.iter().zip(&self.dims) {
            assert_eq!(v.dim(), d, "vector dimension mismatch");
            out.extend_from_slice(v.components());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples::{example2, example4};
    use aov_ir::ArrayId;

    #[test]
    fn vector_basics() {
        let v = OccupancyVector::new(vec![0, -2, 1]);
        assert_eq!(v.manhattan(), 3);
        assert_eq!(v.euclidean_sq(), 5);
        assert!(!v.is_zero());
        assert!(OccupancyVector::new(vec![0, 0]).is_zero());
        assert_eq!(OccupancyVector::new(vec![5]).to_string(), "5");
        assert_eq!(v.to_string(), "(0, -2, 1)");
    }

    #[test]
    fn space_layout_example2() {
        let p = example2();
        let s = OvSpace::new(&p);
        assert_eq!(s.dim(), 4);
        assert_eq!(s.component(ArrayId(0), 1), 1);
        assert_eq!(s.component(ArrayId(1), 0), 2);
        assert_eq!(s.vars().name(3), "v_B_1");
    }

    #[test]
    fn split_join_roundtrip() {
        let p = example4();
        let s = OvSpace::new(&p);
        let joint = vec![1, 1, 1];
        let parts = s.split(&joint);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].components(), [1, 1]);
        assert_eq!(parts[1].components(), [1]);
        assert_eq!(s.join(&parts), joint);
    }
}
