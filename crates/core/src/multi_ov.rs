//! Multiple occupancy vectors (the paper's §8 future-work item).
//!
//! A single occupancy vector collapses one array dimension; the paper
//! asks whether *several* vectors could be applied at once, reusing
//! storage along a rank-≥2 lattice `L = ℤ·v₁ + ℤ·v₂`. Cells `x` and
//! `x + w` then share storage for every `w ∈ L`.
//!
//! Because `L` is a group (`w ∈ L ⟺ −w ∈ L`), validity needs an
//! *orientation*: writes along the lattice must be totally ordered in
//! time under every legal schedule. Splitting `L \ {0}` into a
//! "future" half `L⁺` (lexicographically positive generator
//! coefficients, after a sign choice per generator) and its negation,
//! the lattice is valid for all legal schedules if for every in-range
//! `w ∈ L⁺`:
//!
//! 1. **ordering** — `a_T·w ≥ 1` holds over the legal-schedule
//!    polyhedron ℛ for every writer `T` of the array (so `−w`-writes
//!    are strictly in the past and cannot clobber anything), and
//! 2. **reader protection** — the single-shift storage condition
//!    `Θ_T(h(i)+w, N) ≥ Θ_R(i, N)` holds over the shift's exact domain
//!    and all of ℛ (the same check as for a single occupancy vector).
//!
//! For a rank-1 lattice this degenerates exactly to the paper's single
//! occupancy vector condition (tested below). For rank 2 on *live* 2-d
//! arrays no valid lattice exists — the live set of values is
//! 1-dimensional under every schedule, and a rank-2 collapse would
//! leave less than that; the search below returns `None`, mechanizing
//! why the paper left multi-vector reuse as an open question (it needs
//! arrays of dimension ≥ 3, weaker schedule sets, or boundary effects).

use crate::check::Checker;
use crate::CoreError;
use aov_ir::{ArrayId, Program};
use aov_linalg::AffineExpr;
use aov_schedule::ScheduleSpace;

/// All nonzero shifts `Σ k_j·v_j` with their coefficient vectors, whose
/// components stay within `±extents` (the only shifts that can relate
/// two cells of the data space).
pub fn lattice_shifts(gens: &[Vec<i64>], extents: &[i64]) -> Vec<(Vec<i64>, Vec<i64>)> {
    let dim = extents.len();
    for g in gens {
        assert_eq!(g.len(), dim, "generator dimension");
    }
    // Coefficient bound: |k_j| <= sum extents (loose but finite).
    let bound: i64 = extents.iter().sum();
    let mut out: Vec<(Vec<i64>, Vec<i64>)> = Vec::new();
    let mut ks = vec![-bound; gens.len()];
    'outer: loop {
        let w: Vec<i64> = (0..dim)
            .map(|d| gens.iter().zip(&ks).map(|(g, k)| g[d] * k).sum())
            .collect();
        let inside = w.iter().zip(extents).all(|(c, e)| c.abs() <= *e);
        if inside && w.iter().any(|&c| c != 0) && !out.iter().any(|(x, _)| *x == w) {
            out.push((w, ks.clone()));
        }
        for j in (0..ks.len()).rev() {
            if ks[j] < bound {
                ks[j] += 1;
                for kk in ks.iter_mut().skip(j + 1) {
                    *kk = -bound;
                }
                continue 'outer;
            }
        }
        break;
    }
    out
}

/// Whether the reuse lattice spanned by `gens` is valid for `array`
/// under **every** legal affine schedule, for *some* orientation of the
/// generators (see the module docs). Exact for programs with constant
/// loop bounds (pass the loop extents); for parameterized programs this
/// is a check at one concrete size.
///
/// # Errors
///
/// Propagates polyhedral failures from the per-shift checks.
pub fn lattice_valid_for_all_schedules(
    p: &Program,
    array: ArrayId,
    gens: &[Vec<i64>],
    extents: &[i64],
) -> Result<bool, CoreError> {
    let shifts = lattice_shifts(gens, extents);
    let mut checker = Checker::new(p);
    // Precompute ℛ and the writer ordering rows.
    checker.legal_polyhedron()?;
    let space = ScheduleSpace::new(p);
    let writers = p.writers_of(array);

    // Try every generator sign assignment.
    'orient: for mask in 0u32..(1 << gens.len()) {
        let sigma: Vec<i64> = (0..gens.len())
            .map(|j| if mask & (1 << j) != 0 { -1 } else { 1 })
            .collect();
        for (w, ks) in &shifts {
            // Lex sign of the oriented coefficient vector.
            let oriented: Vec<i64> = ks.iter().zip(&sigma).map(|(k, s)| k * s).collect();
            let lex_pos = oriented.iter().find(|&&k| k != 0).is_some_and(|&k| k > 0);
            if !lex_pos {
                continue; // handled as the negation of a positive shift
            }
            // (1) ordering: a_T · w >= 1 over ℛ for every writer.
            for &t in &writers {
                let dim = space.dim();
                let mut row = AffineExpr::constant(dim, (-1).into());
                for (k, &wk) in w.iter().enumerate() {
                    row = &row + &AffineExpr::var(dim, space.iter_coeff(t, k)).scale(&wk.into());
                }
                let legal = checker.legal_polyhedron()?;
                if !legal.implies_nonneg(&row) {
                    continue 'orient;
                }
            }
            // (2) reader protection: the single-shift storage condition.
            if !checker.valid_for_all_schedules(array, w)? {
                continue 'orient;
            }
        }
        return Ok(true);
    }
    Ok(false)
}

/// Searches for a second vector `v₂` (by increasing Manhattan length,
/// skipping multiples of `v₁`) such that the lattice `⟨v₁, v₂⟩` is valid
/// for all legal schedules. Returns `None` when no such vector exists
/// within `radius` — the expected outcome for live arrays, per the
/// module-level discussion.
///
/// # Errors
///
/// Propagates polyhedral failures from the validity checks.
pub fn second_vector_search(
    p: &Program,
    array: ArrayId,
    v1: &[i64],
    extents: &[i64],
    radius: i64,
) -> Result<Option<Vec<i64>>, CoreError> {
    let dim = v1.len();
    for r in 1..=radius {
        for v2 in crate::problems::enumerate_shell_for_tests(dim, r) {
            if colinear(v1, &v2) {
                continue;
            }
            let gens = vec![v1.to_vec(), v2.clone()];
            if lattice_valid_for_all_schedules(p, array, &gens, extents)? {
                return Ok(Some(v2));
            }
        }
    }
    Ok(None)
}

fn colinear(a: &[i64], b: &[i64]) -> bool {
    // a, b colinear iff all 2x2 minors vanish.
    for i in 0..a.len() {
        for j in i + 1..a.len() {
            if a[i] * b[j] - a[j] * b[i] != 0 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples::example1_sized;

    #[test]
    fn shift_enumeration() {
        let shifts = lattice_shifts(&[vec![1, 2], vec![0, 3]], &[2, 3]);
        let ws: Vec<&Vec<i64>> = shifts.iter().map(|(w, _)| w).collect();
        assert!(ws.contains(&&vec![1, 2]));
        assert!(ws.contains(&&vec![0, 3]));
        assert!(ws.contains(&&vec![1, -1])); // v1 - v2
        assert!(ws.contains(&&vec![-1, 1]));
        assert!(!ws.contains(&&vec![0, 0]));
        assert!(ws.iter().all(|w| w[0].abs() <= 2 && w[1].abs() <= 3));
        // Coefficients reported alongside.
        let (_, ks) = shifts.iter().find(|(w, _)| *w == vec![1, -1]).unwrap();
        assert_eq!(ks, &vec![1, -1]);
    }

    #[test]
    fn colinearity() {
        assert!(colinear(&[1, 2], &[2, 4]));
        assert!(colinear(&[1, 2], &[-1, -2]));
        assert!(!colinear(&[1, 2], &[2, 1]));
        assert!(colinear(&[0, 0], &[1, 1])); // degenerate zero vector
    }

    /// A rank-1 lattice degenerates to the single-OV condition: the AOV
    /// (1,2) of Example 1 validates, the non-AOV (0,1) does not.
    #[test]
    fn rank1_lattice_matches_single_ov() {
        let p = example1_sized(6, 6);
        let a = p.array_by_name("A").unwrap();
        assert!(
            lattice_valid_for_all_schedules(&p, a, &[vec![1, 2]], &[6, 6]).unwrap(),
            "the AOV's own lattice must validate"
        );
        assert!(
            lattice_valid_for_all_schedules(&p, a, &[vec![0, 3]], &[6, 6]).unwrap(),
            "the UOV's lattice must validate"
        );
        assert!(
            !lattice_valid_for_all_schedules(&p, a, &[vec![0, 1]], &[6, 6]).unwrap(),
            "(0,1) is not valid for all schedules"
        );
        // Orientation handling: the negated generator describes the same
        // lattice and must validate too.
        assert!(lattice_valid_for_all_schedules(&p, a, &[vec![-1, -2]], &[6, 6]).unwrap());
    }

    /// The paper's open question, answered negatively for live 2-d
    /// arrays: no second vector exists for Example 1 — a rank-2 collapse
    /// cannot preserve every legal schedule.
    #[test]
    fn no_second_vector_for_live_2d_array() {
        let p = example1_sized(5, 5);
        let a = p.array_by_name("A").unwrap();
        let v2 = second_vector_search(&p, a, &[1, 2], &[5, 5], 3).unwrap();
        assert_eq!(v2, None);
    }
}
