//! Storage-constraint generation (Eq. 3 and its linearization, Eq. 10).
//!
//! For a dependence `P = (R, T, h, P)` on array `A = A(T)` with occupancy
//! vector `v_A`, the value read by `R(i)` is overwritten by
//! `T(h(i, N) + v_A)`, so any schedule must satisfy
//!
//! `Θ_T(h(i, N) + v_A, N) − Θ_R(i, N) >= 0` for all
//! `i ∈ Z = {i ∈ P | h(i, N) + v_A ∈ D_T}`.
//!
//! Two generators are provided:
//!
//! * [`storage_rows_concrete`] — `v` known: exact `Z`, rows affine over
//!   the schedule space (used by Problem 2 and the validity checkers),
//! * [`storage_forms_symbolic`] — `v` unknown: the paper's practical
//!   recipe of `Z' = P` (conservative, exact for uniform self-
//!   dependences) plus exact *activity pruning* — a dependence whose `Z`
//!   is empty for every `v` in the current sign orthant contributes no
//!   constraint (the paper's §5.3 argument for Example 3, decided here by
//!   one emptiness LP on the joint `(i, N, v)` polyhedron).

use crate::OvSpace;
use aov_ir::{Dependence, Program};
use aov_linalg::AffineExpr;
use aov_polyhedra::{Constraint, PolyhedraError, Polyhedron};
use aov_schedule::linearize::{eliminate_to_linear, eliminate_to_linear_tagged, RowKind};
use aov_schedule::{legal, BilinearForm, ScheduleSpace};

/// A sign assumption per joint occupancy-vector component: `+1` for
/// `v_k >= 1`, `-1` for `v_k <= -1`, `0` for `v_k == 0`. Integer vectors
/// fall in exactly one pattern, which makes the paper's "Z empty for
/// positive components" pruning (§5.3) exact.
pub type Orthant = Vec<i8>;

/// All `3^dim` sign patterns.
pub fn sign_patterns(dim: usize) -> Vec<Orthant> {
    let mut out = vec![Vec::with_capacity(dim)];
    for _ in 0..dim {
        let mut next = Vec::with_capacity(out.len() * 3);
        for pat in &out {
            for s in [1i8, 0, -1] {
                let mut p = pat.clone();
                p.push(s);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

/// The exact domain `Z` of a storage constraint for a concrete `v`:
/// `dep.domain ∩ {i | h(i, N) + v ∈ D_T}`, over the target space.
///
/// Note the sign subtlety: the storage mapping identifies `A[x]` with
/// `A[x + kv]` for *every* integer `k`, so `v` and `-v` induce the same
/// storage. Callers deciding legality must therefore also consider the
/// mirror region `exact_z(p, dep, -v)` (the `h - v` overwriter): on a
/// bounded domain the `h + v` point can fall outside `D_T` while the
/// `h - v` write exists, and a schedule with `a_T·v < 0` then clobbers
/// the live value from the mirror side. Whenever the mirror region is
/// nonempty, the single guard row `a_T·v >= 1` ([`mirror_guard_row`])
/// restores soundness: for affine `Θ`, `Θ_T(h+v) − Θ_T(h) = a_T·v`, so
/// the guard makes every `k <= -1` class member write *strictly before*
/// the value's own write (harmless — the value overwrites it), while
/// `k >= 2` overwriters are covered by the `k = 1` rows plus convexity
/// of `D_T` (`h + v` is the integral midpoint of `h` and `h + 2v`).
pub fn exact_z(p: &Program, dep: &Dependence, v: &[i64]) -> Polyhedron {
    let r = p.statement(dep.target);
    let t = p.statement(dep.source);
    let dim = r.depth() + p.num_params();
    assert_eq!(v.len(), t.depth(), "occupancy vector dimension");
    // Substitution source_iter_k -> h_k + v_k, param_j -> param_j.
    let mut subs: Vec<AffineExpr> = dep
        .h
        .iter()
        .zip(v)
        .map(|(hk, &vk)| hk + &AffineExpr::constant(dim, vk.into()))
        .collect();
    for j in 0..p.num_params() {
        subs.push(AffineExpr::var(dim, r.depth() + j));
    }
    let mut z = dep.domain.clone();
    for c in t.domain().constraints() {
        let e = c.expr().substitute(&subs);
        z.add_constraint(if c.is_equality() {
            Constraint::eq0(e)
        } else {
            Constraint::ge0(e)
        });
    }
    z
}

/// Linearized storage rows for concrete occupancy vectors: affine forms
/// over the schedule space, each required `>= 0` (the instantiated
/// Eq. 10).
///
/// `vectors[a]` is the vector of array `a` (one per program array, in
/// array order).
///
/// # Errors
///
/// Propagates [`PolyhedraError`] from vertex elimination.
pub fn storage_rows_concrete(
    p: &Program,
    space: &ScheduleSpace,
    deps: &[Dependence],
    vectors: &[crate::OccupancyVector],
) -> Result<Vec<AffineExpr>, PolyhedraError> {
    assert_eq!(vectors.len(), p.arrays().len(), "one vector per array");
    let mut out: Vec<AffineExpr> = Vec::new();
    for (didx, dep) in deps.iter().enumerate() {
        let _span = aov_trace::span!("p2.storage_dep", dep = didx);
        let t = p.statement(dep.source);
        let v = &vectors[t.writes().0];
        let r = p.statement(dep.target);
        let dim = r.depth() + p.num_params();
        let z = exact_z(p, dep, v.components());
        // Skip constraints whose Z is empty for every parameter value.
        if !z.intersect(&p.embed_param_domain(r.depth())).is_empty() {
            let h_plus_v: Vec<AffineExpr> = dep
                .h
                .iter()
                .zip(v.components())
                .map(|(hk, &vk)| hk + &AffineExpr::constant(dim, vk.into()))
                .collect();
            let form = legal::difference_form(p, space, dep, &h_plus_v, 0).negated();
            for row in eliminate_to_linear(&form, &z, r.depth(), p.param_domain())? {
                if !out.contains(&row) {
                    out.push(row);
                }
            }
        }
        // Storage classes {x + kv} are sign-symmetric: wherever the
        // mirror overwriter h - v exists, guard with a_T·v >= 1 (see
        // `exact_z`).
        let neg_v: Vec<i64> = v.components().iter().map(|&c| -c).collect();
        let z_minus = exact_z(p, dep, &neg_v);
        if !z_minus
            .intersect(&p.embed_param_domain(r.depth()))
            .is_empty()
        {
            let row = mirror_guard_row(space, dep, v.components());
            if !out.contains(&row) {
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// The mirror-overwriter guard `a_T·v - 1 >= 0` as a row over the
/// schedule space, for the writer statement of `dep` (see `exact_z`).
pub fn mirror_guard_row(space: &ScheduleSpace, dep: &Dependence, v: &[i64]) -> AffineExpr {
    let mut row = AffineExpr::constant(space.dim(), (-1i64).into());
    for (k, &vk) in v.iter().enumerate() {
        let var = AffineExpr::var(space.dim(), space.iter_coeff(dep.source, k));
        row = &row + &var.scale(&vk.into());
    }
    row
}

/// Whether a dependence's storage constraint can be active for *some*
/// occupancy vector in the given orthant (and some parameters): the
/// joint polyhedron over `(i, N, v_A)` is nonempty for the `h + v`
/// overwriter *or* its sign-symmetric mirror `h - v` (storage classes
/// `{x + kv}` contain both, see `exact_z`).
pub fn dependence_active_in_orthant(
    p: &Program,
    dep: &Dependence,
    orthant_for_array: &[i8],
) -> bool {
    overwriter_reachable(p, dep, orthant_for_array, 1)
        || overwriter_reachable(p, dep, orthant_for_array, -1)
}

/// One direction of the activity test: the joint `(i, N, v_A)`
/// polyhedron with `D_T` imposed at `h(i, N) + sign·v` is nonempty.
fn overwriter_reachable(
    p: &Program,
    dep: &Dependence,
    orthant_for_array: &[i8],
    sign: i64,
) -> bool {
    let r = p.statement(dep.target);
    let t = p.statement(dep.source);
    let d_i = r.depth();
    let np = p.num_params();
    let d_v = t.depth();
    assert_eq!(orthant_for_array.len(), d_v, "orthant slice dimension");
    let dim = d_i + np + d_v;
    let mut cs: Vec<Constraint> = Vec::new();
    // dep.domain over (i, N) embedded.
    let embed_in: Vec<usize> = (0..d_i + np).collect();
    for c in dep.domain.constraints() {
        let e = c.expr().embed(dim, &embed_in);
        cs.push(if c.is_equality() {
            Constraint::eq0(e)
        } else {
            Constraint::ge0(e)
        });
    }
    // D_T at h(i, N) + sign·v.
    let mut subs: Vec<AffineExpr> = Vec::with_capacity(d_v + np);
    for (k, hk) in dep.h.iter().enumerate() {
        let mut e = hk.embed(dim, &embed_in);
        e = &e + &AffineExpr::var(dim, d_i + np + k).scale(&sign.into());
        subs.push(e);
    }
    for j in 0..np {
        subs.push(AffineExpr::var(dim, d_i + j));
    }
    for c in t.domain().constraints() {
        let e = c.expr().substitute(&subs);
        cs.push(if c.is_equality() {
            Constraint::eq0(e)
        } else {
            Constraint::ge0(e)
        });
    }
    // Parameter domain.
    let embed_params: Vec<usize> = (d_i..d_i + np).collect();
    for c in p.param_domain().constraints() {
        cs.push(Constraint::ge0(c.expr().embed(dim, &embed_params)));
    }
    // Sign pattern on v: v_k >= 1, v_k <= -1, or v_k == 0.
    for (k, &s) in orthant_for_array.iter().enumerate() {
        let var = AffineExpr::var(dim, d_i + np + k);
        if s == 0 {
            cs.push(Constraint::eq0(var));
        } else {
            let e = &var.scale(&i64::from(s).into()) - &AffineExpr::constant(dim, 1.into());
            cs.push(Constraint::ge0(e));
        }
    }
    !Polyhedron::from_constraints(dim, cs).is_empty()
}

/// Symbolic storage constraints under a sign orthant: bilinear forms with
/// the joint occupancy-vector components as unknowns over the schedule
/// space as domain.
///
/// Each returned form `G(v, Θ)` must satisfy `G(v, Θ) >= 0` for every
/// legal schedule `Θ` (that is the Farkas side, handled by the caller)
/// and encodes one row of Eq. 10 with `Z' = P` and the `v·Θ` coupling
/// `Σ_k v_k · a_{T,k}` attached to point rows.
///
/// # Errors
///
/// Propagates [`PolyhedraError`] from vertex elimination.
pub fn storage_forms_symbolic(
    p: &Program,
    space: &ScheduleSpace,
    ov_space: &OvSpace,
    deps: &[Dependence],
    orthant: &Orthant,
) -> Result<Vec<BilinearForm>, PolyhedraError> {
    assert_eq!(orthant.len(), ov_space.dim(), "orthant dimension");
    let mut out: Vec<BilinearForm> = Vec::new();
    for dep in deps {
        if !dependence_active_in_pattern(p, ov_space, dep, orthant) {
            continue; // Z empty throughout the pattern: exact pruning
        }
        for bf in storage_forms_for_dep(p, space, ov_space, dep)? {
            if !out.contains(&bf) {
                out.push(bf);
            }
        }
    }
    Ok(out)
}

/// Activity of a dependence under a joint sign pattern (extracts the
/// array's slice of the pattern).
pub fn dependence_active_in_pattern(
    p: &Program,
    ov_space: &OvSpace,
    dep: &Dependence,
    pattern: &Orthant,
) -> bool {
    let t = p.statement(dep.source);
    let array = t.writes();
    let slice: Vec<i8> = (0..t.depth())
        .map(|k| pattern[ov_space.component(array, k)])
        .collect();
    dependence_active_in_orthant(p, dep, &slice)
}

/// Pattern-independent symbolic storage forms of one dependence (the
/// linearized `Z' = P` rows with the `v·Θ` coupling on point rows).
/// Callers apply activity pruning per sign pattern.
///
/// # Errors
///
/// Propagates [`PolyhedraError`] from vertex elimination.
pub fn storage_forms_for_dep(
    p: &Program,
    space: &ScheduleSpace,
    ov_space: &OvSpace,
    dep: &Dependence,
) -> Result<Vec<BilinearForm>, PolyhedraError> {
    let t = p.statement(dep.source);
    let array = t.writes();
    let r = p.statement(dep.target);
    // F0 = Θ_T(h(i), N) − Θ_R(i, N): slack 0, v added separately.
    let f0 = legal::difference_form(p, space, dep, &dep.h, 0).negated();
    let tagged = eliminate_to_linear_tagged(&f0, &dep.domain, r.depth(), p.param_domain())?;
    let mut out = Vec::with_capacity(tagged.len());
    for (row, kind) in tagged {
        let mut bf = BilinearForm::new(vec![AffineExpr::zero(space.dim()); ov_space.dim()], row);
        if kind == RowKind::Point {
            // Θ_T(h + v) − Θ_T(h) = Σ_k v_k · a_{T,k}.
            for k in 0..t.depth() {
                bf.add_to_coeff(
                    ov_space.component(array, k),
                    &AffineExpr::var(space.dim(), space.iter_coeff(dep.source, k)),
                );
            }
        }
        if !out.contains(&bf) {
            out.push(bf);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OccupancyVector;
    use aov_ir::{analysis, examples::example1, examples::example3, StmtId};
    use aov_linalg::QVector;

    /// §5.1.1: Example 1's linearized storage constraints for unknown v
    /// are a·v_i + b·v_j − 2a − b, a·v_i + b·v_j − b, a·v_i + b·v_j + a − b.
    #[test]
    fn example1_symbolic_storage_matches_paper() {
        let p = example1();
        let space = ScheduleSpace::new(&p);
        let ov = OvSpace::new(&p);
        let deps = analysis::dependences(&p);
        let forms = storage_forms_symbolic(&p, &space, &ov, &deps, &vec![1, 1]).unwrap();
        assert_eq!(forms.len(), 3, "one row per uniform dependence");
        let _ = &forms;
        let ai = space.iter_coeff(StmtId(0), 0);
        let aj = space.iter_coeff(StmtId(0), 1);
        // Each form: coeff of v_i = a, coeff of v_j = b; constant part is
        // −2a−b / −b / a−b.
        let mut consts: Vec<(i64, i64)> = Vec::new();
        for f in &forms {
            assert_eq!(
                f.coeff(0),
                &AffineExpr::var(space.dim(), ai),
                "coeff of v_i is a"
            );
            assert_eq!(
                f.coeff(1),
                &AffineExpr::var(space.dim(), aj),
                "coeff of v_j is b"
            );
            let c = f.constant();
            for (k, cf) in c.coeffs().iter().enumerate() {
                assert!(k == ai || k == aj || cf.is_zero(), "stray coefficient");
            }
            consts.push((c.coeff(ai).to_i64().unwrap(), c.coeff(aj).to_i64().unwrap()));
        }
        consts.sort_unstable();
        assert_eq!(consts, vec![(-2, -1), (0, -1), (1, -1)]);
    }

    /// §5.1.2: substituting Θ = j and v = (0, 1) satisfies all rows;
    /// v = (0, 0) does not.
    #[test]
    fn example1_rows_at_row_schedule() {
        let p = example1();
        let space = ScheduleSpace::new(&p);
        let ov = OvSpace::new(&p);
        let deps = analysis::dependences(&p);
        let forms = storage_forms_symbolic(&p, &space, &ov, &deps, &vec![1, 1]).unwrap();
        // Θ = j: a = 0, b = 1, rest 0.
        let mut theta = QVector::zeros(space.dim());
        theta[space.iter_coeff(StmtId(0), 1)] = 1.into();
        for f in &forms {
            let over_v = f.at_point(&theta);
            assert!(!over_v.eval(&QVector::from_i64(&[0, 1])).is_negative());
            assert!(!over_v.eval(&QVector::from_i64(&[0, 2])).is_negative());
            let _ = over_v;
        }
        // v = (0,0) violates every row (b·0 − b < 0 for the (0,-1) row).
        let violated = forms.iter().any(|f| {
            f.at_point(&theta)
                .eval(&QVector::from_i64(&[0, 0]))
                .is_negative()
        });
        assert!(violated);
    }

    /// §5.3: for Example 3, the S2-on-boundary storage constraints have
    /// empty Z in the positive orthant and must be pruned.
    #[test]
    fn example3_boundary_constraints_pruned_in_positive_orthant() {
        let p = example3();
        let deps = analysis::dependences(&p);
        let s2 = p.stmt_by_name("S2").unwrap();
        let pos = vec![1i8, 1, 1]; // v >= (1,1,1) componentwise
        let with_zero = vec![0i8, 1, 1]; // v_i == 0
        for dep in &deps {
            if dep.source == s2 {
                assert!(
                    dependence_active_in_orthant(&p, dep, &pos),
                    "interior deps stay active"
                );
            } else {
                // Boundary writers: h + v can land back on the boundary
                // plane only if the plane's v component is nonpositive.
                assert!(
                    !dependence_active_in_orthant(&p, dep, &pos),
                    "boundary storage constraint must be pruned for v >= 1"
                );
            }
        }
        // With v_i pinned to 0, the i == 1 boundary writer becomes
        // reachable again for reads with offset o_i == -1… from i == 2:
        // h_i + v_i = 2 - 1 + 0 = 1.
        let s1a = p.stmt_by_name("S1a").unwrap();
        assert!(deps
            .iter()
            .filter(|d| d.source == s1a)
            .any(|d| dependence_active_in_orthant(&p, d, &with_zero)));
    }

    #[test]
    fn exact_z_clips_by_producer_domain() {
        let p = example1();
        let deps = analysis::dependences(&p);
        // Dependence via A[i-2][j-1] with v = (0,1): overwrite point is
        // (i-2, j): in-domain for i >= 3. Z also requires i <= n etc.
        let dep = deps
            .iter()
            .find(|d| d.uniform_distance() == Some(vec![2, 1]))
            .unwrap();
        let z = exact_z(&p, dep, &[0, 1]);
        // (i, j, n, m) = (3, 2, 5, 5) ∈ Z; (2, 2, 5, 5) has h+v = (0, 2)
        // outside A's data space → excluded by Z.
        assert!(z.contains(&QVector::from_i64(&[3, 2, 5, 5])));
        assert!(!z.contains(&QVector::from_i64(&[2, 2, 5, 5])));
    }

    #[test]
    fn concrete_rows_for_valid_vector_are_satisfiable() {
        let p = example1();
        let space = ScheduleSpace::new(&p);
        let deps = analysis::dependences(&p);
        let rows =
            storage_rows_concrete(&p, &space, &deps, &[OccupancyVector::new(vec![1, 2])]).unwrap();
        assert!(!rows.is_empty());
        // Θ = j satisfies all rows for v = (1,2): a·1 + b·2 − … ≥ 0 with
        // a=0, b=1: 2 − 1 = 1 >= 0 etc.
        let mut theta = QVector::zeros(space.dim());
        theta[space.iter_coeff(StmtId(0), 1)] = 1.into();
        for r in &rows {
            assert!(!r.eval(&theta).is_negative(), "row {r:?} violated");
        }
    }

    #[test]
    fn sign_pattern_enumeration() {
        assert_eq!(sign_patterns(2).len(), 9);
        assert_eq!(sign_patterns(0).len(), 1);
        assert!(sign_patterns(3).iter().any(|o| o == &vec![1, 0, -1]));
        // No duplicates.
        let mut pats = sign_patterns(3);
        let n = pats.len();
        pats.sort();
        pats.dedup();
        assert_eq!(pats.len(), n);
    }
}
