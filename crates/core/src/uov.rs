//! The Universal Occupancy Vector baseline (Strout, Carter, Ferrante &
//! Simon, ASPLOS 1998) the paper compares AOVs against (§7).
//!
//! A UOV is valid for *every* legal execution order, not just affine
//! ones. For a single-statement stencil with dependence distance vectors
//! `d_1 … d_q` (value at `i` read by `i + d_k`), a vector `v` is a UOV
//! iff for every `k` the overwriting iteration `i + v` transitively
//! depends on the reader `i + d_k`, i.e. `v − d_k` is a nonnegative
//! integer combination of the distance vectors. The shortest UOV can
//! therefore be longer than the shortest AOV — the paper's Example 1 has
//! UOV `(0,3)` but AOV `(1,2)`.

use crate::objective::evenness;
use crate::{CoreError, OccupancyVector};
use aov_ir::{analysis, ArrayId, Program};
use aov_linalg::AffineExpr;
use aov_lp::{Cmp, LpOutcome, Model};

/// Whether `v − d` is a nonnegative integer combination of `dists` for
/// every distance `d` in `dists` (the Strout et al. UOV condition),
/// decided by one ILP feasibility query per distance.
pub fn is_uov(v: &[i64], dists: &[Vec<i64>]) -> bool {
    if v.iter().all(|&c| c == 0) {
        return false;
    }
    dists.iter().all(|d| {
        let target: Vec<i64> = v.iter().zip(d).map(|(a, b)| a - b).collect();
        is_nonneg_combination(&target, dists)
    })
}

/// Whether `target = Σ m_k · dists[k]` for nonnegative integers `m_k`.
pub fn is_nonneg_combination(target: &[i64], dists: &[Vec<i64>]) -> bool {
    let dim = target.len();
    let mut m = Model::new();
    for k in 0..dists.len() {
        let var = m.add_nonneg_var(format!("m{k}"));
        m.set_integer(var);
    }
    for coord in 0..dim {
        let coeffs: Vec<i64> = dists.iter().map(|d| d[coord]).collect();
        m.constrain(AffineExpr::from_i64(&coeffs, -target[coord]), Cmp::Eq);
    }
    match m.solve_ilp() {
        LpOutcome::Optimal(_) => true,
        LpOutcome::Infeasible | LpOutcome::Unbounded => false,
        // Unlimited budgets cannot trip; only an injected fault lands
        // here, and a wrong membership answer would corrupt the UOV.
        LpOutcome::LimitReached => panic!("solver fault during UOV membership check"),
    }
}

/// Shortest UOV (by the paper's two-term objective) for an array whose
/// dependences are all uniform self-dependences, searching Manhattan
/// shells up to `max_radius`.
///
/// # Errors
///
/// * [`CoreError::InvalidProgram`] — the array's dependences are not
///   uniform self-dependences (the UOV framework of Strout et al. does
///   not apply).
/// * [`CoreError::NoVectorFound`] — nothing within `max_radius`.
pub fn shortest_uov(
    p: &Program,
    array: ArrayId,
    max_radius: i64,
) -> Result<OccupancyVector, CoreError> {
    let deps = analysis::dependences(p);
    let mut dists: Vec<Vec<i64>> = Vec::new();
    for d in &deps {
        if p.statement(d.source).writes() != array {
            continue;
        }
        if d.source != d.target {
            return Err(CoreError::InvalidProgram(
                "UOV analysis requires single-statement stencils".into(),
            ));
        }
        let dist = d.uniform_distance().ok_or_else(|| {
            CoreError::InvalidProgram("UOV analysis requires uniform dependences".into())
        })?;
        if !dists.contains(&dist) {
            dists.push(dist);
        }
    }
    if dists.is_empty() {
        return Err(CoreError::InvalidProgram(
            "array has no dependences to protect".into(),
        ));
    }
    let dim = dists[0].len();
    for r in 1..=max_radius {
        let mut shell = crate::problems::enumerate_shell_for_tests(dim, r);
        shell.sort_by_key(|v| (evenness(v), v.iter().filter(|&&c| c < 0).count(), v.clone()));
        for v in shell {
            if is_uov(&v, &dists) {
                return Ok(OccupancyVector::new(v));
            }
        }
    }
    Err(CoreError::NoVectorFound)
}

/// Shortest UOV for *every* array of the program (see [`shortest_uov`]).
/// This is the schedule-independent fallback the engine degrades to when
/// the Farkas AOV solver is unavailable (budget spent, injected fault).
///
/// # Errors
///
/// As for [`shortest_uov`], for the first array that fails.
pub fn shortest_uov_all(
    p: &Program,
    max_radius: i64,
) -> Result<crate::problems::OvResult, CoreError> {
    let vectors = (0..p.arrays().len())
        .map(|aidx| shortest_uov(p, ArrayId(aidx), max_radius))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(crate::problems::OvResult::new(p, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples::{example1, heat1d, prefix_sum};
    use aov_ir::ArrayId;

    #[test]
    fn nonneg_combination_queries() {
        let dists = vec![vec![2, 1], vec![0, 1], vec![-1, 1]];
        assert!(is_nonneg_combination(&[0, 0], &dists)); // empty sum
        assert!(is_nonneg_combination(&[2, 1], &dists));
        assert!(is_nonneg_combination(&[1, 2], &dists)); // (2,1)+(−1,1)
        assert!(is_nonneg_combination(&[-2, 2], &dists)); // 2·(−1,1)
        assert!(!is_nonneg_combination(&[1, 0], &dists));
        assert!(!is_nonneg_combination(&[0, -1], &dists));
    }

    /// §5.1.4 / §7: Example 1's shortest UOV is (0, 3), longer
    /// (euclidean) than the AOV (1, 2).
    #[test]
    fn example1_uov_is_0_3() {
        let p = example1();
        let uov = shortest_uov(&p, ArrayId(0), 6).unwrap();
        assert_eq!(uov.components(), [0, 3]);
        // And (1,2) is NOT a UOV even though it is an AOV.
        let dists = vec![vec![2, 1], vec![0, 1], vec![-1, 1]];
        assert!(!is_uov(&[1, 2], &dists));
        assert!(is_uov(&[0, 3], &dists));
    }

    #[test]
    fn heat1d_uov() {
        let p = heat1d();
        let uov = shortest_uov(&p, ArrayId(0), 6).unwrap();
        // Distances (1,1), (0,1), (−1,1): v − d must decompose for all d;
        // try (0,2): (−1,1),(0,1),(1,1) ✓ each a single distance.
        assert_eq!(uov.components(), [0, 2]);
    }

    #[test]
    fn prefix_sum_uov_is_one() {
        let p = prefix_sum();
        let uov = shortest_uov(&p, ArrayId(0), 4).unwrap();
        assert_eq!(uov.components(), [1]);
    }

    #[test]
    fn non_stencil_rejected() {
        let p = aov_ir::examples::example2();
        // Cross-statement dependences: UOV framework does not apply.
        assert!(matches!(
            shortest_uov(&p, ArrayId(0), 4),
            Err(CoreError::InvalidProgram(_))
        ));
    }
}
