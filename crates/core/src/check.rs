//! Exact validity checkers for concrete occupancy vectors.
//!
//! These are independent of the LP/Farkas solvers: validity of a *fixed*
//! integer vector is decided by exact polyhedral reasoning (vertex
//! elimination over the exact domain `Z`, then an emptiness/implication
//! LP per row). The solvers' results are cross-checked against these in
//! tests, and the `_search` solver variants in [`crate::problems`] are
//! built directly on them.

use crate::storage::{exact_z, mirror_guard_row};
use aov_ir::{analysis, ArrayId, Dependence, Program};
use aov_linalg::AffineExpr;
use aov_polyhedra::{PolyhedraError, Polyhedron};
use aov_schedule::linearize::eliminate_to_linear;
use aov_schedule::{legal, Schedule, ScheduleSpace};

/// Context reused across many validity checks on one program.
pub struct Checker<'a> {
    p: &'a Program,
    space: ScheduleSpace,
    deps: Vec<Dependence>,
    /// Legal-schedule polyhedron ℛ (computed lazily for the all-schedules
    /// check).
    legal: Option<Polyhedron>,
}

impl<'a> Checker<'a> {
    /// Builds a checker (computes dependences).
    pub fn new(p: &'a Program) -> Self {
        Checker {
            p,
            space: ScheduleSpace::new(p),
            deps: analysis::dependences(p),
            legal: None,
        }
    }

    /// The schedule space used by this checker.
    pub fn space(&self) -> &ScheduleSpace {
        &self.space
    }

    /// The program's dependences.
    pub fn deps(&self) -> &[Dependence] {
        &self.deps
    }

    /// Dependences whose source writes `array` (those constrain the
    /// array's occupancy vector).
    pub fn deps_on_array(&self, array: ArrayId) -> Vec<&Dependence> {
        self.deps
            .iter()
            .filter(|d| self.p.statement(d.source).writes() == array)
            .collect()
    }

    /// The legal-schedule polyhedron ℛ.
    ///
    /// # Errors
    ///
    /// Propagates [`PolyhedraError`] from constraint linearization.
    pub fn legal_polyhedron(&mut self) -> Result<&Polyhedron, PolyhedraError> {
        if self.legal.is_none() {
            let (_, poly) = legal::legal_schedule_polyhedron(self.p)?;
            self.legal = Some(poly);
        }
        Ok(self.legal.as_ref().expect("just set"))
    }

    /// Whether `v` is a valid occupancy vector for `array` under the
    /// concrete schedule `sched` (Eq. 3, exact `Z`).
    pub fn valid_for_schedule(&self, array: ArrayId, v: &[i64], sched: &Schedule) -> bool {
        let point = legal::point_of(self.p, &self.space, sched);
        for dep in self.deps_on_array(array) {
            let t = self.p.statement(dep.source);
            let r = self.p.statement(dep.target);
            let dim = r.depth() + self.p.num_params();
            assert_eq!(v.len(), t.depth(), "vector dimension");
            let z = exact_z(self.p, dep, v);
            let region = z.intersect(&self.p.embed_param_domain(r.depth()));
            if !region.is_empty() {
                let h_plus_v: Vec<AffineExpr> = dep
                    .h
                    .iter()
                    .zip(v)
                    .map(|(hk, &vk)| hk + &AffineExpr::constant(dim, vk.into()))
                    .collect();
                let form = legal::difference_form(self.p, &self.space, dep, &h_plus_v, 0).negated();
                let over_domain = form.fix_unknowns(&point);
                if !region.implies_nonneg(&over_domain) {
                    return false;
                }
            }
            // Sign-symmetric storage class: a reachable mirror
            // overwriter h - v demands a_T·v >= 1 (see `exact_z`).
            let neg_v: Vec<i64> = v.iter().map(|&c| -c).collect();
            let z_minus = exact_z(self.p, dep, &neg_v);
            if !z_minus
                .intersect(&self.p.embed_param_domain(r.depth()))
                .is_empty()
                && mirror_guard_row(&self.space, dep, v)
                    .eval(&point)
                    .is_negative()
            {
                return false;
            }
        }
        true
    }

    /// Whether `v` is an AOV for `array`: valid for *every* legal affine
    /// schedule (Definition 1 of the paper). Exact `Z` per dependence;
    /// each linearized row must hold over all of ℛ.
    ///
    /// # Errors
    ///
    /// Propagates [`PolyhedraError`] from vertex elimination.
    pub fn valid_for_all_schedules(
        &mut self,
        array: ArrayId,
        v: &[i64],
    ) -> Result<bool, PolyhedraError> {
        // Borrow dance: compute ℛ first.
        self.legal_polyhedron()?;
        let legal_poly = self.legal.clone().expect("computed above");
        for dep in self
            .deps_on_array(array)
            .into_iter()
            .cloned()
            .collect::<Vec<_>>()
        {
            let t = self.p.statement(dep.source);
            let r = self.p.statement(dep.target);
            let dim = r.depth() + self.p.num_params();
            assert_eq!(v.len(), t.depth(), "vector dimension");
            let z = exact_z(self.p, &dep, v);
            if !z
                .intersect(&self.p.embed_param_domain(r.depth()))
                .is_empty()
            {
                let h_plus_v: Vec<AffineExpr> = dep
                    .h
                    .iter()
                    .zip(v)
                    .map(|(hk, &vk)| hk + &AffineExpr::constant(dim, vk.into()))
                    .collect();
                let form =
                    legal::difference_form(self.p, &self.space, &dep, &h_plus_v, 0).negated();
                let rows = eliminate_to_linear(&form, &z, r.depth(), self.p.param_domain())?;
                for row in rows {
                    if !legal_poly.implies_nonneg(&row) {
                        return Ok(false);
                    }
                }
            }
            // Sign-symmetric storage class: a reachable mirror
            // overwriter h - v demands a_T·v >= 1 (see `exact_z`).
            let neg_v: Vec<i64> = v.iter().map(|&c| -c).collect();
            let z_minus = exact_z(self.p, &dep, &neg_v);
            if !z_minus
                .intersect(&self.p.embed_param_domain(r.depth()))
                .is_empty()
                && !legal_poly.implies_nonneg(&mirror_guard_row(&self.space, &dep, v))
            {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples::{example1, example2};
    use aov_ir::{ArrayId, StmtId};

    #[test]
    fn example1_fig3_ov_for_row_schedule() {
        let p = example1();
        let checker = Checker::new(&p);
        let row = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[0, 1, 0, 0], 0)]);
        let a = ArrayId(0);
        // Figure 3: (0,1) is valid for the row-parallel schedule.
        assert!(checker.valid_for_schedule(a, &[0, 1], &row));
        assert!(checker.valid_for_schedule(a, &[0, 2], &row));
        // Immediate reuse is not.
        assert!(!checker.valid_for_schedule(a, &[0, 0], &row));
        // A vector pointing against time is not.
        assert!(!checker.valid_for_schedule(a, &[0, -1], &row));
    }

    #[test]
    fn example1_fig5_aov_validity() {
        let p = example1();
        let mut checker = Checker::new(&p);
        let a = ArrayId(0);
        // Figure 5 / §5.1.4: (1,2) is an AOV, (0,3) (the UOV) too.
        assert!(checker.valid_for_all_schedules(a, &[1, 2]).unwrap());
        assert!(checker.valid_for_all_schedules(a, &[0, 3]).unwrap());
        // (0,1) is valid for Θ=j but NOT for all schedules.
        assert!(!checker.valid_for_all_schedules(a, &[0, 1]).unwrap());
        assert!(!checker.valid_for_all_schedules(a, &[0, 2]).unwrap());
        assert!(!checker.valid_for_all_schedules(a, &[1, 1]).unwrap());
    }

    #[test]
    fn example2_fig9_aovs() {
        let p = example2();
        let mut checker = Checker::new(&p);
        let a = p.array_by_name("A").unwrap();
        let b = p.array_by_name("B").unwrap();
        assert!(checker.valid_for_all_schedules(a, &[1, 1]).unwrap());
        assert!(checker.valid_for_all_schedules(b, &[1, 1]).unwrap());
        assert!(!checker.valid_for_all_schedules(a, &[0, 1]).unwrap());
        assert!(!checker.valid_for_all_schedules(a, &[1, 0]).unwrap());
    }

    /// Found by the differential fuzzer (seed 42): with the read offset
    /// larger than half the constant trip count, `h + v` for `v = -1`
    /// falls outside the writer's domain, but the mirror overwriter
    /// `h - v` is in-domain and clobbers the live value. The one-sided
    /// `Z` pruning used to accept `(-1)` (modulation 1 — a single cell)
    /// as an AOV; the dynamic equivalence stage refuted it.
    #[test]
    fn mirror_overwriter_rejects_unit_vectors() {
        // array A[1]; stmt S1(i) { 1 <= i <= 3; A[i] = f(A[i-2], i); }
        let mut b = aov_ir::ProgramBuilder::new("clipped_self_read");
        let a = b.array("A", 1);
        let mut s = b.statement("S1", &["i"]);
        s.bound(0, s.constant(1), s.constant(3));
        s.writes(a);
        let r = s.read(a, vec![&s.iter(0) - &s.constant(2)]);
        s.body(aov_ir::Expr::call(
            "f",
            vec![aov_ir::Expr::Read(r), aov_ir::Expr::Iter(0)],
        ));
        b.add_statement(s);
        let p = b.build().unwrap();

        let mut checker = Checker::new(&p);
        // The value written at i=1 is read at i=3. With v = -1, cell
        // class {x - k} makes the i=2 write clobber it; with v = +1 the
        // i=2 write is the h+v overwriter directly. Both are illegal for
        // the (only legal) forward schedule, hence for all schedules.
        assert!(!checker.valid_for_all_schedules(a, &[-1]).unwrap());
        assert!(!checker.valid_for_all_schedules(a, &[1]).unwrap());
        // v = 2 maps the overwriter onto the value's own writer: legal.
        assert!(checker.valid_for_all_schedules(a, &[2]).unwrap());

        // Same story under the concrete sequential schedule Θ = i.
        let seq = Schedule::uniform_for(&p, &[AffineExpr::from_i64(&[1], 0)]);
        assert!(!checker.valid_for_schedule(a, &[-1], &seq));
        assert!(!checker.valid_for_schedule(a, &[1], &seq));
        assert!(checker.valid_for_schedule(a, &[2], &seq));
    }

    #[test]
    fn deps_on_array_filters_by_writer() {
        let p = example2();
        let checker = Checker::new(&p);
        let a = p.array_by_name("A").unwrap();
        let on_a = checker.deps_on_array(a);
        assert_eq!(on_a.len(), 1);
        assert_eq!(on_a[0].source, StmtId(0)); // S1 writes A
    }
}
