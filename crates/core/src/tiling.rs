//! Tilability preservation (§3.3 of the paper).
//!
//! "If tiling is legal in the original program, then tiling is legal
//! after transforming each array in the program under one of its AOVs":
//! two loops are tilable iff they can be permuted [Irigoin & Triolet],
//! each permutation corresponds to an affine schedule, and an AOV is
//! valid for *both* schedules.
//!
//! For loop nests with constant bounds the two interchange orders of a
//! depth-2 statement are realizable as one-dimensional affine schedules
//! `Θ = K·i + j` and `Θ = i + K·j` (with `K` larger than the inner
//! extent), so the claim becomes checkable with the machinery of this
//! crate — which is what this module does.

use crate::check::Checker;
use crate::{CoreError, OccupancyVector};
use aov_ir::{Program, StmtId};
use aov_linalg::AffineExpr;
use aov_schedule::{legal, Schedule};

/// The two loop-interchange schedules of a depth-2 statement with
/// constant bounds: `(outer-i, outer-j)` sequential orders, linearized
/// with stride `k` (pass `k >` the loop extents).
///
/// # Panics
///
/// Panics unless every statement of the program has depth 2.
pub fn interchange_schedules(p: &Program, k: i64) -> (Schedule, Schedule) {
    let np = p.num_params();
    let mut outer_i = Vec::new();
    let mut outer_j = Vec::new();
    for s in p.statements() {
        assert_eq!(s.depth(), 2, "interchange schedules need depth-2 nests");
        let dim = 2 + np;
        let mut ci = vec![0i64; dim];
        ci[0] = k;
        ci[1] = 1;
        outer_i.push(AffineExpr::from_i64(&ci, 0));
        let mut cj = vec![0i64; dim];
        cj[0] = 1;
        cj[1] = k;
        outer_j.push(AffineExpr::from_i64(&cj, 0));
    }
    (
        Schedule::uniform_for(p, &outer_i),
        Schedule::uniform_for(p, &outer_j),
    )
}

/// Whether the program's depth-2 loops are interchange-tilable:
/// both sequential orders are legal schedules.
pub fn loops_permutable(p: &Program, k: i64) -> bool {
    let (a, b) = interchange_schedules(p, k);
    legal::is_legal(p, &a) && legal::is_legal(p, &b)
}

/// The paper's §3.3 claim, checked for a concrete program: if both loop
/// orders are legal originally, both remain valid after transforming
/// every array under the given vectors (i.e. tiling stays legal).
///
/// Returns `Ok(None)` when the loops were not permutable to begin with
/// (the claim is vacuous), otherwise whether both orders accept the
/// storage mapping.
///
/// # Errors
///
/// Propagates polyhedral failures from the validity checks.
pub fn tiling_preserved(
    p: &Program,
    vectors: &[OccupancyVector],
    k: i64,
) -> Result<Option<bool>, CoreError> {
    if !loops_permutable(p, k) {
        return Ok(None);
    }
    let (a, b) = interchange_schedules(p, k);
    let checker = Checker::new(p);
    for (aidx, arr) in p.arrays().iter().enumerate() {
        let aid = aov_ir::ArrayId(aidx);
        let v = &vectors[aidx];
        assert_eq!(v.dim(), arr.dim(), "one vector per array");
        if !checker.valid_for_schedule(aid, v.components(), &a)
            || !checker.valid_for_schedule(aid, v.components(), &b)
        {
            return Ok(Some(false));
        }
    }
    let _ = StmtId(0);
    Ok(Some(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems;
    use aov_ir::examples::{example1_sized, wavefront2d_sized};

    /// Example 1 is NOT interchange-legal: the distance (-1, 1) makes
    /// the outer-i order read A[i+1][j-1] before it is written. The
    /// claim is vacuous there.
    #[test]
    fn example1_not_permutable() {
        let p = example1_sized(6, 6);
        assert!(!loops_permutable(&p, 100));
        let aov = problems::aov(&p).expect("solvable");
        assert_eq!(
            tiling_preserved(&p, aov.vectors(), 100).expect("checkable"),
            None
        );
    }

    /// The wavefront nest is also permutable, and its AOV (1,1) keeps it
    /// so.
    #[test]
    fn wavefront_aov_preserves_tiling() {
        let p = wavefront2d_sized(6, 6);
        assert!(loops_permutable(&p, 100));
        let aov = problems::aov(&p).expect("solvable");
        assert_eq!(
            tiling_preserved(&p, aov.vectors(), 100).expect("checkable"),
            Some(true)
        );
    }

    /// A schedule-specific (non-AOV) vector need NOT preserve tiling:
    /// on the wavefront nest, (0,1) is valid for the outer-j order but
    /// not the outer-i order (the (1,0)-dependence's value is clobbered
    /// by (i-1, j+1) before row i reads it).
    #[test]
    fn schedule_specific_vector_can_break_tiling() {
        let p = wavefront2d_sized(6, 6);
        let short = vec![OccupancyVector::new(vec![0, 1])];
        assert_eq!(
            tiling_preserved(&p, &short, 100).expect("checkable"),
            Some(false)
        );
    }
}
