//! Pseudo-code generation for original and storage-transformed programs
//! (the paper's Figures 1/2, 6, 9, 11, 14).
//!
//! Loop bounds are reconstructed from each statement's polyhedral domain
//! (unit-coefficient constraints become `for` bounds, everything else an
//! `if` guard); array writes and reads are printed with transformed
//! index expressions when a [`StorageTransform`] is supplied.

use crate::transform::StorageTransform;
use aov_ir::{Expr, Program, Statement};
use aov_linalg::{AffineExpr, VarSet};
use aov_numeric::Rational;
use std::fmt::Write as _;

/// Renders the original program as C-like pseudo-code.
pub fn original_code(p: &Program) -> String {
    render(p, &[])
}

/// Renders the program with each array replaced by its transformed
/// storage (arrays without a transform are kept as-is).
pub fn transformed_code(p: &Program, transforms: &[StorageTransform]) -> String {
    render(p, transforms)
}

fn render(p: &Program, transforms: &[StorageTransform]) -> String {
    let mut out = String::new();
    // Array declarations.
    for (aidx, a) in p.arrays().iter().enumerate() {
        let t = transforms.iter().find(|t| t.array().0 == aidx);
        match t {
            None => {
                let dims: Vec<String> = (0..a.dim()).map(|_| "·".to_string()).collect();
                let _ = writeln!(out, "{}[{}] : original storage", a.name(), dims.join("]["));
            }
            Some(t) => {
                let exprs = t.extent_exprs();
                let dims: Vec<String> = exprs
                    .iter()
                    .map(|e| format!("{}", e.display(p.params())))
                    .collect();
                let _ = writeln!(
                    out,
                    "{}[{}] : transformed under v = {}{}",
                    a.name(),
                    dims.join("]["),
                    t.ov(),
                    if t.modulation() > 1 {
                        format!(" (mod {})", t.modulation())
                    } else {
                        String::new()
                    }
                );
            }
        }
    }
    for s in p.statements() {
        let _ = writeln!(out, "// statement {}", s.name());
        let space = s.space(p.params());
        let (bounds, guards) = loop_structure(s, &space);
        let mut indent = String::new();
        for (k, lo, hi) in &bounds {
            let _ = writeln!(out, "{indent}for {} = {} to {} {{", s.iters()[*k], lo, hi);
            indent.push_str("  ");
        }
        if !guards.is_empty() {
            let _ = writeln!(out, "{indent}if ({}) {{", guards.join(" && "));
            indent.push_str("  ");
        }
        // The write target.
        let t = transforms.iter().find(|t| t.array() == s.writes());
        let write_idx: Vec<String> = match t {
            None => s.iters().iter().map(|n| n.to_string()).collect(),
            Some(t) => {
                // Identity access: index expression k = iter_k.
                let dim = s.depth() + p.num_params();
                let idx: Vec<AffineExpr> =
                    (0..s.depth()).map(|k| AffineExpr::var(dim, k)).collect();
                mapped_strings(t, &idx, p, &space)
            }
        };
        let body = render_expr(s.body(), s, p, transforms, &space);
        let _ = writeln!(
            out,
            "{indent}{}[{}] = {body}",
            p.array(s.writes()).name(),
            write_idx.join("][")
        );
        if !guards.is_empty() {
            indent.truncate(indent.len() - 2);
            let _ = writeln!(out, "{indent}}}");
        }
        for _ in &bounds {
            indent.truncate(indent.len().saturating_sub(2));
            let _ = writeln!(out, "{indent}}}");
        }
    }
    out
}

fn mapped_strings(
    t: &StorageTransform,
    idx: &[AffineExpr],
    p: &Program,
    space: &VarSet,
) -> Vec<String> {
    let mapped = t.map_access(idx, p.num_params());
    let mut out: Vec<String> = Vec::with_capacity(mapped.len());
    for (k, e) in mapped.iter().enumerate() {
        let is_mod = t.modulation() > 1 && k + 1 == mapped.len();
        if is_mod {
            out.push(format!("({}) mod {}", e.display(space), t.modulation()));
        } else {
            out.push(format!("{}", e.display(space)));
        }
    }
    out
}

/// Extracts `for`-style bounds (unit-coefficient constraints) per loop
/// index and leftover guard strings.
fn loop_structure(s: &Statement, space: &VarSet) -> (Vec<(usize, String, String)>, Vec<String>) {
    let mut bounds = Vec::new();
    let mut used = vec![false; s.domain().constraints().len()];
    for k in 0..s.depth() {
        let mut lo: Option<String> = None;
        let mut hi: Option<String> = None;
        for (ci, c) in s.domain().constraints().iter().enumerate() {
            if used[ci] || c.is_equality() {
                continue;
            }
            let e = c.expr();
            // Only take constraints whose sole iter-coefficient is on k
            // with value ±1 (coefficients on params are fine).
            let coeff = e.coeff(k).clone();
            let others = (0..s.depth()).any(|j| j != k && !e.coeff(j).is_zero());
            if others {
                continue;
            }
            if coeff == Rational::from(1) && lo.is_none() {
                // i + rest >= 0  =>  i >= -rest.
                let rest = &-e + &AffineExpr::var(e.dim(), k);
                lo = Some(format!("{}", rest.display(space)));
                used[ci] = true;
            } else if coeff == Rational::from(-1) && hi.is_none() {
                // -i + rest >= 0 => i <= rest.
                let rest = e + &AffineExpr::var(e.dim(), k);
                hi = Some(format!("{}", rest.display(space)));
                used[ci] = true;
            }
        }
        bounds.push((
            k,
            lo.unwrap_or_else(|| "-inf".into()),
            hi.unwrap_or_else(|| "+inf".into()),
        ));
    }
    let mut guards = Vec::new();
    for (ci, c) in s.domain().constraints().iter().enumerate() {
        if !used[ci] {
            guards.push(format!("{}", c.display(space)));
        }
    }
    (bounds, guards)
}

fn render_expr(
    e: &Expr,
    s: &Statement,
    p: &Program,
    transforms: &[StorageTransform],
    space: &VarSet,
) -> String {
    match e {
        Expr::Read(k) => {
            let acc = &s.reads()[*k];
            let arr = p.array(acc.array());
            let t = transforms.iter().find(|t| t.array() == acc.array());
            let idx: Vec<String> = match t {
                None => acc
                    .index()
                    .iter()
                    .map(|e| format!("{}", e.display(space)))
                    .collect(),
                Some(t) => mapped_strings(t, acc.index(), p, space),
            };
            format!("{}[{}]", arr.name(), idx.join("]["))
        }
        Expr::Call(name, args) => {
            let rendered: Vec<String> = args
                .iter()
                .map(|a| render_expr(a, s, p, transforms, space))
                .collect();
            format!("{name}({})", rendered.join(", "))
        }
        Expr::Const(v) => v.to_string(),
        Expr::Iter(k) => s.iters()[*k].clone(),
        Expr::Param(k) => p.params().name(*k).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OccupancyVector;
    use aov_ir::examples::{example1, example2, example3};

    #[test]
    fn original_example1_shape() {
        let p = example1();
        let code = original_code(&p);
        assert!(code.contains("for i = 1 to n"), "{code}");
        assert!(code.contains("for j = 1 to m"), "{code}");
        assert!(
            code.contains("A[i][j] = f(A[i - 2][j - 1], A[i][j - 1], A[i + 1][j - 1])"),
            "{code}"
        );
    }

    /// Figure 6: transformed Example 1 indexes A by 2i − j (+ offset).
    #[test]
    fn transformed_example1_matches_fig6() {
        let p = example1();
        let a = p.array_by_name("A").unwrap();
        let t = StorageTransform::new(&p, a, &OccupancyVector::new(vec![1, 2])).unwrap();
        let code = transformed_code(&p, &[t]);
        // The projected coordinate is ±(2i − j) + offset; accept either
        // sign convention but require the characteristic 2*i and the m
        // offset in the declaration.
        assert!(
            code.contains("2*i - j") || code.contains("-2*i + j") || code.contains("2*i + j"),
            "{code}"
        );
        assert!(
            code.contains("2*n + m - 2") || code.contains("m + 2*n - 2"),
            "{code}"
        );
    }

    /// Figure 9: Example 2 transformed under (1,1): indexes i − j + off.
    #[test]
    fn transformed_example2_matches_fig9() {
        let p = example2();
        let mut ts = Vec::new();
        for name in ["A", "B"] {
            let a = p.array_by_name(name).unwrap();
            ts.push(StorageTransform::new(&p, a, &OccupancyVector::new(vec![1, 1])).unwrap());
        }
        let code = transformed_code(&p, &ts);
        assert!(code.contains("i - j") || code.contains("-i + j"), "{code}");
        assert!(
            code.contains("n + m - 1") || code.contains("m + n - 1"),
            "{code}"
        );
    }

    /// Figure 11: Example 3's guards (boundary planes) survive printing.
    #[test]
    fn example3_guards_printed() {
        let p = example3();
        let code = original_code(&p);
        assert!(code.contains("min("), "{code}");
        assert!(
            code.contains("for k = 2 to kmax") || code.contains("for k = 1 to kmax"),
            "{code}"
        );
    }

    #[test]
    fn modulated_index_printed() {
        let p = example1();
        let a = p.array_by_name("A").unwrap();
        let t = StorageTransform::new(&p, a, &OccupancyVector::new(vec![0, 2])).unwrap();
        let code = transformed_code(&p, &[t]);
        assert!(code.contains("mod 2"), "{code}");
    }
}
