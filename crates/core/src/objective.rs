//! The paper's two-term occupancy-vector objective (§4.5.1):
//!
//! `k · Σ_i |v_i|  +  Σ_{i,j} | |v_i| − |v_j| |`
//!
//! The first term is the Manhattan length (the proxy for storage size),
//! the second prefers "even" vectors — among equal Manhattan lengths, a
//! more even distribution has a shorter Euclidean length. `k` is chosen
//! large enough that the length term dominates.

/// Weight of the Manhattan-length term; dominates the evenness term for
/// all vectors the search considers (components bounded well below
/// `LENGTH_WEIGHT / dim²`).
pub const LENGTH_WEIGHT: i64 = 64;

/// The evenness term `Σ_{i<j} | |v_i| − |v_j| |` (counted once per pair).
pub fn evenness(v: &[i64]) -> i64 {
    let mut acc = 0;
    for (i, a) in v.iter().enumerate() {
        for b in v.iter().skip(i + 1) {
            acc += (a.abs() - b.abs()).abs();
        }
    }
    acc
}

/// Full objective for one vector.
pub fn objective_value(v: &[i64]) -> i64 {
    LENGTH_WEIGHT * v.iter().map(|c| c.abs()).sum::<i64>() + evenness(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evenness_prefers_balanced_vectors() {
        // The paper: AOV (1,2) beats the UOV (0,3) on the secondary term.
        assert_eq!(evenness(&[1, 2]), 1);
        assert_eq!(evenness(&[0, 3]), 3);
        assert!(objective_value(&[1, 2]) < objective_value(&[0, 3]));
        // But a shorter unbalanced vector still beats a longer balanced
        // one (length dominates).
        assert!(objective_value(&[0, 2]) < objective_value(&[2, 2]));
    }

    #[test]
    fn evenness_of_uniform_vectors_is_zero() {
        assert_eq!(evenness(&[2, 2, 2]), 0);
        assert_eq!(evenness(&[1]), 0);
        assert_eq!(evenness(&[]), 0);
        assert_eq!(evenness(&[-1, 1]), 0); // absolute values compared
    }

    #[test]
    fn objective_examples() {
        assert_eq!(objective_value(&[1, 2]), 64 * 3 + 1);
        assert_eq!(objective_value(&[0, 1]), 64 + 1);
    }
}
