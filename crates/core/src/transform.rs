//! The occupancy-vector storage transformation (§3.2, Strout et al.).
//!
//! Transforming array `A` under `v` projects its data space onto the
//! hyperplane perpendicular to `v`: complete `v` to a unimodular basis
//! `U` with `U·v = (g, 0, …, 0)ᵀ`, `g = gcd(v)`; the new cell of `x` is
//! `(rows 1… of U·x, (row 0 of U·x) mod g)` — the modulation coordinate
//! appears only when `v` crosses `g > 1` lattice points. Offsets make
//! every coordinate nonnegative (the paper's "+m" in `A[2i−j+m]`), and
//! extents give the transformed array size (e.g. `n·m → 2n+m` for
//! Example 1).

use crate::{CoreError, OccupancyVector};
use aov_ir::{ArrayId, Program};
use aov_linalg::{lattice, AffineExpr};
use aov_numeric::Rational;
use aov_polyhedra::param;

/// A computed storage mapping for one array.
#[derive(Debug, Clone)]
pub struct StorageTransform {
    array: ArrayId,
    array_name: String,
    ov: OccupancyVector,
    modulation: i64,
    /// Projected coordinates with offsets: affine over (data dims ++
    /// params), always nonnegative on the data space.
    coords: Vec<AffineExpr>,
    /// `row0 · x` (taken mod `modulation`), present when `modulation > 1`.
    mod_coord: Option<AffineExpr>,
    /// Extent (max − min + 1) per projected coordinate, affine over the
    /// parameters.
    extents: Vec<AffineExpr>,
    /// Original per-dimension extents (for size comparison).
    original_extents: Vec<AffineExpr>,
}

impl StorageTransform {
    /// Computes the transformation of `array` under `ov`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidProgram`] — zero vector or dimension
    ///   mismatch.
    /// * [`CoreError::Unsupported`] — the data space has no
    ///   parameter-uniform bounding box (offsets/extents would be
    ///   chamber-dependent).
    pub fn new(p: &Program, array: ArrayId, ov: &OccupancyVector) -> Result<Self, CoreError> {
        let arr = p.array(array);
        if ov.dim() != arr.dim() {
            return Err(CoreError::InvalidProgram(format!(
                "vector dimension {} vs array {} dimension {}",
                ov.dim(),
                arr.name(),
                arr.dim()
            )));
        }
        if ov.is_zero() {
            return Err(CoreError::InvalidProgram(
                "zero occupancy vector has no projection direction".into(),
            ));
        }
        let g = lattice::gcd_vec(ov.components());
        let u = lattice::unimodular_completion(ov.components());
        let d = arr.dim();
        let np = p.num_params();

        // Row expressions over (x ++ params).
        let row_expr = |row: &[i64]| -> AffineExpr {
            let mut coeffs = vec![Rational::zero(); d + np];
            for (k, &c) in row.iter().enumerate() {
                coeffs[k] = c.into();
            }
            AffineExpr::from_parts(coeffs.into_iter().collect(), Rational::zero())
        };

        // Data space = union of writer domains; compute a symbolic
        // min/max of each projected row over every writer and combine.
        let writers = p.writers_of(array);
        let mut coords = Vec::with_capacity(d - 1);
        let mut extents = Vec::with_capacity(d - 1);
        for row in u.iter().skip(1) {
            let e = row_expr(row);
            let (min, max) = symbolic_range(p, &writers, &e)?;
            coords.push(&e - &embed_params(&min, d, np));
            extents.push(&(&max - &min) + &AffineExpr::constant(np, 1.into()));
        }
        let mut original_extents = Vec::with_capacity(d);
        for k in 0..d {
            let e = AffineExpr::var(d + np, k);
            let (min, max) = symbolic_range(p, &writers, &e)?;
            original_extents.push(&(&max - &min) + &AffineExpr::constant(np, 1.into()));
        }
        let mod_coord = (g > 1).then(|| row_expr(&u[0]));
        Ok(StorageTransform {
            array,
            array_name: arr.name().to_string(),
            ov: ov.clone(),
            modulation: g,
            coords,
            mod_coord,
            extents,
            original_extents,
        })
    }

    /// The transformed array id.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// The occupancy vector used.
    pub fn ov(&self) -> &OccupancyVector {
        &self.ov
    }

    /// The modulation factor `g = gcd(v)` (1 means no modulation).
    pub fn modulation(&self) -> i64 {
        self.modulation
    }

    /// Projected coordinate expressions (over data dims ++ params),
    /// offset to be nonnegative.
    pub fn coords(&self) -> &[AffineExpr] {
        &self.coords
    }

    /// The modulation coordinate expression, when `modulation > 1`.
    pub fn mod_coord(&self) -> Option<&AffineExpr> {
        self.mod_coord.as_ref()
    }

    /// Number of transformed dimensions (projected + modulation).
    pub fn transformed_dim(&self) -> usize {
        self.coords.len() + usize::from(self.modulation > 1)
    }

    /// Maps a concrete data-space point to its transformed cell.
    pub fn map_point(&self, x: &[i64], params: &[i64]) -> Vec<i64> {
        let point: Vec<i64> = x.iter().chain(params).copied().collect();
        let mut out: Vec<i64> = self
            .coords
            .iter()
            .map(|c| {
                c.eval_i64(&point)
                    .to_i64()
                    .expect("integer transform of integer point")
            })
            .collect();
        if let Some(mc) = &self.mod_coord {
            let raw = mc.eval_i64(&point).to_i64().expect("integer mod coord");
            out.push(raw.rem_euclid(self.modulation));
        }
        out
    }

    /// Substitutes access-index expressions (over some statement space)
    /// into the transformed coordinates, yielding transformed index
    /// expressions over that statement space. The modulation coordinate
    /// (if any) is returned last and must be taken `mod` the modulation
    /// factor by the consumer.
    pub fn map_access(&self, index: &[AffineExpr], num_params: usize) -> Vec<AffineExpr> {
        let stmt_dim = index.first().map_or(num_params, AffineExpr::dim);
        let mut subs: Vec<AffineExpr> = index.to_vec();
        for j in 0..num_params {
            subs.push(AffineExpr::var(stmt_dim, stmt_dim - num_params + j));
        }
        let mut out: Vec<AffineExpr> = self.coords.iter().map(|c| c.substitute(&subs)).collect();
        if let Some(mc) = &self.mod_coord {
            out.push(mc.substitute(&subs));
        }
        out
    }

    /// Transformed total size for concrete parameters (product of
    /// extents, times the modulation factor).
    pub fn transformed_size(&self, params: &[i64]) -> i64 {
        let mut acc = self.modulation.max(1);
        for e in &self.extents {
            acc *= e.eval_i64(params).to_i64().expect("integer extent").max(0);
        }
        acc
    }

    /// Original total size for concrete parameters.
    pub fn original_size(&self, params: &[i64]) -> i64 {
        let mut acc = 1i64;
        for e in &self.original_extents {
            acc *= e.eval_i64(params).to_i64().expect("integer extent").max(0);
        }
        acc
    }

    /// Extent expressions (affine over parameters) of the transformed
    /// dimensions, modulation last.
    pub fn extent_exprs(&self) -> Vec<AffineExpr> {
        let mut out = self.extents.clone();
        if self.modulation > 1 {
            let np = out.first().map_or(0, AffineExpr::dim);
            out.push(AffineExpr::constant(np, self.modulation.into()));
        }
        out
    }

    /// Array name.
    pub fn array_name(&self) -> &str {
        &self.array_name
    }
}

/// Lifts a parameter-space expression into (data dims ++ params).
fn embed_params(e: &AffineExpr, d: usize, np: usize) -> AffineExpr {
    let map: Vec<usize> = (d..d + np).collect();
    e.embed(d + np, &map)
}

/// Symbolic (parameter-affine) min and max of `e` (over data dims ++
/// params) across the union of writer domains.
fn symbolic_range(
    p: &Program,
    writers: &[aov_ir::StmtId],
    e: &AffineExpr,
) -> Result<(AffineExpr, AffineExpr), CoreError> {
    let np = p.num_params();
    let mut candidates: Vec<AffineExpr> = Vec::new();
    for &w in writers {
        let st = p.statement(w);
        let chambers = param::parameterized_vertices(st.domain(), st.depth(), p.param_domain())?;
        for ch in &chambers {
            for vx in &ch.vertices {
                // e at (Γ(N), N): substitute data dims by vertex coords.
                let mut subs = vx.coords.clone();
                for j in 0..np {
                    subs.push(AffineExpr::var(np, j));
                }
                let val = e.substitute(&subs);
                if !candidates.contains(&val) {
                    candidates.push(val);
                }
            }
        }
    }
    if candidates.is_empty() {
        return Err(CoreError::Unsupported(
            "empty data space for transformed array".into(),
        ));
    }
    let ndom = p.param_domain();
    let minimum = candidates
        .iter()
        .find(|c| candidates.iter().all(|o| ndom.implies_nonneg(&(o - *c))))
        .cloned()
        .ok_or_else(|| {
            CoreError::Unsupported("no parameter-uniform minimum for storage offset".into())
        })?;
    let maximum = candidates
        .iter()
        .find(|c| candidates.iter().all(|o| ndom.implies_nonneg(&(&**c - o))))
        .cloned()
        .ok_or_else(|| {
            CoreError::Unsupported("no parameter-uniform maximum for storage extent".into())
        })?;
    Ok((minimum, maximum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aov_ir::examples::{example1, example2, example3};

    /// §5.1.4 / Figure 6: Example 1 under AOV (1,2) maps A[i][j] to a
    /// 1-d array indexed by 2i − j (+ offset), size 2n + m − 2.
    #[test]
    fn example1_aov_transform() {
        let p = example1();
        let a = p.array_by_name("A").unwrap();
        let t = StorageTransform::new(&p, a, &OccupancyVector::new(vec![1, 2])).unwrap();
        assert_eq!(t.modulation(), 1);
        assert_eq!(t.transformed_dim(), 1);
        // Storage shrinks from n·m to 2n + m − 2 (paper: "2n + m").
        let (n, m) = (10i64, 20i64);
        assert_eq!(t.original_size(&[n, m]), n * m);
        assert_eq!(t.transformed_size(&[n, m]), 2 * n + m - 2);
        // Points x and x + k·(1,2) collide; non-multiples do not.
        let params = [n, m];
        let base = t.map_point(&[3, 4], &params);
        assert_eq!(t.map_point(&[4, 6], &params), base);
        assert_eq!(t.map_point(&[5, 8], &params), base);
        assert_ne!(t.map_point(&[4, 4], &params), base);
        assert_ne!(t.map_point(&[3, 5], &params), base);
        // Coordinates stay within [0, size).
        for i in 1..=n {
            for j in 1..=m {
                let c = t.map_point(&[i, j], &params);
                assert!(c[0] >= 0 && c[0] < t.transformed_size(&params));
            }
        }
    }

    /// Figure 4's vector (0,2) needs modulation: gcd = 2.
    #[test]
    fn modulation_for_non_primitive_vector() {
        let p = example1();
        let a = p.array_by_name("A").unwrap();
        let t = StorageTransform::new(&p, a, &OccupancyVector::new(vec![0, 2])).unwrap();
        assert_eq!(t.modulation(), 2);
        assert_eq!(t.transformed_dim(), 2);
        let params = [8, 8];
        // (i, j) and (i, j+2) collide; (i, j+1) differs in the mod coord.
        assert_eq!(t.map_point(&[3, 4], &params), t.map_point(&[3, 6], &params));
        assert_ne!(t.map_point(&[3, 4], &params), t.map_point(&[3, 5], &params));
        // Size: n rows × 2 modulation slots.
        assert_eq!(t.transformed_size(&params), 8 * 2);
    }

    /// Figure 9: Example 2's arrays under (1,1) collapse to i − j.
    #[test]
    fn example2_transform() {
        let p = example2();
        for name in ["A", "B"] {
            let a = p.array_by_name(name).unwrap();
            let t = StorageTransform::new(&p, a, &OccupancyVector::new(vec![1, 1])).unwrap();
            let (n, m) = (6i64, 9i64);
            assert_eq!(t.transformed_size(&[n, m]), n + m - 1);
            let base = t.map_point(&[2, 3], &[n, m]);
            assert_eq!(t.map_point(&[3, 4], &[n, m]), base);
            assert_ne!(t.map_point(&[3, 3], &[n, m]), base);
        }
    }

    /// Figure 11: Example 3 under (1,1,1) becomes 2-d with extents
    /// (imax + jmax − 1) × (imax + kmax − 1).
    #[test]
    fn example3_transform() {
        let p = example3();
        let d = p.array_by_name("D").unwrap();
        let t = StorageTransform::new(&p, d, &OccupancyVector::new(vec![1, 1, 1])).unwrap();
        assert_eq!(t.transformed_dim(), 2);
        let (x, y, z) = (5i64, 6, 7);
        assert_eq!(t.original_size(&[x, y, z]), x * y * z);
        // The paper's basis gives (imax+jmax-1)(imax+kmax-1) = 110; our
        // unimodular completion may pick a different (equally valid)
        // basis with a slightly different bounding box. The collapse
        // from 3-d to 2-d is what matters.
        let size = t.transformed_size(&[x, y, z]);
        assert!(size < x * y * z, "storage must shrink, got {size}");
        assert!(
            size >= (x + y - 1) * (x + z - 1).min(x + y - 1),
            "sane extent"
        );
        let base = t.map_point(&[2, 3, 4], &[x, y, z]);
        assert_eq!(t.map_point(&[3, 4, 5], &[x, y, z]), base);
        assert_ne!(t.map_point(&[3, 4, 4], &[x, y, z]), base);
    }

    #[test]
    fn zero_vector_rejected() {
        let p = example1();
        let a = p.array_by_name("A").unwrap();
        assert!(matches!(
            StorageTransform::new(&p, a, &OccupancyVector::new(vec![0, 0])),
            Err(CoreError::InvalidProgram(_))
        ));
    }

    #[test]
    fn map_access_substitution() {
        let p = example1();
        let a = p.array_by_name("A").unwrap();
        let t = StorageTransform::new(&p, a, &OccupancyVector::new(vec![1, 2])).unwrap();
        // Access A[i-2][j-1] from the statement space (i, j, n, m).
        let idx = vec![
            AffineExpr::from_i64(&[1, 0, 0, 0], -2),
            AffineExpr::from_i64(&[0, 1, 0, 0], -1),
        ];
        let mapped = t.map_access(&idx, 2);
        assert_eq!(mapped.len(), 1);
        // Must equal coords evaluated at (i-2, j-1): check numerically.
        let direct = t.map_point(&[5 - 2, 7 - 1], &[10, 20]);
        let via_access = mapped[0].eval_i64(&[5, 7, 10, 20]).to_i64().unwrap();
        assert_eq!(via_access, direct[0]);
    }
}
