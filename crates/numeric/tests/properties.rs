//! Property-based tests: BigInt/Rational obey ring/field axioms and agree
//! with i128 reference arithmetic on small values.

use aov_numeric::{extended_gcd, gcd, gcd_big, BigInt, Rational};
use aov_support::{props, Rng};

/// Mixes small values with multi-limb magnitudes.
fn bigint(g: &mut Rng) -> BigInt {
    match g.usize_in(0, 2) {
        0 => BigInt::from(g.i64_any()),
        1 => BigInt::from(g.i128_any()) * BigInt::from(g.next_u64() as i64),
        _ => {
            let (a, b) = (g.i128_any(), g.i128_any());
            BigInt::from(a) * BigInt::from(b) + BigInt::from(a)
        }
    }
}

fn rational(g: &mut Rng) -> Rational {
    Rational::new(g.i64_any(), g.i64_in(1, 1_000_000))
}

props! {
    #![cases = 256, seed = 0x00B1_65EE]

    fn bigint_add_matches_i128(g) {
        let (a, b) = (g.i64_any(), g.i64_any());
        let sum = BigInt::from(a) + BigInt::from(b);
        assert_eq!(sum.to_i128(), Some(a as i128 + b as i128));
    }

    fn bigint_mul_matches_i128(g) {
        let (a, b) = (g.i64_any(), g.i64_any());
        let prod = BigInt::from(a) * BigInt::from(b);
        assert_eq!(prod.to_i128(), Some(a as i128 * b as i128));
    }

    fn bigint_div_rem_invariant(g) {
        let a = bigint(g);
        let b = bigint(g);
        aov_support::prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a.clone());
        assert!(r.abs() < b.abs());
        // Remainder has the sign of the dividend (or is zero).
        assert!(r.is_zero() || r.signum() == a.signum());
    }

    fn bigint_add_commutes_and_associates(g) {
        let (a, b, c) = (bigint(g), bigint(g), bigint(g));
        assert_eq!(&a + &b, &b + &a);
        assert_eq!((&a + &b) + &c, &a + (&b + &c));
    }

    fn bigint_mul_distributes(g) {
        let (a, b, c) = (bigint(g), bigint(g), bigint(g));
        assert_eq!(&a * &(&b + &c), &a * &b + &a * &c);
    }

    fn bigint_display_parse_roundtrip(g) {
        let a = bigint(g);
        let s = a.to_string();
        assert_eq!(s.parse::<BigInt>().unwrap(), a);
    }

    fn bigint_ordering_consistent_with_subtraction(g) {
        let (a, b) = (bigint(g), bigint(g));
        let diff = &a - &b;
        assert_eq!(a.cmp(&b), diff.cmp(&BigInt::zero()));
    }

    fn gcd_divides_both(g) {
        let (a, b) = (i64::from(g.i32_any()), i64::from(g.i32_any()));
        let d = gcd(a, b);
        if d != 0 {
            assert_eq!(a % d, 0);
            assert_eq!(b % d, 0);
        } else {
            assert_eq!((a, b), (0, 0));
        }
        assert_eq!(gcd_big(&BigInt::from(a), &BigInt::from(b)).to_i64(), Some(d));
    }

    fn extended_gcd_is_bezout(g) {
        let a = g.i64_in(-1_000_000, 999_999);
        let b = g.i64_in(-1_000_000, 999_999);
        let (d, x, y) = extended_gcd(a, b);
        assert_eq!(d, gcd(a, b));
        assert_eq!(a * x + b * y, d);
    }

    fn rational_field_axioms(g) {
        let (a, b, c) = (rational(g), rational(g), rational(g));
        assert_eq!(&a + &b, &b + &a);
        assert_eq!((&a + &b) + &c, &a + (&b + &c));
        assert_eq!(&a * &(&b + &c), &a * &b + &a * &c);
        assert_eq!(&a + Rational::zero(), a.clone());
        assert_eq!(&a * Rational::one(), a.clone());
        if !a.is_zero() {
            assert_eq!(&a * a.recip(), Rational::one());
        }
    }

    fn rational_order_translation_invariant(g) {
        let (a, b, c) = (rational(g), rational(g), rational(g));
        assert_eq!(a.cmp(&b), (&a + &c).cmp(&(&b + &c)));
    }

    fn rational_floor_ceil_bracket(g) {
        let a = rational(g);
        let f = Rational::from(a.floor());
        let c = Rational::from(a.ceil());
        assert!(f <= a && a <= c);
        assert!(&c - &f <= Rational::one());
    }
}
