//! Property-based tests: BigInt/Rational obey ring/field axioms and agree
//! with i128 reference arithmetic on small values.

use aov_numeric::{extended_gcd, gcd, gcd_big, BigInt, Rational};
use proptest::prelude::*;

fn bigint_strategy() -> impl Strategy<Value = BigInt> {
    // Mix small values with multi-limb magnitudes.
    prop_oneof![
        any::<i64>().prop_map(BigInt::from),
        (any::<i128>(), any::<u64>()).prop_map(|(a, b)| BigInt::from(a) * BigInt::from(b)),
        (any::<i128>(), any::<i128>())
            .prop_map(|(a, b)| BigInt::from(a) * BigInt::from(b) + BigInt::from(a)),
    ]
}

fn rational_strategy() -> impl Strategy<Value = Rational> {
    (any::<i64>(), 1i64..=1_000_000).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn bigint_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let sum = BigInt::from(a) + BigInt::from(b);
        prop_assert_eq!(sum.to_i128(), Some(a as i128 + b as i128));
    }

    #[test]
    fn bigint_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let prod = BigInt::from(a) * BigInt::from(b);
        prop_assert_eq!(prod.to_i128(), Some(a as i128 * b as i128));
    }

    #[test]
    fn bigint_div_rem_invariant(a in bigint_strategy(), b in bigint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&q * &b + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Remainder has the sign of the dividend (or is zero).
        prop_assert!(r.is_zero() || r.signum() == a.signum());
    }

    #[test]
    fn bigint_add_commutes_and_associates(
        a in bigint_strategy(), b in bigint_strategy(), c in bigint_strategy()
    ) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
    }

    #[test]
    fn bigint_mul_distributes(a in bigint_strategy(), b in bigint_strategy(), c in bigint_strategy()) {
        prop_assert_eq!(&a * &(&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn bigint_display_parse_roundtrip(a in bigint_strategy()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), a);
    }

    #[test]
    fn bigint_ordering_consistent_with_subtraction(a in bigint_strategy(), b in bigint_strategy()) {
        let diff = &a - &b;
        prop_assert_eq!(a.cmp(&b), diff.cmp(&BigInt::zero()));
    }

    #[test]
    fn gcd_divides_both(a in any::<i32>(), b in any::<i32>()) {
        let (a, b) = (a as i64, b as i64);
        let g = gcd(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!((a, b), (0, 0));
        }
        prop_assert_eq!(gcd_big(&BigInt::from(a), &BigInt::from(b)).to_i64(), Some(g));
    }

    #[test]
    fn extended_gcd_is_bezout(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let (g, x, y) = extended_gcd(a, b);
        prop_assert_eq!(g, gcd(a, b));
        prop_assert_eq!(a * x + b * y, g);
    }

    #[test]
    fn rational_field_axioms(a in rational_strategy(), b in rational_strategy(), c in rational_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &a * &b + &a * &c);
        prop_assert_eq!(&a + Rational::zero(), a.clone());
        prop_assert_eq!(&a * Rational::one(), a.clone());
        if !a.is_zero() {
            prop_assert_eq!(&a * a.recip(), Rational::one());
        }
    }

    #[test]
    fn rational_order_translation_invariant(
        a in rational_strategy(), b in rational_strategy(), c in rational_strategy()
    ) {
        prop_assert_eq!(a.cmp(&b), (&a + &c).cmp(&(&b + &c)));
    }

    #[test]
    fn rational_floor_ceil_bracket(a in rational_strategy()) {
        let f = Rational::from(a.floor());
        let c = Rational::from(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(&c - &f <= Rational::one());
    }
}
