//! Exact rational numbers over [`BigInt`].

use crate::{gcd_big, BigInt, ParseErrorKind, ParseNumberError};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// Always stored in canonical form: the denominator is positive and
/// `gcd(num, den) == 1`; zero is `0/1`. All arithmetic is exact.
///
/// # Examples
///
/// ```
/// use aov_numeric::Rational;
///
/// let half = Rational::new(1, 2);
/// let third = Rational::new(1, 3);
/// assert_eq!(&half + &third, Rational::new(5, 6));
/// assert_eq!((&half * &third).to_string(), "1/6");
/// assert!(half > third);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt, // > 0
}

impl Rational {
    /// The rational 0.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational 1.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Creates `num/den` from machine integers, normalizing.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        Rational::from_big(BigInt::from(num), BigInt::from(den))
    }

    /// Creates `num/den` from big integers, normalizing.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_big(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rational::zero();
        }
        let g = gcd_big(&num, &den);
        let mut num = &num / &g;
        let mut den = &den / &g;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// Creates an integer rational.
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }

    /// Numerator (sign carried here).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` when the value is a (possibly negative) integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Returns `true` when the value is negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` when the value is positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Sign: -1, 0 or 1.
    pub fn signum(&self) -> i8 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::from_big(self.den.clone(), self.num.clone())
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        self.num.div_floor(&self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -(-&self.num).div_floor(&self.den)
    }

    /// Exact integer value, if the rational is an integer.
    pub fn to_integer(&self) -> Option<BigInt> {
        if self.is_integer() {
            Some(self.num.clone())
        } else {
            None
        }
    }

    /// Exact `i64` value, if the rational is an integer that fits.
    pub fn to_i64(&self) -> Option<i64> {
        self.to_integer().and_then(|v| v.to_i64())
    }

    /// Approximate `f64` value (reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(mut self) -> Rational {
        self.num = -self.num;
        self
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -self.clone()
    }
}

impl Add<&Rational> for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        Rational::from_big(
            &self.num * &rhs.den + &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Sub<&Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        Rational::from_big(
            &self.num * &rhs.den - &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Mul<&Rational> for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        if self.is_zero() || rhs.is_zero() {
            return Rational::zero();
        }
        Rational::from_big(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div<&Rational> for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero rational");
        Rational::from_big(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_binop {
    ($($trait:ident, $method:ident);*) => {$(
        impl $trait<Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational { (&self).$method(&rhs) }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational { (&self).$method(rhs) }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational { self.$method(&rhs) }
        }
    )*};
}
forward_binop!(Add, add; Sub, sub; Mul, mul; Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplying preserves order.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl FromStr for Rational {
    type Err = ParseNumberError;

    /// Parses `"p"` or `"p/q"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => Ok(Rational::from(s.parse::<BigInt>()?)),
            Some((p, q)) => {
                let num: BigInt = p.parse()?;
                let den: BigInt = q.parse()?;
                if den.is_zero() {
                    return Err(ParseNumberError::new(ParseErrorKind::ZeroDenominator));
                }
                Ok(Rational::from_big(num, den))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::zero());
        assert!(r(3, -7).denom().is_positive());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn field_ops() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(2, 3) / r(4, 3), r(1, 2));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(1, 2).recip(), r(2, 1));
    }

    #[test]
    fn ordering_cross_multiplication() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > r(13, 2));
        let mut v = vec![r(1, 2), r(-3, 4), r(0, 1), r(5, 3)];
        v.sort();
        assert_eq!(v, vec![r(-3, 4), r(0, 1), r(1, 2), r(5, 3)]);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor().to_i64(), Some(3));
        assert_eq!(r(7, 2).ceil().to_i64(), Some(4));
        assert_eq!(r(-7, 2).floor().to_i64(), Some(-4));
        assert_eq!(r(-7, 2).ceil().to_i64(), Some(-3));
        assert_eq!(r(6, 2).floor().to_i64(), Some(3));
        assert_eq!(r(6, 2).ceil().to_i64(), Some(3));
    }

    #[test]
    fn integer_detection() {
        assert!(r(4, 2).is_integer());
        assert_eq!(r(4, 2).to_i64(), Some(2));
        assert!(!r(1, 2).is_integer());
        assert_eq!(r(1, 2).to_i64(), None);
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(-3, 7).to_string(), "-3/7");
        assert_eq!("5/10".parse::<Rational>().unwrap(), r(1, 2));
        assert_eq!("-8".parse::<Rational>().unwrap(), r(-8, 1));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x/2".parse::<Rational>().is_err());
    }

    #[test]
    fn to_f64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn sum_iterator() {
        let xs = [r(1, 2), r(1, 3), r(1, 6)];
        assert_eq!(xs.iter().cloned().sum::<Rational>(), Rational::one());
    }
}
