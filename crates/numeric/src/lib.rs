//! Exact arithmetic substrate for the `aov` workspace.
//!
//! The schedule/storage analyses of Thies et al. (PLDI 2001) reduce to
//! linear programs over the rationals; simplex pivoting and Farkas
//! elimination can blow up intermediate coefficient sizes well past any
//! fixed-width integer. This crate provides:
//!
//! * [`BigInt`] — an arbitrary-precision signed integer,
//! * [`Rational`] — an always-normalized exact rational over [`BigInt`],
//! * [`gcd`]/[`lcm`]/[`extended_gcd`] — lattice utilities used by the
//!   storage transformation (unimodular completion).
//!
//! # Examples
//!
//! ```
//! use aov_numeric::{BigInt, Rational};
//!
//! let a = BigInt::from(1_000_000_007i64);
//! let sq = &a * &a;
//! assert_eq!(sq.to_string(), "1000000014000000049");
//!
//! let third = Rational::new(1, 3);
//! let sum = &third + &third + &third;
//! assert_eq!(sum, Rational::from(1));
//! ```

mod bigint;
mod gcd;
mod rational;

pub use bigint::BigInt;
pub use gcd::{extended_gcd, gcd, gcd_big, lcm};
pub use rational::Rational;

/// Parse error returned by [`BigInt::from_str`](std::str::FromStr) and
/// [`Rational::from_str`](std::str::FromStr).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNumberError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
    ZeroDenominator,
}

impl ParseNumberError {
    pub(crate) fn new(kind: ParseErrorKind) -> Self {
        ParseNumberError { kind }
    }
}

impl std::fmt::Display for ParseNumberError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ParseErrorKind::Empty => write!(f, "empty numeric literal"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in numeric literal"),
            ParseErrorKind::ZeroDenominator => write!(f, "denominator is zero"),
        }
    }
}

impl std::error::Error for ParseNumberError {}
