//! Arbitrary-precision signed integers.
//!
//! Little-endian base-2^64 magnitude plus a sign. The representation is
//! canonical: no trailing zero limbs, and zero has an empty magnitude with
//! sign `0`. Division uses Knuth's Algorithm D.

use crate::{ParseErrorKind, ParseNumberError};
use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision signed integer.
///
/// `BigInt` supports the ring operations, Euclidean division
/// ([`BigInt::div_rem`]), gcd (via [`crate::gcd_big`]), decimal parsing and
/// formatting. All operations are exact.
///
/// # Examples
///
/// ```
/// use aov_numeric::BigInt;
///
/// let a: BigInt = "123456789012345678901234567890".parse()?;
/// let b = BigInt::from(-42i64);
/// let (q, r) = a.div_rem(&b);
/// assert_eq!(&q * &b + &r, a);
/// # Ok::<(), aov_numeric::ParseNumberError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigInt {
    /// -1, 0, or 1. Zero iff `mag` is empty.
    sign: i8,
    /// Little-endian limbs, no trailing zeros.
    mag: Vec<u64>,
}

impl BigInt {
    /// The integer 0.
    pub fn zero() -> Self {
        BigInt::default()
    }

    /// The integer 1.
    pub fn one() -> Self {
        BigInt {
            sign: 1,
            mag: vec![1],
        }
    }

    /// Returns `true` when `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// Returns `true` when `self == 1`.
    pub fn is_one(&self) -> bool {
        self.sign == 1 && self.mag == [1]
    }

    /// Returns `true` when `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// Returns `true` when `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// Sign of the integer: `-1`, `0` or `1`.
    pub fn signum(&self) -> i8 {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: self.sign.abs(),
            mag: self.mag.clone(),
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> usize {
        match self.mag.last() {
            None => 0,
            Some(&hi) => 64 * (self.mag.len() - 1) + (64 - hi.leading_zeros() as usize),
        }
    }

    /// Number of 64-bit limbs storing the magnitude (0 for zero) — the
    /// unit the numeric-growth telemetry counts, since limbs are what
    /// heap usage and arithmetic cost scale with.
    pub fn limbs(&self) -> usize {
        self.mag.len()
    }

    /// Construct from sign and little-endian limbs (normalizing).
    fn from_sign_mag(sign: i8, mut mag: Vec<u64>) -> BigInt {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        if mag.is_empty() {
            BigInt::zero()
        } else {
            debug_assert!(sign == 1 || sign == -1);
            BigInt { sign, mag }
        }
    }

    /// Euclidean-style truncated division: returns `(quotient, remainder)`
    /// with `self = q * rhs + r`, `|r| < |rhs|`, and `r` having the sign of
    /// `self` (truncation toward zero, like Rust's `/` and `%` on
    /// primitives).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &BigInt) -> (BigInt, BigInt) {
        assert!(!rhs.is_zero(), "division by zero BigInt");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        match cmp_mag(&self.mag, &rhs.mag) {
            Ordering::Less => (BigInt::zero(), self.clone()),
            Ordering::Equal => (
                BigInt::from_sign_mag(self.sign * rhs.sign, vec![1]),
                BigInt::zero(),
            ),
            Ordering::Greater => {
                let (q, r) = divrem_mag(&self.mag, &rhs.mag);
                (
                    BigInt::from_sign_mag(self.sign * rhs.sign, q),
                    BigInt::from_sign_mag(self.sign, r),
                )
            }
        }
    }

    /// Floor division: the largest integer `q` with `q * rhs <= self`
    /// (for positive `rhs`).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_floor(&self, rhs: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(rhs);
        if !r.is_zero() && (r.sign * rhs.sign) < 0 {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Mathematical modulus with the sign of `rhs` (`self - div_floor * rhs`).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn mod_floor(&self, rhs: &BigInt) -> BigInt {
        let r = self - &(&self.div_floor(rhs) * rhs);
        debug_assert!(r.is_zero() || r.sign == rhs.sign);
        r
    }

    /// Converts to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        self.to_i128().and_then(|v| i64::try_from(v).ok())
    }

    /// Converts to `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        match self.mag.len() {
            0 => Some(0),
            1 => Some(self.sign as i128 * self.mag[0] as i128),
            2 => {
                let mag = (self.mag[1] as u128) << 64 | self.mag[0] as u128;
                if self.sign > 0 && mag <= i128::MAX as u128 {
                    Some(mag as i128)
                } else if self.sign < 0 && mag <= i128::MAX as u128 + 1 {
                    Some((mag as i128).wrapping_neg())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Approximate conversion to `f64` (for reporting only).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.mag.iter().rev() {
            v = v * 1.8446744073709552e19 + limb as f64;
        }
        if self.sign < 0 {
            -v
        } else {
            v
        }
    }

    /// Raises to a small power.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// magnitude primitives
// ---------------------------------------------------------------------------

fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in long.iter().enumerate() {
        let s = short.get(i).copied().unwrap_or(0);
        let (v1, c1) = limb.overflowing_add(s);
        let (v2, c2) = v1.overflowing_add(carry);
        out.push(v2);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry > 0 {
        out.push(carry);
    }
    out
}

/// `a - b`, requires `a >= b`.
fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(cmp_mag(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &limb) in a.iter().enumerate() {
        let s = b.get(i).copied().unwrap_or(0);
        let (v1, b1) = limb.overflowing_sub(s);
        let (v2, b2) = v1.overflowing_sub(borrow);
        out.push(v2);
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let t = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Shift left by `bits` (< 64) within a fresh vector.
fn shl_bits(a: &[u64], bits: u32) -> Vec<u64> {
    if bits == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u64;
    for &x in a {
        out.push((x << bits) | carry);
        carry = x >> (64 - bits);
    }
    if carry > 0 {
        out.push(carry);
    }
    out
}

/// Shift right by `bits` (< 64).
fn shr_bits(a: &[u64], bits: u32) -> Vec<u64> {
    if bits == 0 {
        return a.to_vec();
    }
    let mut out = vec![0u64; a.len()];
    let mut carry = 0u64;
    for (i, &x) in a.iter().enumerate().rev() {
        out[i] = (x >> bits) | carry;
        carry = x << (64 - bits);
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Knuth Algorithm D. Requires `a > b`, `b` nonempty.
fn divrem_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    if b.len() == 1 {
        return divrem_mag_limb(a, b[0]);
    }
    // Normalize so the divisor's top bit is set.
    let shift = b.last().unwrap().leading_zeros();
    let u = shl_bits(a, shift);
    let v = shl_bits(b, shift);
    let n = v.len();
    let m = u.len() - n;
    // u gets one extra limb for the algorithm.
    let mut u = {
        let mut t = u;
        t.push(0);
        t
    };
    let mut q = vec![0u64; m + 1];
    let v_hi = v[n - 1];
    let v_next = v[n - 2];
    for j in (0..=m).rev() {
        // Estimate q_hat = (u[j+n] * B + u[j+n-1]) / v_hi.
        let num = ((u[j + n] as u128) << 64) | (u[j + n - 1] as u128);
        let mut q_hat = num / (v_hi as u128);
        let mut r_hat = num % (v_hi as u128);
        while q_hat >= 1u128 << 64
            || q_hat * (v_next as u128) > ((r_hat << 64) | u[j + n - 2] as u128)
        {
            q_hat -= 1;
            r_hat += v_hi as u128;
            if r_hat >= 1u128 << 64 {
                break;
            }
        }
        // Multiply and subtract: u[j..j+n+1] -= q_hat * v.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = q_hat * (v[i] as u128) + carry;
            carry = p >> 64;
            let sub = (u[j + i] as i128) - ((p as u64) as i128) - borrow;
            u[j + i] = sub as u64;
            borrow = if sub < 0 { 1 } else { 0 };
        }
        let sub = (u[j + n] as i128) - (carry as i128) - borrow;
        u[j + n] = sub as u64;
        let mut q_j = q_hat as u64;
        if sub < 0 {
            // q_hat was one too large; add v back.
            q_j -= 1;
            let mut carry = 0u64;
            for i in 0..n {
                let (s1, c1) = u[j + i].overflowing_add(v[i]);
                let (s2, c2) = s1.overflowing_add(carry);
                u[j + i] = s2;
                carry = (c1 as u64) + (c2 as u64);
            }
            u[j + n] = u[j + n].wrapping_add(carry);
        }
        q[j] = q_j;
    }
    u.truncate(n);
    let r = shr_bits(&u, shift);
    while q.last() == Some(&0) {
        q.pop();
    }
    (q, r)
}

fn divrem_mag_limb(a: &[u64], b: u64) -> (Vec<u64>, Vec<u64>) {
    let mut q = vec![0u64; a.len()];
    let mut rem = 0u128;
    for (i, &x) in a.iter().enumerate().rev() {
        let cur = (rem << 64) | x as u128;
        q[i] = (cur / b as u128) as u64;
        rem = cur % b as u128;
    }
    while q.last() == Some(&0) {
        q.pop();
    }
    let r = if rem == 0 {
        Vec::new()
    } else {
        vec![rem as u64]
    };
    (q, r)
}

// ---------------------------------------------------------------------------
// trait impls
// ---------------------------------------------------------------------------

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            ord => return ord,
        }
        match self.sign {
            0 => Ordering::Equal,
            1 => cmp_mag(&self.mag, &other.mag),
            _ => cmp_mag(&other.mag, &self.mag),
        }
    }
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let sign = match v.cmp(&0) {
                    Ordering::Less => -1,
                    Ordering::Equal => 0,
                    Ordering::Greater => 1,
                };
                let mag = (v as i128).unsigned_abs();
                let lo = mag as u64;
                let hi = (mag >> 64) as u64;
                let mag = if hi != 0 { vec![lo, hi] } else if lo != 0 { vec![lo] } else { vec![] };
                BigInt { sign, mag }
            }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                if v == 0 {
                    BigInt::zero()
                } else {
                    let v = v as u128;
                    let lo = v as u64;
                    let hi = (v >> 64) as u64;
                    let mag = if hi != 0 { vec![lo, hi] } else { vec![lo] };
                    BigInt { sign: 1, mag }
                }
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64, u128, usize);

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = -self.sign;
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        if self.sign == rhs.sign {
            BigInt::from_sign_mag(self.sign, add_mag(&self.mag, &rhs.mag))
        } else {
            match cmp_mag(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_mag(self.sign, sub_mag(&self.mag, &rhs.mag)),
                Ordering::Less => BigInt::from_sign_mag(rhs.sign, sub_mag(&rhs.mag, &self.mag)),
            }
        }
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        if rhs.is_zero() {
            return self.clone();
        }
        let neg = BigInt {
            sign: -rhs.sign,
            mag: rhs.mag.clone(),
        };
        self + &neg
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        BigInt::from_sign_mag(self.sign * rhs.sign, mul_mag(&self.mag, &rhs.mag))
    }
}

impl Div<&BigInt> for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigInt> for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_binop {
    ($($trait:ident, $method:ident);*) => {$(
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt { (&self).$method(&rhs) }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt { (&self).$method(rhs) }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt { self.$method(&rhs) }
        }
    )*};
}
forward_binop!(Add, add; Sub, sub; Mul, mul; Div, div; Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl Sum for BigInt {
    fn sum<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |acc, x| acc + x)
    }
}

impl Product for BigInt {
    fn product<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::one(), |acc, x| acc * x)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeatedly divide by 10^19 (largest power of ten within u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut mag = self.mag.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !mag.is_empty() {
            let (q, r) = divrem_mag_limb(&mag, CHUNK);
            chunks.push(r.first().copied().unwrap_or(0));
            mag = q;
        }
        let mut s = String::new();
        s.push_str(&chunks.last().unwrap().to_string());
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:019}"));
        }
        f.pad_integral(self.sign >= 0, "", &s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl FromStr for BigInt {
    type Err = ParseNumberError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (-1i8, rest),
            None => (1i8, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseNumberError::new(ParseErrorKind::Empty));
        }
        let mut acc = BigInt::zero();
        let ten = BigInt::from(10u8);
        for c in digits.chars() {
            let d = c
                .to_digit(10)
                .ok_or_else(|| ParseNumberError::new(ParseErrorKind::InvalidDigit(c)))?;
            acc = &acc * &ten + BigInt::from(d);
        }
        if sign < 0 {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn construction_and_canonical_zero() {
        assert!(bi(0).is_zero());
        assert_eq!(bi(0), BigInt::zero());
        assert_eq!(BigInt::default(), BigInt::zero());
        assert_eq!(bi(1), BigInt::one());
        assert!(bi(5).is_positive());
        assert!(bi(-5).is_negative());
        assert_eq!(bi(-5).signum(), -1);
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(bi(2) + bi(3), bi(5));
        assert_eq!(bi(-2) + bi(3), bi(1));
        assert_eq!(bi(2) + bi(-3), bi(-1));
        assert_eq!(bi(-2) + bi(-3), bi(-5));
        assert_eq!(bi(7) - bi(7), bi(0));
        assert_eq!(bi(0) - bi(7), bi(-7));
    }

    #[test]
    fn add_carries_across_limbs() {
        let max = BigInt::from(u64::MAX);
        let sum = &max + &BigInt::one();
        assert_eq!(sum.to_string(), "18446744073709551616");
        assert_eq!(&sum - &BigInt::one(), max);
    }

    #[test]
    fn mul_basics() {
        assert_eq!(bi(6) * bi(7), bi(42));
        assert_eq!(bi(-6) * bi(7), bi(-42));
        assert_eq!(bi(0) * bi(7), bi(0));
        let big = BigInt::from(u64::MAX);
        let sq = &big * &big;
        assert_eq!(sq.to_string(), "340282366920938463426481119284349108225");
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        for (a, b) in [(7, 2), (-7, 2), (7, -2), (-7, -2), (6, 3), (0, 5)] {
            let (q, r) = bi(a).div_rem(&bi(b));
            assert_eq!(q, bi(a / b), "q of {a}/{b}");
            assert_eq!(r, bi(a % b), "r of {a}/{b}");
        }
    }

    #[test]
    fn div_floor_and_mod_floor() {
        assert_eq!(bi(7).div_floor(&bi(2)), bi(3));
        assert_eq!(bi(-7).div_floor(&bi(2)), bi(-4));
        assert_eq!(bi(7).div_floor(&bi(-2)), bi(-4));
        assert_eq!(bi(-7).div_floor(&bi(-2)), bi(3));
        assert_eq!(bi(-7).mod_floor(&bi(2)), bi(1));
        assert_eq!(bi(7).mod_floor(&bi(-2)), bi(-1));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = bi(1).div_rem(&bi(0));
    }

    #[test]
    fn multi_limb_division_knuth_d() {
        let a: BigInt = "340282366920938463463374607431768211456".parse().unwrap(); // 2^128
        let b: BigInt = "18446744073709551629".parse().unwrap(); // prime-ish > 2^64
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r < b);
        assert!(!r.is_negative());
    }

    #[test]
    fn knuth_d_add_back_case() {
        // Constructed so q_hat overestimates and the add-back branch runs.
        let a = BigInt::from_sign_mag(1, vec![0, 0, 1u64 << 63]);
        let b = BigInt::from_sign_mag(1, vec![1, 1u64 << 63]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert_eq!(r.cmp(&b), Ordering::Less);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "123456789",
            "-98765432109876543210987654321",
            "18446744073709551616",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12x3".parse::<BigInt>().is_err());
    }

    #[test]
    fn ordering() {
        let mut values = vec![bi(3), bi(-10), bi(0), bi(7), bi(-2)];
        values.sort();
        assert_eq!(values, vec![bi(-10), bi(-2), bi(0), bi(3), bi(7)]);
        let big: BigInt = "999999999999999999999999".parse().unwrap();
        assert!(big > bi(i64::MAX as i128));
        assert!(-&big < bi(0));
    }

    #[test]
    fn conversions() {
        assert_eq!(bi(42).to_i64(), Some(42));
        assert_eq!(bi(-42).to_i128(), Some(-42));
        let big: BigInt = "170141183460469231731687303715884105728".parse().unwrap(); // 2^127
        assert_eq!(big.to_i128(), None);
        assert_eq!((-big).to_i128(), Some(i128::MIN));
    }

    #[test]
    fn pow() {
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(10).pow(0), bi(1));
        assert_eq!(bi(-3).pow(3), bi(-27));
        assert_eq!(
            bi(2).pow(128).to_string(),
            "340282366920938463463374607431768211456"
        );
    }

    #[test]
    fn bits() {
        assert_eq!(bi(0).bits(), 0);
        assert_eq!(bi(1).bits(), 1);
        assert_eq!(bi(255).bits(), 8);
        assert_eq!(bi(256).bits(), 9);
        assert_eq!(bi(2).pow(100).bits(), 101);
    }

    #[test]
    fn to_f64_approximates() {
        assert_eq!(bi(12345).to_f64(), 12345.0);
        let big = bi(2).pow(70);
        let rel = (big.to_f64() - 2f64.powi(70)).abs() / 2f64.powi(70);
        assert!(rel < 1e-12);
    }

    #[test]
    fn sum_and_product() {
        let vals = [bi(1), bi(2), bi(3), bi(4)];
        assert_eq!(vals.iter().cloned().sum::<BigInt>(), bi(10));
        assert_eq!(vals.iter().cloned().product::<BigInt>(), bi(24));
    }
}
