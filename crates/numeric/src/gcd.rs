//! Greatest common divisor utilities on machine integers and [`BigInt`].

use crate::BigInt;

/// Greatest common divisor of two `i64`s (always nonnegative;
/// `gcd(0, 0) == 0`).
///
/// # Examples
///
/// ```
/// assert_eq!(aov_numeric::gcd(12, -18), 6);
/// assert_eq!(aov_numeric::gcd(0, 7), 7);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Least common multiple of two `i64`s (nonnegative; `lcm(0, x) == 0`).
///
/// # Panics
///
/// Panics on overflow of the product.
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    (a / g).checked_mul(b).expect("lcm overflow").abs()
}

/// Greatest common divisor of two [`BigInt`]s (always nonnegative).
pub fn gcd_big(a: &BigInt, b: &BigInt) -> BigInt {
    let mut a = a.abs();
    let mut b = b.abs();
    while !b.is_zero() {
        let t = &a % &b;
        a = b;
        b = t;
    }
    a
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with
/// `a*x + b*y == g == gcd(a, b)` and `g >= 0`.
///
/// Used by the storage transformation to complete an occupancy vector to a
/// unimodular basis of the data-space lattice.
///
/// # Examples
///
/// ```
/// let (g, x, y) = aov_numeric::extended_gcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// ```
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    let (mut old_r, mut r) = (a, b);
    let (mut old_s, mut s) = (1i64, 0i64);
    let (mut old_t, mut t) = (0i64, 1i64);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    if old_r < 0 {
        (-old_r, -old_s, -old_t)
    } else {
        (old_r, old_s, old_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(-12, -18), 6);
        assert_eq!(gcd(17, 13), 1);
        assert_eq!(gcd(i64::MIN, i64::MIN), i64::MIN.unsigned_abs() as i64);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(-4, 6), 12);
        assert_eq!(lcm(7, 13), 91);
    }

    #[test]
    fn gcd_big_matches_small() {
        for a in -30i64..=30 {
            for b in -30i64..=30 {
                assert_eq!(
                    gcd_big(&BigInt::from(a), &BigInt::from(b))
                        .to_i64()
                        .unwrap(),
                    gcd(a, b),
                    "gcd({a},{b})"
                );
            }
        }
    }

    #[test]
    fn extended_gcd_bezout() {
        for (a, b) in [(240, 46), (0, 7), (7, 0), (-15, 35), (12, -8), (1, 1)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(g, gcd(a, b), "gcd part for ({a},{b})");
            assert_eq!(a * x + b * y, g, "bezout for ({a},{b})");
        }
    }
}
