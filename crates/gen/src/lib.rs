//! `aov-gen`: seeded random generation of valid affine programs.
//!
//! The generator emits programs that are **valid by construction** —
//! every [`Program::validate`] invariant holds structurally, without
//! needing expensive polyhedral disjointness checks:
//!
//! * one statement per array (single writer, no overlap checks),
//! * statement depth equals its array's dimensionality,
//! * rectangular domains `1 <= it <= bound` with parameter or constant
//!   upper bounds,
//! * self-reads use lexicographically negative uniform offsets (always
//!   schedulable on their own: weight vector `((c+1)^{d-1}, …, c+1, 1)`
//!   dominates any bounded lex-positive distance),
//! * cross-reads only reference arrays written by *earlier* statements
//!   (the dependence graph between statements stays acyclic),
//!
//! with a tunable rate of deliberately **unschedulable** programs (the
//! `A[i][j-1]` + `A[i-1][m]` pattern of `aov_ir::examples::unschedulable`)
//! so the pipeline's degradation ladder gets fuzzed too.
//!
//! Every generated program renders through [`aov_lang::to_source`] (the
//! printer self-checks the reparse), which is what lets the fuzz harness
//! write minimal `.aov` repro files via [`shrink`].
//!
//! # Examples
//!
//! ```
//! use aov_gen::{generate, GenConfig};
//!
//! let a = generate(42, &GenConfig::default());
//! let b = generate(42, &GenConfig::default());
//! assert_eq!(a.source, b.source); // bit-identical for equal seeds
//! assert!(a.program.validate().is_ok());
//! ```

// Library code must surface failures as values (see `aov-fault`);
// `unwrap`/`expect` are reserved for tests. (Generator invariant
// violations are bugs and use explicit `panic!` with context.)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod shrink;

use aov_ir::{ArrayId, Expr, Program, ProgramBuilder};
use aov_linalg::AffineExpr;
use aov_support::rng::Rng;

/// Tuning knobs for [`generate`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of statements (= arrays); at least 1.
    pub max_stmts: usize,
    /// Maximum loop depth per statement; at least 1. Depth 3 programs
    /// are solver-expensive (see `BENCH_2.json`), so the default stays
    /// at 2.
    pub max_depth: usize,
    /// Maximum reads per statement.
    pub max_reads: usize,
    /// Constant upper bounds are drawn from `2..=max_const_bound`.
    pub max_const_bound: i64,
    /// Percentage (0..=100) of programs seeded with the unschedulable
    /// `A[i][j-1]` + `A[i-1][m]` pattern.
    pub unschedulable_pct: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_stmts: 2,
            max_depth: 2,
            max_reads: 3,
            max_const_bound: 6,
            unschedulable_pct: 15,
        }
    }
}

impl GenConfig {
    /// A smaller profile for smoke tests (`aov fuzz --quick`).
    pub fn quick() -> Self {
        GenConfig {
            max_stmts: 2,
            max_depth: 2,
            max_reads: 2,
            max_const_bound: 4,
            unschedulable_pct: 15,
        }
    }
}

/// What kind of program a seed produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// All reads are constructed to keep a 1-d affine schedule possible
    /// (cross-statement reads may still defeat the scheduler — the fuzz
    /// harness treats degradation as a legitimate outcome).
    General,
    /// Contains the forced unschedulable dependence pattern.
    UnschedulableBiased,
}

/// A generated program plus everything a fuzz case needs.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The valid program (name `gen_{seed:016x}`).
    pub program: Program,
    /// Canonical `.aov` source (round-trip-checked by the printer).
    pub source: String,
    /// Small concrete parameter values for interpreter-based checking.
    pub check_params: Vec<i64>,
    /// Generation flavor.
    pub flavor: Flavor,
}

const PARAM_NAMES: [&str; 2] = ["n", "m"];
const ARRAY_NAMES: [&str; 4] = ["A", "B", "C", "D"];
const ITER_NAMES: [&str; 3] = ["i", "j", "k"];
const FUNC_NAMES: [&str; 5] = ["f", "g", "h", "min", "add"];

/// The upper bound of one loop dimension.
#[derive(Debug, Clone, Copy)]
enum Bound {
    Param(usize),
    Const(i64),
}

/// Deterministically generates one valid program for `seed`.
///
/// Equal `(seed, cfg)` produce bit-identical results on every platform.
///
/// # Panics
///
/// Panics only on internal generator bugs (an emitted program failing
/// validation or printing) — never on any seed/config combination.
pub fn generate(seed: u64, cfg: &GenConfig) -> Generated {
    let mut rng = Rng::new(seed);
    let name = format!("gen_{seed:016x}");

    let nparams = rng.usize_in(1, PARAM_NAMES.len());
    let nstmts = rng.usize_in(1, cfg.max_stmts.clamp(1, ARRAY_NAMES.len()));
    let max_depth = cfg.max_depth.clamp(1, ITER_NAMES.len());

    // Plan depths first; the unschedulable pattern needs a depth-2 victim.
    let mut depths: Vec<usize> = (0..nstmts).map(|_| rng.usize_in(1, max_depth)).collect();
    let unsched = max_depth >= 2 && rng.u64_below(100) < cfg.unschedulable_pct.min(100);
    let victim = if unsched {
        let v = rng.usize_in(0, nstmts - 1);
        depths[v] = 2;
        Some(v)
    } else {
        None
    };

    let mut b = ProgramBuilder::new(name);
    for pname in PARAM_NAMES.iter().take(nparams) {
        b.param_min(*pname, 1);
    }
    let arrays: Vec<(ArrayId, usize)> = depths
        .iter()
        .enumerate()
        .map(|(k, &d)| (b.array(ARRAY_NAMES[k], d), d))
        .collect();

    for (k, &depth) in depths.iter().enumerate() {
        let iters = &ITER_NAMES[..depth];
        let mut sb = b.statement(format!("S{}", k + 1), iters);

        // Rectangular bounds `1 <= it_d <= ub_d`. The victim's innermost
        // bound must be a parameter: the forced read of the previous
        // row's *last* element only defeats affine scheduling when the
        // row length is unbounded.
        let mut bounds: Vec<Bound> = (0..depth)
            .map(|_| {
                if rng.u64_below(100) < 60 {
                    Bound::Param(rng.usize_in(0, nparams - 1))
                } else {
                    Bound::Const(rng.i64_in(2, cfg.max_const_bound.max(2)))
                }
            })
            .collect();
        if victim == Some(k) {
            bounds[1] = Bound::Param(rng.usize_in(0, nparams - 1));
        }
        for (d, bound) in bounds.iter().enumerate() {
            let ub = match bound {
                Bound::Param(p) => sb.param(*p),
                Bound::Const(c) => sb.constant(*c),
            };
            sb.bound(d, sb.constant(1), ub);
        }
        sb.writes(arrays[k].0);

        let nreads = if victim == Some(k) {
            2
        } else {
            rng.usize_in(0, cfg.max_reads)
        };
        for r in 0..nreads {
            if victim == Some(k) {
                // The two-read unschedulable pattern.
                let idx = if r == 0 {
                    vec![sb.iter(0), &sb.iter(1) - &sb.constant(1)]
                } else {
                    let last = match bounds[1] {
                        Bound::Param(p) => sb.param(p),
                        Bound::Const(c) => sb.constant(c),
                    };
                    vec![&sb.iter(0) - &sb.constant(1), last]
                };
                sb.read(arrays[k].0, idx);
                continue;
            }
            let cross = k > 0 && rng.u64_below(100) < 40;
            if cross {
                let target = rng.usize_in(0, k - 1);
                let (aid, adim) = arrays[target];
                let idx: Vec<AffineExpr> = (0..adim)
                    .map(|d| {
                        let it = sb.iter(d.min(depth - 1));
                        match rng.u64_below(100) {
                            // Backward uniform offset: always causally safe.
                            0..=59 => &it + &sb.constant(rng.i64_in(-2, 0)),
                            // Boundary column/row.
                            60..=74 => sb.constant(rng.i64_in(1, 2)),
                            // Affine reversal (non-uniform, Example 4 style).
                            75..=89 => &sb.param(rng.usize_in(0, nparams - 1)) - &it,
                            // Forward offset: legality is the solver's problem.
                            _ => &it + &sb.constant(1),
                        }
                    })
                    .collect();
                sb.read(aid, idx);
            } else {
                // Lexicographically negative uniform self-offset.
                let q = rng.usize_in(0, depth - 1);
                let idx: Vec<AffineExpr> = (0..depth)
                    .map(|d| {
                        let off = match d.cmp(&q) {
                            std::cmp::Ordering::Less => 0,
                            std::cmp::Ordering::Equal => rng.i64_in(-2, -1),
                            std::cmp::Ordering::Greater => rng.i64_in(-2, 2),
                        };
                        &sb.iter(d) + &sb.constant(off)
                    })
                    .collect();
                sb.read(arrays[k].0, idx);
            }
        }

        // Body: one call over all reads (ascending, so the program
        // pretty-prints) plus the iterators for read-free statements.
        let mut args: Vec<Expr> = (0..nreads).map(Expr::Read).collect();
        if args.is_empty() || rng.bool() {
            args.extend((0..depth).map(Expr::Iter));
        }
        let fname = *rng.choose(&FUNC_NAMES);
        sb.body(Expr::call(fname, args));
        b.add_statement(sb);
    }

    let program = match b.build() {
        Ok(p) => p,
        Err(e) => panic!("generator emitted invalid program for seed {seed}: {e}"),
    };
    let source = match aov_lang::to_source(&program) {
        Ok(s) => s,
        Err(e) => panic!("generator emitted unprintable program for seed {seed}: {e}"),
    };
    let check_params = (0..nparams).map(|_| rng.i64_in(2, 4)).collect();
    Generated {
        program,
        source,
        check_params,
        flavor: if unsched {
            Flavor::UnschedulableBiased
        } else {
            Flavor::General
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = GenConfig::default();
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a.source, b.source);
            assert_eq!(a.check_params, b.check_params);
            assert_eq!(a.flavor, b.flavor);
            assert!(aov_lang::structural_eq(&a.program, &b.program));
        }
    }

    #[test]
    fn many_seeds_are_valid_and_printable() {
        let cfg = GenConfig::default();
        let mut unsched = 0;
        for seed in 0..300 {
            let g = generate(seed, &cfg);
            assert!(g.program.validate().is_ok(), "seed {seed}");
            // Source round-trips (to_source already self-checked; also
            // confirm the parse path directly).
            let back = aov_lang::parse(&g.source).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(aov_lang::structural_eq(&g.program, &back), "seed {seed}");
            assert_eq!(g.check_params.len(), g.program.num_params());
            assert!(g.check_params.iter().all(|&v| (2..=4).contains(&v)));
            if g.flavor == Flavor::UnschedulableBiased {
                unsched += 1;
            }
        }
        // ~15% of 300; loose bounds to stay robust to RNG details.
        assert!(
            (10..=100).contains(&unsched),
            "unschedulable count {unsched}"
        );
    }

    #[test]
    fn unschedulable_flavor_defeats_the_scheduler() {
        let cfg = GenConfig {
            unschedulable_pct: 100,
            ..GenConfig::default()
        };
        let g = generate(7, &cfg);
        assert_eq!(g.flavor, Flavor::UnschedulableBiased);
    }

    #[test]
    fn quick_profile_is_smaller() {
        let q = GenConfig::quick();
        assert!(q.max_reads <= GenConfig::default().max_reads);
        assert!(q.max_const_bound <= GenConfig::default().max_const_bound);
    }

    #[test]
    fn domains_are_bounded_once_params_fixed() {
        // Needed by the interpreter oracle: every statement must have
        // finitely many iteration points under concrete parameters.
        for seed in 0..50 {
            let g = generate(seed, &GenConfig::default());
            for sid in g.program.stmt_ids() {
                let pts = aov_interp::domain::iteration_points(&g.program, sid, &g.check_params);
                let depth = g.program.statement(sid).depth();
                let limit = 8i64.pow(depth as u32);
                assert!(
                    (pts.len() as i64) <= limit,
                    "seed {seed}: {} points at depth {depth}",
                    pts.len()
                );
            }
        }
    }
}
