//! Deterministic greedy shrinking of failing programs.
//!
//! Given a program and a predicate "does this still fail?", repeatedly
//! tries structure-reducing edits (drop a statement, drop a read, move
//! index offsets toward zero) and keeps any candidate that still fails,
//! until a fixed point or the evaluation budget runs out. The result is
//! what the fuzz harness writes out as a minimal `.aov` repro.

use aov_ir::{ArrayId, Expr, Program, ProgramBuilder};
use aov_linalg::AffineExpr;
use aov_numeric::Rational;
use aov_polyhedra::Constraint;

/// A mutable mirror of [`Program`] that can be edited and rebuilt.
#[derive(Debug, Clone)]
struct Spec {
    name: String,
    params: Vec<String>,
    param_cs: Vec<Constraint>,
    arrays: Vec<(String, usize)>,
    stmts: Vec<StmtSpec>,
}

#[derive(Debug, Clone)]
struct StmtSpec {
    name: String,
    iters: Vec<String>,
    cs: Vec<Constraint>,
    writes: usize,
    reads: Vec<(usize, Vec<AffineExpr>)>,
    body: Expr,
}

impl Spec {
    fn from_program(p: &Program) -> Spec {
        Spec {
            name: p.name().to_string(),
            params: p.params().names().to_vec(),
            param_cs: p.param_domain().constraints().to_vec(),
            arrays: p
                .arrays()
                .iter()
                .map(|a| (a.name().to_string(), a.dim()))
                .collect(),
            stmts: p
                .statements()
                .iter()
                .map(|s| StmtSpec {
                    name: s.name().to_string(),
                    iters: s.iters().to_vec(),
                    cs: s.domain().constraints().to_vec(),
                    writes: s.writes().0,
                    reads: s
                        .reads()
                        .iter()
                        .map(|r| (r.array().0, r.index().to_vec()))
                        .collect(),
                    body: s.body().clone(),
                })
                .collect(),
        }
    }

    fn build(&self) -> Result<Program, String> {
        let mut b = ProgramBuilder::new(self.name.clone());
        for p in &self.params {
            b.param(p.clone());
        }
        for c in &self.param_cs {
            b.param_constraint(c.clone());
        }
        for (name, dim) in &self.arrays {
            b.array(name.clone(), *dim);
        }
        for s in &self.stmts {
            let iters: Vec<&str> = s.iters.iter().map(String::as_str).collect();
            let mut sb = b.statement(s.name.clone(), &iters);
            for c in &s.cs {
                if c.dim() != sb.dim() {
                    return Err("constraint dimension drift".into());
                }
                sb.constraint(c.clone());
            }
            sb.writes(ArrayId(s.writes));
            for (aid, idx) in &s.reads {
                sb.read(ArrayId(*aid), idx.clone());
            }
            sb.body(s.body.clone());
            b.add_statement(sb);
        }
        b.build()
    }
}

/// Renumbers `Expr::Read` after removing read `gone`.
fn remap_reads(e: &Expr, gone: usize) -> Expr {
    match e {
        Expr::Read(k) if *k == gone => Expr::Const(0),
        Expr::Read(k) if *k > gone => Expr::Read(k - 1),
        Expr::Read(k) => Expr::Read(*k),
        Expr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter().map(|a| remap_reads(a, gone)).collect(),
        ),
        other => other.clone(),
    }
}

/// All structure-reducing candidates, biggest reductions first.
fn candidates(s: &Spec) -> Vec<Spec> {
    let mut out = Vec::new();

    // Drop a whole statement (and its array) when nothing else writes or
    // reads that array.
    if s.stmts.len() > 1 {
        for k in 0..s.stmts.len() {
            let a = s.stmts[k].writes;
            let sole_writer = s
                .stmts
                .iter()
                .enumerate()
                .all(|(j, t)| j == k || t.writes != a);
            let unread_elsewhere = s
                .stmts
                .iter()
                .enumerate()
                .all(|(j, t)| j == k || t.reads.iter().all(|(ra, _)| *ra != a));
            if !(sole_writer && unread_elsewhere) {
                continue;
            }
            let mut c = s.clone();
            c.stmts.remove(k);
            c.arrays.remove(a);
            for t in &mut c.stmts {
                if t.writes > a {
                    t.writes -= 1;
                }
                for (ra, _) in &mut t.reads {
                    if *ra > a {
                        *ra -= 1;
                    }
                }
            }
            out.push(c);
        }
    }

    // Drop one read.
    for k in 0..s.stmts.len() {
        for r in 0..s.stmts[k].reads.len() {
            let mut c = s.clone();
            c.stmts[k].reads.remove(r);
            c.stmts[k].body = remap_reads(&c.stmts[k].body, r);
            out.push(c);
        }
    }

    // Move one index-offset constant toward zero.
    for k in 0..s.stmts.len() {
        for r in 0..s.stmts[k].reads.len() {
            for d in 0..s.stmts[k].reads[r].1.len() {
                let e = &s.stmts[k].reads[r].1[d];
                let konst = e.constant_term();
                if konst.is_zero() {
                    continue;
                }
                let step = if konst.is_negative() { 1 } else { -1 };
                let mut c = s.clone();
                c.stmts[k].reads[r].1[d] = e + &AffineExpr::constant(e.dim(), Rational::from(step));
                out.push(c);
            }
        }
    }

    out
}

/// Greedily shrinks `p` while `still_failing` stays true, spending at
/// most `max_evals` predicate evaluations. Returns the smallest failing
/// program found (possibly `p` itself). Deterministic: candidate order
/// is fixed and the first improvement is taken each round.
pub fn shrink<F>(p: &Program, mut still_failing: F, max_evals: usize) -> Program
where
    F: FnMut(&Program) -> bool,
{
    let mut best_spec = Spec::from_program(p);
    let mut best = p.clone();
    let mut evals = 0usize;
    'outer: loop {
        for cand in candidates(&best_spec) {
            if evals >= max_evals {
                break 'outer;
            }
            let Ok(prog) = cand.build() else { continue };
            evals += 1;
            if still_failing(&prog) {
                best_spec = cand;
                best = prog;
                continue 'outer;
            }
        }
        break;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GenConfig};

    /// Shrinking with an always-true predicate minimizes hard.
    #[test]
    fn shrinks_to_minimal_when_everything_fails() {
        let g = generate(3, &GenConfig::default());
        let small = shrink(&g.program, |_| true, 500);
        let reads: usize = small.statements().iter().map(|s| s.reads().len()).sum();
        assert_eq!(small.statements().len(), 1);
        assert_eq!(reads, 0);
        assert!(small.validate().is_ok());
        assert!(aov_lang::to_source(&small).is_ok());
    }

    /// A predicate keyed on a specific read keeps that read alive.
    #[test]
    fn preserves_the_failing_feature() {
        let g = generate(11, &GenConfig::default());
        let total_reads: usize = g.program.statements().iter().map(|s| s.reads().len()).sum();
        if total_reads == 0 {
            return; // nothing to preserve for this seed
        }
        let small = shrink(
            &g.program,
            |p| p.statements().iter().any(|s| !s.reads().is_empty()),
            500,
        );
        let reads: usize = small.statements().iter().map(|s| s.reads().len()).sum();
        assert_eq!(reads, 1, "should shrink to exactly one read");
    }

    /// Never-failing predicate returns the original untouched.
    #[test]
    fn original_kept_when_nothing_reproduces() {
        let g = generate(5, &GenConfig::default());
        let same = shrink(&g.program, |_| false, 500);
        assert!(aov_lang::structural_eq(&g.program, &same));
    }

    /// Offsets are pulled toward zero.
    #[test]
    fn offsets_shrink_toward_zero() {
        let g = generate(9, &GenConfig::default());
        let small = shrink(&g.program, |_| true, 500);
        for s in small.statements() {
            for acc in s.reads() {
                for e in acc.index() {
                    assert!(e.constant_term().is_zero());
                }
            }
        }
    }

    #[test]
    fn deterministic_shrinking() {
        let g = generate(21, &GenConfig::default());
        let a = shrink(&g.program, |p| !p.statements().is_empty(), 300);
        let b = shrink(&g.program, |p| !p.statements().is_empty(), 300);
        assert!(aov_lang::structural_eq(&a, &b));
    }
}
