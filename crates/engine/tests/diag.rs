//! Crash-diagnostic bundle suite: every injectable fault class at every
//! instrumented probe site must leave behind exactly one schema-valid
//! `aov-diag/1` bundle whose flight-recorder ring contains the faulting
//! span, and whose error chain names the fault.
//!
//! The chaos layer and the flight recorder are process-global, so the
//! tests serialize on a mutex and live in their own test binary.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use aov_engine::diag;
use aov_engine::{Health, Pipeline};
use aov_fault::chaos::{self, ChaosSpec, FaultKind};
use aov_support::{schema, Json};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fresh scratch directory per case, so "exactly one bundle" is a
/// meaningful assertion.
fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "aov-diag-test-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reads the single bundle in `dir`, parses and schema-validates it.
fn read_single_bundle(dir: &PathBuf, context: &str) -> Json {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{context}: no diag dir: {e}"))
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "{context}: want exactly one bundle");
    let path = entries.pop().unwrap();
    let text = std::fs::read_to_string(&path).expect("bundle readable");
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{context}: bad JSON: {e}"));
    assert_eq!(
        doc.get("schema"),
        Some(&Json::Str(diag::SCHEMA.to_string())),
        "{context}"
    );
    if let Err(errors) = schema::validate(&doc, &diag::diag_schema()) {
        panic!("{context}: bundle schema violations: {errors:#?}");
    }
    doc
}

/// The ring events of a parsed bundle as `(kind, label)` pairs.
fn ring_events(doc: &Json) -> Vec<(String, String)> {
    let Some(Json::Obj(_)) = doc.get("events") else {
        panic!("bundle has no events object");
    };
    let events = doc.get("events").unwrap();
    let Some(Json::Arr(ring)) = events.get("ring") else {
        panic!("bundle has no ring array");
    };
    ring.iter()
        .map(|e| {
            let kind = match e.get("kind") {
                Some(Json::Str(k)) => k.clone(),
                other => panic!("event kind: {other:?}"),
            };
            let label = match e.get("label") {
                Some(Json::Str(l)) => l.clone(),
                other => panic!("event label: {other:?}"),
            };
            (kind, label)
        })
        .collect()
}

/// Ring labels are capped at the recorder's inline capacity; compare
/// against the same truncation.
fn ring_label(site: &str) -> &str {
    &site[..site.len().min(24)]
}

/// The full probe-site × fault-kind matrix: every combination must
/// produce one schema-valid bundle whose ring tail carries the faulting
/// site (the `chaos_fired` marker plus, for span sites, the span-enter
/// event recorded with tracing disabled) and whose error field names
/// the fault class.
#[test]
fn every_site_kind_pair_produces_a_valid_bundle() {
    let _guard = lock();
    // Each probe site with the ring evidence its fault must leave
    // behind: the enclosing span's enter event, or — for probes that
    // sit directly in a stage body — the stage's enter event. The
    // orthant fan-out gates tick *before* the worker opens its span, so
    // those fire on the second visit (`nth = 1`): the first orthant
    // then provably leaves its span in the ring before the fault lands.
    let sites = [
        ("lp.simplex", 0, "span_enter", "lp.simplex"), // pivot loop
        ("lp.ilp.node", 0, "span_enter", "lp.ilp"),    // branch-and-bound
        ("schedule.solve", 0, "stage_enter", "schedule"), // scheduler entry
        ("p1.orthant", 1, "span_enter", "p1.orthant"), // Problem 1 fan-out
        ("aov.orthant", 1, "span_enter", "aov.orthant"), // Problem 3 fan-out
        ("pipeline.schedule", 0, "stage_enter", "schedule"),
        ("pipeline.aov", 0, "stage_enter", "aov"),
        (
            "pipeline.storage_transform",
            0,
            "stage_enter",
            "storage_transform",
        ),
    ];
    let kinds = [FaultKind::Error, FaultKind::Panic, FaultKind::Budget];
    for (site, nth, evidence_kind, evidence_label) in sites {
        for kind in kinds {
            let context = format!("chaos {kind:?} at {site}");
            chaos::install(ChaosSpec {
                site: site.to_string(),
                kind,
                nth,
                seed: 0,
            });
            let dir = fresh_dir(&format!("{site}-{kind:?}"));
            let workers = if site.ends_with(".orthant") { 3 } else { 1 };
            let report = Pipeline::for_example("example1")
                .unwrap()
                .workers(workers)
                .diag_dir(dir.clone())
                .run()
                .unwrap_or_else(|e| panic!("{context}: must degrade, got hard error: {e}"));
            assert_eq!(report.health(), Health::Degraded, "{context}");
            let doc = read_single_bundle(&dir, &context);
            assert_eq!(
                report.diag_path.as_deref().map(PathBuf::from),
                std::fs::read_dir(&dir)
                    .unwrap()
                    .next()
                    .map(|e| e.unwrap().path()),
                "{context}: report points at the bundle it wrote"
            );

            // The ring must carry the faulting span: the one-shot
            // chaos marker is the ground truth for where it fired.
            let events = ring_events(&doc);
            assert!(
                events
                    .iter()
                    .any(|(k, l)| k == "chaos_fired" && l == ring_label(site)),
                "{context}: ring lacks the chaos_fired marker: {events:?}"
            );
            // The faulting span (or stage) leaves its enter event even
            // with full tracing disabled: lite spans feed the recorder.
            assert!(
                events
                    .iter()
                    .any(|(k, l)| k == evidence_kind && l == ring_label(evidence_label)),
                "{context}: ring lacks {evidence_kind} {evidence_label:?}"
            );

            // The error field is always populated on a faulty run —
            // even when the fault was absorbed inside a stage and only
            // its degraded reason survives. (How the fault is worded
            // depends on which stage first visits the site, so the
            // site itself is asserted via the ring above, not here.)
            let error = doc.get("error").expect("error field");
            match error.get("message") {
                Some(Json::Str(m)) => assert!(!m.is_empty(), "{context}"),
                other => panic!("{context}: error message: {other:?}"),
            }
            let Some(Json::Arr(chain)) = error.get("chain") else {
                panic!("{context}: error chain missing");
            };
            assert!(!chain.is_empty(), "{context}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    chaos::disarm();
}

/// A healthy run must not write anything: bundles are for faulty runs.
#[test]
fn healthy_runs_write_no_bundle() {
    let _guard = lock();
    chaos::disarm();
    let dir = fresh_dir("healthy");
    let report = Pipeline::for_example("example1")
        .unwrap()
        .diag_dir(dir.clone())
        .run()
        .expect("healthy run");
    assert_eq!(report.health(), Health::Ok);
    assert_eq!(report.diag_path, None);
    assert!(
        !dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none(),
        "healthy run must not write a bundle"
    );
}

/// A genuine budget trip (not an injected one) must produce a bundle
/// whose `budget_trip` ring event names the span that was active at the
/// trip — satellite wiring for "which solver was holding the budget".
#[test]
fn budget_trip_bundle_names_the_active_span() {
    let _guard = lock();
    chaos::disarm();
    let dir = fresh_dir("budget");
    let report = Pipeline::for_example("example1")
        .unwrap()
        .budget_pivots(40)
        .diag_dir(dir.clone())
        .run()
        .expect("budget trips degrade, not abort");
    assert_eq!(report.health(), Health::Degraded);
    let doc = read_single_bundle(&dir, "budget trip");
    let events = ring_events(&doc);
    let trips: Vec<&(String, String)> = events.iter().filter(|(k, _)| k == "budget_trip").collect();
    assert!(
        !trips.is_empty(),
        "ring records the budget trip: {events:?}"
    );
    // The trip label names the active span (the lite label stack works
    // with tracing disabled); the tripping site is span-shaped, so the
    // same label must also appear as a span-enter event.
    for (_, label) in &trips {
        assert!(!label.is_empty(), "budget trip label must name a span");
        assert!(
            events.iter().any(|(k, l)| k == "span_enter" && l == label),
            "budget trip label {label:?} is an active span"
        );
    }
    // The degraded stage's error chain reaches the structured trip.
    let error = doc.get("error").expect("error field");
    let Some(Json::Arr(chain)) = error.get("chain") else {
        panic!("chain missing");
    };
    let chain_text = chain
        .iter()
        .map(|c| match c {
            Json::Str(s) => s.as_str(),
            _ => "",
        })
        .collect::<Vec<_>>()
        .join(" | ");
    assert!(
        chain_text.contains("budget"),
        "chain names the trip: {chain_text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hard failures (non-degradable errors) abort the run but still leave
/// a bundle carrying the partial stage ladder.
#[test]
fn hard_failure_still_writes_a_partial_bundle() {
    let _guard = lock();
    chaos::disarm();
    let dir = fresh_dir("hard");
    // An illegal schedule override fails the `schedule` stage hard.
    let program = aov_ir::examples::example1();
    let illegal = aov_schedule::Schedule::uniform_for(
        &program,
        &[aov_linalg::AffineExpr::from_i64(&[-1, 1, 0, 0], 0)],
    );
    let err = Pipeline::for_example("example1")
        .unwrap()
        .with_schedule(illegal)
        .diag_dir(dir.clone())
        .run()
        .expect_err("illegal override is a hard failure");
    assert!(matches!(err, aov_engine::EngineError::Schedule(_)), "{err}");
    let doc = read_single_bundle(&dir, "hard failure");
    assert_eq!(doc.get("health"), Some(&Json::Str("failed".into())));
    let Some(Json::Arr(stages)) = doc.get("stages") else {
        panic!("stages missing");
    };
    // The ladder ran up to and including the failing stage.
    assert!(!stages.is_empty(), "partial ladder present");
    let last = stages.last().unwrap();
    assert_eq!(last.get("name"), Some(&Json::Str("schedule".into())));
    assert_eq!(last.get("outcome"), Some(&Json::Str("failed".into())));
    let _ = std::fs::remove_dir_all(&dir);
}
