//! Per-request event attribution on the process-global flight
//! recorder: two session-attributed pipeline runs interleaving on the
//! same ring must each produce a crash bundle carrying **only their
//! own timeline** — the regression the `aovd` daemon depends on, since
//! its concurrent requests share one ring.

use std::path::PathBuf;
use std::sync::Barrier;

use aov_engine::{diag, Health, Pipeline};
use aov_support::{schema, Json};

/// Reads the single bundle in `dir`, parses and schema-validates it.
fn read_single_bundle(dir: &PathBuf, context: &str) -> Json {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{context}: no diag dir: {e}"))
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "{context}: want exactly one bundle");
    let path = entries.pop().unwrap();
    let text = std::fs::read_to_string(&path).expect("bundle readable");
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{context}: bad JSON: {e}"));
    if let Err(errors) = schema::validate(&doc, &diag::diag_schema()) {
        panic!("{context}: bundle schema violations: {errors:#?}");
    }
    doc
}

/// The `session` stamps of every ring event in a parsed bundle.
fn ring_sessions(doc: &Json) -> Vec<i64> {
    let events = doc.get("events").expect("events object");
    let Some(Json::Arr(ring)) = events.get("ring") else {
        panic!("bundle has no ring array");
    };
    ring.iter()
        .map(|e| match e.get("session") {
            Some(Json::Int(s)) => *s,
            other => panic!("event session: {other:?}"),
        })
        .collect()
}

/// Two budget-tripped runs, attributed to sessions 1 and 2, racing on
/// the shared ring: each bundle must carry its own (non-empty) event
/// tail and not one event of its neighbor's.
#[test]
fn interleaved_sessions_keep_their_bundles_disjoint() {
    let scratch = std::env::temp_dir().join(format!("aov-session-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let barrier = Barrier::new(2);
    let dirs: Vec<PathBuf> = (1..=2u64).map(|s| scratch.join(format!("s{s}"))).collect();
    std::thread::scope(|scope| {
        for (i, dir) in dirs.iter().enumerate() {
            let session = (i + 1) as u64;
            let barrier = &barrier;
            scope.spawn(move || {
                // Start the runs together so their ring events genuinely
                // interleave rather than landing in disjoint windows.
                barrier.wait();
                let report = Pipeline::for_example("example1")
                    .unwrap()
                    .workers(2)
                    .session(session)
                    .budget_pivots(40)
                    .diag_dir(dir.clone())
                    .run()
                    .expect("budget trips degrade, not abort");
                assert_eq!(report.health(), Health::Degraded, "session {session}");
            });
        }
    });
    for (i, dir) in dirs.iter().enumerate() {
        let session = (i + 1) as i64;
        let context = format!("session {session}");
        let doc = read_single_bundle(dir, &context);
        let sessions = ring_sessions(&doc);
        assert!(
            !sessions.is_empty(),
            "{context}: bundle carries its own timeline"
        );
        assert!(
            sessions.iter().all(|&s| s == session),
            "{context}: bundle leaked a neighbor's events: {sessions:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// A session-attributed run must not clear the shared ring: a
/// neighbor's events recorded before the run still snapshot afterwards.
#[test]
fn session_runs_do_not_clear_the_shared_ring() {
    use aov_trace::recorder::{self, EventKind};
    recorder::record(EventKind::Counter, "test.session.neighbor", 7, 0);
    let report = Pipeline::for_example("example1")
        .unwrap()
        .session(99)
        .run()
        .expect("healthy run");
    assert_eq!(report.health(), Health::Ok);
    assert!(
        recorder::snapshot()
            .iter()
            .any(|e| e.label == "test.session.neighbor" && e.a == 7),
        "neighbor's event survived the session-attributed run"
    );
}
