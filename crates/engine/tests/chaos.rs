//! Deterministic chaos suite: every injectable fault class, at every
//! instrumented layer, must surface as a *structured* degraded report —
//! never a process abort — and an armed-but-unfired spec must leave the
//! run bit-identical to a fault-free one.
//!
//! The chaos layer is process-global, so these tests serialize on a
//! mutex and live in their own test binary.

use std::sync::{Mutex, PoisonError};

use aov_engine::{Health, Pipeline, Report};
use aov_fault::chaos::{self, ChaosSpec, FaultKind};
use aov_support::Json;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn run_example1(workers: usize) -> Result<Report, aov_engine::EngineError> {
    Pipeline::for_example("example1")
        .unwrap()
        .workers(workers)
        .memoize(false)
        .run()
}

/// The result fields a fault-free run is judged by (timings excluded).
fn result_fingerprint(r: &Report) -> (Vec<Vec<i64>>, Option<String>, Option<bool>) {
    (
        r.aov
            .as_ref()
            .expect("complete run")
            .vectors()
            .iter()
            .map(|v| v.components().to_vec())
            .collect(),
        r.code.clone(),
        r.equivalent,
    )
}

/// Every `(site, kind)` pair: the injected fault is isolated into a
/// degraded report. `nth = 0` makes each spec fire at the site's first
/// visit, so every run below provably exercises its injection path.
#[test]
fn every_fault_class_degrades_instead_of_aborting() {
    let _guard = lock();
    let sites = [
        "lp.simplex",     // pivot loop, solver layer
        "lp.ilp.node",    // branch-and-bound layer
        "schedule.solve", // scheduler entry
        "p1.orthant",     // Problem 1 worker fan-out
        "aov.orthant",    // Problem 3 worker fan-out
        "pipeline.schedule",
        "pipeline.aov",
        "pipeline.storage_transform",
    ];
    let kinds = [FaultKind::Error, FaultKind::Panic, FaultKind::Budget];
    for site in sites {
        for kind in kinds {
            chaos::install(ChaosSpec {
                site: site.to_string(),
                kind,
                nth: 0,
                seed: 0,
            });
            // Worker sites get real fan-out so panics cross threads.
            let workers = if site.ends_with(".orthant") { 3 } else { 1 };
            let report = run_example1(workers).unwrap_or_else(|e| {
                panic!("chaos {kind:?} at {site} must degrade, got hard error: {e}")
            });
            assert_eq!(
                report.health(),
                Health::Degraded,
                "chaos {kind:?} at {site}"
            );
            let degraded: Vec<&str> = report
                .stages
                .iter()
                .filter(|s| s.outcome.class() == "degraded")
                .map(|s| s.name)
                .collect();
            assert!(!degraded.is_empty(), "chaos {kind:?} at {site}");
            // Every injected fault leaves a structured, parseable report.
            use aov_support::ToJson;
            let doc = report.to_json();
            assert_eq!(doc.get("health"), Some(&Json::Str("degraded".into())));
            Json::parse(&doc.to_pretty())
                .unwrap_or_else(|e| panic!("chaos {kind:?} at {site}: bad report JSON: {e}"));
        }
    }
    chaos::disarm();
    // One-shot semantics: the last spec already fired, so a follow-up
    // run is healthy without any explicit disarm in between.
    let report = run_example1(2).expect("post-chaos run is clean");
    assert_eq!(report.health(), Health::Ok);
}

/// Worker panics specifically must be attributed: the degraded reason
/// carries the panic payload and the site, proving `catch_unwind`
/// isolation rather than some generic failure path.
#[test]
fn worker_panic_is_attributed_to_its_site() {
    let _guard = lock();
    chaos::install(ChaosSpec {
        site: "aov.orthant".to_string(),
        kind: FaultKind::Panic,
        nth: 0,
        seed: 0,
    });
    let report = run_example1(4).expect("panic is isolated");
    let aov = report.stage("aov").expect("aov stage ran");
    assert_eq!(aov.outcome.class(), "degraded");
    let reason = aov.outcome.reason().unwrap();
    assert!(
        reason.contains("panic") && reason.contains("aov.orthant"),
        "panic attribution: {reason}"
    );
    chaos::disarm();
}

/// With injection disarmed — or armed at a site the run never visits —
/// the results are identical to a fault-free run: the chaos layer adds
/// probes, never behavior.
#[test]
fn armed_but_unfired_chaos_is_inert() {
    let _guard = lock();
    chaos::disarm();
    let clean = run_example1(2).expect("fault-free run");
    assert_eq!(clean.health(), Health::Ok);
    let clean_print = result_fingerprint(&clean);
    assert_eq!(clean_print.0, vec![vec![1, 2]], "example1 headline AOV");

    chaos::install(ChaosSpec {
        site: "no.such.site".to_string(),
        kind: FaultKind::Panic,
        nth: 0,
        seed: 0,
    });
    let armed = run_example1(2).expect("unfired chaos is harmless");
    assert_eq!(armed.health(), Health::Ok);
    assert_eq!(result_fingerprint(&armed), clean_print);
    chaos::disarm();
}
