//! Deterministic allocation fingerprints: the counting allocator's
//! per-span attribution on Example 1 must be *exactly* reproducible —
//! same span counts, same allocation counts, same byte totals — no
//! matter how many workers the fan-out stages use. Worker threads adopt
//! the caller's span context, so attribution must be independent of how
//! orthants land on threads.
//!
//! The trace sink is process-global, so this lives in its own test
//! binary (the other engine binaries never enable tracing).
//!
//! The fingerprint covers the spans whose work is schedule-invariant:
//! `p1.orthant` (Problem 1 never prunes, all 8 orthants of Example 1
//! solve identical models), the storage-form instantiation, and the
//! Farkas system builds of the scheduler. The AOV orthant fan-out is
//! deliberately excluded — its shared incumbent bound legitimately
//! prunes a timing-dependent subset of orthants in parallel runs.

use std::collections::BTreeMap;
use std::sync::Mutex;

use aov_engine::Pipeline;
use aov_trace::SpanRecord;

/// The trace sink is process-global: the two tests below serialize.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Spans whose (count, allocs, bytes, max_bits) aggregate must be
/// bit-identical across worker counts.
const STABLE_SPANS: [&str; 3] = ["p1.orthant", "core.storage_forms_for_dep", "farkas.system"];

#[derive(Debug, PartialEq, Eq, Default, Clone)]
struct Aggregate {
    count: u64,
    allocs: u64,
    bytes: u64,
    max_bits: u64,
}

fn fingerprint(records: &[SpanRecord]) -> BTreeMap<&'static str, Aggregate> {
    let mut out: BTreeMap<&'static str, Aggregate> = BTreeMap::new();
    for name in STABLE_SPANS {
        out.insert(name, Aggregate::default());
    }
    for r in records {
        if let Some(name) = STABLE_SPANS.iter().find(|n| **n == r.name) {
            let agg = out.get_mut(name).unwrap();
            agg.count += 1;
            agg.allocs += r.alloc_allocs;
            agg.bytes += r.alloc_bytes;
            agg.max_bits = agg.max_bits.max(r.max_bits);
        }
    }
    out
}

fn traced_run(workers: usize) -> Vec<SpanRecord> {
    aov_trace::clear();
    aov_trace::set_enabled(true);
    let report = Pipeline::for_example("example1")
        .unwrap()
        .workers(workers)
        .memoize(false)
        .run()
        .expect("example1 runs");
    aov_trace::set_enabled(false);
    assert_eq!(report.equivalent, Some(true));
    aov_trace::drain()
}

#[test]
fn fingerprint_is_identical_across_worker_counts() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    aov_lp::memo::set_enabled(false); // cold solver on every run
                                      // Warmup run: one-time lazy initialisation (thread-id assignment,
                                      // counter registration, allocator bookkeeping) must not pollute the
                                      // first fingerprinted run.
    let _ = traced_run(2);

    let records = traced_run(1);
    let baseline = fingerprint(&records);
    // The fingerprint is meaningful: Example 1 solves all 8 non-zero
    // sign patterns in Problem 1, each allocating a fresh model.
    assert_eq!(baseline["p1.orthant"].count, 8, "{baseline:?}");
    assert!(baseline["p1.orthant"].allocs > 0, "{baseline:?}");
    assert!(baseline["p1.orthant"].bytes > 0, "{baseline:?}");
    assert!(baseline["farkas.system"].count > 0, "{baseline:?}");
    assert!(
        baseline["core.storage_forms_for_dep"].count > 0,
        "{baseline:?}"
    );
    // Bit-width growth is charged to the innermost span doing the
    // arithmetic: the pivot loop itself, not its orthant ancestor.
    let lp_bits = records
        .iter()
        .filter(|r| r.name == "lp.simplex")
        .map(|r| r.max_bits)
        .max()
        .unwrap_or(0);
    assert!(lp_bits > 0, "simplex spans must report coefficient widths");

    for workers in 2..=4 {
        let got = fingerprint(&traced_run(workers));
        assert_eq!(
            got, baseline,
            "allocation fingerprint drifted at --workers {workers}"
        );
    }
}

/// Two identical runs in the same process agree exactly — the counting
/// allocator itself adds no nondeterminism (its scope bookkeeping is
/// charged to the spans deterministically).
#[test]
fn fingerprint_is_identical_across_repeat_runs() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    aov_lp::memo::set_enabled(false);
    let _ = traced_run(1); // warmup (see above)
    let first = fingerprint(&traced_run(3));
    let second = fingerprint(&traced_run(3));
    assert_eq!(first, second, "repeat runs must agree");
}
