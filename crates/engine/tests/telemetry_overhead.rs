//! Telemetry overhead guards: the flight recorder runs in every build
//! and every configuration, so its cost must stay marginal; the
//! counting allocator's byte accounting is armed on demand (the CLI
//! arms it for `--profile`/`--trace`/`--diag-dir`/`bench` only), so
//! its unit cost must merely stay in the nanoseconds. The
//! EXPERIMENTS.md overhead note is derived from the numbers these
//! tests print under `--release`.
//!
//! The recording flag is process-global, so the tests serialize on a
//! mutex and live in their own test binary.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use aov_engine::{Health, Pipeline};
use aov_trace::recorder::{self, EventKind};

static FLAG_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One ring event is a label copy plus a handful of relaxed atomic
/// stores; a lock or syscall on this path would cost microseconds.
#[test]
fn recorder_event_stays_cheap() {
    let _guard = lock();
    const EVENTS: u64 = 2_000_000;
    recorder::set_recording(true);
    for _ in 0..10_000 {
        recorder::record(EventKind::Counter, "overhead.warmup", 0, 0);
    }
    let t0 = Instant::now();
    for i in 0..EVENTS {
        recorder::record(EventKind::Counter, "overhead.test", i, 0);
    }
    let elapsed = t0.elapsed();
    let ns_per_event = elapsed.as_nanos() as f64 / EVENTS as f64;
    println!("recorder: {ns_per_event:.1} ns/event ({EVENTS} events in {elapsed:?})");
    assert!(
        ns_per_event < 1_000.0,
        "ring event costs {ns_per_event:.0} ns — recording is no longer cheap"
    );
    recorder::clear();
}

/// The counting allocator adds a few relaxed `fetch_add`s to every
/// heap operation; a whole alloc+free round trip (System call included)
/// must stay well under a microsecond.
#[test]
fn counting_allocator_stays_cheap() {
    const ROUNDS: u64 = 1_000_000;
    for _ in 0..10_000 {
        std::hint::black_box(Box::new(0u64));
    }
    let t0 = Instant::now();
    for i in 0..ROUNDS {
        std::hint::black_box(Box::new(i));
    }
    let elapsed = t0.elapsed();
    let ns_per_round = elapsed.as_nanos() as f64 / ROUNDS as f64;
    println!("alloc+free: {ns_per_round:.1} ns/round ({ROUNDS} rounds in {elapsed:?})");
    assert!(
        ns_per_round < 2_000.0,
        "counted alloc+free costs {ns_per_round:.0} ns"
    );
}

/// End-to-end guard for the acceptance criterion: Example 1 with the
/// flight recorder armed versus disarmed. Min-of-N wall times are
/// compared (min absorbs scheduler noise far better than the mean); the
/// release-build ratio is recorded in EXPERIMENTS.md, while the
/// assertion here stays generous enough for shared CI containers.
#[test]
fn flight_recorder_overhead_on_example1_is_marginal() {
    let _guard = lock();
    let run = || -> Duration {
        let t0 = Instant::now();
        let report = Pipeline::for_example("example1")
            .unwrap()
            .workers(2)
            .run()
            .expect("example1 runs");
        assert_eq!(report.health(), Health::Ok);
        t0.elapsed()
    };
    let min_of = |n: usize| (0..n).map(|_| run()).min().expect("runs");
    let _warm = run();
    recorder::set_recording(false);
    let off = min_of(5);
    recorder::set_recording(true);
    let on = min_of(5);
    let overhead = (on.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64();
    println!(
        "example1 min wall: recorder off {off:?}, on {on:?} ({:+.2}%)",
        overhead * 100.0
    );
    // Example 1's wall time swings by double-digit percentages between
    // runs on shared containers, so this comparison cannot resolve the
    // 1% budget — the derived test below does. This bound only catches
    // catastrophic regressions (per-event syscalls, ring contention).
    assert!(
        overhead < 0.50,
        "flight recorder costs {:.1}% of example1 wall time",
        overhead * 100.0
    );
}

/// The <= 1% acceptance budget for the *default* telemetry
/// configuration — the one every plain `aov run` ships with: flight
/// recorder armed, allocator byte accounting disarmed (the CLI arms it
/// only for `--profile`/`--mem`/`--trace`/`--diag-dir` and `bench`,
/// where the caller opted into paying for the numbers).
///
/// Measured in a noise-immune way: the per-event unit cost is timed in
/// a tight loop, multiplied by one real run's event count and compared
/// against that run's wall time. A direct armed-vs-disarmed wall
/// comparison drowns in this container's scheduler noise (±10% between
/// back-to-back runs); its paired medians are recorded in
/// EXPERIMENTS.md instead, and agree with the derived number here.
///
/// The opt-in byte accounting is *not* asserted against the 1% budget:
/// Example 1 performs ~13.5M allocations in under half a second, so
/// exact per-event accounting (~1-2 ns marginal) costs a measured
/// 3-7% of wall — which is exactly why plain runs disarm it. Its unit
/// cost is printed here and guarded by the loose bound above.
#[test]
fn derived_telemetry_overhead_is_within_budget() {
    let _guard = lock();
    recorder::set_recording(true);

    // Unit cost of one ring event.
    const EVENTS: u64 = 2_000_000;
    for _ in 0..10_000 {
        recorder::record(EventKind::Counter, "overhead.warmup", 0, 0);
    }
    let t0 = Instant::now();
    for i in 0..EVENTS {
        recorder::record(EventKind::Counter, "overhead.derived", i, 0);
    }
    let ns_per_event = t0.elapsed().as_nanos() as f64 / EVENTS as f64;

    // One real run's event volume and wall time, in the default
    // configuration (byte accounting disarmed, recorder armed).
    aov_support::alloc::set_counting(false);
    let events_before = recorder::events_recorded();
    let t0 = Instant::now();
    let report = Pipeline::for_example("example1")
        .unwrap()
        .workers(2)
        .run()
        .expect("example1 runs");
    let wall = t0.elapsed();
    aov_support::alloc::set_counting(true);
    assert_eq!(report.health(), Health::Ok);
    let events = recorder::events_recorded() - events_before;
    assert!(events > 100, "the recorder saw the run ({events} events)");

    let telemetry_ns = events as f64 * ns_per_event;
    let overhead = telemetry_ns / wall.as_nanos() as f64;
    println!(
        "default-config overhead: {events} events x {ns_per_event:.1} ns = {:.3} ms \
         of {wall:?} wall ({:.4}%)",
        telemetry_ns / 1e6,
        overhead * 100.0
    );
    assert!(
        overhead < 0.01,
        "flight recorder costs {:.2}% of example1 wall time (budget 1%)",
        overhead * 100.0
    );
}
