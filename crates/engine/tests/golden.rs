//! Golden end-to-end tests: the paper's four examples through the full
//! instrumented pipeline, asserting the headline AOVs, the dynamic
//! equivalence verdict, and that the parallel fan-out is bit-identical
//! to the sequential solvers.
//!
//! Headline vectors (paper §5 and Figures 5/8/11/14):
//!
//! * Example 1: `v_A = (1, 2)`
//! * Example 2: `v_A = v_B = (1, 1)`
//! * Example 3: `v_D = (1, 1, 1)`
//! * Example 4: `v_A = (1, 0)`, `v_B = (1)` — this implementation's
//!   objective admits the shorter `(1, 0)` for `A` where the paper
//!   quotes `(1, 1)`; both are valid AOVs and `(1, 0)` has the smaller
//!   two-term objective (see DESIGN.md).

use aov_engine::{Pipeline, Report};

/// The deterministic content of a report: everything except timings and
/// counter magnitudes.
fn fingerprint(r: &Report) -> (Vec<Vec<i64>>, Option<String>, Option<bool>, Vec<String>) {
    let vectors = r
        .aov
        .as_ref()
        .expect("complete run")
        .vectors()
        .iter()
        .map(|v| v.components().to_vec())
        .collect();
    let thetas = ["schedule", "problem2"]
        .iter()
        .map(|name| {
            r.stage(name)
                .and_then(|s| s.detail.get("theta"))
                .map(|j| format!("{j:?}"))
                .unwrap_or_default()
        })
        .collect();
    (vectors, r.code.clone(), r.equivalent, thetas)
}

fn run(name: &str, workers: usize) -> Report {
    Pipeline::for_example(name)
        .unwrap()
        .workers(workers)
        .run()
        .unwrap_or_else(|e| panic!("{name} with {workers} workers: {e}"))
}

#[test]
fn example1_golden() {
    let seq = run("example1", 1);
    assert_eq!(
        seq.aov
            .as_ref()
            .unwrap()
            .vector_for("A")
            .unwrap()
            .components(),
        [1, 2]
    );
    assert_eq!(seq.equivalent, Some(true), "dynamic equivalence must hold");
    // The instrumentation must see real solver work.
    assert!(seq.counter_total("lp.simplex.pivots") > 0);
    assert!(seq.counter_total("polyhedra.dd.conversions") > 0);
    assert!(seq.counter_total("polyhedra.fm.eliminations") > 0);
    // Parallel fan-out is bit-identical. (Counters are process-global,
    // so only lower bounds are asserted — concurrent tests inflate.)
    let par = run("example1", 4);
    assert_eq!(fingerprint(&seq), fingerprint(&par));
    assert!(
        par.counter_total("core.fanout.patterns") > 0,
        "parallel run"
    );
}

#[test]
fn example2_golden() {
    let seq = run("example2", 1);
    assert_eq!(
        seq.aov
            .as_ref()
            .unwrap()
            .vector_for("A")
            .unwrap()
            .components(),
        [1, 1]
    );
    assert_eq!(
        seq.aov
            .as_ref()
            .unwrap()
            .vector_for("B")
            .unwrap()
            .components(),
        [1, 1]
    );
    assert_eq!(seq.equivalent, Some(true));
    let par = run("example2", 4);
    assert_eq!(fingerprint(&seq), fingerprint(&par));
}

#[test]
fn example4_golden() {
    let seq = run("example4", 1);
    assert_eq!(
        seq.aov
            .as_ref()
            .unwrap()
            .vector_for("A")
            .unwrap()
            .components(),
        [1, 0]
    );
    assert_eq!(
        seq.aov
            .as_ref()
            .unwrap()
            .vector_for("B")
            .unwrap()
            .components(),
        [1]
    );
    assert_eq!(seq.equivalent, Some(true));
    let par = run("example4", 4);
    assert_eq!(fingerprint(&seq), fingerprint(&par));
}

/// Example 3 is by far the heaviest analysis (19 dependences, 27 sign
/// orthants); one parallel pipeline run asserts the headline vector.
#[test]
fn example3_golden() {
    let par = run("example3", 4);
    assert_eq!(
        par.aov
            .as_ref()
            .unwrap()
            .vector_for("D")
            .unwrap()
            .components(),
        [1, 1, 1]
    );
    assert_eq!(par.equivalent, Some(true));
    assert!(par.counter_total("lp.bb.nodes") > 0, "ILPs must branch");
}

/// The full sequential-vs-parallel comparison on Example 3 roughly
/// doubles the heaviest run; kept out of the default suite.
/// Run with `cargo test -p aov-engine -- --ignored`.
#[test]
#[ignore = "runs the heaviest analysis twice (several minutes)"]
fn example3_parallel_matches_sequential() {
    let seq = run("example3", 1);
    let par = run("example3", 4);
    assert_eq!(fingerprint(&seq), fingerprint(&par));
}

/// LP memoization must not change any result, and must actually hit.
#[test]
fn memoization_is_transparent() {
    let plain = run("example1", 2);
    let memo = Pipeline::for_example("example1")
        .unwrap()
        .workers(2)
        .memoize(true)
        .run()
        .unwrap();
    assert_eq!(fingerprint(&plain), fingerprint(&memo));
    assert!(memo.counter_total("lp.memo.misses") > 0);
}

/// The machine-model stage simulates §6 speedups for Example 2 and the
/// transformed storage must win.
#[test]
fn machine_stage_reports_speedups() {
    let report = Pipeline::for_example("example2")
        .unwrap()
        .workers(2)
        .machine(true)
        .run()
        .unwrap();
    let stage = report.stage("machine").expect("machine stage ran");
    let speedups = stage
        .detail
        .get("speedups")
        .expect("example2 has a machine model");
    let aov_support::Json::Arr(points) = speedups else {
        panic!("speedups must be an array")
    };
    assert_eq!(points.len(), 4);
    for pt in points {
        let orig = pt.get("original").unwrap();
        let trans = pt.get("transformed").unwrap();
        let (aov_support::Json::Float(o), aov_support::Json::Float(t)) = (orig, trans) else {
            panic!("speedup points must be floats: {pt:?}")
        };
        assert!(t > o, "transformed storage must win: {pt:?}");
    }
}
