//! Degradation-ladder integration tests: unschedulable inputs degrade
//! into structured reports, and budget trips are deterministic across
//! worker counts.

use aov_engine::{Health, Pipeline, Report};
use aov_support::Json;

/// Everything about a run that must be reproducible: the health verdict
/// and, per stage, its name, outcome class and reason. Timings are
/// deliberately excluded.
fn fingerprint(r: &Report) -> Vec<(String, String, String)> {
    r.stages
        .iter()
        .map(|s| {
            (
                s.name.to_string(),
                s.outcome.class().to_string(),
                s.outcome.reason().unwrap_or("").to_string(),
            )
        })
        .collect()
}

/// Satellite regression: a program with no one-dimensional affine
/// schedule must not abort the pipeline. The `schedule` stage degrades
/// with a diagnostic naming the violated dependence, the
/// schedule-independent stages are still attempted, and the report
/// stays structurally valid.
#[test]
fn unschedulable_program_degrades_with_named_dependence() {
    let report = Pipeline::new(aov_ir::examples::unschedulable())
        .run()
        .expect("unschedulable input degrades, it does not abort");
    assert_eq!(report.health(), Health::Degraded);

    let schedule = report.stage("schedule").expect("schedule stage ran");
    assert_eq!(schedule.outcome.class(), "degraded");
    let reason = schedule.outcome.reason().expect("degraded has a reason");
    assert!(
        reason.contains("no one-dimensional affine schedule exists"),
        "diagnostic: {reason}"
    );
    assert!(
        reason.contains("dependence #") && reason.contains("S -> S"),
        "diagnostic must name the violated dependence: {reason}"
    );

    // Schedule-dependent stages are skipped (with reasons), never
    // silently dropped; the schedule-independent AOV stage is attempted.
    assert_eq!(report.stage("problem1").unwrap().outcome.class(), "skipped");
    let aov = report.stage("aov").expect("aov stage attempted");
    assert_ne!(aov.outcome.class(), "failed");
    assert!(report.equivalent.is_none(), "no schedule to execute under");

    // The degraded report still serializes, parses back, and matches
    // the same schema a healthy report does.
    use aov_support::ToJson;
    let doc = report.to_json();
    assert_eq!(doc.get("health"), Some(&Json::Str("degraded".into())));
    Json::parse(&doc.to_pretty()).expect("degraded report round-trips");
    aov_support::schema::validate(&doc, &aov_engine::report_schema())
        .expect("degraded report matches the report schema");
}

/// Healthy reports match the same schema the chaos suite holds degraded
/// ones to (a schema loose enough to pass only broken documents would
/// make the CI smoke step meaningless).
#[test]
fn healthy_report_matches_schema() {
    use aov_support::ToJson;
    let report = Pipeline::for_example("example1").unwrap().run().unwrap();
    assert_eq!(report.health(), Health::Ok);
    aov_support::schema::validate(&report.to_json(), &aov_engine::report_schema())
        .expect("healthy report matches the report schema");
}

/// Satellite property: the same budget produces the same trip point —
/// the same degraded stages with the same reasons — regardless of the
/// worker count. Finite budgets disable the racy incumbent pruning, so
/// nothing about the fingerprint may depend on thread scheduling.
#[test]
fn budget_trip_point_is_deterministic_across_workers() {
    aov_support::prop::run("budget_determinism", 8, 0xB0D9_E7E5, |g| {
        let pivots = g.i64_in(1, 400) as u64;
        let nodes = if g.bool() {
            Some(g.i64_in(1, 50) as u64)
        } else {
            None
        };
        let run = |workers: usize| {
            let mut p = Pipeline::for_example("example1")
                .unwrap()
                .workers(workers)
                .memoize(false)
                .budget_pivots(pivots);
            if let Some(n) = nodes {
                p = p.budget_nodes(n);
            }
            p.run().expect("budget trips degrade, they do not abort")
        };
        let baseline = run(1);
        let base_print = fingerprint(&baseline);
        for workers in 2..=4 {
            let r = run(workers);
            assert_eq!(r.health(), baseline.health(), "workers {workers}");
            assert_eq!(
                fingerprint(&r),
                base_print,
                "pivots={pivots} nodes={nodes:?} workers={workers}"
            );
        }
    });
}
