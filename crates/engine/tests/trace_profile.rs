//! Tracing/profiling integration tests: golden flame table on
//! Example 1, Chrome-export round-trip, and per-run counter deltas.
//!
//! The trace sink and the counter registry are process-global, so these
//! tests serialize on a mutex and live in their own test binary — the
//! other engine test binaries never enable tracing and cannot pollute
//! the sink.

use std::sync::Mutex;

use aov_engine::{Pipeline, Report};
use aov_support::Json;
use aov_trace::flame::FlameTable;
use aov_trace::SpanRecord;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs Example 1 with tracing on and returns its spans and report.
fn traced_example1(workers: usize) -> (Vec<SpanRecord>, Report) {
    let _guard = lock();
    aov_lp::memo::set_enabled(false); // cold cache: the simplex must run
    aov_trace::clear();
    aov_trace::set_enabled(true);
    let report = Pipeline::for_example("example1")
        .unwrap()
        .workers(workers)
        .memoize(true)
        .run()
        .expect("example1 runs");
    aov_trace::set_enabled(false);
    (aov_trace::drain(), report)
}

/// The stages every run executes, in order (machine stage off).
const STAGES: [&str; 10] = [
    "pipeline.ir",
    "pipeline.dependences",
    "pipeline.legal_schedule",
    "pipeline.schedule",
    "pipeline.problem1",
    "pipeline.aov",
    "pipeline.problem2",
    "pipeline.storage_transform",
    "pipeline.codegen",
    "pipeline.equivalence",
];

#[test]
fn example1_flame_table_golden() {
    let (records, report) = traced_example1(2);
    assert_eq!(report.equivalent, Some(true));
    let table = FlameTable::build(&records);
    // Every pipeline stage is exactly one span.
    for stage in STAGES {
        let row = table
            .row(stage)
            .unwrap_or_else(|| panic!("missing stage row {stage}"));
        assert_eq!(row.count, 1, "{stage} must run exactly once");
    }
    // Problems 1 and 3 each instantiate the storage forms once per dep.
    let ndeps = aov_ir::analysis::dependences(&aov_ir::examples::example1()).len();
    let forms = table
        .row("core.storage_forms_for_dep")
        .expect("storage-form spans");
    assert_eq!(forms.count as usize, 2 * ndeps);
    // Example 1's vector space has 2 components: 3^2 sign patterns minus
    // the all-zero one survive the filter, and Problem 1 never prunes.
    assert_eq!(table.row("p1.orthant").expect("p1 spans").count, 8);
    // The AOV incumbent bound may prune late orthants (timing-dependent
    // in parallel runs), but at least one must be solved.
    assert!(table.row("aov.orthant").expect("aov spans").count >= 1);
    // Solver-cost attribution: the flame table separates model build
    // from LP solve from memo lookup.
    for name in [
        "farkas.model_build",
        "farkas.system",
        "lp.solve",
        "lp.simplex",
        "lp.canonicalize",
        "lp.memo.lookup",
        "lp.ilp",
    ] {
        assert!(table.row(name).is_some(), "missing {name} row");
    }
    for row in table.rows() {
        assert!(row.self_ns <= row.total_ns, "{}: self > total", row.name);
        assert!(row.p50_ns <= row.p95_ns, "{}: p50 > p95", row.name);
    }
    // The rendered table carries every row name.
    let rendered = table.render();
    assert!(rendered.contains("pipeline.aov") && rendered.contains("lp.simplex"));
    // Deterministic tree shape: every root is a pipeline stage, and the
    // cross-thread orthant spans re-attach below their stage.
    let tree = aov_trace::tree(&records);
    assert_eq!(tree.len(), STAGES.len());
    for root in &tree {
        assert!(
            root.name.starts_with("pipeline."),
            "non-stage root {}",
            root.name
        );
    }
    let p1 = tree
        .iter()
        .find(|n| n.name == "pipeline.problem1")
        .expect("problem1 root");
    assert_eq!(
        p1.children
            .iter()
            .filter(|c| c.name == "p1.orthant")
            .count(),
        8,
        "orthant spans must parent to their stage across worker threads"
    );
}

/// Golden internal span tree of the problem2 stage: the stage body is
/// fully re-attributed to `p2.*` child spans, and the polyhedral
/// library underneath (vertex enumeration, chamber splitting, DD
/// conversion steps, FM projections, redundancy elimination) shows up
/// in the flame table with its own rows and counters.
#[test]
fn example1_problem2_internal_span_tree_golden() {
    let (records, report) = traced_example1(1);
    let tree = aov_trace::tree(&records);
    let p2 = tree
        .iter()
        .find(|n| n.name == "pipeline.problem2")
        .expect("problem2 root");
    // The four phases of best_schedule_for_ov, each exactly once.
    for phase in [
        "p2.legal_constraints",
        "p2.dependences",
        "p2.storage_rows",
        "p2.solve",
    ] {
        assert_eq!(
            p2.children.iter().filter(|c| c.name == phase).count(),
            1,
            "problem2 must run {phase} exactly once; children: {:?}",
            p2.children.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
    }
    // One storage-row derivation per dependence, nested under the
    // storage phase.
    let ndeps = aov_ir::analysis::dependences(&aov_ir::examples::example1()).len();
    let storage = p2
        .children
        .iter()
        .find(|c| c.name == "p2.storage_rows")
        .unwrap();
    assert_eq!(
        storage
            .children
            .iter()
            .filter(|c| c.name == "p2.storage_dep")
            .count(),
        ndeps,
        "one p2.storage_dep per dependence"
    );
    // The polyhedral internals surface as flame rows; chamber splitting
    // recurses, so its count strictly exceeds the enumeration count.
    let table = FlameTable::build(&records);
    let enums = table.row("p2.vertex_enum").expect("vertex enumerations");
    let chambers = table.row("p2.chamber").expect("chamber splits");
    let dd = table.row("p2.dd.step").expect("dd conversion steps");
    assert!(enums.count >= 1);
    assert!(chambers.count > enums.count);
    assert!(dd.count > chambers.count);
    assert!(table.row("p2.fm.project").is_some(), "FM projections");
    assert!(table.row("p2.redundancy").is_some(), "redundancy pass");
    // Re-attribution: the stage's own self time is residual glue. The
    // acceptance bar is ≥90% of self time moved into p2.* children;
    // assert the same with slack (≥80%) so scheduler jitter on a
    // millisecond-scale stage cannot flake the suite.
    let stage = table.row("pipeline.problem2").expect("problem2 row");
    assert!(
        stage.self_ns * 5 <= stage.total_ns,
        "problem2 self time {} ns must be a small residue of total {} ns",
        stage.self_ns,
        stage.total_ns
    );
    // The counters riding along with the spans moved this run.
    for counter in [
        "polyhedra.param.vertex_enums",
        "polyhedra.param.chambers",
        "polyhedra.dd.conversions",
        "polyhedra.redundancy.checks",
        "polyhedra.redundancy.rows_dropped",
    ] {
        assert!(
            report.counter(counter) > 0,
            "counter {counter} must move on example1"
        );
    }
}

#[test]
fn chrome_export_round_trips() {
    let (records, _) = traced_example1(2);
    let doc = aov_trace::chrome::chrome_trace(&records);
    let parsed = Json::parse(&doc.to_pretty()).expect("chrome trace parses back");
    let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    let mut complete = 0usize;
    let mut meta = 0usize;
    for e in events {
        match e.get("ph") {
            Some(Json::Str(ph)) if ph == "X" => {
                complete += 1;
                assert!(matches!(e.get("name"), Some(Json::Str(_))));
                assert!(e.get("ts").is_some() && e.get("dur").is_some());
                assert!(e.get("tid").is_some() && e.get("pid").is_some());
            }
            Some(Json::Str(ph)) if ph == "M" => meta += 1,
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(complete, records.len());
    assert!(meta >= 2, "expected thread_name metadata per track");
    // workers(2) puts spans on more than one track.
    let threads: std::collections::BTreeSet<u64> = records.iter().map(|r| r.thread).collect();
    assert!(
        threads.len() >= 2,
        "expected multiple threads, got {threads:?}"
    );
}

/// Satellite check: `Report::counters` holds this run's increments, not
/// the process-cumulative registry values.
#[test]
fn report_counters_are_per_run_deltas() {
    let _guard = lock();
    aov_lp::memo::set_enabled(false); // cold cache
    let run = || {
        Pipeline::for_example("example1")
            .unwrap()
            .workers(1)
            .memoize(true)
            .run()
            .expect("example1 runs")
    };
    let first = run();
    let second = run();
    assert!(first.counter("lp.memo.misses") > 0, "cold run must miss");
    assert!(second.counter("lp.memo.hits") > 0, "warm run must hit");
    assert!(
        second.memo_hit_rate().expect("lookups happened") > first.memo_hit_rate().unwrap(),
        "warm run must hit more often than the cold one"
    );
    // The registry keeps process-cumulative values; the reports carry
    // per-run deltas strictly below them.
    let cumulative = aov_support::counters::snapshot()
        .iter()
        .find(|(n, _)| n == "lp.memo.misses")
        .map_or(0, |(_, v)| *v);
    assert!(cumulative >= first.counter("lp.memo.misses") + second.counter("lp.memo.misses"));
    assert!(second.counter("lp.memo.misses") < cumulative);
    // The JSON report exposes the same memo economics.
    use aov_support::ToJson;
    let json = second.to_json();
    let memo = json.get("memo").expect("memo sub-report");
    assert!(matches!(memo.get("hits"), Some(Json::Int(h)) if *h > 0));
    assert!(matches!(memo.get("hit_rate"), Some(Json::Float(r)) if *r > 0.0));
}
