//! Wraparound coverage for the configurable flight-recorder ring: the
//! chaos-matrix suite runs at the default 4096 slots, where a short
//! pipeline run never wraps. This binary shrinks the ring to the
//! minimum before anything records — it must be its own process,
//! because the ring's capacity is fixed at first use — and checks that
//! a faulting run still leaves a bundle whose ring tail carries the
//! fault evidence after thousands of events have been evicted.

use std::path::PathBuf;

use aov_engine::diag;
use aov_engine::{Health, Pipeline};
use aov_fault::chaos::{self, ChaosSpec, FaultKind};
use aov_support::{schema, Json};
use aov_trace::recorder;

#[test]
fn tiny_ring_wraps_and_still_carries_fault_evidence() {
    // Before any instrumented work: request the smallest ring. The
    // request must land (nothing has recorded yet in this process).
    assert!(
        recorder::set_slots(1),
        "capacity request must precede first use"
    );
    assert_eq!(recorder::slots(), recorder::MIN_SLOTS);

    // A faulting run: chaos at the last pipeline stage, by which point
    // the run (spans, counters, budget ticks from every earlier stage)
    // has recorded far more events than the tiny ring holds.
    let site = "pipeline.storage_transform";
    chaos::install(ChaosSpec {
        site: site.to_string(),
        kind: FaultKind::Error,
        nth: 0,
        seed: 0,
    });
    let dir = std::env::temp_dir().join(format!("aov-diag-small-ring-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let head_before = recorder::events_recorded();
    let report = Pipeline::for_example("example1")
        .unwrap()
        .diag_dir(dir.clone())
        .run()
        .expect("chaos error degrades, not aborts");
    chaos::disarm();
    assert_eq!(report.health(), Health::Degraded);

    // The run provably wrapped the tiny ring.
    assert!(
        recorder::events_recorded() - head_before > recorder::MIN_SLOTS as u64,
        "run recorded {} events, ring holds {}",
        recorder::events_recorded() - head_before,
        recorder::MIN_SLOTS
    );
    assert!(recorder::snapshot().len() <= recorder::MIN_SLOTS);

    // Exactly one schema-valid bundle, as in the full-size suite.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("diag dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "want exactly one bundle");
    let text = std::fs::read_to_string(entries.pop().unwrap()).expect("bundle readable");
    let doc = Json::parse(&text).expect("bundle parses");
    if let Err(errors) = schema::validate(&doc, &diag::diag_schema()) {
        panic!("bundle schema violations: {errors:#?}");
    }

    // The drained ring is capacity-bounded, full (eviction actually
    // happened), ordered, and — the point of eviction keeping the
    // *newest* events — still ends with the fault.
    let Some(Json::Arr(ring)) = doc.get("events").and_then(|e| e.get("ring")) else {
        panic!("bundle has no ring array");
    };
    assert!(
        ring.len() <= recorder::MIN_SLOTS,
        "ring drained {} events from a {}-slot ring",
        ring.len(),
        recorder::MIN_SLOTS
    );
    assert!(
        ring.len() >= recorder::MIN_SLOTS - 4,
        "a wrapped ring drains full (minus torn slots), got {}",
        ring.len()
    );
    let seqs: Vec<i64> = ring
        .iter()
        .map(|e| match e.get("seq") {
            Some(Json::Int(s)) => *s,
            other => panic!("event seq: {other:?}"),
        })
        .collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "drained ring stays ordered across wraparound"
    );
    // Ring labels truncate to the recorder's inline capacity.
    let marker = &site[..site.len().min(24)];
    assert!(
        ring.iter().any(|e| {
            e.get("kind") == Some(&Json::Str("chaos_fired".into()))
                && e.get("label") == Some(&Json::Str(marker.into()))
        }),
        "fault marker survives in the ring tail"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
