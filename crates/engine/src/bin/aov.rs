//! The `aov` command line: run the instrumented pipeline on one of the
//! paper's examples and print a JSON report.
//!
//! ```text
//! aov <example1|example2|example3|example4|all> [options]
//!
//!   --workers N        fan the per-orthant solvers out over N threads
//!                      (default: available parallelism, capped at 8)
//!   --sequential       shorthand for --workers 1
//!   --memoize          enable the LP memoization cache
//!   --legacy-memo-keys key the cache on raw model text instead of the
//!                      alpha-renamed canonical form (A/B comparison)
//!   --machine          include the §6 simulated-speedup stage
//!   --params A,B       parameter sizes for the equivalence oracle
//!   --compact          one-line JSON instead of pretty-printed
//!   --trace FILE       write a Chrome trace-event JSON (load it in
//!                      Perfetto or chrome://tracing); the file also
//!                      carries an "aovMetrics" snapshot merging the
//!                      span flame table with the solver counters
//!   --profile          print a per-example flame table and memo
//!                      hit-rate summary to stderr
//!
//! aov --check-trace FILE
//!
//!   Validate a previously written trace: parse the JSON and assert it
//!   contains pipeline root spans. Exit 0 when well-formed.
//! ```
//!
//! Exit status: 0 on success (and dynamic equivalence holding), 1 when a
//! stage fails or equivalence does not hold, 2 on a usage error.

use aov_engine::Pipeline;
use aov_support::{Json, ToJson};

struct Options {
    programs: Vec<String>,
    workers: usize,
    memoize: bool,
    legacy_memo_keys: bool,
    machine: bool,
    params: Option<Vec<i64>>,
    compact: bool,
    trace: Option<String>,
    profile: bool,
    check_trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: aov <example1|example2|example3|example4|all> \
         [--workers N] [--sequential] [--memoize] [--legacy-memo-keys] \
         [--machine] [--params A,B,..] [--compact] [--trace FILE] \
         [--profile]\n       aov --check-trace FILE"
    );
    std::process::exit(2);
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

fn parse(args: &[String]) -> Options {
    let mut opts = Options {
        programs: Vec::new(),
        workers: default_workers(),
        memoize: false,
        legacy_memo_keys: false,
        machine: false,
        params: None,
        compact: false,
        trace: None,
        profile: false,
        check_trace: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => opts.workers = w,
                None => usage(),
            },
            "--sequential" => opts.workers = 1,
            "--memoize" => opts.memoize = true,
            "--legacy-memo-keys" => opts.legacy_memo_keys = true,
            "--machine" => opts.machine = true,
            "--params" => match it.next() {
                Some(spec) => {
                    let parsed: Option<Vec<i64>> =
                        spec.split(',').map(|s| s.trim().parse().ok()).collect();
                    match parsed {
                        Some(ps) if !ps.is_empty() => opts.params = Some(ps),
                        _ => usage(),
                    }
                }
                None => usage(),
            },
            "--compact" => opts.compact = true,
            "--trace" => match it.next() {
                Some(f) => opts.trace = Some(f.clone()),
                None => usage(),
            },
            "--profile" => opts.profile = true,
            "--check-trace" => match it.next() {
                Some(f) => opts.check_trace = Some(f.clone()),
                None => usage(),
            },
            "all" => {
                opts.programs.extend((1..=4).map(|k| format!("example{k}")));
            }
            name if !name.starts_with('-') => opts.programs.push(name.to_string()),
            _ => usage(),
        }
    }
    if opts.programs.is_empty() && opts.check_trace.is_none() {
        usage();
    }
    opts
}

/// Validates a written trace file: parses the JSON back (through
/// `aov_support::json`) and requires at least one `pipeline.*` root span
/// among the trace events.
fn check_trace(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("aov: {path}: {e}");
            return 1;
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("aov: {path}: invalid JSON: {e}");
            return 1;
        }
    };
    let Some(Json::Arr(events)) = json.get("traceEvents") else {
        eprintln!("aov: {path}: no traceEvents array");
        return 1;
    };
    let pipeline_spans = events
        .iter()
        .filter(|e| matches!(e.get("name"), Some(Json::Str(n)) if n.starts_with("pipeline.")))
        .count();
    if pipeline_spans == 0 {
        eprintln!("aov: {path}: no pipeline root spans in trace");
        return 1;
    }
    eprintln!(
        "aov: {path}: ok ({} events, {pipeline_spans} pipeline spans)",
        events.len()
    );
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse(&args);

    if let Some(path) = &opts.check_trace {
        std::process::exit(check_trace(path));
    }

    let tracing = opts.trace.is_some() || opts.profile;
    if tracing {
        aov_trace::set_enabled(true);
    }
    if opts.legacy_memo_keys {
        aov_lp::memo::set_legacy_keys(true);
    }

    let mut reports = Vec::new();
    let mut all_records: Vec<aov_trace::SpanRecord> = Vec::new();
    let mut all_equivalent = true;
    for name in &opts.programs {
        let mut pipeline = match Pipeline::for_example(name) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("aov: {e}");
                std::process::exit(2);
            }
        };
        pipeline = pipeline
            .workers(opts.workers)
            .memoize(opts.memoize)
            .machine(opts.machine);
        if let Some(ps) = &opts.params {
            pipeline = pipeline.check_params(ps.clone());
        }
        match pipeline.run() {
            Ok(report) => {
                if tracing {
                    let records = aov_trace::drain();
                    if opts.profile {
                        print_profile(name, &records, &report);
                    }
                    all_records.extend(records);
                }
                all_equivalent &= report.equivalent;
                reports.push(report.to_json());
            }
            Err(e) => {
                eprintln!("aov: {name}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &opts.trace {
        let metrics =
            aov_trace::metrics::snapshot(&all_records, &aov_support::counters::snapshot());
        let doc = aov_trace::chrome::chrome_trace(&all_records).field("aovMetrics", metrics);
        if let Err(e) = std::fs::write(path, doc.to_pretty()) {
            eprintln!("aov: cannot write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("aov: trace written to {path} ({} spans)", all_records.len());
    }

    let json = if reports.len() == 1 {
        reports.pop().unwrap()
    } else {
        Json::Arr(reports)
    };
    let text = if opts.compact {
        let mut line = json.to_compact();
        line.push('\n');
        line
    } else {
        json.to_pretty()
    };
    // Ignore broken pipes (e.g. `aov … | head`).
    use std::io::Write;
    let _ = std::io::stdout().write_all(text.as_bytes());
    std::process::exit(if all_equivalent { 0 } else { 1 });
}

/// Per-example profile: flame table plus the run's memo economics.
fn print_profile(name: &str, records: &[aov_trace::SpanRecord], report: &aov_engine::Report) {
    eprintln!("== profile: {name} ({} spans) ==", records.len());
    let table = aov_trace::flame::FlameTable::build(records);
    eprint!("{}", table.render());
    let hits = report.counter("lp.memo.hits");
    let misses = report.counter("lp.memo.misses");
    match report.memo_hit_rate() {
        Some(rate) => eprintln!(
            "memo: {hits} hits / {} lookups ({:.1}% hit rate, {})",
            hits + misses,
            rate * 100.0,
            if aov_lp::memo::legacy_keys() {
                "legacy keys"
            } else {
                "canonical keys"
            }
        ),
        None => eprintln!("memo: no lookups"),
    }
    eprintln!();
}
