//! The `aov` command line: run the instrumented pipeline on one of the
//! paper's examples and print a JSON report.
//!
//! ```text
//! aov <example1|example2|example3|example4|all> [options]
//!
//!   --workers N    fan the per-orthant solvers out over N threads
//!                  (default: available parallelism, capped at 8)
//!   --sequential   shorthand for --workers 1
//!   --memoize      enable the LP memoization cache
//!   --machine      include the §6 simulated-speedup stage
//!   --params A,B   parameter sizes for the equivalence oracle
//!   --compact      one-line JSON instead of pretty-printed
//! ```
//!
//! Exit status: 0 on success (and dynamic equivalence holding), 1 when a
//! stage fails or equivalence does not hold, 2 on a usage error.

use aov_engine::Pipeline;
use aov_support::{Json, ToJson};

struct Options {
    programs: Vec<String>,
    workers: usize,
    memoize: bool,
    machine: bool,
    params: Option<Vec<i64>>,
    compact: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: aov <example1|example2|example3|example4|all> \
         [--workers N] [--sequential] [--memoize] [--machine] \
         [--params A,B,..] [--compact]"
    );
    std::process::exit(2);
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

fn parse(args: &[String]) -> Options {
    let mut opts = Options {
        programs: Vec::new(),
        workers: default_workers(),
        memoize: false,
        machine: false,
        params: None,
        compact: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => opts.workers = w,
                None => usage(),
            },
            "--sequential" => opts.workers = 1,
            "--memoize" => opts.memoize = true,
            "--machine" => opts.machine = true,
            "--params" => match it.next() {
                Some(spec) => {
                    let parsed: Option<Vec<i64>> =
                        spec.split(',').map(|s| s.trim().parse().ok()).collect();
                    match parsed {
                        Some(ps) if !ps.is_empty() => opts.params = Some(ps),
                        _ => usage(),
                    }
                }
                None => usage(),
            },
            "--compact" => opts.compact = true,
            "all" => {
                opts.programs.extend((1..=4).map(|k| format!("example{k}")));
            }
            name if !name.starts_with('-') => opts.programs.push(name.to_string()),
            _ => usage(),
        }
    }
    if opts.programs.is_empty() {
        usage();
    }
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse(&args);

    let mut reports = Vec::new();
    let mut all_equivalent = true;
    for name in &opts.programs {
        let mut pipeline = match Pipeline::for_example(name) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("aov: {e}");
                std::process::exit(2);
            }
        };
        pipeline = pipeline
            .workers(opts.workers)
            .memoize(opts.memoize)
            .machine(opts.machine);
        if let Some(ps) = &opts.params {
            pipeline = pipeline.check_params(ps.clone());
        }
        match pipeline.run() {
            Ok(report) => {
                all_equivalent &= report.equivalent;
                reports.push(report.to_json());
            }
            Err(e) => {
                eprintln!("aov: {name}: {e}");
                std::process::exit(1);
            }
        }
    }

    let json = if reports.len() == 1 {
        reports.pop().unwrap()
    } else {
        Json::Arr(reports)
    };
    let text = if opts.compact {
        let mut line = json.to_compact();
        line.push('\n');
        line
    } else {
        json.to_pretty()
    };
    // Ignore broken pipes (e.g. `aov … | head`).
    use std::io::Write;
    let _ = std::io::stdout().write_all(text.as_bytes());
    std::process::exit(if all_equivalent { 0 } else { 1 });
}
