//! Crash-diagnostic bundles (`aov-diag/1`).
//!
//! When a pipeline run lands anywhere but [`Health::Ok`] and a
//! [`Pipeline::diag_dir`](crate::Pipeline::diag_dir) is configured, the
//! engine drains the [flight recorder](aov_trace::recorder) and writes
//! one self-contained JSON bundle describing the faulty run:
//!
//! * the stage ladder as executed (partial on hard failures), with
//!   per-stage counters, allocator traffic and error chains,
//! * the error behind the verdict, with its full `source()` chain
//!   (engine → core → fault → budget trip),
//! * the budget configuration and how much of it was spent,
//! * the run's counter deltas and a process allocator snapshot,
//! * the recorder ring tail — the last few thousand span/stage/counter/
//!   budget/chaos events with nanosecond timestamps, captured even when
//!   full tracing was disabled,
//! * identity: crate version and an FNV-1a digest of the program IR, so
//!   a bundle can be matched to the exact input that produced it.
//!
//! Bundles are schema-versioned ([`SCHEMA`]) and validated by
//! `aov inspect --check` and the CI diag-smoke step against
//! [`diag_schema`]. The writer never clobbers: file names carry a
//! process-wide sequence number and creation is `create_new`, so
//! repeated faulty runs (and concurrent processes sharing a directory)
//! each keep their own bundle.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use aov_fault::Budget;
use aov_ir::Program;
use aov_support::schema::Schema;
use aov_support::{digest, Json, ToJson};
use aov_trace::recorder;

use crate::pipeline::{
    counters_schema, error_chain_of, stage_schema, BudgetSpec, EngineError, Health, StageOutcome,
    StageReport,
};

/// The bundle format identifier stored in every document's `schema`
/// field. Readers must reject other versions.
pub const SCHEMA: &str = "aov-diag/1";

/// Structural schema of one `aov-diag/1` bundle; `aov inspect --check`
/// validates candidate documents against this shape.
#[must_use]
pub fn diag_schema() -> Schema {
    let event = Schema::object([
        ("seq", Schema::Int, true),
        ("t_ns", Schema::Int, true),
        ("thread", Schema::Int, true),
        // Present since the daemon's per-request attribution landed;
        // optional so bundles written by older binaries still validate.
        ("session", Schema::Int, false),
        ("kind", Schema::Str, true),
        ("label", Schema::Str, true),
        ("a", Schema::Int, true),
        ("b", Schema::Int, true),
    ]);
    Schema::object([
        ("schema", Schema::Str, true),
        ("program", Schema::Str, true),
        ("workers", Schema::Int, true),
        ("health", Schema::Str, true),
        (
            "error",
            Schema::nullable(Schema::object([
                ("stage", Schema::nullable(Schema::Str), true),
                ("message", Schema::Str, true),
                ("chain", Schema::array(Schema::Str), true),
            ])),
            true,
        ),
        ("stages", Schema::array(stage_schema()), true),
        (
            "budget",
            Schema::object([
                (
                    "limits",
                    Schema::object([
                        ("pivots", Schema::nullable(Schema::Int), true),
                        ("nodes", Schema::nullable(Schema::Int), true),
                        ("ms", Schema::nullable(Schema::Int), true),
                    ]),
                    true,
                ),
                ("pivots_spent", Schema::Int, true),
                ("nodes_spent", Schema::Int, true),
                ("cancelled", Schema::Bool, true),
            ]),
            true,
        ),
        ("counters", counters_schema(), true),
        (
            "alloc",
            Schema::object([
                ("allocs", Schema::Int, true),
                ("frees", Schema::Int, true),
                ("bytes", Schema::Int, true),
                ("freed_bytes", Schema::Int, true),
                ("live", Schema::Int, true),
                ("peak", Schema::Int, true),
                ("max_bits", Schema::Int, true),
            ]),
            true,
        ),
        (
            "events",
            Schema::object([
                ("recorded", Schema::Int, true),
                ("ring", Schema::array(event), true),
            ]),
            true,
        ),
        (
            "identity",
            Schema::object([
                ("version", Schema::Str, true),
                ("program_digest", Schema::Str, true),
            ]),
            true,
        ),
    ])
}

/// A `u64` as a [`Json::Int`], saturating at `i64::MAX`.
fn int(v: u64) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Builds the bundle document. Split from the writer so tests can
/// validate the shape without touching the filesystem.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_bundle(
    program: &Program,
    workers: usize,
    health: Health,
    stages: &[StageReport],
    budget: &Budget,
    spec: BudgetSpec,
    run_counters: &[(String, u64)],
    error: Option<&EngineError>,
    session: u64,
) -> Json {
    // The error behind the verdict: a hard failure when one was passed
    // in, otherwise the last degraded/failed stage's captured chain
    // (budget trips and worker panics degrade rather than abort).
    let error_json = match error {
        Some(e) => {
            let stage = stages
                .iter()
                .rev()
                .find(|s| matches!(s.outcome, StageOutcome::Failed { .. }))
                .map(|s| s.name);
            let chain = error_chain_of(e);
            Json::obj()
                .field("stage", stage.map_or(Json::Null, Json::from))
                .field("message", chain[0].as_str())
                .field(
                    "chain",
                    chain
                        .iter()
                        .map(|c| Json::from(c.as_str()))
                        .collect::<Vec<_>>(),
                )
        }
        None => stages
            .iter()
            .rev()
            .find(|s| !s.error_chain.is_empty())
            .map(|s| (s, s.error_chain.clone()))
            .or_else(|| {
                // Some faults are absorbed inside a stage (a worker
                // panic the fan-out isolated) and surface only as the
                // degraded outcome's reason — still worth naming.
                stages
                    .iter()
                    .rev()
                    .find(|s| {
                        matches!(s.outcome.class(), "degraded" | "failed")
                            && s.outcome.reason().is_some()
                    })
                    .map(|s| (s, vec![s.outcome.reason().unwrap().to_string()]))
            })
            .map_or(Json::Null, |(s, chain)| {
                Json::obj()
                    .field("stage", s.name)
                    .field("message", chain[0].as_str())
                    .field(
                        "chain",
                        chain
                            .iter()
                            .map(|c| Json::from(c.as_str()))
                            .collect::<Vec<_>>(),
                    )
            }),
    };
    // The ring is process-global. A run with a session id (a daemon
    // request) keeps only its own timeline, so a request's bundle never
    // carries a concurrent neighbor's events; session 0 (the CLI's
    // whole-process runs) keeps everything.
    let ring = recorder::snapshot()
        .into_iter()
        .filter(|e| session == 0 || e.session == session)
        .map(|e| {
            Json::obj()
                .field("seq", int(e.seq))
                .field("t_ns", int(e.t_ns))
                .field("thread", int(e.thread))
                .field("session", int(e.session))
                .field("kind", e.kind.name())
                .field("label", e.label.as_str())
                .field("a", int(e.a))
                .field("b", int(e.b))
        })
        .collect::<Vec<_>>();
    let alloc = aov_support::alloc::stats();
    Json::obj()
        .field("schema", SCHEMA)
        .field("program", program.name())
        .field("workers", workers)
        .field("health", health.name())
        .field("error", error_json)
        .field("stages", stages.to_json())
        .field(
            "budget",
            Json::obj()
                .field("limits", spec.to_json())
                .field("pivots_spent", int(budget.pivots_spent()))
                .field("nodes_spent", int(budget.nodes_spent()))
                .field("cancelled", budget.is_cancelled()),
        )
        .field(
            "counters",
            run_counters
                .iter()
                .map(|(k, v)| {
                    Json::obj()
                        .field("name", k.as_str())
                        .field("count", int(*v))
                })
                .collect::<Vec<_>>(),
        )
        .field(
            "alloc",
            Json::obj()
                .field("allocs", int(alloc.allocs))
                .field("frees", int(alloc.frees))
                .field("bytes", int(alloc.bytes))
                .field("freed_bytes", int(alloc.freed_bytes))
                .field("live", Json::Int(alloc.live.clamp(i64::MIN, i64::MAX)))
                .field("peak", Json::Int(alloc.peak.max(0)))
                .field("max_bits", int(alloc.max_bits)),
        )
        .field(
            "events",
            Json::obj()
                .field("recorded", int(recorder::events_recorded()))
                .field("ring", Json::Arr(ring)),
        )
        .field(
            "identity",
            Json::obj()
                .field("version", env!("CARGO_PKG_VERSION"))
                .field(
                    "program_digest",
                    digest::fnv1a_hex(format!("{program:?}").as_bytes()).as_str(),
                ),
        )
}

/// Writes a bundle for a fault at the **service layer** — an `aovd`
/// request that died before (or outside) the pipeline ladder: a
/// `serve.*` chaos injection or a supervised worker panic. The stage
/// ladder is empty (no stage ran); the flight-recorder tail, filtered
/// to the request's `session`, is the evidence.
///
/// # Errors
///
/// Filesystem errors only, same contract as the pipeline's own hook.
pub fn write_service_bundle(
    dir: &Path,
    program: &Program,
    workers: usize,
    spec: BudgetSpec,
    message: &str,
    session: u64,
) -> std::io::Result<PathBuf> {
    let budget = Budget::new(spec.pivots, spec.nodes, spec.ms);
    let error = EngineError::Service(message.to_string());
    write_bundle(
        dir,
        program,
        workers,
        Health::Failed,
        &[],
        &budget,
        spec,
        &[],
        Some(&error),
        session,
    )
}

/// Process-wide bundle sequence; combined with `create_new` below it
/// keeps repeated faulty runs from clobbering each other.
static BUNDLE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Drains the recorder and writes one bundle into `dir` (creating it),
/// returning the bundle path.
///
/// # Errors
///
/// Filesystem errors only; the caller converts them into a counter —
/// diagnostics must never mask the run's own verdict.
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_bundle(
    dir: &Path,
    program: &Program,
    workers: usize,
    health: Health,
    stages: &[StageReport],
    budget: &Budget,
    spec: BudgetSpec,
    run_counters: &[(String, u64)],
    error: Option<&EngineError>,
    session: u64,
) -> std::io::Result<PathBuf> {
    let bundle = build_bundle(
        program,
        workers,
        health,
        stages,
        budget,
        spec,
        run_counters,
        error,
        session,
    );
    std::fs::create_dir_all(dir)?;
    loop {
        let seq = BUNDLE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("aov-diag-{}-{seq:03}.json", program.name()));
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                writeln!(file, "{}", bundle.to_pretty())?;
                return Ok(path);
            }
            // A bundle from an earlier process already owns this
            // sequence number; move on to the next one.
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {}
            Err(e) => return Err(e),
        }
    }
}
