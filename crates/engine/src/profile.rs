//! Span-level profile artifacts (`aov-profile/1`).
//!
//! One traced pipeline run → one self-contained JSON document holding
//! the run's flame table (per-span call counts, self/total time,
//! percentile durations, allocator traffic and peak numeric bit-widths),
//! its whole-run counter deltas, and enough identity (program name,
//! digest, crate version) to tell two profiles apart. The CLI writes one
//! with `--profile --profile-out FILE`, `aov bench --profile-dir DIR`
//! writes one per example, and `aov pdiff BASE NEW` compares two of them
//! with the noise-aware band semantics of `aov_bench::regress`.
//!
//! Documents are schema-versioned ([`SCHEMA`]) and structurally
//! validated ([`profile_schema`]) by `aov inspect --check` and the CI
//! profile-smoke step.

use aov_support::schema::Schema;
use aov_support::{digest, Json, ToJson};
use aov_trace::flame::FlameTable;
use aov_trace::SpanRecord;

use crate::pipeline::Report;

/// The profile format identifier stored in every document's `schema`
/// field. Readers must reject other versions.
pub const SCHEMA: &str = "aov-profile/1";

/// Structural schema of one `aov-profile/1` document.
#[must_use]
pub fn profile_schema() -> Schema {
    let flame_row = Schema::object([
        ("name", Schema::Str, true),
        ("count", Schema::Int, true),
        ("total_ns", Schema::Int, true),
        ("self_ns", Schema::Int, true),
        ("p50_ns", Schema::Int, true),
        ("p95_ns", Schema::Int, true),
        ("allocs", Schema::Int, true),
        ("alloc_bytes", Schema::Int, true),
        ("alloc_peak", Schema::Int, true),
        ("max_bits", Schema::Int, true),
    ]);
    Schema::object([
        ("schema", Schema::Str, true),
        ("program", Schema::Str, true),
        ("workers", Schema::Int, true),
        ("health", Schema::Str, true),
        ("wall_us", Schema::Int, true),
        ("flame", Schema::array(flame_row), true),
        (
            "counters",
            Schema::array(Schema::object([
                ("name", Schema::Str, true),
                ("count", Schema::Int, true),
            ])),
            true,
        ),
        (
            "identity",
            Schema::object([
                ("version", Schema::Str, true),
                ("program_digest", Schema::Str, true),
                ("flame_digest", Schema::Str, true),
            ]),
            true,
        ),
    ])
}

/// A `u64` as a [`Json::Int`], saturating at `i64::MAX`.
fn int(v: u64) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Builds the profile document from a traced run's report and drained
/// span records. `program_digest` identifies the input program (FNV-1a
/// over its IR debug form, as in the diag bundles); callers without the
/// IR at hand may pass any stable identifier.
#[must_use]
pub fn build_profile(report: &Report, records: &[SpanRecord], program_digest: &str) -> Json {
    let flame = FlameTable::build(records);
    let flame_json = flame.to_json();
    let flame_digest = digest::fnv1a_hex(flame_json.to_compact().as_bytes());
    Json::obj()
        .field("schema", SCHEMA)
        .field("program", report.program.as_str())
        .field("workers", report.workers)
        .field("health", report.health().name())
        .field(
            "wall_us",
            Json::Int(i64::try_from(report.total_micros).unwrap_or(i64::MAX)),
        )
        .field("flame", flame_json)
        .field(
            "counters",
            report
                .counters
                .iter()
                .map(|(k, v)| {
                    Json::obj()
                        .field("name", k.as_str())
                        .field("count", int(*v))
                })
                .collect::<Vec<_>>(),
        )
        .field(
            "identity",
            Json::obj()
                .field("version", env!("CARGO_PKG_VERSION"))
                .field("program_digest", program_digest)
                .field("flame_digest", flame_digest.as_str()),
        )
}

/// Validates a parsed document against [`profile_schema`], first
/// checking the schema tag itself.
///
/// # Errors
///
/// Human-readable problems, one per line, `$`-rooted.
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    match doc.get("schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        other => {
            return Err(vec![format!(
                "$.schema: expected \"{SCHEMA}\", found {}",
                other.map_or_else(|| "nothing".to_string(), Json::to_compact)
            )])
        }
    }
    aov_support::schema::validate(doc, &profile_schema())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, parent: Option<u64>, name: &str, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            dur_ns,
            alloc_allocs: 2,
            alloc_bytes: 64,
            ..SpanRecord::default()
        }
    }

    fn sample_report() -> Report {
        let mut r = Report::empty_for_test("example1");
        r.counters = vec![("lp.simplex.pivots".to_string(), 777)];
        r.total_micros = 123_456;
        r
    }

    #[test]
    fn built_profile_matches_schema() {
        let records = vec![
            record(1, None, "pipeline.problem2", 1000),
            record(2, Some(1), "p2.vertex_enum", 600),
        ];
        let doc = build_profile(&sample_report(), &records, "deadbeef00000000");
        validate(&doc).expect("profile must satisfy its own schema");
        assert_eq!(doc.get("schema"), Some(&Json::Str(SCHEMA.into())));
        assert_eq!(doc.get("wall_us"), Some(&Json::Int(123_456)));
        let Some(Json::Arr(rows)) = doc.get("flame") else {
            panic!("flame must be an array");
        };
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn wrong_schema_tag_rejected() {
        let doc = Json::obj().field("schema", "aov-diag/1");
        let errs = validate(&doc).unwrap_err();
        assert!(errs[0].contains("aov-profile/1"), "{errs:?}");
    }

    #[test]
    fn flame_digest_tracks_flame_content() {
        let report = sample_report();
        let a = build_profile(&report, &[record(1, None, "x", 10)], "d");
        let b = build_profile(&report, &[record(1, None, "x", 20)], "d");
        let dig = |j: &Json| {
            j.get("identity")
                .and_then(|i| i.get("flame_digest"))
                .cloned()
        };
        assert_ne!(dig(&a), dig(&b));
        let a2 = build_profile(&report, &[record(1, None, "x", 10)], "d");
        assert_eq!(dig(&a), dig(&a2));
    }
}
