//! Live solve progress (`--progress`).
//!
//! Long solves (example3 runs for a minute) are silent by default: the
//! flight recorder and counters see everything, but nothing reaches the
//! terminal until the report prints. A [`ProgressSampler`] is a small
//! sampler thread that wakes on a fixed interval, reads the always-on
//! telemetry the solvers already maintain — the
//! [recorder](aov_trace::recorder) ring for the current stage and span,
//! the [`aov_support::counters`] registry for pivot and vertex totals —
//! and emits one stderr heartbeat line per tick:
//!
//! ```text
//! [progress 12.0s] stage=legal_schedule span=p2.vertex_enum pivots=1086 (+0/s) vertices=19732 (+1849/s)
//! ```
//!
//! The sampler is strictly read-only and out-of-band: it never takes a
//! lock the solver threads touch (ring snapshots are seqlock reads,
//! counters are relaxed atomic loads), so its cost is a handful of
//! microseconds per tick on the sampler thread and *zero* instructions
//! on the solver threads. When `--progress` is not given, no thread
//! starts and no code runs at all.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use aov_trace::recorder::{self, EventKind};

/// Counters worth a rate column on the heartbeat: the simplex pivot
/// count (LP effort) and the double-description vertex count
/// (polyhedral effort).
const RATE_COUNTERS: [(&str, &str); 2] = [
    ("pivots", "lp.simplex.pivots"),
    ("vertices", "polyhedra.dd.vertices"),
];

/// A running heartbeat thread; construct with [`ProgressSampler::start`],
/// stop by dropping (or explicitly via [`ProgressSampler::finish`]).
///
/// Shutdown is a condvar notification, not a polled flag: the sampler
/// blocks in one `wait_timeout` per tick, so a run shorter than the
/// interval never wakes the thread at all, and `finish` interrupts a
/// pending wait immediately instead of waiting out a sleep slice. A
/// full start/finish round-trip (spawn, one blocked wait, notify,
/// join) measures ~17µs. Note one cost the sampler cannot avoid: on a
/// previously single-threaded run (`--workers 1`), spawning *any*
/// thread permanently disables glibc malloc's single-threaded fast
/// path, which an allocation-bound solve feels as a double-digit
/// slowdown — a no-op `spawn(..).join()` reproduces it exactly.
/// Multi-worker runs already pay that; see EXPERIMENTS.md.
pub struct ProgressSampler {
    shared: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Tracks the current stage and span labels across ring snapshots.
///
/// Stage events are rare next to span events: on a busy solve a
/// `StageEnter` scrolls out of the 4096-slot ring within a second, so a
/// per-snapshot scan would lose the stage almost immediately. The
/// tracker instead folds in only events newer than the last one it has
/// seen — the stage sticks until its `StageExit` arrives. The span is
/// simply the label of the newest `SpanEnter` (spans churn far too fast
/// to pair enters with exits across the window; the most recent entry
/// names the work accurately enough for a once-a-second line).
struct LabelTracker {
    next_seq: u64,
    stage: Option<String>,
    span: Option<String>,
}

impl LabelTracker {
    fn new() -> LabelTracker {
        LabelTracker {
            next_seq: 0,
            stage: None,
            span: None,
        }
    }

    fn update(&mut self, events: &[recorder::Event]) {
        for e in events {
            if e.seq < self.next_seq {
                continue;
            }
            self.next_seq = e.seq + 1;
            match e.kind {
                EventKind::StageEnter => self.stage = Some(e.label.clone()),
                EventKind::StageExit => self.stage = None,
                EventKind::SpanEnter => self.span = Some(e.label.clone()),
                _ => {}
            }
        }
    }
}

impl ProgressSampler {
    /// Starts the heartbeat, one line per `interval`. `budget_ms`, when
    /// given, is appended to each line as `elapsed/budget`.
    #[must_use]
    pub fn start(interval: Duration, budget_ms: Option<u64>) -> ProgressSampler {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("aov-progress".to_string())
            .spawn(move || {
                let t0 = Instant::now();
                let mut last_tick = t0;
                let mut last: [u64; RATE_COUNTERS.len()] = std::array::from_fn(|i| {
                    aov_support::counters::counter(RATE_COUNTERS[i].1).load(Ordering::Relaxed)
                });
                let mut labels = LabelTracker::new();
                let (stopped, cvar) = &*thread_shared;
                let mut stopped = stopped.lock().expect("progress flag poisoned");
                loop {
                    // One blocking wait per tick; finish() notifies the
                    // condvar so shutdown never waits out the interval.
                    let tick_due = last_tick + interval;
                    loop {
                        if *stopped {
                            return;
                        }
                        let now = Instant::now();
                        if now >= tick_due {
                            break;
                        }
                        stopped = cvar
                            .wait_timeout(stopped, tick_due - now)
                            .expect("progress flag poisoned")
                            .0;
                    }
                    let now = Instant::now();
                    let dt = now.duration_since(last_tick).as_secs_f64().max(1e-9);
                    last_tick = now;
                    labels.update(&recorder::snapshot());
                    let mut line = format!("[progress {:.1}s]", t0.elapsed().as_secs_f64());
                    line.push_str(&format!(
                        " stage={}",
                        labels.stage.as_deref().unwrap_or("-")
                    ));
                    line.push_str(&format!(" span={}", labels.span.as_deref().unwrap_or("-")));
                    for (i, (short, name)) in RATE_COUNTERS.iter().enumerate() {
                        let cur = aov_support::counters::counter(name).load(Ordering::Relaxed);
                        let rate = (cur.saturating_sub(last[i])) as f64 / dt;
                        line.push_str(&format!(" {short}={cur} (+{rate:.0}/s)"));
                        last[i] = cur;
                    }
                    if let Some(ms) = budget_ms {
                        line.push_str(&format!(
                            " budget={:.1}s/{:.1}s",
                            t0.elapsed().as_secs_f64(),
                            ms as f64 / 1e3
                        ));
                    }
                    eprintln!("{line}");
                }
            })
            .expect("spawn progress sampler");
        ProgressSampler {
            shared,
            handle: Some(handle),
        }
    }

    /// Stops the heartbeat and joins the thread.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (stopped, cvar) = &*self.shared;
        if let Ok(mut flag) = stopped.lock() {
            *flag = true;
        }
        cvar.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ProgressSampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_tracker_follows_stage_and_span() {
        let ev = |seq, kind, label: &str| recorder::Event {
            seq,
            t_ns: 0,
            thread: 0,
            session: 0,
            kind,
            label: label.to_string(),
            a: 0,
            b: 0,
        };
        let mut t = LabelTracker::new();
        t.update(&[
            ev(0, EventKind::StageEnter, "problem1"),
            ev(1, EventKind::StageExit, "problem1"),
            ev(2, EventKind::StageEnter, "problem2"),
            ev(3, EventKind::SpanEnter, "p2.vertex_enum"),
            ev(4, EventKind::SpanEnter, "p2.dd.step"),
            ev(5, EventKind::SpanExit, "p2.dd.step"),
        ]);
        assert_eq!(t.stage.as_deref(), Some("problem2"));
        assert_eq!(t.span.as_deref(), Some("p2.dd.step"));
        // A later snapshot where the StageEnter has scrolled out of the
        // ring keeps the stage: only newer events change state.
        t.update(&[ev(4, EventKind::SpanEnter, "p2.vertex_enum")]);
        assert_eq!(t.stage.as_deref(), Some("problem2"));
        assert_eq!(t.span.as_deref(), Some("p2.dd.step"));
        // The stage clears on its (newer) exit event.
        t.update(&[ev(6, EventKind::StageExit, "problem2")]);
        assert_eq!(t.stage, None);
    }

    #[test]
    fn sampler_starts_ticks_and_stops() {
        let sampler = ProgressSampler::start(Duration::from_millis(5), Some(1000));
        std::thread::sleep(Duration::from_millis(30));
        sampler.finish(); // must join without hanging
    }
}
