//! The instrumented end-to-end pipeline.
//!
//! A [`Pipeline`] runs one program through the paper's full tool chain —
//! dependence analysis, the legal-schedule polyhedron, Problems 1/2/3,
//! the storage transformation, code generation and the dynamic
//! equivalence oracle — as named stages. Every stage records its
//! wall-clock time and the delta of every global solver counter
//! (`lp.simplex.pivots`, `polyhedra.fm.eliminations`, …), so a single
//! run doubles as a profile of where the analysis effort goes. When
//! [`aov-trace`](aov_trace) is enabled, each stage also opens a root
//! span (`pipeline.<stage>`) under which every solver span nests — the
//! CLI's `--trace`/`--profile` flags build on this.
//!
//! The per-orthant solvers of Problems 1 and 3 fan out over a
//! configurable number of worker threads; the reduction is deterministic,
//! so a parallel run is bit-identical to a sequential one.

use std::time::Instant;

use aov_core::problems::{self, OvResult};
use aov_core::transform::StorageTransform;
use aov_core::{codegen, CoreError};
use aov_interp::validate::semantics_preserved;
use aov_ir::{analysis, examples, Program};
use aov_machine::experiments::{example2_speedup_with, example3_speedup_with, SpeedupPoint};
use aov_machine::MachineConfig;
use aov_schedule::{legal, scheduler, Schedule};
use aov_support::{counters, Json, ToJson};

/// Errors from running a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A solver stage failed.
    Core(CoreError),
    /// No legal one-dimensional affine schedule exists.
    Schedule(String),
    /// The request is outside the engine's fragment (unknown program,
    /// wrong parameter count, …).
    Unsupported(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "solver error: {e}"),
            EngineError::Schedule(m) => write!(f, "scheduling error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

impl From<scheduler::ScheduleError> for EngineError {
    fn from(e: scheduler::ScheduleError) -> Self {
        EngineError::Schedule(e.to_string())
    }
}

/// One executed stage: its name, wall-clock time and the solver-counter
/// increments it caused.
#[derive(Debug, Clone)]
pub struct StageReport {
    pub name: &'static str,
    pub micros: u128,
    /// `(counter name, increment)` for every counter that moved.
    pub counters: Vec<(String, u64)>,
    /// Stage-specific payload (vectors, schedule text, code, …).
    pub detail: Json,
}

impl ToJson for StageReport {
    fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| Json::obj().field("name", k.as_str()).field("count", *v))
            .collect::<Vec<_>>();
        Json::obj()
            .field("name", self.name)
            .field("micros", self.micros as i64)
            .field("counters", counters)
            .field("detail", self.detail.clone())
    }
}

/// Min/median of one timing metric across repeated runs (lower
/// nearest-rank median, so values stay exact microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    pub min: u128,
    pub median: u128,
}

impl Stat {
    /// Aggregates a non-empty sample.
    ///
    /// # Panics
    ///
    /// On an empty sample.
    #[must_use]
    pub fn of(mut sample: Vec<u128>) -> Stat {
        sample.sort_unstable();
        Stat {
            min: sample[0],
            median: sample[(sample.len() - 1) / 2],
        }
    }
}

impl ToJson for Stat {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("min", self.min as i64)
            .field("median", self.median as i64)
    }
}

/// Timing aggregation over repeated pipeline runs (see
/// [`Pipeline::runs`]): min/median of the total and of every stage.
/// Min is the noise-resistant headline (best observed run, warm caches
/// included); median shows how typical that best case is.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Number of repetitions aggregated.
    pub runs: usize,
    /// Whole-pipeline wall clock, microseconds.
    pub total_micros: Stat,
    /// Per-stage wall clock, microseconds, in stage order.
    pub stages: Vec<(&'static str, Stat)>,
}

impl ToJson for RunTiming {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("runs", self.runs)
            .field("total_micros", self.total_micros.to_json())
            .field(
                "stages",
                self.stages
                    .iter()
                    .map(|(name, stat)| {
                        Json::obj()
                            .field("name", *name)
                            .field("micros", stat.to_json())
                    })
                    .collect::<Vec<_>>(),
            )
    }
}

/// The result of a full pipeline run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Program name (`example1` … `example4`).
    pub program: String,
    /// Worker threads used for the per-orthant fan-out.
    pub workers: usize,
    /// Whether LP memoization was on.
    pub memoized: bool,
    /// Executed stages, in order.
    pub stages: Vec<StageReport>,
    /// Problem 1 result: the shortest OV per array under the schedule
    /// the `schedule` stage settled on (found or overridden).
    pub ov: OvResult,
    /// Problem 3 result: the AOV per array, in array order.
    pub aov: OvResult,
    /// Names of the arrays, aligned with [`Report::aov`].
    pub arrays: Vec<String>,
    /// Transformed pseudo-code under the AOV storage mapping.
    pub code: String,
    /// Dynamic equivalence verdict (original vs transformed+scheduled).
    pub equivalent: bool,
    /// Parameter values used by the equivalence oracle.
    pub check_params: Vec<i64>,
    /// Total wall-clock across stages.
    pub total_micros: u128,
    /// Counter increments caused by *this run* (whole-run snapshot
    /// delta) — unlike the raw registry, these never accumulate across
    /// pipeline runs in the same process.
    pub counters: Vec<(String, u64)>,
    /// Min/median timing across repetitions; `None` for single runs
    /// (the default), so one-run reports keep their historical shape.
    pub timing: Option<RunTiming>,
}

impl Report {
    /// The stage with the given name, if it ran.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Sum of one counter across all stages.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .flat_map(|s| &s.counters)
            .filter(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// One per-run counter (0 when it never moved during this run).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// LP-memo hit rate for this run, `None` when no lookups happened
    /// (memoization off, or no LP reached the cache).
    pub fn memo_hit_rate(&self) -> Option<f64> {
        let hits = self.counter("lp.memo.hits");
        let total = hits + self.counter("lp.memo.misses");
        #[allow(clippy::cast_precision_loss)]
        (total > 0).then(|| hits as f64 / total as f64)
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        let vectors = self
            .arrays
            .iter()
            .zip(self.aov.vectors())
            .map(|(name, v)| {
                Json::obj().field("array", name.as_str()).field(
                    "vector",
                    v.components()
                        .iter()
                        .map(|&c| Json::Int(c))
                        .collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>();
        let mut json = Json::obj()
            .field("program", self.program.as_str())
            .field("workers", self.workers)
            .field("memoized", self.memoized)
            .field("total_micros", self.total_micros as i64)
            .field("aov", vectors)
            .field("objective", self.aov.objective())
            .field("equivalent", self.equivalent)
            .field(
                "check_params",
                self.check_params
                    .iter()
                    .map(|&p| Json::Int(p))
                    .collect::<Vec<_>>(),
            )
            .field(
                "code",
                self.code.lines().map(Json::from).collect::<Vec<_>>(),
            )
            .field(
                "counters",
                self.counters
                    .iter()
                    .map(|(k, v)| Json::obj().field("name", k.as_str()).field("count", *v))
                    .collect::<Vec<_>>(),
            )
            .field(
                "memo",
                Json::obj()
                    .field("hits", self.counter("lp.memo.hits"))
                    .field("misses", self.counter("lp.memo.misses"))
                    .field(
                        "hit_rate",
                        self.memo_hit_rate().map_or(Json::Null, Json::Float),
                    ),
            )
            .field("stages", self.stages.to_json());
        if let Some(timing) = &self.timing {
            json = json.field("timing", timing.to_json());
        }
        json
    }
}

/// A configured pipeline over one program.
#[derive(Debug, Clone)]
pub struct Pipeline {
    program: Program,
    workers: usize,
    memoize: bool,
    machine: bool,
    params: Option<Vec<i64>>,
    runs: usize,
    schedule_override: Option<Schedule>,
}

impl Pipeline {
    /// A sequential pipeline over `program` with the machine-model stage
    /// off and default equivalence-check parameter sizes.
    pub fn new(program: Program) -> Self {
        Pipeline {
            program,
            workers: 1,
            memoize: false,
            machine: false,
            params: None,
            runs: 1,
            schedule_override: None,
        }
    }

    /// A pipeline over one of the paper's named examples
    /// (`example1` … `example4`).
    ///
    /// # Errors
    ///
    /// [`EngineError::Unsupported`] for an unknown name.
    pub fn for_example(name: &str) -> Result<Self, EngineError> {
        let program = match name {
            "example1" => examples::example1(),
            "example2" => examples::example2(),
            "example3" => examples::example3(),
            "example4" => examples::example4(),
            other => {
                return Err(EngineError::Unsupported(format!(
                    "unknown example {other:?} (expected example1..example4)"
                )))
            }
        };
        Ok(Pipeline::new(program))
    }

    /// Fans the per-orthant solvers out over `workers` threads
    /// (`<= 1` means sequential). Results are bit-identical either way.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables the process-global LP memoization cache for this run.
    /// Identical LP relaxations (common across sign orthants and
    /// branch-and-bound nodes) are then solved once.
    pub fn memoize(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Enables the machine-model speedup stage (§6 of the paper;
    /// simulated only for `example2` and `example3`).
    pub fn machine(mut self, on: bool) -> Self {
        self.machine = on;
        self
    }

    /// Overrides the parameter sizes for the dynamic equivalence check.
    pub fn check_params(mut self, params: Vec<i64>) -> Self {
        self.params = Some(params);
        self
    }

    /// Repeats the whole pipeline `runs` times (`<= 1` means once).
    /// The returned report is the *fastest* run, with a
    /// [`RunTiming`] min/median summary attached so single-run noise
    /// stops polluting timing comparisons. Results are identical across
    /// repetitions; only timings (and cache warmth) vary.
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs.max(1);
        self
    }

    /// Pins the `schedule` stage to a caller-provided schedule instead
    /// of searching. The schedule must be legal for the program —
    /// Problem 1 then reports the shortest OVs *under that schedule*
    /// (this is how the figure suite reproduces Figure 3's row-parallel
    /// scenario through the instrumented pipeline).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule_override = Some(schedule);
        self
    }

    /// Runs every stage and collects the instrumented report; with
    /// [`Pipeline::runs`] `> 1`, repeats and returns the fastest run
    /// plus a min/median timing summary.
    ///
    /// # Errors
    ///
    /// The first stage failure, wrapped as [`EngineError`].
    pub fn run(&self) -> Result<Report, EngineError> {
        if self.runs <= 1 {
            return self.run_once();
        }
        let mut reports: Vec<Report> = Vec::with_capacity(self.runs);
        for _ in 0..self.runs {
            reports.push(self.run_once()?);
        }
        let stage_names: Vec<&'static str> = reports[0].stages.iter().map(|s| s.name).collect();
        let timing = RunTiming {
            runs: self.runs,
            total_micros: Stat::of(reports.iter().map(|r| r.total_micros).collect()),
            stages: stage_names
                .iter()
                .map(|&name| {
                    let sample = reports
                        .iter()
                        .map(|r| r.stage(name).map_or(0, |s| s.micros))
                        .collect();
                    (name, Stat::of(sample))
                })
                .collect(),
        };
        let best = reports
            .into_iter()
            .min_by_key(|r| r.total_micros)
            .expect("at least one run");
        Ok(Report {
            timing: Some(timing),
            ..best
        })
    }

    /// One full pass over every stage.
    fn run_once(&self) -> Result<Report, EngineError> {
        let p = &self.program;
        let check_params = self.resolved_params()?;
        if self.memoize {
            aov_lp::memo::set_enabled(true);
        }
        let mut stages: Vec<StageReport> = Vec::new();
        let run_before = counters::snapshot();
        let t_start = Instant::now();

        stage(&mut stages, "ir", || {
            p.validate()
                .map_err(|e| EngineError::Unsupported(format!("invalid program: {e}")))?;
            Ok((
                (),
                Json::obj()
                    .field("statements", p.statements().len())
                    .field("arrays", p.arrays().len())
                    .field("params", p.params().len()),
            ))
        })?;

        stage(&mut stages, "dependences", || {
            let deps = analysis::dependences(p);
            let detail = Json::obj().field("count", deps.len());
            Ok(((), detail))
        })?;

        stage(&mut stages, "legal_schedule", || {
            let (space, poly) = legal::legal_schedule_polyhedron(p)
                .map_err(|e| EngineError::Schedule(e.to_string()))?;
            // Project away the parameter/constant coefficients (FM
            // elimination) to expose the cone of legal iteration
            // coefficients — the part of ℛ the occupancy vectors fight.
            let mut drop_dims: Vec<usize> = Vec::new();
            for s in 0..space.num_statements() {
                let s = aov_ir::StmtId(s);
                for j in 0..p.params().len() {
                    drop_dims.push(space.param_coeff(s, j));
                }
                drop_dims.push(space.const_coeff(s));
            }
            let cone = poly.eliminate_dims(&drop_dims);
            let detail = Json::obj()
                .field("space_dim", space.dim())
                .field("constraints", poly.constraints().len())
                .field("iter_cone_constraints", cone.constraints().len());
            Ok(((), detail))
        })?;

        let sched = stage(&mut stages, "schedule", || {
            let (sched, overridden) = match &self.schedule_override {
                Some(s) => {
                    if !legal::is_legal(p, s) {
                        return Err(EngineError::Schedule(
                            "overridden schedule violates a dependence".to_string(),
                        ));
                    }
                    (s.clone(), true)
                }
                None => (scheduler::find_schedule(p)?, false),
            };
            let detail = Json::obj()
                .field("theta", sched.display(p).to_string())
                .field("overridden", overridden);
            Ok((sched, detail))
        })?;

        let ov = stage(&mut stages, "problem1", || {
            let ov = problems::ov_for_schedule_with(p, &sched, self.workers)?;
            let detail = ov_detail(p, &ov);
            Ok((ov, detail))
        })?;

        let aov = stage(&mut stages, "aov", || {
            let aov = problems::aov_with(p, self.workers)?;
            let detail = ov_detail(p, &aov);
            Ok((aov, detail))
        })?;

        let sched2 = stage(&mut stages, "problem2", || {
            let sched2 = problems::best_schedule_for_ov(p, aov.vectors())?;
            let detail = Json::obj().field("theta", sched2.display(p).to_string());
            Ok((sched2, detail))
        })?;

        let transforms = stage(&mut stages, "storage_transform", || {
            let transforms = p
                .arrays()
                .iter()
                .enumerate()
                .zip(aov.vectors())
                .map(|((aidx, _), v)| StorageTransform::new(p, aov_ir::ArrayId(aidx), v))
                .collect::<Result<Vec<_>, _>>()?;
            let detail = transforms
                .iter()
                .map(|t| {
                    Json::obj()
                        .field("array", t.array_name())
                        .field("dims", t.transformed_dim())
                        .field("modulation", t.modulation())
                })
                .collect::<Vec<_>>();
            Ok((transforms, Json::Arr(detail)))
        })?;

        let code = stage(&mut stages, "codegen", || {
            let code = codegen::transformed_code(p, &transforms);
            let detail = Json::obj().field("lines", code.lines().count());
            Ok((code, detail))
        })?;

        let equivalent = stage(&mut stages, "equivalence", || {
            // The AOV must work under both the dependence-only schedule
            // and the storage-constrained one from Problem 2.
            let under_found = semantics_preserved(p, &check_params, &sched, &transforms);
            let under_best = semantics_preserved(p, &check_params, &sched2, &transforms);
            let detail = Json::obj()
                .field("under_found_schedule", under_found)
                .field("under_best_schedule", under_best);
            Ok((under_found && under_best, detail))
        })?;

        if self.machine {
            self.machine_stage(&mut stages)?;
        }

        Ok(Report {
            program: p.name().to_string(),
            workers: self.workers,
            memoized: self.memoize,
            arrays: p.arrays().iter().map(|a| a.name().to_string()).collect(),
            ov,
            aov,
            code,
            equivalent,
            check_params,
            total_micros: t_start.elapsed().as_micros(),
            counters: counters::delta(&run_before, &counters::snapshot()),
            stages,
            timing: None,
        })
    }

    /// The §6 simulated-speedup stage (Figures 15/16); a no-op detail
    /// for programs without a machine model.
    fn machine_stage(&self, stages: &mut Vec<StageReport>) -> Result<(), EngineError> {
        let name = self.program.name().to_string();
        let workers = self.workers;
        stage(stages, "machine", move || {
            let cfg = MachineConfig::scaled_down();
            let procs = [1, 2, 4, 8];
            let points: Option<Vec<SpeedupPoint>> = match name.as_str() {
                "example2" => Some(example2_speedup_with(&cfg, 64, 64, &procs, workers)),
                "example3" => Some(example3_speedup_with(&cfg, 12, 24, 24, &procs, workers)),
                _ => None,
            };
            let detail = match &points {
                None => Json::obj().field("simulated", false),
                Some(pts) => Json::obj().field("simulated", true).field(
                    "speedups",
                    pts.iter()
                        .map(|pt| {
                            Json::obj()
                                .field("procs", pt.procs)
                                .field("original", pt.original)
                                .field("transformed", pt.transformed)
                        })
                        .collect::<Vec<_>>(),
                ),
            };
            Ok(((), detail))
        })
    }

    /// Parameter sizes for the equivalence oracle: the caller's override,
    /// or per-example defaults compatible with each program's
    /// `param_min` bounds.
    fn resolved_params(&self) -> Result<Vec<i64>, EngineError> {
        let want = self.program.params().len();
        if let Some(ps) = &self.params {
            if ps.len() != want {
                return Err(EngineError::Unsupported(format!(
                    "{} takes {} parameter(s), got {}",
                    self.program.name(),
                    want,
                    ps.len()
                )));
            }
            return Ok(ps.clone());
        }
        Ok(match self.program.name() {
            "example3" => vec![4, 4, 4],
            "example4" => vec![6],
            _ => vec![8; want],
        })
    }
}

/// Runs `f` as the named stage: times it, captures the counter delta and
/// appends the [`StageReport`].
fn stage<T>(
    stages: &mut Vec<StageReport>,
    name: &'static str,
    f: impl FnOnce() -> Result<(T, Json), EngineError>,
) -> Result<T, EngineError> {
    let _span = aov_trace::span!({
        let mut s = String::from("pipeline.");
        s.push_str(name);
        s
    });
    let before = counters::snapshot();
    let t0 = Instant::now();
    let (value, detail) = f()?;
    let micros = t0.elapsed().as_micros();
    let after = counters::snapshot();
    stages.push(StageReport {
        name,
        micros,
        counters: counters::delta(&before, &after),
        detail,
    });
    Ok(value)
}

/// Shared detail payload for the occupancy-vector stages.
fn ov_detail(p: &Program, ov: &OvResult) -> Json {
    let vectors = p
        .arrays()
        .iter()
        .zip(ov.vectors())
        .map(|(a, v)| {
            Json::obj().field("array", a.name()).field(
                "vector",
                v.components()
                    .iter()
                    .map(|&c| Json::Int(c))
                    .collect::<Vec<_>>(),
            )
        })
        .collect::<Vec<_>>();
    Json::obj()
        .field("objective", ov.objective())
        .field("vectors", vectors)
}

/// Convenience: run the instrumented pipeline on a named example.
///
/// # Errors
///
/// As for [`Pipeline::run`].
pub fn run_example(name: &str, workers: usize) -> Result<Report, EngineError> {
    Pipeline::for_example(name)?.workers(workers).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_example_is_rejected() {
        assert!(matches!(
            Pipeline::for_example("example9"),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn wrong_param_count_is_rejected() {
        let p = Pipeline::for_example("example1")
            .unwrap()
            .check_params(vec![5]);
        assert!(matches!(p.run(), Err(EngineError::Unsupported(_))));
    }

    #[test]
    fn single_run_has_no_timing_summary() {
        let report = run_example("example1", 1).expect("example1 runs");
        assert!(report.timing.is_none());
        assert!(report.to_json().get("timing").is_none());
    }

    #[test]
    fn repeated_runs_attach_min_median_timing() {
        let report = Pipeline::for_example("example1")
            .unwrap()
            .runs(3)
            .run()
            .expect("example1 runs");
        let timing = report.timing.as_ref().expect("timing for runs > 1");
        assert_eq!(timing.runs, 3);
        assert!(timing.total_micros.min <= timing.total_micros.median);
        assert_eq!(timing.stages.len(), report.stages.len());
        for (name, stat) in &timing.stages {
            assert!(stat.min <= stat.median, "{name}: min > median");
        }
        // The report is the fastest of the three runs.
        assert_eq!(report.total_micros, timing.total_micros.min);
        let json = report.to_json();
        let t = json.get("timing").expect("timing in JSON");
        assert_eq!(t.get("runs"), Some(&Json::Int(3)));
        assert!(t.get("total_micros").and_then(|s| s.get("min")).is_some());
    }

    #[test]
    fn stat_median_is_lower_nearest_rank() {
        let s = Stat::of(vec![40, 10, 30, 20]);
        assert_eq!(s.min, 10);
        assert_eq!(s.median, 20);
        let s = Stat::of(vec![7]);
        assert_eq!((s.min, s.median), (7, 7));
    }

    #[test]
    fn schedule_override_drives_problem1() {
        // Figure 3's scenario: the row-parallel schedule Θ(i,j) = j of
        // Example 1 admits the shorter OV (0, 1).
        let p = examples::example1();
        let row = aov_schedule::Schedule::uniform_for(
            &p,
            &[aov_linalg::AffineExpr::from_i64(&[0, 1, 0, 0], 0)],
        );
        let report = Pipeline::new(p).with_schedule(row).run().expect("runs");
        assert_eq!(report.ov.vector_for("A").unwrap().components(), [0, 1]);
        let detail = &report.stage("schedule").expect("schedule stage").detail;
        assert_eq!(detail.get("overridden"), Some(&Json::Bool(true)));
        // The AOV is schedule-independent and unchanged by the override.
        assert_eq!(report.aov.vector_for("A").unwrap().components(), [1, 2]);
    }

    #[test]
    fn illegal_schedule_override_is_rejected() {
        let p = examples::example1();
        let bad = aov_schedule::Schedule::uniform_for(
            &p,
            &[aov_linalg::AffineExpr::from_i64(&[-1, 1, 0, 0], 0)],
        );
        assert!(matches!(
            Pipeline::new(p).with_schedule(bad).run(),
            Err(EngineError::Schedule(_))
        ));
    }

    #[test]
    fn report_json_has_stage_timings() {
        let report = run_example("example1", 1).expect("example1 runs");
        let json = report.to_json();
        let Some(Json::Arr(stages)) = json.get("stages") else {
            panic!("stages array missing");
        };
        assert!(
            stages.len() >= 9,
            "expected all stages, got {}",
            stages.len()
        );
        for s in stages {
            assert!(s.get("micros").is_some(), "stage without timing: {s:?}");
        }
    }
}
