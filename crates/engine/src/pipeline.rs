//! The instrumented end-to-end pipeline.
//!
//! A [`Pipeline`] runs one program through the paper's full tool chain —
//! dependence analysis, the legal-schedule polyhedron, Problems 1/2/3,
//! the storage transformation, code generation and the dynamic
//! equivalence oracle — as named stages. Every stage records its
//! wall-clock time and the delta of every global solver counter
//! (`lp.simplex.pivots`, `polyhedra.fm.eliminations`, …), so a single
//! run doubles as a profile of where the analysis effort goes. When
//! [`aov-trace`](aov_trace) is enabled, each stage also opens a root
//! span (`pipeline.<stage>`) under which every solver span nests — the
//! CLI's `--trace`/`--profile` flags build on this.
//!
//! The per-orthant solvers of Problems 1 and 3 fan out over a
//! configurable number of worker threads; the reduction is deterministic,
//! so a parallel run is bit-identical to a sequential one.
//!
//! # Degradation ladder
//!
//! Stages form a ladder rather than a chain: each one records a
//! [`StageOutcome`], and a recoverable failure (budget trip, worker
//! panic, injected fault, unschedulable program, no vector found)
//! *degrades* the run instead of aborting it. A program with no 1-D
//! affine schedule still gets its AOV-only stages; an AOV solver that
//! runs out of budget falls back to the schedule-independent UOV
//! baseline; downstream stages that genuinely need a missing artifact
//! are `Skipped` with a reason. Only invalid requests (unknown example,
//! wrong parameter count, illegal schedule override) abort the run with
//! a hard [`EngineError`]. [`Report::health`] summarizes the ladder.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use aov_core::problems::{self, OvResult, DEFAULT_SEARCH_RADIUS};
use aov_core::transform::StorageTransform;
use aov_core::{codegen, uov, CoreError};
use aov_fault::{AovError, Budget};
use aov_interp::validate::semantics_preserved;
use aov_ir::{analysis, examples, Program};
use aov_machine::experiments::{example2_speedup_with, example3_speedup_with, SpeedupPoint};
use aov_machine::MachineConfig;
use aov_schedule::{legal, scheduler, Schedule};
use aov_support::{counters, Json, ToJson};

/// Errors from running a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A solver stage failed.
    Core(CoreError),
    /// No legal one-dimensional affine schedule exists.
    Schedule(String),
    /// The request is outside the engine's fragment (unknown program,
    /// wrong parameter count, …).
    Unsupported(String),
    /// A fault at the service layer, before any stage ran (the `aovd`
    /// daemon's `serve.*` chaos probes and worker panics).
    Service(String),
}

impl EngineError {
    /// Whether the degradation ladder may continue past this error.
    /// Solver incapacity and runtime faults (budgets, panics, injected
    /// errors) degrade; invalid requests (unknown program, wrong
    /// parameters, illegal schedule override) abort the run.
    fn is_degradable(&self) -> bool {
        matches!(self, EngineError::Core(_))
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "solver error: {e}"),
            EngineError::Schedule(m) => write!(f, "scheduling error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Service(m) => write!(f, "service fault: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    /// Exposes the wrapped solver error so diagnostic bundles can walk
    /// the full `source()` chain down to the budget trip or panic.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

impl From<scheduler::ScheduleError> for EngineError {
    fn from(e: scheduler::ScheduleError) -> Self {
        EngineError::Core(CoreError::from(e))
    }
}

/// Per-stage verdict in the degradation ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageOutcome {
    /// The stage completed normally.
    Ok,
    /// The stage hit a recoverable failure: it either delivered a weaker
    /// result (e.g. the UOV fallback) or no result, but the pipeline
    /// carried on. The reason says what happened.
    Degraded { reason: String },
    /// The stage did not run because a prerequisite degraded.
    Skipped { reason: String },
    /// The stage failed hard; the run was aborted after recording it.
    Failed { error: String },
}

impl StageOutcome {
    /// Stable machine-readable class (`ok`/`degraded`/`skipped`/`failed`).
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            StageOutcome::Ok => "ok",
            StageOutcome::Degraded { .. } => "degraded",
            StageOutcome::Skipped { .. } => "skipped",
            StageOutcome::Failed { .. } => "failed",
        }
    }

    /// The reason/error text, when there is one.
    #[must_use]
    pub fn reason(&self) -> Option<&str> {
        match self {
            StageOutcome::Ok => None,
            StageOutcome::Degraded { reason } | StageOutcome::Skipped { reason } => Some(reason),
            StageOutcome::Failed { error } => Some(error),
        }
    }
}

/// Whole-run verdict, derived from the stage outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Every stage completed normally.
    Ok,
    /// At least one stage degraded or was skipped; the report carries
    /// partial results and the per-stage reasons.
    Degraded,
    /// A stage failed hard.
    Failed,
}

impl Health {
    /// Stable machine-readable name (`ok`/`degraded`/`failed`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
            Health::Failed => "failed",
        }
    }
}

/// One executed stage: its name, wall-clock time and the solver-counter
/// increments it caused.
#[derive(Debug, Clone)]
pub struct StageReport {
    pub name: &'static str,
    pub micros: u128,
    /// `(counter name, increment)` for every counter that moved.
    pub counters: Vec<(String, u64)>,
    /// Stage-specific payload (vectors, schedule text, code, …).
    pub detail: Json,
    /// Where the stage landed on the degradation ladder.
    pub outcome: StageOutcome,
    /// Heap allocations performed while the stage ran (worker threads
    /// included — the counting allocator is process-global).
    pub allocs: u64,
    /// Bytes allocated while the stage ran.
    pub alloc_bytes: u64,
    /// Peak live heap bytes observed during the stage (absolute, not a
    /// delta: the high-water of total live memory while it ran).
    pub alloc_peak: u64,
    /// Rise of the numeric-growth high-water mark (max coefficient
    /// bit-width, see [`aov_support::alloc::record_bits`]) caused by
    /// this stage. `0` means the stage did not widen any coefficient
    /// beyond what earlier stages already reached; the cumulative sum
    /// across stages is the running maximum.
    pub max_bits: u64,
    /// The `source()` chain of the error behind a `Degraded`/`Failed`
    /// outcome, outermost first; empty for `Ok`/`Skipped` stages.
    pub error_chain: Vec<String>,
}

impl ToJson for StageReport {
    fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| Json::obj().field("name", k.as_str()).field("count", *v))
            .collect::<Vec<_>>();
        let mut json = Json::obj()
            .field("name", self.name)
            .field("outcome", self.outcome.class());
        if let Some(reason) = self.outcome.reason() {
            json = json.field("reason", reason);
        }
        if !self.error_chain.is_empty() {
            json = json.field(
                "error_chain",
                self.error_chain
                    .iter()
                    .map(|e| Json::from(e.as_str()))
                    .collect::<Vec<_>>(),
            );
        }
        json.field("micros", self.micros as i64)
            .field("counters", counters)
            .field(
                "alloc",
                Json::obj()
                    .field("allocs", clamped_int(self.allocs))
                    .field("bytes", clamped_int(self.alloc_bytes))
                    .field("peak", clamped_int(self.alloc_peak))
                    .field("max_bits", clamped_int(self.max_bits)),
            )
            .field("detail", self.detail.clone())
    }
}

/// A `u64` as a [`Json::Int`], saturating instead of wrapping negative.
fn clamped_int(v: u64) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Min/median of one timing metric across repeated runs (lower
/// nearest-rank median, so values stay exact microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    pub min: u128,
    pub median: u128,
}

impl Stat {
    /// Aggregates a non-empty sample.
    ///
    /// # Panics
    ///
    /// On an empty sample.
    #[must_use]
    pub fn of(mut sample: Vec<u128>) -> Stat {
        sample.sort_unstable();
        Stat {
            min: sample[0],
            median: sample[(sample.len() - 1) / 2],
        }
    }
}

impl ToJson for Stat {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("min", self.min as i64)
            .field("median", self.median as i64)
    }
}

/// Timing aggregation over repeated pipeline runs (see
/// [`Pipeline::runs`]): min/median of the total and of every stage.
/// Min is the noise-resistant headline (best observed run, warm caches
/// included); median shows how typical that best case is.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Number of repetitions aggregated.
    pub runs: usize,
    /// Whole-pipeline wall clock, microseconds.
    pub total_micros: Stat,
    /// Per-stage wall clock, microseconds, in stage order.
    pub stages: Vec<(&'static str, Stat)>,
}

impl ToJson for RunTiming {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("runs", self.runs)
            .field("total_micros", self.total_micros.to_json())
            .field(
                "stages",
                self.stages
                    .iter()
                    .map(|(name, stat)| {
                        Json::obj()
                            .field("name", *name)
                            .field("micros", stat.to_json())
                    })
                    .collect::<Vec<_>>(),
            )
    }
}

/// Budget limits a pipeline run executes under (`None` = unlimited).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Max simplex pivots across the whole run.
    pub pivots: Option<u64>,
    /// Max branch-and-bound nodes across the whole run.
    pub nodes: Option<u64>,
    /// Wall-clock deadline in milliseconds. Unlike the work limits,
    /// wall-clock trips are inherently nondeterministic.
    pub ms: Option<u64>,
}

impl BudgetSpec {
    fn to_budget(self) -> Budget {
        Budget::new(self.pivots, self.nodes, self.ms)
    }

    fn field_of(v: Option<u64>) -> Json {
        v.map_or(Json::Null, |n| Json::Int(n as i64))
    }
}

impl ToJson for BudgetSpec {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("pivots", Self::field_of(self.pivots))
            .field("nodes", Self::field_of(self.nodes))
            .field("ms", Self::field_of(self.ms))
    }
}

/// The result of a full pipeline run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Program name (`example1` … `example4`).
    pub program: String,
    /// Worker threads used for the per-orthant fan-out.
    pub workers: usize,
    /// Whether LP memoization was on.
    pub memoized: bool,
    /// Executed stages, in order.
    pub stages: Vec<StageReport>,
    /// Problem 1 result: the shortest OV per array under the schedule
    /// the `schedule` stage settled on (found or overridden). `None`
    /// when the stage degraded or was skipped.
    pub ov: Option<OvResult>,
    /// Problem 3 result: the AOV per array, in array order — or the UOV
    /// fallback (see [`Report::aov_source`]). `None` when the stage
    /// degraded with no fallback.
    pub aov: Option<OvResult>,
    /// Which solver produced [`Report::aov`]: `"farkas"` (the paper's
    /// Problem 3) or `"uov"` (the schedule-independent fallback).
    pub aov_source: Option<&'static str>,
    /// Names of the arrays, aligned with [`Report::aov`].
    pub arrays: Vec<String>,
    /// Transformed pseudo-code under the AOV storage mapping; `None`
    /// when codegen was skipped.
    pub code: Option<String>,
    /// Dynamic equivalence verdict (original vs transformed+scheduled);
    /// `None` when the check could not run.
    pub equivalent: Option<bool>,
    /// Parameter values used by the equivalence oracle.
    pub check_params: Vec<i64>,
    /// Total wall-clock across stages.
    pub total_micros: u128,
    /// Counter increments caused by *this run* (whole-run snapshot
    /// delta) — unlike the raw registry, these never accumulate across
    /// pipeline runs in the same process.
    pub counters: Vec<(String, u64)>,
    /// Min/median timing across repetitions; `None` for single runs
    /// (the default), so one-run reports keep their historical shape.
    pub timing: Option<RunTiming>,
    /// The budget configuration the run executed under.
    pub budget: BudgetSpec,
    /// Path of the crash-diagnostic bundle this run wrote, when a
    /// degraded run had a `--diag-dir` configured.
    pub diag_path: Option<String>,
}

impl Report {
    /// The stage with the given name, if it ran.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// A minimal report for unit tests of artifact builders.
    #[cfg(test)]
    pub(crate) fn empty_for_test(program: &str) -> Report {
        Report {
            program: program.to_string(),
            workers: 1,
            memoized: false,
            stages: Vec::new(),
            ov: None,
            aov: None,
            aov_source: None,
            arrays: Vec::new(),
            code: None,
            equivalent: None,
            check_params: Vec::new(),
            total_micros: 0,
            counters: Vec::new(),
            timing: None,
            budget: BudgetSpec::default(),
            diag_path: None,
        }
    }

    /// Whole-run verdict: `Failed` if any stage failed hard, `Degraded`
    /// if any stage degraded or was skipped, `Ok` otherwise.
    #[must_use]
    pub fn health(&self) -> Health {
        let mut health = Health::Ok;
        for s in &self.stages {
            match s.outcome {
                StageOutcome::Failed { .. } => return Health::Failed,
                StageOutcome::Degraded { .. } | StageOutcome::Skipped { .. } => {
                    health = Health::Degraded;
                }
                StageOutcome::Ok => {}
            }
        }
        health
    }

    /// Sum of one counter across all stages.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .flat_map(|s| &s.counters)
            .filter(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// One per-run counter (0 when it never moved during this run).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// LP-memo hit rate for this run, `None` when no lookups happened
    /// (memoization off, or no LP reached the cache).
    pub fn memo_hit_rate(&self) -> Option<f64> {
        let hits = self.counter("lp.memo.hits");
        let total = hits + self.counter("lp.memo.misses");
        #[allow(clippy::cast_precision_loss)]
        (total > 0).then(|| hits as f64 / total as f64)
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        let vectors = match &self.aov {
            Some(aov) => Json::Arr(
                self.arrays
                    .iter()
                    .zip(aov.vectors())
                    .map(|(name, v)| {
                        Json::obj().field("array", name.as_str()).field(
                            "vector",
                            v.components()
                                .iter()
                                .map(|&c| Json::Int(c))
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect::<Vec<_>>(),
            ),
            None => Json::Null,
        };
        let code = match &self.code {
            Some(code) => Json::Arr(code.lines().map(Json::from).collect::<Vec<_>>()),
            None => Json::Null,
        };
        let mut json = Json::obj()
            .field("program", self.program.as_str())
            .field("workers", self.workers)
            .field("memoized", self.memoized)
            .field("health", self.health().name())
            .field("total_micros", self.total_micros as i64)
            .field("aov", vectors)
            .field("aov_source", self.aov_source.map_or(Json::Null, Json::from))
            .field(
                "objective",
                self.aov
                    .as_ref()
                    .map_or(Json::Null, |a| Json::Int(a.objective())),
            )
            .field("equivalent", self.equivalent.map_or(Json::Null, Json::Bool))
            .field(
                "check_params",
                self.check_params
                    .iter()
                    .map(|&p| Json::Int(p))
                    .collect::<Vec<_>>(),
            )
            .field("code", code)
            .field("budget", self.budget.to_json())
            .field(
                "counters",
                self.counters
                    .iter()
                    .map(|(k, v)| Json::obj().field("name", k.as_str()).field("count", *v))
                    .collect::<Vec<_>>(),
            )
            .field(
                "memo",
                Json::obj()
                    .field("hits", self.counter("lp.memo.hits"))
                    .field("misses", self.counter("lp.memo.misses"))
                    .field(
                        "hit_rate",
                        self.memo_hit_rate().map_or(Json::Null, Json::Float),
                    ),
            )
            .field("stages", self.stages.to_json());
        if let Some(timing) = &self.timing {
            json = json.field("timing", timing.to_json());
        }
        if let Some(path) = &self.diag_path {
            json = json.field("diag_path", path.as_str());
        }
        json
    }
}

/// Structural schema of [`Report::to_json`] — degraded and healthy
/// reports alike must match it. `aov --check-report` and the CI
/// chaos-smoke step validate emitted documents against this shape, so
/// no fault class may produce an unparseable or truncated report.
pub fn report_schema() -> aov_support::schema::Schema {
    use aov_support::schema::Schema;
    let counters = counters_schema();
    let aov_entry = Schema::object([
        ("array", Schema::Str, true),
        ("vector", Schema::array(Schema::Int), true),
    ]);
    let stage = stage_schema();
    let budget = Schema::object([
        ("pivots", Schema::nullable(Schema::Int), true),
        ("nodes", Schema::nullable(Schema::Int), true),
        ("ms", Schema::nullable(Schema::Int), true),
    ]);
    Schema::object([
        ("program", Schema::Str, true),
        ("workers", Schema::Int, true),
        ("memoized", Schema::Bool, true),
        ("health", Schema::Str, true),
        ("total_micros", Schema::Int, true),
        ("aov", Schema::nullable(Schema::array(aov_entry)), true),
        ("aov_source", Schema::nullable(Schema::Str), true),
        ("objective", Schema::nullable(Schema::Int), true),
        ("equivalent", Schema::nullable(Schema::Bool), true),
        ("check_params", Schema::array(Schema::Int), true),
        ("code", Schema::nullable(Schema::array(Schema::Str)), true),
        ("budget", budget, true),
        ("counters", counters, true),
        (
            "memo",
            Schema::object([
                ("hits", Schema::Int, true),
                ("misses", Schema::Int, true),
                ("hit_rate", Schema::nullable(Schema::Num), true),
            ]),
            true,
        ),
        ("stages", Schema::array(stage), true),
        ("timing", Schema::Any, false),
        ("diag_path", Schema::Str, false),
    ])
}

/// Schema of one `counters` array (`[{name, count}]`); shared by the
/// run report and the diagnostic bundle.
pub(crate) fn counters_schema() -> aov_support::schema::Schema {
    use aov_support::schema::Schema;
    Schema::array(Schema::object([
        ("name", Schema::Str, true),
        ("count", Schema::Int, true),
    ]))
}

/// Schema of one [`StageReport`] JSON object; shared by the run report
/// and the diagnostic bundle (whose `stages` array is the same shape).
pub(crate) fn stage_schema() -> aov_support::schema::Schema {
    use aov_support::schema::Schema;
    Schema::object([
        ("name", Schema::Str, true),
        ("outcome", Schema::Str, true),
        ("reason", Schema::Str, false),
        ("error_chain", Schema::array(Schema::Str), false),
        ("micros", Schema::Int, true),
        ("counters", counters_schema(), true),
        (
            "alloc",
            Schema::object([
                ("allocs", Schema::Int, true),
                ("bytes", Schema::Int, true),
                ("peak", Schema::Int, true),
                ("max_bits", Schema::Int, true),
            ]),
            true,
        ),
        ("detail", Schema::Any, true),
    ])
}

/// A configured pipeline over one program.
#[derive(Debug, Clone)]
pub struct Pipeline {
    program: Program,
    workers: usize,
    memoize: bool,
    machine: bool,
    params: Option<Vec<i64>>,
    runs: usize,
    schedule_override: Option<Schedule>,
    budget: BudgetSpec,
    diag_dir: Option<std::path::PathBuf>,
    session: u64,
}

impl Pipeline {
    /// A sequential pipeline over `program` with the machine-model stage
    /// off and default equivalence-check parameter sizes.
    pub fn new(program: Program) -> Self {
        Pipeline {
            program,
            workers: 1,
            memoize: false,
            machine: false,
            params: None,
            runs: 1,
            schedule_override: None,
            budget: BudgetSpec::default(),
            diag_dir: None,
            session: 0,
        }
    }

    /// A pipeline over one of the paper's named examples
    /// (`example1` … `example4`), or the `unschedulable` demo program
    /// that exercises the degradation ladder end to end.
    ///
    /// # Errors
    ///
    /// [`EngineError::Unsupported`] for an unknown name.
    pub fn for_example(name: &str) -> Result<Self, EngineError> {
        let program = match name {
            "example1" => examples::example1(),
            "example2" => examples::example2(),
            "example3" => examples::example3(),
            "example4" => examples::example4(),
            "unschedulable" => examples::unschedulable(),
            other => {
                return Err(EngineError::Unsupported(format!(
                    "unknown example {other:?} (expected example1..example4 or unschedulable)"
                )))
            }
        };
        Ok(Pipeline::new(program))
    }

    /// FNV-1a digest of the program IR — the identity stamped into diag
    /// bundles and `aov-profile/1` artifacts, so either document can be
    /// matched to the exact input that produced it.
    #[must_use]
    pub fn program_digest(&self) -> String {
        aov_support::digest::fnv1a_hex(format!("{:?}", self.program).as_bytes())
    }

    /// Fans the per-orthant solvers out over `workers` threads
    /// (`<= 1` means sequential). Results are bit-identical either way.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables the process-global LP memoization cache for this run.
    /// Identical LP relaxations (common across sign orthants and
    /// branch-and-bound nodes) are then solved once.
    pub fn memoize(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Enables the machine-model speedup stage (§6 of the paper;
    /// simulated only for `example2` and `example3`).
    pub fn machine(mut self, on: bool) -> Self {
        self.machine = on;
        self
    }

    /// Overrides the parameter sizes for the dynamic equivalence check.
    pub fn check_params(mut self, params: Vec<i64>) -> Self {
        self.params = Some(params);
        self
    }

    /// Replaces the whole budget at once (CLI and bench pass-through).
    pub fn budget(mut self, spec: BudgetSpec) -> Self {
        self.budget = spec;
        self
    }

    /// Caps the total simplex pivots for one run; exceeding the cap
    /// degrades the tripping stage deterministically.
    pub fn budget_pivots(mut self, n: u64) -> Self {
        self.budget.pivots = Some(n);
        self
    }

    /// Caps the total branch-and-bound nodes for one run.
    pub fn budget_nodes(mut self, n: u64) -> Self {
        self.budget.nodes = Some(n);
        self
    }

    /// Wall-clock deadline for one run, in milliseconds. Trips are
    /// inherently nondeterministic (unlike the work limits).
    pub fn budget_ms(mut self, ms: u64) -> Self {
        self.budget.ms = Some(ms);
        self
    }

    /// Writes a crash-diagnostic bundle (`aov-diag/1`, see
    /// [`crate::diag`]) into `dir` whenever a run lands anywhere but
    /// [`Health::Ok`] — including hard failures, whose partial stage
    /// ladder is preserved — or completes healthy but with dynamic
    /// equivalence refuted. The directory is created on demand.
    pub fn diag_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.diag_dir = Some(dir.into());
        self
    }

    /// Attributes this run to a session (0 = none, the default). A
    /// session-attributed run shares the process-global flight-recorder
    /// ring with concurrent runs instead of clearing it, stamps its
    /// events with `id`, and filters its crash bundles down to its own
    /// timeline — this is how the `aovd` daemon keeps one request's
    /// bundle from carrying a neighbor's events.
    pub fn session(mut self, id: u64) -> Self {
        self.session = id;
        self
    }

    /// Repeats the whole pipeline `runs` times (`<= 1` means once).
    /// The returned report is the *fastest* run, with a
    /// [`RunTiming`] min/median summary attached so single-run noise
    /// stops polluting timing comparisons. Results are identical across
    /// repetitions; only timings (and cache warmth) vary.
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs.max(1);
        self
    }

    /// Pins the `schedule` stage to a caller-provided schedule instead
    /// of searching. The schedule must be legal for the program —
    /// Problem 1 then reports the shortest OVs *under that schedule*
    /// (this is how the figure suite reproduces Figure 3's row-parallel
    /// scenario through the instrumented pipeline).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule_override = Some(schedule);
        self
    }

    /// Runs every stage and collects the instrumented report; with
    /// [`Pipeline::runs`] `> 1`, repeats and returns the fastest run
    /// plus a min/median timing summary.
    ///
    /// # Errors
    ///
    /// Only hard failures (invalid request) abort with [`EngineError`];
    /// recoverable faults degrade the report instead — see
    /// [`Report::health`].
    pub fn run(&self) -> Result<Report, EngineError> {
        if self.runs <= 1 {
            return self.run_once();
        }
        let mut reports: Vec<Report> = Vec::with_capacity(self.runs);
        for _ in 0..self.runs {
            reports.push(self.run_once()?);
        }
        let stage_names: Vec<&'static str> = reports[0].stages.iter().map(|s| s.name).collect();
        let timing = RunTiming {
            runs: self.runs,
            total_micros: Stat::of(reports.iter().map(|r| r.total_micros).collect()),
            stages: stage_names
                .iter()
                .map(|&name| {
                    let sample = reports
                        .iter()
                        .map(|r| r.stage(name).map_or(0, |s| s.micros))
                        .collect();
                    (name, Stat::of(sample))
                })
                .collect(),
        };
        let best = reports
            .into_iter()
            .min_by_key(|r| r.total_micros)
            .expect("at least one run");
        Ok(Report {
            timing: Some(timing),
            ..best
        })
    }

    /// One full pass over every stage of the ladder, plus the
    /// crash-diagnostic hook: any run that lands off [`Health::Ok`]
    /// (including hard failures, whose partial ladder survives) writes
    /// an `aov-diag/1` bundle when a [`Pipeline::diag_dir`] is set.
    fn run_once(&self) -> Result<Report, EngineError> {
        let check_params = self.resolved_params()?;
        if self.memoize {
            aov_lp::memo::set_enabled(true);
        }
        // Session-free runs own the process: a fresh flight-recorder
        // ring per run, so a crash bundle carries this run's event
        // tail, not a previous run's. Session-attributed runs share
        // the ring with concurrent neighbors — they must not clear it;
        // their events are stamped instead and bundles filter on the
        // stamp.
        let _session_guard = if self.session == 0 {
            aov_trace::recorder::clear();
            None
        } else {
            Some(aov_trace::recorder::enter_session(self.session))
        };
        // A fresh budget per run: repeated runs each get the full
        // allowance, and the deadline clock starts here.
        let budget = self.budget.to_budget();
        let mut stages: Vec<StageReport> = Vec::new();
        let run_before = counters::snapshot();
        let t_start = Instant::now();
        let out = self.ladder(&budget, &check_params, &mut stages);
        let total_micros = t_start.elapsed().as_micros();
        let run_counters = counters::delta(&run_before, &counters::snapshot());
        match out {
            Ok(out) => {
                let mut report = Report {
                    program: self.program.name().to_string(),
                    workers: self.workers,
                    memoized: self.memoize,
                    arrays: self
                        .program
                        .arrays()
                        .iter()
                        .map(|a| a.name().to_string())
                        .collect(),
                    ov: out.ov,
                    aov: out.aov,
                    aov_source: out.aov_source,
                    code: out.code,
                    equivalent: out.equivalent,
                    check_params,
                    total_micros,
                    counters: run_counters,
                    stages,
                    timing: None,
                    budget: self.budget,
                    diag_path: None,
                };
                // Refuted equivalence is as diagnosable as a degraded
                // run: the transform executed but changed semantics, so
                // the bundle hook fires for it too (the fuzz harness
                // leans on this to capture mismatch evidence).
                if report.health() != Health::Ok || report.equivalent == Some(false) {
                    report.diag_path = self.write_diag(
                        &report.stages,
                        &budget,
                        &report.counters,
                        report.health(),
                        None,
                    );
                }
                Ok(report)
            }
            Err(e) => {
                // Hard failure: there is no report, but the partial
                // ladder, the recorder ring and the budget state still
                // describe what happened.
                self.write_diag(&stages, &budget, &run_counters, Health::Failed, Some(&e));
                Err(e)
            }
        }
    }

    /// Writes the crash-diagnostic bundle when a `--diag-dir` is
    /// configured, returning its path. I/O problems are swallowed into
    /// a counter — a failing diagnostic write must never mask the run's
    /// own verdict.
    fn write_diag(
        &self,
        stages: &[StageReport],
        budget: &Budget,
        run_counters: &[(String, u64)],
        health: Health,
        error: Option<&EngineError>,
    ) -> Option<String> {
        let dir = self.diag_dir.as_ref()?;
        match crate::diag::write_bundle(
            dir,
            &self.program,
            self.workers,
            health,
            stages,
            budget,
            self.budget,
            run_counters,
            error,
            self.session,
        ) {
            Ok(path) => {
                aov_support::static_counter!("engine.diag.bundles")
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Some(path.display().to_string())
            }
            Err(_) => {
                aov_support::static_counter!("engine.diag.write_failed")
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                None
            }
        }
    }

    /// The stage ladder proper. Stage reports land in `stages`, which
    /// outlives an early hard-failure return so crash bundles keep the
    /// partial ladder.
    fn ladder(
        &self,
        budget: &Budget,
        check_params: &[i64],
        stages: &mut Vec<StageReport>,
    ) -> Result<LadderOut, EngineError> {
        let p = &self.program;

        run_stage(stages, "ir", || {
            p.validate()
                .map_err(|e| EngineError::Unsupported(format!("invalid program: {e}")))?;
            done(
                (),
                Json::obj()
                    .field("statements", p.statements().len())
                    .field("arrays", p.arrays().len())
                    .field("params", p.params().len()),
            )
        })?;

        run_stage(stages, "dependences", || {
            let deps = analysis::dependences(p);
            done((), Json::obj().field("count", deps.len()))
        })?;

        run_stage(stages, "legal_schedule", || {
            let (space, poly) =
                legal::legal_schedule_polyhedron(p).map_err(CoreError::Polyhedra)?;
            // Project away the parameter/constant coefficients (FM
            // elimination) to expose the cone of legal iteration
            // coefficients — the part of ℛ the occupancy vectors fight.
            let mut drop_dims: Vec<usize> = Vec::new();
            for s in 0..space.num_statements() {
                let s = aov_ir::StmtId(s);
                for j in 0..p.params().len() {
                    drop_dims.push(space.param_coeff(s, j));
                }
                drop_dims.push(space.const_coeff(s));
            }
            let cone = poly.eliminate_dims(&drop_dims);
            done(
                (),
                Json::obj()
                    .field("space_dim", space.dim())
                    .field("constraints", poly.constraints().len())
                    .field("iter_cone_constraints", cone.constraints().len()),
            )
        })?;

        let sched: Option<Schedule> = run_stage(stages, "schedule", || {
            let (sched, overridden) = match &self.schedule_override {
                Some(s) => {
                    if !legal::is_legal(p, s) {
                        return Err(EngineError::Schedule(
                            "overridden schedule violates a dependence".to_string(),
                        ));
                    }
                    (s.clone(), true)
                }
                None => match scheduler::find_schedule_with_budgeted(p, &[], budget) {
                    Ok(s) => (s, false),
                    // No 1-D affine schedule: degrade with a diagnostic
                    // naming the violated dependence; the AOV-only
                    // stages still run.
                    Err(scheduler::ScheduleError::Infeasible) => {
                        return Err(EngineError::Core(CoreError::Fault(
                            AovError::Unschedulable {
                                detail: legal::unschedulable_diagnostic(p),
                            },
                        )))
                    }
                    Err(e) => return Err(e.into()),
                },
            };
            let detail = Json::obj()
                .field("theta", sched.display(p).to_string())
                .field("overridden", overridden);
            done(sched, detail)
        })?;

        let ov: Option<OvResult> = match &sched {
            None => skip_stage(stages, "problem1", "no schedule to optimize against"),
            Some(s) => run_stage(stages, "problem1", || {
                let ov = problems::ov_for_schedule_budgeted(p, s, self.workers, budget)?;
                let detail = ov_detail(p, &ov);
                done(ov, detail)
            })?,
        };

        let aov_pair: Option<(OvResult, &'static str)> = run_stage(stages, "aov", || {
            match problems::aov_budgeted(p, self.workers, budget) {
                Ok(aov) => {
                    let detail = ov_detail(p, &aov);
                    done((aov, "farkas"), detail)
                }
                Err(e) => {
                    let e = EngineError::Core(e);
                    if !e.is_degradable() {
                        return Err(e);
                    }
                    // Farkas solver unavailable: degrade to the
                    // schedule-independent UOV baseline. The
                    // fallback is deliberately unbudgeted — it must
                    // stay reachable when the budget is spent.
                    match uov::shortest_uov_all(p, DEFAULT_SEARCH_RADIUS) {
                        Ok(u) => {
                            let detail = ov_detail(p, &u).field("fallback", "uov");
                            Ok((
                                (u, "uov"),
                                detail,
                                StageOutcome::Degraded {
                                    reason: format!("{e}; fell back to schedule-independent UOVs"),
                                },
                            ))
                        }
                        Err(_) => Err(e),
                    }
                }
            }
        })?;
        let (aov, aov_source) = match aov_pair {
            Some((a, src)) => (Some(a), Some(src)),
            None => (None, None),
        };

        let sched2: Option<Schedule> = match &aov {
            None => skip_stage(
                stages,
                "problem2",
                "no occupancy vectors to schedule against",
            ),
            Some(aov_r) => run_stage(stages, "problem2", || {
                let sched2 = problems::best_schedule_for_ov_budgeted(p, aov_r.vectors(), budget)?;
                let detail = Json::obj().field("theta", sched2.display(p).to_string());
                done(sched2, detail)
            })?,
        };

        let transforms: Option<Vec<StorageTransform>> = match &aov {
            None => skip_stage(stages, "storage_transform", "no occupancy vectors to apply"),
            Some(aov_r) => run_stage(stages, "storage_transform", || {
                let transforms = p
                    .arrays()
                    .iter()
                    .enumerate()
                    .zip(aov_r.vectors())
                    .map(|((aidx, _), v)| StorageTransform::new(p, aov_ir::ArrayId(aidx), v))
                    .collect::<Result<Vec<_>, _>>()?;
                let detail = transforms
                    .iter()
                    .map(|t| {
                        Json::obj()
                            .field("array", t.array_name())
                            .field("dims", t.transformed_dim())
                            .field("modulation", t.modulation())
                    })
                    .collect::<Vec<_>>();
                done(transforms, Json::Arr(detail))
            })?,
        };

        let code: Option<String> = match &transforms {
            None => skip_stage(stages, "codegen", "no storage transform to print"),
            Some(ts) => run_stage(stages, "codegen", || {
                let code = codegen::transformed_code(p, ts);
                let detail = Json::obj().field("lines", code.lines().count());
                done(code, detail)
            })?,
        };

        let equivalent: Option<bool> = match (&transforms, &sched, &sched2) {
            (None, _, _) => skip_stage(stages, "equivalence", "no storage transform to validate"),
            (Some(_), None, None) => {
                skip_stage(stages, "equivalence", "no schedule to execute under")
            }
            (Some(ts), s1, s2) => run_stage(stages, "equivalence", || {
                // The AOV must work under every available schedule: the
                // dependence-only one and the storage-constrained one
                // from Problem 2.
                let mut verdict = true;
                let mut detail = Json::obj();
                if let Some(s) = s1 {
                    let ok = semantics_preserved(p, check_params, s, ts);
                    verdict &= ok;
                    detail = detail.field("under_found_schedule", ok);
                }
                if let Some(s) = s2 {
                    let ok = semantics_preserved(p, check_params, s, ts);
                    verdict &= ok;
                    detail = detail.field("under_best_schedule", ok);
                }
                done(verdict, detail)
            })?,
        };

        if self.machine {
            self.machine_stage(stages)?;
        }

        Ok(LadderOut {
            ov,
            aov,
            aov_source,
            code,
            equivalent,
        })
    }

    /// The §6 simulated-speedup stage (Figures 15/16); a no-op detail
    /// for programs without a machine model.
    fn machine_stage(&self, stages: &mut Vec<StageReport>) -> Result<(), EngineError> {
        let name = self.program.name().to_string();
        let workers = self.workers;
        run_stage(stages, "machine", move || {
            let cfg = MachineConfig::scaled_down();
            let procs = [1, 2, 4, 8];
            let points: Option<Vec<SpeedupPoint>> = match name.as_str() {
                "example2" => Some(example2_speedup_with(&cfg, 64, 64, &procs, workers)),
                "example3" => Some(example3_speedup_with(&cfg, 12, 24, 24, &procs, workers)),
                _ => None,
            };
            let detail = match &points {
                None => Json::obj().field("simulated", false),
                Some(pts) => Json::obj().field("simulated", true).field(
                    "speedups",
                    pts.iter()
                        .map(|pt| {
                            Json::obj()
                                .field("procs", pt.procs)
                                .field("original", pt.original)
                                .field("transformed", pt.transformed)
                        })
                        .collect::<Vec<_>>(),
                ),
            };
            done((), detail)
        })?;
        Ok(())
    }

    /// Parameter sizes for the equivalence oracle: the caller's override,
    /// or per-example defaults compatible with each program's
    /// `param_min` bounds.
    fn resolved_params(&self) -> Result<Vec<i64>, EngineError> {
        let want = self.program.params().len();
        if let Some(ps) = &self.params {
            if ps.len() != want {
                return Err(EngineError::Unsupported(format!(
                    "{} takes {} parameter(s), got {}",
                    self.program.name(),
                    want,
                    ps.len()
                )));
            }
            return Ok(ps.clone());
        }
        Ok(match self.program.name() {
            "example3" => vec![4, 4, 4],
            "example4" => vec![6],
            _ => vec![8; want],
        })
    }
}

/// What the stage ladder hands back to [`Pipeline::run_once`] for the
/// final report (everything else lives in the stage reports).
struct LadderOut {
    ov: Option<OvResult>,
    aov: Option<OvResult>,
    aov_source: Option<&'static str>,
    code: Option<String>,
    equivalent: Option<bool>,
}

/// Shorthand for a stage body that completed normally.
fn done<T>(value: T, detail: Json) -> Result<(T, Json, StageOutcome), EngineError> {
    Ok((value, detail, StageOutcome::Ok))
}

/// Records a `Skipped` stage and yields no value.
fn skip_stage<T>(stages: &mut Vec<StageReport>, name: &'static str, reason: &str) -> Option<T> {
    stages.push(StageReport {
        name,
        micros: 0,
        counters: Vec::new(),
        detail: Json::Null,
        outcome: StageOutcome::Skipped {
            reason: reason.to_string(),
        },
        allocs: 0,
        alloc_bytes: 0,
        alloc_peak: 0,
        max_bits: 0,
        error_chain: Vec::new(),
    });
    None
}

/// Walks an error's `source()` chain into display strings, outermost
/// first. Consecutive identical links (transparent wrappers whose
/// `Display` just forwards) collapse into one.
pub(crate) fn error_chain_of(e: &dyn std::error::Error) -> Vec<String> {
    let mut chain = vec![e.to_string()];
    let mut cur = e.source();
    while let Some(next) = cur {
        chain.push(next.to_string());
        cur = next.source();
    }
    chain.dedup();
    chain
}

/// Runs `f` as the named stage of the ladder: opens the
/// `pipeline.<name>` span, fires the chaos probe, isolates panics,
/// times the body and captures the counter delta. A degradable error
/// (solver incapacity, budget trip, worker panic, injected fault)
/// records a `Degraded` outcome and returns `Ok(None)` so the pipeline
/// continues; a hard error records `Failed` and aborts the run.
fn run_stage<T>(
    stages: &mut Vec<StageReport>,
    name: &'static str,
    f: impl FnOnce() -> Result<(T, Json, StageOutcome), EngineError>,
) -> Result<Option<T>, EngineError> {
    use aov_support::alloc;
    use aov_trace::recorder::{self, EventKind};

    let site = format!("pipeline.{name}");
    let _span = aov_trace::span!(site.clone());
    recorder::record(EventKind::StageEnter, name, stages.len() as u64, 0);
    let before = counters::snapshot();
    let alloc_before = alloc::stats();
    // Per-stage peak: reset the high-water to the current live level so
    // `alloc_peak` reports the peak *during* this stage (still an
    // absolute live-byte level, not a delta).
    alloc::reset_peak();
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        aov_fault::chaos::tick(&site).map_err(|e| EngineError::Core(CoreError::Fault(e)))?;
        f()
    }))
    .unwrap_or_else(|payload| {
        Err(EngineError::Core(CoreError::Fault(AovError::from_panic(
            &site,
            payload.as_ref(),
        ))))
    });
    let micros = t0.elapsed().as_micros();
    let counters = counters::delta(&before, &counters::snapshot());
    let alloc_after = alloc::stats();
    let allocs = alloc_after.allocs.saturating_sub(alloc_before.allocs);
    let alloc_bytes = alloc_after.bytes.saturating_sub(alloc_before.bytes);
    let alloc_peak = alloc_after.peak.max(0) as u64;
    let max_bits = alloc_after.max_bits.saturating_sub(alloc_before.max_bits);
    // Mirror the moved counters into the flight recorder so a crash
    // bundle's tail shows where solver effort went, then close the
    // stage window (a = micros, b = outcome/error class ordinal).
    for (counter_name, delta) in &counters {
        recorder::record(EventKind::Counter, counter_name, *delta, 0);
    }
    let outcome_code = |o: &StageOutcome| match o {
        StageOutcome::Ok => 0,
        StageOutcome::Degraded { .. } => 1,
        StageOutcome::Skipped { .. } => 2,
        StageOutcome::Failed { .. } => 3,
    };
    let micros_u64 = u64::try_from(micros).unwrap_or(u64::MAX);
    match result {
        Ok((value, detail, outcome)) => {
            recorder::record(
                EventKind::StageExit,
                name,
                micros_u64,
                outcome_code(&outcome),
            );
            stages.push(StageReport {
                name,
                micros,
                counters,
                detail,
                outcome,
                allocs,
                alloc_bytes,
                alloc_peak,
                max_bits,
                error_chain: Vec::new(),
            });
            Ok(Some(value))
        }
        Err(e) if e.is_degradable() => {
            let outcome = StageOutcome::Degraded {
                reason: e.to_string(),
            };
            recorder::record(
                EventKind::StageExit,
                name,
                micros_u64,
                outcome_code(&outcome),
            );
            stages.push(StageReport {
                name,
                micros,
                counters,
                detail: Json::Null,
                outcome,
                allocs,
                alloc_bytes,
                alloc_peak,
                max_bits,
                error_chain: error_chain_of(&e),
            });
            Ok(None)
        }
        Err(e) => {
            let outcome = StageOutcome::Failed {
                error: e.to_string(),
            };
            recorder::record(
                EventKind::StageExit,
                name,
                micros_u64,
                outcome_code(&outcome),
            );
            stages.push(StageReport {
                name,
                micros,
                counters,
                detail: Json::Null,
                outcome,
                allocs,
                alloc_bytes,
                alloc_peak,
                max_bits,
                error_chain: error_chain_of(&e),
            });
            Err(e)
        }
    }
}

/// Shared detail payload for the occupancy-vector stages.
fn ov_detail(p: &Program, ov: &OvResult) -> Json {
    let vectors = p
        .arrays()
        .iter()
        .zip(ov.vectors())
        .map(|(a, v)| {
            Json::obj().field("array", a.name()).field(
                "vector",
                v.components()
                    .iter()
                    .map(|&c| Json::Int(c))
                    .collect::<Vec<_>>(),
            )
        })
        .collect::<Vec<_>>();
    Json::obj()
        .field("objective", ov.objective())
        .field("vectors", vectors)
}

/// Convenience: run the instrumented pipeline on a named example.
///
/// # Errors
///
/// As for [`Pipeline::run`].
pub fn run_example(name: &str, workers: usize) -> Result<Report, EngineError> {
    Pipeline::for_example(name)?.workers(workers).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_example_is_rejected() {
        assert!(matches!(
            Pipeline::for_example("example9"),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn wrong_param_count_is_rejected() {
        let p = Pipeline::for_example("example1")
            .unwrap()
            .check_params(vec![5]);
        assert!(matches!(p.run(), Err(EngineError::Unsupported(_))));
    }

    #[test]
    fn healthy_run_is_all_ok() {
        let report = run_example("example1", 1).expect("example1 runs");
        assert_eq!(report.health(), Health::Ok);
        for s in &report.stages {
            assert_eq!(s.outcome, StageOutcome::Ok, "stage {}", s.name);
        }
        assert_eq!(report.aov_source, Some("farkas"));
        assert_eq!(report.equivalent, Some(true));
        let json = report.to_json();
        assert_eq!(json.get("health"), Some(&Json::from("ok")));
    }

    #[test]
    fn single_run_has_no_timing_summary() {
        let report = run_example("example1", 1).expect("example1 runs");
        assert!(report.timing.is_none());
        assert!(report.to_json().get("timing").is_none());
    }

    #[test]
    fn repeated_runs_attach_min_median_timing() {
        let report = Pipeline::for_example("example1")
            .unwrap()
            .runs(3)
            .run()
            .expect("example1 runs");
        let timing = report.timing.as_ref().expect("timing for runs > 1");
        assert_eq!(timing.runs, 3);
        assert!(timing.total_micros.min <= timing.total_micros.median);
        assert_eq!(timing.stages.len(), report.stages.len());
        for (name, stat) in &timing.stages {
            assert!(stat.min <= stat.median, "{name}: min > median");
        }
        // The report is the fastest of the three runs.
        assert_eq!(report.total_micros, timing.total_micros.min);
        let json = report.to_json();
        let t = json.get("timing").expect("timing in JSON");
        assert_eq!(t.get("runs"), Some(&Json::Int(3)));
        assert!(t.get("total_micros").and_then(|s| s.get("min")).is_some());
    }

    #[test]
    fn stat_median_is_lower_nearest_rank() {
        let s = Stat::of(vec![40, 10, 30, 20]);
        assert_eq!(s.min, 10);
        assert_eq!(s.median, 20);
        let s = Stat::of(vec![7]);
        assert_eq!((s.min, s.median), (7, 7));
    }

    #[test]
    fn schedule_override_drives_problem1() {
        // Figure 3's scenario: the row-parallel schedule Θ(i,j) = j of
        // Example 1 admits the shorter OV (0, 1).
        let p = examples::example1();
        let row = aov_schedule::Schedule::uniform_for(
            &p,
            &[aov_linalg::AffineExpr::from_i64(&[0, 1, 0, 0], 0)],
        );
        let report = Pipeline::new(p).with_schedule(row).run().expect("runs");
        let ov = report.ov.as_ref().expect("problem1 ran");
        assert_eq!(ov.vector_for("A").unwrap().components(), [0, 1]);
        let detail = &report.stage("schedule").expect("schedule stage").detail;
        assert_eq!(detail.get("overridden"), Some(&Json::Bool(true)));
        // The AOV is schedule-independent and unchanged by the override.
        let aov = report.aov.as_ref().expect("aov ran");
        assert_eq!(aov.vector_for("A").unwrap().components(), [1, 2]);
    }

    #[test]
    fn illegal_schedule_override_is_rejected() {
        let p = examples::example1();
        let bad = aov_schedule::Schedule::uniform_for(
            &p,
            &[aov_linalg::AffineExpr::from_i64(&[-1, 1, 0, 0], 0)],
        );
        assert!(matches!(
            Pipeline::new(p).with_schedule(bad).run(),
            Err(EngineError::Schedule(_))
        ));
    }

    #[test]
    fn report_json_has_stage_timings_and_outcomes() {
        let report = run_example("example1", 1).expect("example1 runs");
        let json = report.to_json();
        let Some(Json::Arr(stages)) = json.get("stages") else {
            panic!("stages array missing");
        };
        assert!(
            stages.len() >= 9,
            "expected all stages, got {}",
            stages.len()
        );
        for s in stages {
            assert!(s.get("micros").is_some(), "stage without timing: {s:?}");
            assert_eq!(s.get("outcome"), Some(&Json::from("ok")));
        }
    }

    /// A one-pivot budget trips in the `schedule` stage; the ladder
    /// still produces a structured report: Problem 1 skipped, the AOV
    /// stage degraded to the UOV fallback, storage/codegen live.
    #[test]
    fn exhausted_budget_degrades_to_uov() {
        let report = Pipeline::for_example("example1")
            .unwrap()
            .budget_pivots(1)
            .run()
            .expect("degraded, not failed");
        assert_eq!(report.health(), Health::Degraded);
        assert_eq!(
            report.stage("schedule").unwrap().outcome.class(),
            "degraded"
        );
        assert_eq!(report.stage("problem1").unwrap().outcome.class(), "skipped");
        assert_eq!(report.stage("aov").unwrap().outcome.class(), "degraded");
        // Example 1's UOV is (0,3) — longer than the AOV (1,2), but
        // valid without any solver budget.
        assert_eq!(report.aov_source, Some("uov"));
        let aov = report.aov.as_ref().expect("uov fallback");
        assert_eq!(aov.vector_for("A").unwrap().components(), [0, 3]);
        assert_eq!(
            report.stage("storage_transform").unwrap().outcome.class(),
            "ok"
        );
        assert_eq!(report.stage("codegen").unwrap().outcome.class(), "ok");
        // No schedule survived, so the dynamic check cannot run.
        assert_eq!(
            report.stage("equivalence").unwrap().outcome.class(),
            "skipped"
        );
        assert_eq!(report.equivalent, None);
        // The reason names the budget resource and trip site.
        let reason = report
            .stage("schedule")
            .unwrap()
            .outcome
            .reason()
            .unwrap()
            .to_string();
        assert!(reason.contains("pivot limit"), "reason: {reason}");
    }

    /// Budget trips must be deterministic: same budget, same trip site
    /// and same report shape for any worker count.
    #[test]
    fn budget_trip_is_worker_invariant() {
        let outcome_of = |workers: usize| {
            let r = Pipeline::for_example("example1")
                .unwrap()
                .workers(workers)
                .budget_pivots(200)
                .run()
                .expect("structured report");
            (
                r.health(),
                r.stages
                    .iter()
                    .map(|s| (s.name, s.outcome.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        let seq = outcome_of(1);
        for workers in 2..=4 {
            assert_eq!(seq, outcome_of(workers), "workers = {workers}");
        }
    }
}
