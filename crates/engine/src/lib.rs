//! Instrumented end-to-end pipeline engine.
//!
//! Runs a program through the paper's tool chain (dependences →
//! legal-schedule polyhedron → Problems 1/2/3 → storage transform →
//! codegen → dynamic equivalence) as named, timed, counter-instrumented
//! stages, with deterministic parallel fan-out of the per-orthant
//! solvers. The `aov` binary exposes the same pipeline on the command
//! line and emits a JSON report.

pub mod diag;
pub mod pipeline;
pub mod profile;
pub mod progress;

pub use pipeline::{
    report_schema, run_example, BudgetSpec, EngineError, Health, Pipeline, Report, RunTiming,
    StageOutcome, StageReport, Stat,
};
