//! One merged metrics report: span aggregates plus the global solver
//! counters (`aov-support::counters`).
//!
//! The counters (simplex pivots, branch-and-bound nodes, FM
//! eliminations, memo hits/misses, …) say *how much* work the solvers
//! did; the flame table says *where the time went*. A snapshot puts
//! both in a single `Json` document so one report answers both
//! questions. Callers pass a counter *delta* (see
//! `aov_support::counters::delta`) so multi-run processes attribute
//! counts to the run that caused them.

use crate::flame::FlameTable;
use crate::SpanRecord;
use aov_support::{Json, ToJson};

/// Merges the flame table of `records` with a counter delta into one
/// report. `counters` is `(name, increment)` as produced by
/// `aov_support::counters::delta` (or a raw snapshot for whole-process
/// totals). LP-memo hit/miss counts additionally get a derived
/// `hit_rate` entry.
pub fn snapshot(records: &[SpanRecord], counters: &[(String, u64)]) -> Json {
    let flame = FlameTable::build(records);
    let counter_json: Vec<Json> = counters
        .iter()
        .map(|(k, v)| Json::obj().field("name", k.as_str()).field("count", *v))
        .collect();
    let find = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    };
    let hits = find("lp.memo.hits");
    let misses = find("lp.memo.misses");
    let lookups = hits + misses;
    let memo = Json::obj()
        .field("hits", hits)
        .field("misses", misses)
        .field(
            "hit_rate",
            if lookups == 0 {
                Json::Null
            } else {
                Json::Float(hits as f64 / lookups as f64)
            },
        );
    let alloc = aov_support::alloc::stats();
    let alloc_json = Json::obj()
        .field("allocs", alloc.allocs)
        .field("bytes", alloc.bytes)
        .field("live", alloc.live)
        .field("peak", alloc.peak)
        .field("max_bits", alloc.max_bits);
    Json::obj()
        .field("spans", flame.to_json())
        .field("counters", counter_json)
        .field("memo", memo)
        .field("alloc", alloc_json)
}

/// Span aggregates alone (no counters), capped to the `top` rows by
/// self time — the export hook the benchmark observatory embeds in
/// `BENCH_*.json` per-example entries.
pub fn span_aggregates(records: &[SpanRecord], top: usize) -> Json {
    FlameTable::build(records).truncated(top).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_spans_and_counters() {
        let records = vec![SpanRecord {
            id: 1,
            name: "lp.simplex".to_string(),
            dur_ns: 500,
            ..SpanRecord::default()
        }];
        let counters = vec![
            ("lp.memo.hits".to_string(), 3),
            ("lp.memo.misses".to_string(), 1),
            ("lp.simplex.pivots".to_string(), 42),
        ];
        let j = snapshot(&records, &counters);
        let Some(Json::Arr(spans)) = j.get("spans") else {
            panic!("spans missing");
        };
        assert_eq!(spans[0].get("name"), Some(&Json::Str("lp.simplex".into())));
        let Some(Json::Arr(cs)) = j.get("counters") else {
            panic!("counters missing");
        };
        assert_eq!(cs.len(), 3);
        let memo = j.get("memo").unwrap();
        assert_eq!(memo.get("hits"), Some(&Json::Int(3)));
        assert_eq!(memo.get("hit_rate"), Some(&Json::Float(0.75)));
    }

    #[test]
    fn no_lookups_yields_null_rate() {
        let j = snapshot(&[], &[]);
        assert_eq!(j.get("memo").unwrap().get("hit_rate"), Some(&Json::Null));
    }

    #[test]
    fn span_aggregates_caps_rows_by_self_time() {
        let records: Vec<SpanRecord> = (0..5u64)
            .map(|i| SpanRecord {
                id: i + 1,
                name: format!("span{i}"),
                dur_ns: 500 - i * 100,
                ..SpanRecord::default()
            })
            .collect();
        let Json::Arr(rows) = span_aggregates(&records, 3) else {
            panic!("expected array");
        };
        assert_eq!(rows.len(), 3);
        // Kept in descending self-time order: the three slowest.
        assert_eq!(rows[0].get("name"), Some(&Json::Str("span0".into())));
        assert_eq!(rows[2].get("name"), Some(&Json::Str("span2".into())));
    }
}
