//! Chrome trace-event export (the JSON object format of
//! `chrome://tracing` and <https://ui.perfetto.dev>).
//!
//! Each span becomes one complete event (`"ph": "X"`) with microsecond
//! timestamps; each thread that recorded a span gets a metadata event
//! naming its track, so the viewer shows one track per worker thread.

use crate::SpanRecord;
use aov_support::Json;

/// The trace document for `records` (as returned by
/// [`drain`](crate::drain)).
pub fn chrome_trace(records: &[SpanRecord]) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(records.len() + 8);
    let mut threads: Vec<u64> = records.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for &t in &threads {
        events.push(
            Json::obj()
                .field("name", "thread_name")
                .field("ph", "M")
                .field("pid", 1)
                .field("tid", t)
                .field(
                    "args",
                    Json::obj().field(
                        "name",
                        if t == 0 {
                            "main".to_string()
                        } else {
                            format!("worker-{t}")
                        },
                    ),
                ),
        );
    }
    for r in records {
        let mut args = Json::obj().field("span_id", r.id);
        if let Some(p) = r.parent {
            args = args.field("parent_id", p);
        }
        for (k, v) in &r.fields {
            args = args.field(k, v.as_str());
        }
        events.push(
            Json::obj()
                .field("name", r.name.as_str())
                .field("cat", "aov")
                .field("ph", "X")
                .field("ts", r.start_ns as f64 / 1e3)
                .field("dur", r.dur_ns as f64 / 1e3)
                .field("pid", 1)
                .field("tid", r.thread)
                .field("args", args),
        );
    }
    Json::obj()
        .field("traceEvents", events)
        .field("displayTimeUnit", "ms")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, thread: u64, name: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            thread,
            name: name.to_string(),
            fields: vec![("dep", "3".to_string())],
            start_ns: 1_500,
            dur_ns: 2_500,
            ..SpanRecord::default()
        }
    }

    #[test]
    fn export_shape() {
        let doc = chrome_trace(&[rec(1, None, 0, "root"), rec(2, Some(1), 3, "child")]);
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("traceEvents missing");
        };
        // 2 thread-name metadata events + 2 span events.
        assert_eq!(events.len(), 4);
        let meta: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph") == Some(&Json::Str("M".into())))
            .collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(
            meta[1].get("args").unwrap().get("name"),
            Some(&Json::Str("worker-3".into()))
        );
        let span = events
            .iter()
            .find(|e| e.get("name") == Some(&Json::Str("child".into())))
            .unwrap();
        assert_eq!(span.get("ph"), Some(&Json::Str("X".into())));
        assert_eq!(span.get("ts"), Some(&Json::Float(1.5)));
        assert_eq!(span.get("dur"), Some(&Json::Float(2.5)));
        assert_eq!(span.get("tid"), Some(&Json::Int(3)));
        let args = span.get("args").unwrap();
        assert_eq!(args.get("parent_id"), Some(&Json::Int(1)));
        assert_eq!(args.get("dep"), Some(&Json::Str("3".into())));
    }

    #[test]
    fn empty_trace_is_well_formed() {
        let doc = chrome_trace(&[]);
        assert_eq!(doc.get("traceEvents"), Some(&Json::Arr(Vec::new())));
    }
}
