//! Self-time/total-time aggregation of span records into a flame table.

use crate::SpanRecord;
use aov_support::{Json, ToJson};

/// Aggregate of every span sharing one name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameRow {
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of span durations (includes time spent in child spans; a
    /// name that nests under itself counts each level).
    pub total_ns: u64,
    /// Sum of span durations minus each span's direct children — time
    /// attributable to the span's own code.
    pub self_ns: u64,
    /// Median single-span duration (nearest-rank).
    pub p50_ns: u64,
    /// 95th-percentile single-span duration (nearest-rank).
    pub p95_ns: u64,
}

/// A flame table: one [`FlameRow`] per span name, sorted by descending
/// self time (ties by name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameTable {
    rows: Vec<FlameRow>,
}

/// Nearest-rank percentile of a sorted sample (`q` in 0..=100).
fn percentile(sorted: &[u64], q: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

impl FlameTable {
    /// Aggregates finished spans (as returned by
    /// [`drain`](crate::drain)) into a table.
    pub fn build(records: &[SpanRecord]) -> FlameTable {
        // Direct-children time per parent id, for self-time.
        let mut child_ns: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for r in records {
            if let Some(p) = r.parent {
                *child_ns.entry(p).or_insert(0) += r.dur_ns;
            }
        }
        let mut by_name: Vec<(String, Vec<&SpanRecord>)> = Vec::new();
        for r in records {
            match by_name.iter_mut().find(|(n, _)| *n == r.name) {
                Some((_, rs)) => rs.push(r),
                None => by_name.push((r.name.clone(), vec![r])),
            }
        }
        let mut rows: Vec<FlameRow> = by_name
            .into_iter()
            .map(|(name, rs)| {
                let mut durs: Vec<u64> = rs.iter().map(|r| r.dur_ns).collect();
                durs.sort_unstable();
                let total_ns: u64 = durs.iter().sum();
                let self_ns: u64 = rs
                    .iter()
                    .map(|r| {
                        r.dur_ns
                            .saturating_sub(child_ns.get(&r.id).copied().unwrap_or(0))
                    })
                    .sum();
                FlameRow {
                    name,
                    count: rs.len() as u64,
                    total_ns,
                    self_ns,
                    p50_ns: percentile(&durs, 50),
                    p95_ns: percentile(&durs, 95),
                }
            })
            .collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
        FlameTable { rows }
    }

    /// All rows, in display order (descending self time).
    pub fn rows(&self) -> &[FlameRow] {
        &self.rows
    }

    /// The row of one span name.
    pub fn row(&self, name: &str) -> Option<&FlameRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// The top `n` rows by self time, as a new table. Artifact exports
    /// (`BENCH_*.json`) cap row counts so baselines stay small and
    /// diff-able even when a run opens thousands of span names.
    #[must_use]
    pub fn truncated(&self, n: usize) -> FlameTable {
        FlameTable {
            rows: self.rows.iter().take(n).cloned().collect(),
        }
    }

    /// Renders the table as aligned text, one row per span name.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34} {:>8} {:>12} {:>12} {:>11} {:>11}\n",
            "span", "calls", "self", "total", "p50", "p95"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<34} {:>8} {:>12} {:>12} {:>11} {:>11}\n",
                r.name,
                r.count,
                format_ns(r.self_ns),
                format_ns(r.total_ns),
                format_ns(r.p50_ns),
                format_ns(r.p95_ns),
            ));
        }
        out
    }
}

impl ToJson for FlameRow {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("name", self.name.as_str())
            .field("count", self.count)
            .field("total_ns", self.total_ns)
            .field("self_ns", self.self_ns)
            .field("p50_ns", self.p50_ns)
            .field("p95_ns", self.p95_ns)
    }
}

impl ToJson for FlameTable {
    fn to_json(&self) -> Json {
        self.rows.to_json()
    }
}

/// Human-readable nanoseconds (`412 ns`, `3.214 µs`, `1.250 ms`, `2.100 s`).
pub fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            thread: 0,
            name: name.to_string(),
            fields: Vec::new(),
            start_ns,
            dur_ns,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        // a(100) -> b(60) -> c(10); a's self = 40, b's = 50, c's = 10.
        let records = vec![
            rec(1, None, "a", 0, 100),
            rec(2, Some(1), "b", 10, 60),
            rec(3, Some(2), "c", 20, 10),
        ];
        let t = FlameTable::build(&records);
        assert_eq!(t.row("a").unwrap().self_ns, 40);
        assert_eq!(t.row("a").unwrap().total_ns, 100);
        assert_eq!(t.row("b").unwrap().self_ns, 50);
        assert_eq!(t.row("c").unwrap().self_ns, 10);
        // Sorted by descending self time.
        let names: Vec<&str> = t.rows().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn counts_and_percentiles() {
        let records: Vec<SpanRecord> = (0..100)
            .map(|i| rec(i + 1, None, "x", i * 10, i + 1))
            .collect();
        let t = FlameTable::build(&records);
        let row = t.row("x").unwrap();
        assert_eq!(row.count, 100);
        assert_eq!(row.total_ns, 5050);
        assert_eq!(row.p50_ns, 50);
        assert_eq!(row.p95_ns, 95);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 95), 7);
        assert_eq!(percentile(&[1, 2], 50), 1);
        assert_eq!(percentile(&[1, 2], 95), 2);
    }

    #[test]
    fn render_and_json_shape() {
        let records = vec![rec(1, None, "a", 0, 1500)];
        let t = FlameTable::build(&records);
        assert!(t.render().contains("1.500 µs"));
        let j = t.to_json();
        let aov_support::Json::Arr(rows) = &j else {
            panic!("expected array");
        };
        assert_eq!(rows[0].get("name"), Some(&Json::Str("a".into())));
        assert_eq!(rows[0].get("count"), Some(&Json::Int(1)));
    }
}
