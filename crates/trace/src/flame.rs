//! Self-time/total-time aggregation of span records into a flame table.

use crate::SpanRecord;
use aov_support::{Json, ToJson};

/// Aggregate of every span sharing one name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameRow {
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of span durations (includes time spent in child spans; a
    /// name that nests under itself counts each level).
    pub total_ns: u64,
    /// Sum of span durations minus each span's direct children — time
    /// attributable to the span's own code.
    pub self_ns: u64,
    /// Median single-span duration (nearest-rank).
    pub p50_ns: u64,
    /// 95th-percentile single-span duration (nearest-rank).
    pub p95_ns: u64,
    /// Heap allocations charged to spans of this name themselves
    /// (self-bytes semantics, like `self_ns`).
    pub allocs: u64,
    /// Heap bytes charged to spans of this name themselves.
    pub alloc_bytes: u64,
    /// Largest per-span high-water mark of net live bytes.
    pub alloc_peak: u64,
    /// Largest numeric bit-width reported inside any span of this name.
    pub max_bits: u64,
}

/// A flame table: one [`FlameRow`] per span name, sorted by descending
/// self time (ties by name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameTable {
    rows: Vec<FlameRow>,
}

/// Nearest-rank percentile of a sorted sample (`q` clamped to
/// 0..=100). Degenerate samples are explicit rather than falling out
/// of the rank arithmetic: an empty sample reports 0 and a singleton
/// reports its only element for every `q`, so p95 of a span called
/// once is the span's own duration — well-defined, if uninformative.
fn percentile(sorted: &[u64], q: u64) -> u64 {
    match sorted {
        [] => 0,
        [only] => *only,
        _ => {
            let rank = (q.min(100) * sorted.len() as u64)
                .div_ceil(100)
                .clamp(1, sorted.len() as u64) as usize;
            sorted[rank - 1]
        }
    }
}

impl FlameTable {
    /// Aggregates finished spans (as returned by
    /// [`drain`](crate::drain)) into a table.
    pub fn build(records: &[SpanRecord]) -> FlameTable {
        // Direct-children time per parent id, for self-time.
        let mut child_ns: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for r in records {
            if let Some(p) = r.parent {
                *child_ns.entry(p).or_insert(0) += r.dur_ns;
            }
        }
        let mut by_name: Vec<(String, Vec<&SpanRecord>)> = Vec::new();
        for r in records {
            match by_name.iter_mut().find(|(n, _)| *n == r.name) {
                Some((_, rs)) => rs.push(r),
                None => by_name.push((r.name.clone(), vec![r])),
            }
        }
        let mut rows: Vec<FlameRow> = by_name
            .into_iter()
            .map(|(name, rs)| {
                let mut durs: Vec<u64> = rs.iter().map(|r| r.dur_ns).collect();
                durs.sort_unstable();
                let total_ns: u64 = durs.iter().sum();
                let self_ns: u64 = rs
                    .iter()
                    .map(|r| {
                        r.dur_ns
                            .saturating_sub(child_ns.get(&r.id).copied().unwrap_or(0))
                    })
                    .sum();
                FlameRow {
                    name,
                    count: rs.len() as u64,
                    total_ns,
                    self_ns,
                    p50_ns: percentile(&durs, 50),
                    p95_ns: percentile(&durs, 95),
                    allocs: rs.iter().map(|r| r.alloc_allocs).sum(),
                    alloc_bytes: rs.iter().map(|r| r.alloc_bytes).sum(),
                    alloc_peak: rs.iter().map(|r| r.alloc_peak).max().unwrap_or(0),
                    max_bits: rs.iter().map(|r| r.max_bits).max().unwrap_or(0),
                }
            })
            .collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
        FlameTable { rows }
    }

    /// All rows, in display order (descending self time).
    pub fn rows(&self) -> &[FlameRow] {
        &self.rows
    }

    /// The row of one span name.
    pub fn row(&self, name: &str) -> Option<&FlameRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// The top `n` rows by self time, as a new table. Artifact exports
    /// (`BENCH_*.json`) cap row counts so baselines stay small and
    /// diff-able even when a run opens thousands of span names.
    #[must_use]
    pub fn truncated(&self, n: usize) -> FlameTable {
        FlameTable {
            rows: self.rows.iter().take(n).cloned().collect(),
        }
    }

    /// Renders the table as aligned text, one row per span name.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34} {:>8} {:>12} {:>12} {:>11} {:>11}\n",
            "span", "calls", "self", "total", "p50", "p95"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<34} {:>8} {:>12} {:>12} {:>11} {:>11}\n",
                r.name,
                r.count,
                format_ns(r.self_ns),
                format_ns(r.total_ns),
                format_ns(r.p50_ns),
                format_ns(r.p95_ns),
            ));
        }
        out
    }

    /// Renders the memory/numeric companion table (`--profile --mem`):
    /// the same rows, with the heap and bit-width columns instead of
    /// the percentile columns.
    pub fn render_mem(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34} {:>8} {:>10} {:>12} {:>12} {:>9}\n",
            "span", "calls", "allocs", "bytes", "peak", "max_bits"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<34} {:>8} {:>10} {:>12} {:>12} {:>9}\n",
                r.name,
                r.count,
                r.allocs,
                format_bytes(r.alloc_bytes),
                format_bytes(r.alloc_peak),
                r.max_bits,
            ));
        }
        out
    }
}

impl ToJson for FlameRow {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("name", self.name.as_str())
            .field("count", self.count)
            .field("total_ns", self.total_ns)
            .field("self_ns", self.self_ns)
            .field("p50_ns", self.p50_ns)
            .field("p95_ns", self.p95_ns)
            .field("allocs", self.allocs)
            .field("alloc_bytes", self.alloc_bytes)
            .field("alloc_peak", self.alloc_peak)
            .field("max_bits", self.max_bits)
    }
}

impl ToJson for FlameTable {
    fn to_json(&self) -> Json {
        self.rows.to_json()
    }
}

/// Human-readable byte counts (`412 B`, `3.2 KiB`, `1.3 MiB`, `2.1 GiB`).
pub fn format_bytes(b: u64) -> String {
    let b = b as f64;
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} GiB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

/// Human-readable nanoseconds (`412 ns`, `3.214 µs`, `1.250 ms`, `2.100 s`).
pub fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_ns,
            dur_ns,
            ..SpanRecord::default()
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        // a(100) -> b(60) -> c(10); a's self = 40, b's = 50, c's = 10.
        let records = vec![
            rec(1, None, "a", 0, 100),
            rec(2, Some(1), "b", 10, 60),
            rec(3, Some(2), "c", 20, 10),
        ];
        let t = FlameTable::build(&records);
        assert_eq!(t.row("a").unwrap().self_ns, 40);
        assert_eq!(t.row("a").unwrap().total_ns, 100);
        assert_eq!(t.row("b").unwrap().self_ns, 50);
        assert_eq!(t.row("c").unwrap().self_ns, 10);
        // Sorted by descending self time.
        let names: Vec<&str> = t.rows().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn counts_and_percentiles() {
        let records: Vec<SpanRecord> = (0..100)
            .map(|i| rec(i + 1, None, "x", i * 10, i + 1))
            .collect();
        let t = FlameTable::build(&records);
        let row = t.row("x").unwrap();
        assert_eq!(row.count, 100);
        assert_eq!(row.total_ns, 5050);
        assert_eq!(row.p50_ns, 50);
        assert_eq!(row.p95_ns, 95);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 95), 7);
        assert_eq!(percentile(&[1, 2], 50), 1);
        assert_eq!(percentile(&[1, 2], 95), 2);
    }

    #[test]
    fn percentile_well_defined_below_two_samples() {
        // Degenerate samples: every quantile of an empty sample is 0,
        // every quantile of a singleton is the sole element — in
        // particular p95 of a single-call span equals its duration and
        // never reads out of bounds.
        for q in [0, 1, 50, 95, 100, 250] {
            assert_eq!(percentile(&[], q), 0, "q={q}");
            assert_eq!(percentile(&[42], q), 42, "q={q}");
        }
        // Out-of-range q clamps instead of over-ranking.
        assert_eq!(percentile(&[1, 2, 3], 100), 3);
        assert_eq!(percentile(&[1, 2, 3], 7000), 3);
        assert_eq!(percentile(&[1, 2, 3], 0), 1);
        // A single-call span's row has p50 == p95 == its duration.
        let t = FlameTable::build(&[rec(1, None, "once", 0, 1234)]);
        let row = t.row("once").unwrap();
        assert_eq!(row.p50_ns, 1234);
        assert_eq!(row.p95_ns, 1234);
    }

    #[test]
    fn alloc_columns_aggregate_sum_and_max() {
        let mut a = rec(1, None, "m", 0, 10);
        a.alloc_allocs = 3;
        a.alloc_bytes = 1000;
        a.alloc_peak = 800;
        a.max_bits = 64;
        let mut b = rec(2, None, "m", 20, 10);
        b.alloc_allocs = 2;
        b.alloc_bytes = 500;
        b.alloc_peak = 900;
        b.max_bits = 130;
        let t = FlameTable::build(&[a, b]);
        let row = t.row("m").unwrap();
        assert_eq!(row.allocs, 5);
        assert_eq!(row.alloc_bytes, 1500);
        assert_eq!(row.alloc_peak, 900, "peak is a max, not a sum");
        assert_eq!(row.max_bits, 130);
        let mem = t.render_mem();
        assert!(mem.contains("max_bits"), "{mem}");
        assert!(mem.contains("1.5 KiB"), "{mem}");
        let j = t.to_json();
        let aov_support::Json::Arr(rows) = &j else {
            panic!("expected array");
        };
        assert_eq!(rows[0].get("alloc_bytes"), Some(&Json::Int(1500)));
        assert_eq!(rows[0].get("max_bits"), Some(&Json::Int(130)));
    }

    #[test]
    fn render_and_json_shape() {
        let records = vec![rec(1, None, "a", 0, 1500)];
        let t = FlameTable::build(&records);
        assert!(t.render().contains("1.500 µs"));
        let j = t.to_json();
        let aov_support::Json::Arr(rows) = &j else {
            panic!("expected array");
        };
        assert_eq!(rows[0].get("name"), Some(&Json::Str("a".into())));
        assert_eq!(rows[0].get("count"), Some(&Json::Int(1)));
    }
}
