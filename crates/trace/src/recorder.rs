//! The flight recorder: a fixed-capacity, lock-free ring of recent
//! events that is **always on**, even when full span tracing is
//! disabled.
//!
//! Full tracing (the span sink) is opt-in because it allocates and
//! locks; the recorder exists for the opposite regime — a production
//! run that fails wants the last few thousand events (span entries and
//! exits, per-stage counter deltas, budget ticks, chaos firings)
//! without having paid for tracing it did not know it would need. The
//! engine drains the ring into the crash-diagnostic bundle when a stage
//! degrades or fails.
//!
//! # Capacity
//!
//! The ring holds [`DEFAULT_RING_CAPACITY`] slots unless resized before
//! first use: programmatically via [`set_slots`] (the CLI's
//! `--recorder-slots` flag) or through the [`SLOTS_ENV`] environment
//! variable. The capacity is fixed once the ring records its first
//! event — the slot array is allocated exactly once and never moves, so
//! writers stay lock-free — and requests are clamped to a sane range
//! and rounded up to a power of two (the index modulo is a mask). Hot
//! runs whose span/budget churn would scroll crash evidence out of the
//! default window raise it; wraparound tests shrink it.
//!
//! # Ring protocol
//!
//! An array of slots, every field an atomic, so concurrent writers and
//! a draining reader are race-free by construction (no `unsafe`).
//! Writers claim a monotonically increasing sequence number with one
//! `fetch_add` on `HEAD`; slot `seq % CAPACITY` then goes through a
//! seqlock cycle:
//!
//! 1. `seq.swap(0, AcqRel)` marks the slot torn (the RMW's acquire side
//!    keeps the payload stores below from floating above it),
//! 2. payload fields are stored relaxed,
//! 3. `seq.store(claim + 1, Release)` publishes (0 is never a valid
//!    published value, hence the `+ 1`).
//!
//! The reader walks the last `CAPACITY` sequence numbers, reads each
//! slot's `seq` (acquire), payload, then — after an acquire fence —
//! `seq` again; the slot counts only if both reads saw the expected
//! published value. A slot mid-overwrite is simply skipped: losing one
//! event to a torn slot is fine for a flight recorder, corrupting one
//! is not.
//!
//! # Cost
//!
//! One `fetch_add`, one `swap`, eight relaxed stores, one release
//! store, and one `Instant::now` — tens of nanoseconds per event. No
//! allocation: labels are truncated into [`LABEL_BYTES`] inline bytes.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Ring capacity when neither [`set_slots`] nor [`SLOTS_ENV`] asked for
/// a different one.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Environment variable consulted for the ring capacity on first use
/// (overridden by an explicit [`set_slots`] call).
pub const SLOTS_ENV: &str = "AOV_RECORDER_SLOTS";

/// Smallest capacity a request clamps to (enough that a drained bundle
/// still shows the failing stage's neighborhood).
pub const MIN_SLOTS: usize = 64;

/// Largest capacity a request clamps to (1 Mi slots ≈ 64 MiB resident).
pub const MAX_SLOTS: usize = 1 << 20;

/// Bytes of label text kept per event (longer labels are truncated).
pub const LABEL_BYTES: usize = 24;

const LABEL_WORDS: usize = LABEL_BYTES / 8;

/// What happened. Stable `u8` encoding — bundle consumers match on
/// [`EventKind::name`], not the discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A span opened (`a` = span id, or 0 when tracing is disabled).
    SpanEnter = 1,
    /// A span closed (`a` = span id or 0, `b` = duration in ns).
    SpanExit = 2,
    /// A pipeline stage started (`a` = stage ordinal).
    StageEnter = 3,
    /// A pipeline stage finished (`a` = stage ordinal, `b` = micros).
    StageExit = 4,
    /// A counter moved across a stage (`a` = delta, `b` = new total).
    Counter = 5,
    /// A budget checkpoint polled the deadline (`a` = pivots spent,
    /// `b` = nodes spent).
    BudgetTick = 6,
    /// A budget tripped (`a` = configured limit, `b` = spent at trip).
    BudgetTrip = 7,
    /// Chaos injection fired (`a` = visit ordinal, `b` = kind code).
    ChaosFired = 8,
}

impl EventKind {
    /// Stable lower-snake name used in bundles and `aov inspect`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SpanEnter => "span_enter",
            EventKind::SpanExit => "span_exit",
            EventKind::StageEnter => "stage_enter",
            EventKind::StageExit => "stage_exit",
            EventKind::Counter => "counter",
            EventKind::BudgetTick => "budget_tick",
            EventKind::BudgetTrip => "budget_trip",
            EventKind::ChaosFired => "chaos_fired",
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::SpanEnter,
            2 => EventKind::SpanExit,
            3 => EventKind::StageEnter,
            4 => EventKind::StageExit,
            5 => EventKind::Counter,
            6 => EventKind::BudgetTick,
            7 => EventKind::BudgetTrip,
            8 => EventKind::ChaosFired,
            _ => return None,
        })
    }
}

struct Slot {
    /// 0 = torn/empty, otherwise `claim + 1` of the event it holds.
    seq: AtomicU64,
    /// Packed `kind | (label_len << 8) | (thread << 16)`.
    meta: AtomicU64,
    /// Nanoseconds since the trace epoch.
    t_ns: AtomicU64,
    /// Session id of the recording thread (0 = unattributed).
    session: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    label: [AtomicU64; LABEL_WORDS],
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    seq: AtomicU64::new(0),
    meta: AtomicU64::new(0),
    t_ns: AtomicU64::new(0),
    session: AtomicU64::new(0),
    a: AtomicU64::new(0),
    b: AtomicU64::new(0),
    label: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
};

/// Capacity requested by [`set_slots`] before the ring materialized
/// (0 = no request; fall back to [`SLOTS_ENV`], then the default).
static REQUESTED_SLOTS: AtomicUsize = AtomicUsize::new(0);
static RING: OnceLock<Box<[Slot]>> = OnceLock::new();
static HEAD: AtomicU64 = AtomicU64::new(0);
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Clamps a capacity request into `[MIN_SLOTS, MAX_SLOTS]` and rounds
/// up to a power of two so the ring index stays a mask.
fn clamp_slots(n: usize) -> usize {
    n.clamp(MIN_SLOTS, MAX_SLOTS).next_power_of_two()
}

/// The slot array, allocated on first use at the capacity in effect at
/// that moment. Never reallocated: writers hold `&'static` slots.
fn ring() -> &'static [Slot] {
    RING.get_or_init(|| {
        let requested = REQUESTED_SLOTS.load(Ordering::Relaxed);
        let n = if requested > 0 {
            requested
        } else {
            std::env::var(SLOTS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_RING_CAPACITY)
        };
        let mut slots = Vec::with_capacity(clamp_slots(n));
        slots.resize_with(clamp_slots(n), || EMPTY_SLOT);
        slots.into_boxed_slice()
    })
}

/// Requests a ring capacity (clamped to `[MIN_SLOTS, MAX_SLOTS]`,
/// rounded up to a power of two). Returns `true` if the request will
/// take effect — i.e. the ring has not materialized yet — and `false`
/// if the capacity was already fixed by an earlier event. Call it
/// before any instrumented work (the CLI does, straight after flag
/// parsing).
pub fn set_slots(n: usize) -> bool {
    REQUESTED_SLOTS.store(clamp_slots(n), Ordering::Relaxed);
    RING.get().is_none()
}

/// The ring's capacity in slots. Forces the ring to materialize, fixing
/// the capacity.
#[must_use]
pub fn slots() -> usize {
    ring().len()
}

/// One event read back out of the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (gaps mean overwritten or torn slots).
    pub seq: u64,
    /// Nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Recording thread's trace track id.
    pub thread: u64,
    /// Session the recording thread was attributed to (0 = none). The
    /// ring is process-global; a daemon serving concurrent requests
    /// stamps each request's session so crash bundles can filter out a
    /// neighbor's timeline (see [`enter_session`]).
    pub session: u64,
    pub kind: EventKind,
    /// Truncated label (span name, counter name, budget site, …).
    pub label: String,
    pub a: u64,
    pub b: u64,
}

thread_local! {
    /// Session id stamped into events this thread records (0 = none).
    static SESSION: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The session id currently attributed to this thread (0 = none).
#[must_use]
pub fn current_session() -> u64 {
    SESSION.try_with(std::cell::Cell::get).unwrap_or(0)
}

/// Guard restoring the thread's previous session attribution on drop.
pub struct SessionGuard {
    prev: u64,
}

/// Attributes events this thread records to `session` until the guard
/// drops (which restores the previous attribution). Fan-out workers
/// inherit the attribution through [`crate::adopt`], so a request's
/// events stay stamped across its solver threads.
#[must_use]
pub fn enter_session(session: u64) -> SessionGuard {
    let prev = current_session();
    let _ = SESSION.try_with(|s| s.set(session));
    SessionGuard { prev }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        let _ = SESSION.try_with(|s| s.set(self.prev));
    }
}

/// Turns the recorder off (and back on). It ships **on**; tests that
/// need a quiet ring turn it off around unrelated work.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether events are currently being recorded.
#[inline]
#[must_use]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Total events ever claimed (monotonic; the ring holds the last
/// [`slots`] of them).
#[must_use]
pub fn events_recorded() -> u64 {
    HEAD.load(Ordering::Relaxed)
}

/// Records one event. Nanosecond-scale; never allocates, never locks.
#[inline]
pub fn record(kind: EventKind, label: &str, a: u64, b: u64) {
    if !recording() {
        return;
    }
    let t_ns = crate::now_ns();
    let thread = crate::thread_track_id();
    let ring = ring();
    let claim = HEAD.fetch_add(1, Ordering::Relaxed);
    let slot = &ring[(claim as usize) & (ring.len() - 1)];
    // Tear the slot; AcqRel keeps the payload stores from floating up.
    slot.seq.swap(0, Ordering::AcqRel);
    let bytes = label.as_bytes();
    let len = bytes.len().min(LABEL_BYTES);
    for w in 0..LABEL_WORDS {
        let mut word = [0u8; 8];
        let lo = w * 8;
        if lo < len {
            let hi = (lo + 8).min(len);
            word[..hi - lo].copy_from_slice(&bytes[lo..hi]);
        }
        slot.label[w].store(u64::from_le_bytes(word), Ordering::Relaxed);
    }
    slot.meta.store(
        kind as u64 | ((len as u64) << 8) | (thread << 16),
        Ordering::Relaxed,
    );
    slot.t_ns.store(t_ns, Ordering::Relaxed);
    slot.session.store(current_session(), Ordering::Relaxed);
    slot.a.store(a, Ordering::Relaxed);
    slot.b.store(b, Ordering::Relaxed);
    slot.seq.store(claim + 1, Ordering::Release);
}

/// One seqlock-validated slot read: `Some(event)` only if the slot
/// still held `claim`'s published payload for the whole read.
fn read_slot(slot: &Slot, claim: u64) -> Option<Event> {
    let expect = claim + 1;
    if slot.seq.load(Ordering::Acquire) != expect {
        return None;
    }
    let meta = slot.meta.load(Ordering::Relaxed);
    let t_ns = slot.t_ns.load(Ordering::Relaxed);
    let session = slot.session.load(Ordering::Relaxed);
    let a = slot.a.load(Ordering::Relaxed);
    let b = slot.b.load(Ordering::Relaxed);
    let mut label_bytes = [0u8; LABEL_BYTES];
    for w in 0..LABEL_WORDS {
        label_bytes[w * 8..(w + 1) * 8]
            .copy_from_slice(&slot.label[w].load(Ordering::Relaxed).to_le_bytes());
    }
    // Seqlock validation: the payload reads above only count if the
    // slot was not re-torn while we read it.
    fence(Ordering::Acquire);
    if slot.seq.load(Ordering::Relaxed) != expect {
        return None;
    }
    let kind = EventKind::from_code(meta & 0xff)?;
    let len = ((meta >> 8) & 0xff) as usize;
    let label = String::from_utf8_lossy(&label_bytes[..len.min(LABEL_BYTES)]).into_owned();
    Some(Event {
        seq: claim,
        t_ns,
        thread: meta >> 16,
        session,
        kind,
        label,
        a,
        b,
    })
}

/// Snapshots the ring, oldest first, skipping torn or mid-overwrite
/// slots. Non-destructive: the ring keeps recording.
#[must_use]
pub fn snapshot() -> Vec<Event> {
    let ring = ring();
    let head = HEAD.load(Ordering::Acquire);
    let first = head.saturating_sub(ring.len() as u64);
    let mut out = Vec::with_capacity((head - first) as usize);
    for claim in first..head {
        let slot = &ring[(claim as usize) & (ring.len() - 1)];
        if let Some(event) = read_slot(slot, claim) {
            out.push(event);
        }
    }
    out
}

/// What one [`Cursor::poll`] drained: the new events (oldest first)
/// plus an **honest** count of events this cursor can never deliver —
/// overwritten by wraparound before the poll, or torn mid-read.
#[derive(Debug, Default)]
pub struct CursorBatch {
    /// New events since the previous poll, in claim order.
    pub events: Vec<Event>,
    /// Events lost to this cursor since the previous poll.
    pub dropped: u64,
}

/// A persistent reader cursor over the ring: successive [`poll`]s
/// deliver each published event at most once, in order, across any
/// number of wraparounds — the live-tail primitive behind the daemon's
/// `watch` verb.
///
/// [`snapshot`] answers "what are the last `CAPACITY` events?";
/// a cursor answers "what happened since I last looked?". When
/// writers lap a slow reader, the overtaken events are gone — the
/// cursor does not pretend otherwise: they are counted in
/// [`CursorBatch::dropped`], never silently elided.
///
/// One cursor is single-reader state (`&mut self`); independent
/// cursors coexist freely and never disturb writers or each other.
///
/// [`poll`]: Cursor::poll
#[derive(Debug)]
pub struct Cursor {
    /// Next claim to deliver.
    next: u64,
    /// Claim whose slot looked unpublished on the previous poll: seen
    /// twice, it is skipped as dropped instead of stalling the tail
    /// forever (a mid-write slot resolves in nanoseconds; one that
    /// stays unreadable across polls was cleared under us).
    blocked_at: u64,
}

impl Default for Cursor {
    fn default() -> Self {
        Cursor::new()
    }
}

impl Cursor {
    /// A cursor that starts at the present: the first poll returns
    /// only events recorded after this call.
    #[must_use]
    pub fn new() -> Cursor {
        Cursor {
            next: HEAD.load(Ordering::Acquire),
            blocked_at: u64::MAX,
        }
    }

    /// A cursor positioned `lookback` events before the present
    /// (clamped to what the ring can still hold).
    #[must_use]
    pub fn with_lookback(lookback: u64) -> Cursor {
        let head = HEAD.load(Ordering::Acquire);
        Cursor {
            next: head.saturating_sub(lookback.min(slots() as u64)),
            blocked_at: u64::MAX,
        }
    }

    /// The next claim this cursor will deliver.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Drains everything published since the previous poll.
    ///
    /// Events the ring overwrote before this poll reached them are
    /// counted in [`CursorBatch::dropped`]. A slot claimed by a writer
    /// but not yet published stops the drain just before it (the next
    /// poll picks it up), so an in-flight write is neither skipped nor
    /// miscounted.
    pub fn poll(&mut self) -> CursorBatch {
        let ring = ring();
        let head = HEAD.load(Ordering::Acquire);
        let oldest = head.saturating_sub(ring.len() as u64);
        // Writers lapped us before we got here: those events are gone.
        let mut dropped = oldest.saturating_sub(self.next);
        let mut claim = self.next.max(oldest);
        let mut events = Vec::new();
        while claim < head {
            let slot = &ring[(claim as usize) & (ring.len() - 1)];
            if let Some(event) = read_slot(slot, claim) {
                events.push(event);
            } else {
                let seq = slot.seq.load(Ordering::Acquire);
                if seq <= claim && self.blocked_at != claim {
                    // Claimed but not yet published (or cleared): wait
                    // one poll before giving up on it.
                    self.blocked_at = claim;
                    break;
                }
                // Overwritten by a newer claim, torn mid-read, or
                // still unreadable a whole poll later: honestly lost.
                dropped += 1;
            }
            claim += 1;
        }
        self.next = claim;
        CursorBatch { events, dropped }
    }
}

/// Empties the ring (sequence numbering stays monotonic). For tests and
/// for the engine between pipeline runs, so one program's bundle does
/// not carry its predecessor's tail.
pub fn clear() {
    let head = HEAD.load(Ordering::Acquire);
    for slot in ring() {
        slot.seq.store(0, Ordering::Release);
    }
    // Bump HEAD past anything a straggling writer may still publish
    // into the cleared region.
    let _ = HEAD.fetch_max(head, Ordering::AcqRel);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The ring is process-global; serialize tests that assert contents.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let _g = locked();
        clear();
        record(EventKind::SpanEnter, "test.rec.a", 1, 0);
        record(EventKind::SpanExit, "test.rec.a", 1, 250);
        record(EventKind::Counter, "lp.simplex.pivots", 4, 10);
        let events = snapshot();
        let mine: Vec<&Event> = events
            .iter()
            .filter(|e| e.label.starts_with("test.rec") || e.label == "lp.simplex.pivots")
            .collect();
        assert_eq!(mine.len(), 3);
        assert_eq!(mine[0].kind, EventKind::SpanEnter);
        assert_eq!(mine[0].label, "test.rec.a");
        assert_eq!(mine[1].b, 250);
        assert_eq!(mine[2].kind, EventKind::Counter);
        assert_eq!(mine[2].a, 4);
        assert!(mine[0].seq < mine[1].seq && mine[1].seq < mine[2].seq);
    }

    #[test]
    fn long_labels_truncate_not_corrupt() {
        let _g = locked();
        clear();
        let long = "test.recorder.very.long.label.that.exceeds.the.inline.capacity";
        record(EventKind::SpanEnter, long, 0, 0);
        let events = snapshot();
        let e = events
            .iter()
            .find(|e| e.label.starts_with("test.rec"))
            .unwrap();
        assert_eq!(e.label.len(), LABEL_BYTES);
        assert_eq!(e.label, &long[..LABEL_BYTES]);
    }

    #[test]
    fn wraparound_keeps_last_capacity_events() {
        let _g = locked();
        clear();
        let capacity = slots();
        let n = capacity + 100;
        for i in 0..n {
            record(EventKind::BudgetTick, "test.wrap", i as u64, 0);
        }
        let events = snapshot();
        let mine: Vec<&Event> = events.iter().filter(|e| e.label == "test.wrap").collect();
        assert!(mine.len() <= capacity);
        assert!(mine.len() >= capacity - 64, "kept {}", mine.len());
        // The survivors are the most recent ones, in order.
        let last = mine.last().unwrap();
        assert_eq!(last.a, (n - 1) as u64);
        assert!(mine.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn concurrent_writers_never_corrupt() {
        let _g = locked();
        clear();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..5000u64 {
                        record(EventKind::Counter, "test.mt.writer", t, i);
                    }
                });
            }
        });
        let events = snapshot();
        for e in events.iter().filter(|e| e.kind == EventKind::Counter) {
            // Every surviving slot decodes to a value some writer wrote.
            assert_eq!(e.label, "test.mt.writer");
            assert!(e.a < 4 && e.b < 5000, "torn payload: {e:?}");
        }
        assert!(events_recorded() >= 20_000);
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let _g = locked();
        clear();
        set_recording(false);
        record(EventKind::SpanEnter, "test.off", 0, 0);
        set_recording(true);
        assert!(snapshot().iter().all(|e| e.label != "test.off"));
    }

    #[test]
    fn capacity_requests_clamp_to_power_of_two_band() {
        assert_eq!(clamp_slots(0), MIN_SLOTS);
        assert_eq!(clamp_slots(1), MIN_SLOTS);
        assert_eq!(clamp_slots(64), 64);
        assert_eq!(clamp_slots(100), 128);
        assert_eq!(clamp_slots(4096), 4096);
        assert_eq!(clamp_slots(usize::MAX), MAX_SLOTS);
        assert!(clamp_slots(MAX_SLOTS - 1).is_power_of_two());
    }

    #[test]
    fn session_attribution_stamps_nests_and_restores() {
        let _g = locked();
        clear();
        record(EventKind::Counter, "test.sess.none", 0, 0);
        {
            let _outer = enter_session(41);
            record(EventKind::Counter, "test.sess.a", 0, 0);
            {
                let _inner = enter_session(42);
                record(EventKind::Counter, "test.sess.b", 0, 0);
            }
            record(EventKind::Counter, "test.sess.a2", 0, 0);
        }
        record(EventKind::Counter, "test.sess.after", 0, 0);
        let events = snapshot();
        let session_of = |l: &str| events.iter().find(|e| e.label == l).unwrap().session;
        assert_eq!(session_of("test.sess.none"), 0);
        assert_eq!(session_of("test.sess.a"), 41);
        assert_eq!(session_of("test.sess.b"), 42);
        assert_eq!(session_of("test.sess.a2"), 41);
        assert_eq!(session_of("test.sess.after"), 0);
    }

    #[test]
    fn cursor_tails_new_events_exactly_once_in_order() {
        let _g = locked();
        clear();
        let mut cursor = Cursor::new();
        // Nothing yet: an empty, drop-free batch.
        let batch = cursor.poll();
        assert!(batch.events.is_empty());
        assert_eq!(batch.dropped, 0);
        for i in 0..10u64 {
            record(EventKind::Counter, "test.cursor.a", i, 0);
        }
        let batch = cursor.poll();
        assert_eq!(batch.dropped, 0);
        let mine: Vec<&Event> = batch
            .events
            .iter()
            .filter(|e| e.label == "test.cursor.a")
            .collect();
        assert_eq!(mine.len(), 10);
        assert!(mine.windows(2).all(|w| w[0].seq < w[1].seq));
        // Already delivered: a second poll yields nothing.
        assert!(cursor.poll().events.is_empty());
        // New events resume where the tail left off.
        record(EventKind::Counter, "test.cursor.b", 99, 0);
        let batch = cursor.poll();
        assert_eq!(batch.events.len(), 1);
        assert_eq!(batch.events[0].label, "test.cursor.b");
        assert_eq!(batch.dropped, 0);
    }

    #[test]
    fn cursor_counts_wraparound_drops_honestly() {
        let _g = locked();
        clear();
        let capacity = slots() as u64;
        let mut cursor = Cursor::new();
        let n = capacity + 100;
        for i in 0..n {
            record(EventKind::BudgetTick, "test.cursor.wrap", i, 0);
        }
        let batch = cursor.poll();
        // Single-threaded: nothing is torn, so the accounting is
        // exact — every claimed event is either delivered or dropped.
        assert_eq!(batch.events.len() as u64 + batch.dropped, n);
        assert_eq!(batch.dropped, 100);
        // The survivors are the most recent events, in order.
        assert_eq!(batch.events.last().unwrap().a, n - 1);
        assert!(batch.events.windows(2).all(|w| w[0].seq < w[1].seq));
        // The drop was reported once, not re-reported on the next poll.
        let again = cursor.poll();
        assert!(again.events.is_empty());
        assert_eq!(again.dropped, 0);
    }

    #[test]
    fn cursor_survives_concurrent_writers_without_double_delivery() {
        let _g = locked();
        clear();
        let mut cursor = Cursor::new();
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        let mut last_seq: Option<u64> = None;
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 0..30_000u64 {
                    record(EventKind::Counter, "test.cursor.mt", i, 0);
                }
            });
            while !writer.is_finished() {
                let batch = cursor.poll();
                for e in &batch.events {
                    if let Some(prev) = last_seq {
                        assert!(e.seq > prev, "replayed or reordered: {} <= {prev}", e.seq);
                    }
                    last_seq = Some(e.seq);
                }
                delivered += batch.events.len() as u64;
                dropped += batch.dropped;
            }
        });
        let tail = cursor.poll();
        delivered += tail.events.len() as u64;
        dropped += tail.dropped;
        assert_eq!(delivered + dropped, 30_000, "accounting must balance");
    }

    /// Once the ring has materialized, capacity requests report that
    /// they arrived too late. (The ring is process-global, so this test
    /// binary's other tests have long since fixed the capacity; the
    /// dedicated small-ring integration test exercises the
    /// before-first-use path in its own process.)
    #[test]
    fn set_slots_after_first_use_is_rejected() {
        let _g = locked();
        let fixed = slots();
        assert!(fixed.is_power_of_two());
        assert!(!set_slots(fixed * 2));
        assert_eq!(slots(), fixed);
    }
}
