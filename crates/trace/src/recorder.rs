//! The flight recorder: a fixed-capacity, lock-free ring of recent
//! events that is **always on**, even when full span tracing is
//! disabled.
//!
//! Full tracing (the span sink) is opt-in because it allocates and
//! locks; the recorder exists for the opposite regime — a production
//! run that fails wants the last few thousand events (span entries and
//! exits, per-stage counter deltas, budget ticks, chaos firings)
//! without having paid for tracing it did not know it would need. The
//! engine drains the ring into the crash-diagnostic bundle when a stage
//! degrades or fails.
//!
//! # Ring protocol
//!
//! A static array of [`RING_CAPACITY`] slots, every field an atomic, so
//! concurrent writers and a draining reader are race-free by
//! construction (no `unsafe`). Writers claim a monotonically increasing
//! sequence number with one `fetch_add` on `HEAD`; slot `seq % CAPACITY`
//! then goes through a seqlock cycle:
//!
//! 1. `seq.swap(0, AcqRel)` marks the slot torn (the RMW's acquire side
//!    keeps the payload stores below from floating above it),
//! 2. payload fields are stored relaxed,
//! 3. `seq.store(claim + 1, Release)` publishes (0 is never a valid
//!    published value, hence the `+ 1`).
//!
//! The reader walks the last `CAPACITY` sequence numbers, reads each
//! slot's `seq` (acquire), payload, then — after an acquire fence —
//! `seq` again; the slot counts only if both reads saw the expected
//! published value. A slot mid-overwrite is simply skipped: losing one
//! event to a torn slot is fine for a flight recorder, corrupting one
//! is not.
//!
//! # Cost
//!
//! One `fetch_add`, one `swap`, eight relaxed stores, one release
//! store, and one `Instant::now` — tens of nanoseconds per event. No
//! allocation: labels are truncated into [`LABEL_BYTES`] inline bytes.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};

/// Number of slots in the ring. Power of two so the modulo is a mask.
pub const RING_CAPACITY: usize = 4096;

/// Bytes of label text kept per event (longer labels are truncated).
pub const LABEL_BYTES: usize = 24;

const LABEL_WORDS: usize = LABEL_BYTES / 8;

/// What happened. Stable `u8` encoding — bundle consumers match on
/// [`EventKind::name`], not the discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A span opened (`a` = span id, or 0 when tracing is disabled).
    SpanEnter = 1,
    /// A span closed (`a` = span id or 0, `b` = duration in ns).
    SpanExit = 2,
    /// A pipeline stage started (`a` = stage ordinal).
    StageEnter = 3,
    /// A pipeline stage finished (`a` = stage ordinal, `b` = micros).
    StageExit = 4,
    /// A counter moved across a stage (`a` = delta, `b` = new total).
    Counter = 5,
    /// A budget checkpoint polled the deadline (`a` = pivots spent,
    /// `b` = nodes spent).
    BudgetTick = 6,
    /// A budget tripped (`a` = configured limit, `b` = spent at trip).
    BudgetTrip = 7,
    /// Chaos injection fired (`a` = visit ordinal, `b` = kind code).
    ChaosFired = 8,
}

impl EventKind {
    /// Stable lower-snake name used in bundles and `aov inspect`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SpanEnter => "span_enter",
            EventKind::SpanExit => "span_exit",
            EventKind::StageEnter => "stage_enter",
            EventKind::StageExit => "stage_exit",
            EventKind::Counter => "counter",
            EventKind::BudgetTick => "budget_tick",
            EventKind::BudgetTrip => "budget_trip",
            EventKind::ChaosFired => "chaos_fired",
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::SpanEnter,
            2 => EventKind::SpanExit,
            3 => EventKind::StageEnter,
            4 => EventKind::StageExit,
            5 => EventKind::Counter,
            6 => EventKind::BudgetTick,
            7 => EventKind::BudgetTrip,
            8 => EventKind::ChaosFired,
            _ => return None,
        })
    }
}

struct Slot {
    /// 0 = torn/empty, otherwise `claim + 1` of the event it holds.
    seq: AtomicU64,
    /// Packed `kind | (label_len << 8) | (thread << 16)`.
    meta: AtomicU64,
    /// Nanoseconds since the trace epoch.
    t_ns: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    label: [AtomicU64; LABEL_WORDS],
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    seq: AtomicU64::new(0),
    meta: AtomicU64::new(0),
    t_ns: AtomicU64::new(0),
    a: AtomicU64::new(0),
    b: AtomicU64::new(0),
    label: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
};

static RING: [Slot; RING_CAPACITY] = [EMPTY_SLOT; RING_CAPACITY];
static HEAD: AtomicU64 = AtomicU64::new(0);
static RECORDING: AtomicBool = AtomicBool::new(true);

/// One event read back out of the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (gaps mean overwritten or torn slots).
    pub seq: u64,
    /// Nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Recording thread's trace track id.
    pub thread: u64,
    pub kind: EventKind,
    /// Truncated label (span name, counter name, budget site, …).
    pub label: String,
    pub a: u64,
    pub b: u64,
}

/// Turns the recorder off (and back on). It ships **on**; tests that
/// need a quiet ring turn it off around unrelated work.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether events are currently being recorded.
#[inline]
#[must_use]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Total events ever claimed (monotonic; the ring holds the last
/// [`RING_CAPACITY`] of them).
#[must_use]
pub fn events_recorded() -> u64 {
    HEAD.load(Ordering::Relaxed)
}

/// Records one event. Nanosecond-scale; never allocates, never locks.
#[inline]
pub fn record(kind: EventKind, label: &str, a: u64, b: u64) {
    if !recording() {
        return;
    }
    let t_ns = crate::now_ns();
    let thread = crate::thread_track_id();
    let claim = HEAD.fetch_add(1, Ordering::Relaxed);
    let slot = &RING[(claim as usize) & (RING_CAPACITY - 1)];
    // Tear the slot; AcqRel keeps the payload stores from floating up.
    slot.seq.swap(0, Ordering::AcqRel);
    let bytes = label.as_bytes();
    let len = bytes.len().min(LABEL_BYTES);
    for w in 0..LABEL_WORDS {
        let mut word = [0u8; 8];
        let lo = w * 8;
        if lo < len {
            let hi = (lo + 8).min(len);
            word[..hi - lo].copy_from_slice(&bytes[lo..hi]);
        }
        slot.label[w].store(u64::from_le_bytes(word), Ordering::Relaxed);
    }
    slot.meta.store(
        kind as u64 | ((len as u64) << 8) | (thread << 16),
        Ordering::Relaxed,
    );
    slot.t_ns.store(t_ns, Ordering::Relaxed);
    slot.a.store(a, Ordering::Relaxed);
    slot.b.store(b, Ordering::Relaxed);
    slot.seq.store(claim + 1, Ordering::Release);
}

/// Snapshots the ring, oldest first, skipping torn or mid-overwrite
/// slots. Non-destructive: the ring keeps recording.
#[must_use]
pub fn snapshot() -> Vec<Event> {
    let head = HEAD.load(Ordering::Acquire);
    let first = head.saturating_sub(RING_CAPACITY as u64);
    let mut out = Vec::with_capacity((head - first) as usize);
    for claim in first..head {
        let slot = &RING[(claim as usize) & (RING_CAPACITY - 1)];
        let expect = claim + 1;
        if slot.seq.load(Ordering::Acquire) != expect {
            continue;
        }
        let meta = slot.meta.load(Ordering::Relaxed);
        let t_ns = slot.t_ns.load(Ordering::Relaxed);
        let a = slot.a.load(Ordering::Relaxed);
        let b = slot.b.load(Ordering::Relaxed);
        let mut label_bytes = [0u8; LABEL_BYTES];
        for w in 0..LABEL_WORDS {
            label_bytes[w * 8..(w + 1) * 8]
                .copy_from_slice(&slot.label[w].load(Ordering::Relaxed).to_le_bytes());
        }
        // Seqlock validation: the payload reads above only count if the
        // slot was not re-torn while we read it.
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != expect {
            continue;
        }
        let Some(kind) = EventKind::from_code(meta & 0xff) else {
            continue;
        };
        let len = ((meta >> 8) & 0xff) as usize;
        let label = String::from_utf8_lossy(&label_bytes[..len.min(LABEL_BYTES)]).into_owned();
        out.push(Event {
            seq: claim,
            t_ns,
            thread: meta >> 16,
            kind,
            label,
            a,
            b,
        });
    }
    out
}

/// Empties the ring (sequence numbering stays monotonic). For tests and
/// for the engine between pipeline runs, so one program's bundle does
/// not carry its predecessor's tail.
pub fn clear() {
    let head = HEAD.load(Ordering::Acquire);
    for slot in &RING {
        slot.seq.store(0, Ordering::Release);
    }
    // Bump HEAD past anything a straggling writer may still publish
    // into the cleared region.
    let _ = HEAD.fetch_max(head, Ordering::AcqRel);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The ring is process-global; serialize tests that assert contents.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let _g = locked();
        clear();
        record(EventKind::SpanEnter, "test.rec.a", 1, 0);
        record(EventKind::SpanExit, "test.rec.a", 1, 250);
        record(EventKind::Counter, "lp.simplex.pivots", 4, 10);
        let events = snapshot();
        let mine: Vec<&Event> = events
            .iter()
            .filter(|e| e.label.starts_with("test.rec") || e.label == "lp.simplex.pivots")
            .collect();
        assert_eq!(mine.len(), 3);
        assert_eq!(mine[0].kind, EventKind::SpanEnter);
        assert_eq!(mine[0].label, "test.rec.a");
        assert_eq!(mine[1].b, 250);
        assert_eq!(mine[2].kind, EventKind::Counter);
        assert_eq!(mine[2].a, 4);
        assert!(mine[0].seq < mine[1].seq && mine[1].seq < mine[2].seq);
    }

    #[test]
    fn long_labels_truncate_not_corrupt() {
        let _g = locked();
        clear();
        let long = "test.recorder.very.long.label.that.exceeds.the.inline.capacity";
        record(EventKind::SpanEnter, long, 0, 0);
        let events = snapshot();
        let e = events
            .iter()
            .find(|e| e.label.starts_with("test.rec"))
            .unwrap();
        assert_eq!(e.label.len(), LABEL_BYTES);
        assert_eq!(e.label, &long[..LABEL_BYTES]);
    }

    #[test]
    fn wraparound_keeps_last_capacity_events() {
        let _g = locked();
        clear();
        let n = RING_CAPACITY + 100;
        for i in 0..n {
            record(EventKind::BudgetTick, "test.wrap", i as u64, 0);
        }
        let events = snapshot();
        let mine: Vec<&Event> = events.iter().filter(|e| e.label == "test.wrap").collect();
        assert!(mine.len() <= RING_CAPACITY);
        assert!(mine.len() >= RING_CAPACITY - 64, "kept {}", mine.len());
        // The survivors are the most recent ones, in order.
        let last = mine.last().unwrap();
        assert_eq!(last.a, (n - 1) as u64);
        assert!(mine.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn concurrent_writers_never_corrupt() {
        let _g = locked();
        clear();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..5000u64 {
                        record(EventKind::Counter, "test.mt.writer", t, i);
                    }
                });
            }
        });
        let events = snapshot();
        for e in events.iter().filter(|e| e.kind == EventKind::Counter) {
            // Every surviving slot decodes to a value some writer wrote.
            assert_eq!(e.label, "test.mt.writer");
            assert!(e.a < 4 && e.b < 5000, "torn payload: {e:?}");
        }
        assert!(events_recorded() >= 20_000);
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let _g = locked();
        clear();
        set_recording(false);
        record(EventKind::SpanEnter, "test.off", 0, 0);
        set_recording(true);
        assert!(snapshot().iter().all(|e| e.label != "test.off"));
    }
}
