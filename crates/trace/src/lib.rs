//! Hierarchical tracing for the `aov` solver stack.
//!
//! Any code can open a span —
//!
//! ```
//! aov_trace::set_enabled(true);
//! {
//!     let _outer = aov_trace::span!("solve.outer", example = 1);
//!     let _inner = aov_trace::span!("solve.inner");
//! }
//! aov_trace::set_enabled(false);
//! let records = aov_trace::drain();
//! assert_eq!(records.len(), 2);
//! assert_eq!(aov_trace::tree(&records)[0].name, "solve.outer");
//! ```
//!
//! — and get nested, thread-attributed wall-clock timing plus `key=value`
//! fields. Spans are kept on a thread-local stack (so nesting needs no
//! coordination) and finished spans are published to a process-global
//! sink. Three consumers read the sink:
//!
//! * [`chrome`] — Chrome trace-event JSON, loadable in Perfetto or
//!   `chrome://tracing`, one track per worker thread,
//! * [`flame`] — an in-process self-time/total-time flame table with
//!   call counts and p50/p95 duration histograms,
//! * [`metrics`] — a single `Json` report merging span aggregates with
//!   the `aov-support::counters` registry.
//!
//! # Cost when disabled
//!
//! Tracing is off by default. The [`span!`] macro checks one relaxed
//! atomic load before evaluating its name or field expressions, so a
//! disabled span costs a load and a branch — no allocation, no clock
//! read, no lock.
//!
//! # Cross-thread parenting
//!
//! A scoped fan-out captures [`current_context`] before spawning and
//! calls [`adopt`] inside each worker; spans the worker opens then hang
//! off the capturing span, so traces stay hierarchical across the
//! per-orthant solver threads.
//!
//! # Determinism
//!
//! Span ids and per-thread track ids are small sequential integers, and
//! [`drain`] returns records sorted by `(thread, start, id)`. For
//! comparisons that must ignore scheduling noise, [`tree`] rebuilds the
//! hierarchy with no timestamps at all (names, fields and children
//! only), which makes span trees comparable across runs.

pub mod chrome;
pub mod flame;
pub mod metrics;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

/// Monotonic origin for all span timestamps (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn sink() -> &'static Mutex<Vec<SpanRecord>> {
    static SINK: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turns tracing on or off process-wide. Spans already open keep
/// recording (their guard captured the enabled state at entry).
pub fn set_enabled(on: bool) {
    if on {
        epoch(); // pin the time origin before the first span
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently active (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (sequential, process-wide).
    pub id: u64,
    /// Enclosing span, if any — possibly on another thread (see
    /// [`adopt`]).
    pub parent: Option<u64>,
    /// Small sequential id of the recording thread (trace track).
    pub thread: u64,
    /// Span name (aggregation key of the flame table).
    pub name: String,
    /// `key=value` fields attached at entry.
    pub fields: Vec<(&'static str, String)>,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
}

struct ThreadState {
    thread_id: u64,
    /// Open span ids, innermost last.
    stack: Vec<u64>,
    /// Parent inherited from another thread via [`adopt`].
    adopted: Option<u64>,
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState {
        thread_id: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        adopted: None,
    });
}

/// A handle naming the current innermost span, for handing to another
/// thread (capture with [`current_context`], install with [`adopt`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanContext {
    parent: Option<u64>,
}

/// The context under which new spans on this thread would nest.
pub fn current_context() -> SpanContext {
    if !enabled() {
        return SpanContext::default();
    }
    TLS.with(|tls| {
        let tls = tls.borrow();
        SpanContext {
            parent: tls.stack.last().copied().or(tls.adopted),
        }
    })
}

/// Guard restoring the thread's previous adopted parent on drop.
pub struct AdoptGuard {
    prev: Option<u64>,
    installed: bool,
}

/// Installs `ctx` as the parent for spans opened on this thread while
/// the guard lives. Used by scoped fan-outs to keep worker spans nested
/// under the span that spawned them.
pub fn adopt(ctx: SpanContext) -> AdoptGuard {
    if !enabled() {
        return AdoptGuard {
            prev: None,
            installed: false,
        };
    }
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        let prev = tls.adopted;
        tls.adopted = ctx.parent;
        AdoptGuard {
            prev,
            installed: true,
        }
    })
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if self.installed {
            TLS.with(|tls| tls.borrow_mut().adopted = self.prev);
        }
    }
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    thread: u64,
    name: String,
    fields: Vec<(&'static str, String)>,
    start: Instant,
    start_ns: u64,
}

/// RAII guard of one span; records the span on drop. Obtain via
/// [`span!`].
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// The no-op guard handed out while tracing is disabled.
    #[inline]
    pub fn disabled() -> SpanGuard {
        SpanGuard(None)
    }

    /// Opens a span (the enabled arm of [`span!`]). Prefer the macro,
    /// which checks [`enabled`] before evaluating any argument.
    pub fn enter_with(name: String, fields: Vec<(&'static str, String)>) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let (parent, thread) = TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            let parent = tls.stack.last().copied().or(tls.adopted);
            let thread = tls.thread_id;
            tls.stack.push(id);
            (parent, thread)
        });
        let start = Instant::now();
        let start_ns = start.duration_since(epoch()).as_nanos() as u64;
        SpanGuard(Some(ActiveSpan {
            id,
            parent,
            thread,
            name,
            fields,
            start,
            start_ns,
        }))
    }

    /// The id of this span, if it is recording.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|s| s.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.0.take() else { return };
        let dur_ns = span.start.elapsed().as_nanos() as u64;
        TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            // Guards are scope-bound, so this is a plain pop; tolerate
            // out-of-order drops by searching.
            match tls.stack.last() {
                Some(&top) if top == span.id => {
                    tls.stack.pop();
                }
                _ => tls.stack.retain(|&id| id != span.id),
            }
        });
        let record = SpanRecord {
            id: span.id,
            parent: span.parent,
            thread: span.thread,
            name: span.name,
            fields: span.fields,
            start_ns: span.start_ns,
            dur_ns,
        };
        sink().lock().expect("trace sink poisoned").push(record);
    }
}

/// Opens a span, returning its [`SpanGuard`]:
///
/// ```
/// let _s = aov_trace::span!("lp.solve", vars = 12, constraints = 30);
/// ```
///
/// The name may be any expression yielding a `String`-convertible value;
/// field values use their `Display` form. Nothing — not even the name
/// expression — is evaluated while tracing is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter_with(
                ::std::string::String::from($name),
                ::std::vec![$((
                    ::std::stringify!($key),
                    ::std::string::ToString::to_string(&$value),
                )),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Removes and returns every finished span, sorted by
/// `(thread, start, id)` for deterministic downstream processing.
pub fn drain() -> Vec<SpanRecord> {
    let mut records = std::mem::take(&mut *sink().lock().expect("trace sink poisoned"));
    records.sort_by_key(|r| (r.thread, r.start_ns, r.id));
    records
}

/// Discards every finished span.
pub fn clear() {
    sink().lock().expect("trace sink poisoned").clear();
}

/// One node of a timestamp-free span tree (see [`tree`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    pub name: String,
    pub fields: Vec<(&'static str, String)>,
    pub children: Vec<TreeNode>,
}

/// Rebuilds the span hierarchy with timestamps zeroed out: each node
/// keeps only its name, fields and children. Children are ordered by
/// `(name, fields, start)` so trees compare equal across runs even when
/// sibling spans raced on different threads. Roots are spans whose
/// parent is absent from `records`.
pub fn tree(records: &[SpanRecord]) -> Vec<TreeNode> {
    fn build(records: &[SpanRecord], parent: Option<u64>, known: &[u64]) -> Vec<TreeNode> {
        let mut nodes: Vec<(&SpanRecord, TreeNode)> = records
            .iter()
            .filter(|r| match parent {
                Some(p) => r.parent == Some(p),
                None => r.parent.is_none_or(|p| !known.contains(&p)),
            })
            .map(|r| {
                (
                    r,
                    TreeNode {
                        name: r.name.clone(),
                        fields: r.fields.clone(),
                        children: build(records, Some(r.id), known),
                    },
                )
            })
            .collect();
        nodes.sort_by(|(ra, a), (rb, b)| {
            (&a.name, &a.fields, ra.start_ns, ra.id).cmp(&(&b.name, &b.fields, rb.start_ns, rb.id))
        });
        nodes.into_iter().map(|(_, n)| n).collect()
    }
    let known: Vec<u64> = records.iter().map(|r| r.id).collect();
    build(records, None, &known)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // Tracing state is process-global; serialize the tests that toggle it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn with_tracing<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        let out = f();
        set_enabled(false);
        (out, drain())
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        clear();
        {
            let _s = span!("test.disabled");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn nesting_and_fields() {
        let (_, records) = with_tracing(|| {
            let _a = span!("test.outer", k = 7);
            let _b = span!("test.inner");
        });
        assert_eq!(records.len(), 2);
        let roots = tree(&records);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "test.outer");
        assert_eq!(roots[0].fields, vec![("k", "7".to_string())]);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].name, "test.inner");
    }

    #[test]
    fn siblings_close_in_order() {
        let (_, records) = with_tracing(|| {
            {
                let _a = span!("test.first");
            }
            {
                let _b = span!("test.second");
            }
        });
        let roots = tree(&records);
        assert_eq!(roots.len(), 2);
        // Ordered by start time (first opened first).
        assert_eq!(roots[0].name, "test.first");
        assert_eq!(roots[1].name, "test.second");
    }

    #[test]
    fn parent_id_propagates_across_scoped_threads() {
        let (_, records) = with_tracing(|| {
            let root = span!("test.root");
            let ctx = current_context();
            std::thread::scope(|s| {
                for w in 0..2u64 {
                    s.spawn(move || {
                        let _adopt = adopt(ctx);
                        let _w = span!("test.worker", w = w);
                        let _inner = span!("test.worker_inner");
                    });
                }
            });
            drop(root);
        });
        assert_eq!(records.len(), 5);
        let roots = tree(&records);
        assert_eq!(roots.len(), 1, "one root: {roots:?}");
        let root = &roots[0];
        assert_eq!(root.name, "test.root");
        assert_eq!(root.children.len(), 2, "workers adopted the root");
        for (w, child) in root.children.iter().enumerate() {
            assert_eq!(child.name, "test.worker");
            assert_eq!(child.fields, vec![("w", w.to_string())]);
            assert_eq!(child.children.len(), 1);
            assert_eq!(child.children[0].name, "test.worker_inner");
        }
        // Worker spans keep their own thread's track.
        let root_rec = records.iter().find(|r| r.name == "test.root").unwrap();
        for r in records.iter().filter(|r| r.name == "test.worker") {
            assert_ne!(r.thread, root_rec.thread, "worker has its own track");
        }
    }

    #[test]
    fn adopt_restores_previous_parent() {
        let (_, records) = with_tracing(|| {
            let outer = span!("test.a");
            let ctx = current_context();
            drop(outer);
            {
                let _adopt = adopt(ctx);
                let _in_a = span!("test.under_a");
            }
            let _free = span!("test.free");
        });
        let roots = tree(&records);
        let names: Vec<&str> = roots.iter().map(|n| n.name.as_str()).collect();
        // test.under_a nests under the (closed) test.a; test.free is a root.
        assert_eq!(names, vec!["test.a", "test.free"]);
        assert_eq!(roots[0].children[0].name, "test.under_a");
    }

    #[test]
    fn drain_is_sorted_and_clears() {
        let (_, records) = with_tracing(|| {
            let _a = span!("test.z");
            let _b = span!("test.y");
        });
        assert!(records.windows(2).all(
            |w| (w[0].thread, w[0].start_ns, w[0].id) <= (w[1].thread, w[1].start_ns, w[1].id)
        ));
        assert!(drain().is_empty());
    }
}
