//! Hierarchical tracing for the `aov` solver stack.
//!
//! Any code can open a span —
//!
//! ```
//! aov_trace::set_enabled(true);
//! {
//!     let _outer = aov_trace::span!("solve.outer", example = 1);
//!     let _inner = aov_trace::span!("solve.inner");
//! }
//! aov_trace::set_enabled(false);
//! let records = aov_trace::drain();
//! assert_eq!(records.len(), 2);
//! assert_eq!(aov_trace::tree(&records)[0].name, "solve.outer");
//! ```
//!
//! — and get nested, thread-attributed wall-clock timing plus `key=value`
//! fields. Spans are kept on a thread-local stack (so nesting needs no
//! coordination) and finished spans are published to a process-global
//! sink. Three consumers read the sink:
//!
//! * [`chrome`] — Chrome trace-event JSON, loadable in Perfetto or
//!   `chrome://tracing`, one track per worker thread,
//! * [`flame`] — an in-process self-time/total-time flame table with
//!   call counts, p50/p95 duration histograms, and per-span heap
//!   columns fed by `aov_support::alloc`,
//! * [`metrics`] — a single `Json` report merging span aggregates with
//!   the `aov-support::counters` registry.
//!
//! # Memory attribution
//!
//! While full tracing is enabled, every span opens an
//! `aov_support::alloc` scope, so its [`SpanRecord`] carries the
//! allocations, bytes, and peak net bytes charged to the span itself
//! (self-bytes — children's traffic lands on the children, exactly like
//! `self_ns` in the flame table), plus the largest numeric bit-width
//! the solvers reported inside it.
//!
//! # Cost when disabled
//!
//! Full tracing is off by default. A disabled [`span!`] still feeds the
//! always-on [`recorder`] ring (one enter and one exit event, tens of
//! nanoseconds, no allocation) and maintains the thread's span-label
//! stack so budget trips can name the active span — but it evaluates
//! only the name expression, never the fields, and records nothing to
//! the sink. Turning the recorder off too ([`recorder::set_recording`])
//! reduces a disabled span to one atomic load and a branch.
//!
//! # Cross-thread parenting
//!
//! A scoped fan-out captures [`current_context`] before spawning and
//! calls [`adopt`] inside each worker; spans the worker opens then hang
//! off the capturing span, so traces stay hierarchical across the
//! per-orthant solver threads. The context also carries the innermost
//! allocation scope — adopted workers charge their heap traffic to the
//! span that spawned them even when tracing is disabled.
//!
//! # Determinism
//!
//! Span ids and per-thread track ids are small sequential integers, and
//! [`drain`] returns records sorted by `(thread, start, id)`. For
//! comparisons that must ignore scheduling noise, [`tree`] rebuilds the
//! hierarchy with no timestamps at all (names, fields and children
//! only), which makes span trees comparable across runs.

pub mod chrome;
pub mod flame;
pub mod metrics;
pub mod recorder;

use recorder::EventKind;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

/// Monotonic origin for all span timestamps (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (shared by spans and the ring).
pub(crate) fn now_ns() -> u64 {
    Instant::now().duration_since(epoch()).as_nanos() as u64
}

/// The calling thread's trace track id (also stamped on ring events).
pub(crate) fn thread_track_id() -> u64 {
    TLS.try_with(|tls| tls.borrow().thread_id)
        .unwrap_or(0xffff_ffff)
}

fn sink() -> &'static Mutex<Vec<SpanRecord>> {
    static SINK: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turns tracing on or off process-wide. Spans already open keep
/// recording (their guard captured the enabled state at entry).
pub fn set_enabled(on: bool) {
    if on {
        epoch(); // pin the time origin before the first span
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently active (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One finished span.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (sequential, process-wide).
    pub id: u64,
    /// Enclosing span, if any — possibly on another thread (see
    /// [`adopt`]).
    pub parent: Option<u64>,
    /// Small sequential id of the recording thread (trace track).
    pub thread: u64,
    /// Span name (aggregation key of the flame table).
    pub name: String,
    /// `key=value` fields attached at entry.
    pub fields: Vec<(&'static str, String)>,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
    /// Heap allocations charged to this span itself (not children).
    pub alloc_allocs: u64,
    /// Heap bytes charged to this span itself.
    pub alloc_bytes: u64,
    /// High-water mark of net live bytes while the span was innermost,
    /// clamped at zero.
    pub alloc_peak: u64,
    /// Largest numeric bit-width reported inside the span (0 = none).
    pub max_bits: u64,
}

/// A span label truncated to the recorder's inline capacity; kept on
/// the thread's label stack so [`current_span_label`] works without
/// allocation even for always-on lite spans.
#[derive(Clone, Copy)]
struct SmallLabel {
    bytes: [u8; recorder::LABEL_BYTES],
    len: u8,
}

impl SmallLabel {
    fn new(name: &str) -> SmallLabel {
        let src = name.as_bytes();
        let len = src.len().min(recorder::LABEL_BYTES);
        let mut bytes = [0u8; recorder::LABEL_BYTES];
        bytes[..len].copy_from_slice(&src[..len]);
        SmallLabel {
            bytes,
            len: len as u8,
        }
    }

    fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).unwrap_or("")
    }
}

struct ThreadState {
    thread_id: u64,
    /// Open span ids, innermost last (full-tracing spans only).
    stack: Vec<u64>,
    /// Labels of every open span — full *and* lite — innermost last.
    labels: Vec<SmallLabel>,
    /// Parent inherited from another thread via [`adopt`].
    adopted: Option<u64>,
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState {
        thread_id: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        labels: Vec::new(),
        adopted: None,
    });
}

/// The name of the innermost span open on this thread, tracing on or
/// off. Budget trips use this to stamp the active span into the flight
/// recorder and the diagnostic bundle.
#[must_use]
pub fn current_span_label() -> Option<String> {
    TLS.try_with(|tls| tls.borrow().labels.last().map(|l| l.as_str().to_string()))
        .ok()
        .flatten()
}

/// A handle naming the current innermost span and allocation scope, for
/// handing to another thread (capture with [`current_context`], install
/// with [`adopt`]).
#[derive(Debug, Clone, Default)]
pub struct SpanContext {
    parent: Option<u64>,
    alloc: Option<aov_support::alloc::ScopeHandle>,
    /// Flight-recorder session attribution of the capturing thread
    /// (0 = none). Captured even while tracing is disabled, so a
    /// daemon request's session survives fan-outs in untraced runs.
    session: u64,
}

/// The context under which new spans on this thread would nest. The
/// allocation scope is captured even while tracing is disabled, so
/// stage-level memory attribution survives fan-outs in untraced runs.
pub fn current_context() -> SpanContext {
    let alloc = aov_support::alloc::current_handle();
    let session = recorder::current_session();
    if !enabled() {
        return SpanContext {
            parent: None,
            alloc,
            session,
        };
    }
    TLS.with(|tls| {
        let tls = tls.borrow();
        SpanContext {
            parent: tls.stack.last().copied().or(tls.adopted),
            alloc,
            session,
        }
    })
}

/// Guard restoring the thread's previous adopted parent on drop.
pub struct AdoptGuard {
    prev: Option<u64>,
    installed: bool,
    _alloc: Option<aov_support::alloc::AllocScope>,
    _session: recorder::SessionGuard,
}

/// Installs `ctx` as the parent for spans opened on this thread while
/// the guard lives, and re-opens the captured allocation scope here.
/// Used by scoped fan-outs to keep worker spans nested under — and
/// worker heap traffic charged to — the span that spawned them. The
/// capturing thread's recorder session attribution is installed too,
/// so a request's ring events stay stamped across its worker threads.
pub fn adopt(ctx: &SpanContext) -> AdoptGuard {
    let alloc = ctx.alloc.as_ref().map(aov_support::alloc::adopt);
    let session = recorder::enter_session(ctx.session);
    if !enabled() {
        return AdoptGuard {
            prev: None,
            installed: false,
            _alloc: alloc,
            _session: session,
        };
    }
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        let prev = tls.adopted;
        tls.adopted = ctx.parent;
        AdoptGuard {
            prev,
            installed: true,
            _alloc: alloc,
            _session: session,
        }
    })
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        // A fan-out worker is about to finish: drain its batched
        // allocation tallies so the stage-boundary reading on the
        // spawning thread sees the worker's traffic (the allocator's
        // global ledger is flushed per-thread in windows — see
        // `aov_support::alloc`).
        aov_support::alloc::flush_local();
        if self.installed {
            TLS.with(|tls| tls.borrow_mut().adopted = self.prev);
        }
    }
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    thread: u64,
    name: String,
    fields: Vec<(&'static str, String)>,
    start: Instant,
    start_ns: u64,
    alloc: aov_support::alloc::AllocScope,
}

/// A lightweight always-on span: feeds the flight recorder and the
/// label stack, records nothing to the sink.
struct LiteSpan {
    label: SmallLabel,
    start: Instant,
}

enum GuardInner {
    Off,
    Lite(LiteSpan),
    Full(ActiveSpan),
}

/// RAII guard of one span; records the span on drop. Obtain via
/// [`span!`].
pub struct SpanGuard(GuardInner);

impl SpanGuard {
    /// The no-op guard handed out while both tracing and the flight
    /// recorder are off.
    #[inline]
    pub fn disabled() -> SpanGuard {
        SpanGuard(GuardInner::Off)
    }

    /// Opens a recorder-only span (the tracing-disabled arm of
    /// [`span!`]): one ring event on entry and exit, a label-stack
    /// push, no sink record and no allocation.
    pub fn enter_lite(name: &str) -> SpanGuard {
        if !recorder::recording() {
            return SpanGuard::disabled();
        }
        let label = SmallLabel::new(name);
        let _ = TLS.try_with(|tls| tls.borrow_mut().labels.push(label));
        recorder::record(EventKind::SpanEnter, label.as_str(), 0, 0);
        SpanGuard(GuardInner::Lite(LiteSpan {
            label,
            start: Instant::now(),
        }))
    }

    /// Opens a span (the enabled arm of [`span!`]). Prefer the macro,
    /// which checks [`enabled`] before evaluating any argument.
    pub fn enter_with(name: String, fields: Vec<(&'static str, String)>) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let label = SmallLabel::new(&name);
        let (parent, thread) = TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            let parent = tls.stack.last().copied().or(tls.adopted);
            let thread = tls.thread_id;
            tls.stack.push(id);
            tls.labels.push(label);
            (parent, thread)
        });
        recorder::record(EventKind::SpanEnter, label.as_str(), id, 0);
        // The allocation scope opens last so the guard's own
        // bookkeeping above charges the *enclosing* span.
        let alloc = aov_support::alloc::scope();
        let start = Instant::now();
        let start_ns = start.duration_since(epoch()).as_nanos() as u64;
        SpanGuard(GuardInner::Full(ActiveSpan {
            id,
            parent,
            thread,
            name,
            fields,
            start,
            start_ns,
            alloc,
        }))
    }

    /// The id of this span, if it is fully recording.
    pub fn id(&self) -> Option<u64> {
        match &self.0 {
            GuardInner::Full(s) => Some(s.id),
            _ => None,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        match std::mem::replace(&mut self.0, GuardInner::Off) {
            GuardInner::Off => {}
            GuardInner::Lite(span) => {
                let dur_ns = span.start.elapsed().as_nanos() as u64;
                let _ = TLS.try_with(|tls| {
                    tls.borrow_mut().labels.pop();
                });
                recorder::record(EventKind::SpanExit, span.label.as_str(), 0, dur_ns);
            }
            GuardInner::Full(span) => {
                let dur_ns = span.start.elapsed().as_nanos() as u64;
                let alloc_stats = span.alloc.stats();
                // Close the allocation scope before the sink push so
                // the record's own storage charges the enclosing span.
                drop(span.alloc);
                TLS.with(|tls| {
                    let mut tls = tls.borrow_mut();
                    // Guards are scope-bound, so this is a plain pop;
                    // tolerate out-of-order drops by searching.
                    match tls.stack.last() {
                        Some(&top) if top == span.id => {
                            tls.stack.pop();
                        }
                        _ => tls.stack.retain(|&id| id != span.id),
                    }
                    tls.labels.pop();
                });
                recorder::record(EventKind::SpanExit, &span.name, span.id, dur_ns);
                let record = SpanRecord {
                    id: span.id,
                    parent: span.parent,
                    thread: span.thread,
                    name: span.name,
                    fields: span.fields,
                    start_ns: span.start_ns,
                    dur_ns,
                    alloc_allocs: alloc_stats.allocs,
                    alloc_bytes: alloc_stats.bytes,
                    alloc_peak: alloc_stats.peak.max(0) as u64,
                    max_bits: alloc_stats.max_bits,
                };
                // Sink maintenance (the record vector doubling) is
                // telemetry bookkeeping: exempt it from scope
                // attribution so growth reallocations never charge
                // whichever user span happens to enclose this drop.
                let _pause = aov_support::alloc::exempt();
                sink().lock().expect("trace sink poisoned").push(record);
            }
        }
    }
}

/// Opens a span, returning its [`SpanGuard`]:
///
/// ```
/// let _s = aov_trace::span!("lp.solve", vars = 12, constraints = 30);
/// ```
///
/// The name may be any expression yielding a `String`-convertible value;
/// field values use their `Display` form. While tracing is disabled
/// only the name expression is evaluated (for the flight-recorder
/// event); the fields never are.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter_with(
                ::std::string::String::from($name),
                ::std::vec![$((
                    ::std::stringify!($key),
                    ::std::string::ToString::to_string(&$value),
                )),*],
            )
        } else {
            $crate::SpanGuard::enter_lite(::std::convert::AsRef::<str>::as_ref(&$name))
        }
    };
}

/// Opens a span on a *hot* call site — one entered so often that its
/// lite-mode ring events would flood the flight recorder and scroll
/// away the low-rate evidence crash bundles rely on (stage
/// transitions, chaos markers, budget trips): a 4096-slot ring holds
/// well under a second of `polyhedra::dd` churn. While tracing is
/// enabled the guard records a full span exactly like [`span!`]; while
/// disabled it is a free no-op — no ring events, no label push, no
/// timestamps.
#[macro_export]
macro_rules! hot_span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter_with(
                ::std::string::String::from($name),
                ::std::vec![$((
                    ::std::stringify!($key),
                    ::std::string::ToString::to_string(&$value),
                )),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Removes and returns every finished span, sorted by
/// `(thread, start, id)` for deterministic downstream processing.
pub fn drain() -> Vec<SpanRecord> {
    let mut records = std::mem::take(&mut *sink().lock().expect("trace sink poisoned"));
    records.sort_by_key(|r| (r.thread, r.start_ns, r.id));
    records
}

/// Discards every finished span.
pub fn clear() {
    sink().lock().expect("trace sink poisoned").clear();
}

/// One node of a timestamp-free span tree (see [`tree`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    pub name: String,
    pub fields: Vec<(&'static str, String)>,
    pub children: Vec<TreeNode>,
}

/// Rebuilds the span hierarchy with timestamps zeroed out: each node
/// keeps only its name, fields and children. Children are ordered by
/// `(name, fields, start)` so trees compare equal across runs even when
/// sibling spans raced on different threads. Roots are spans whose
/// parent is absent from `records`.
pub fn tree(records: &[SpanRecord]) -> Vec<TreeNode> {
    fn build(records: &[SpanRecord], parent: Option<u64>, known: &[u64]) -> Vec<TreeNode> {
        let mut nodes: Vec<(&SpanRecord, TreeNode)> = records
            .iter()
            .filter(|r| match parent {
                Some(p) => r.parent == Some(p),
                None => r.parent.is_none_or(|p| !known.contains(&p)),
            })
            .map(|r| {
                (
                    r,
                    TreeNode {
                        name: r.name.clone(),
                        fields: r.fields.clone(),
                        children: build(records, Some(r.id), known),
                    },
                )
            })
            .collect();
        nodes.sort_by(|(ra, a), (rb, b)| {
            (&a.name, &a.fields, ra.start_ns, ra.id).cmp(&(&b.name, &b.fields, rb.start_ns, rb.id))
        });
        nodes.into_iter().map(|(_, n)| n).collect()
    }
    let known: Vec<u64> = records.iter().map(|r| r.id).collect();
    build(records, None, &known)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // Tracing state is process-global; serialize the tests that toggle it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn with_tracing<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        let out = f();
        set_enabled(false);
        (out, drain())
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        clear();
        {
            let _s = span!("test.disabled");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn disabled_span_still_feeds_recorder_and_labels() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        recorder::clear();
        {
            let _s = span!("test.lite_span");
            assert_eq!(current_span_label().as_deref(), Some("test.lite_span"));
        }
        assert!(
            current_span_label().is_none()
                || current_span_label().as_deref() != Some("test.lite_span")
        );
        let events = recorder::snapshot();
        let enter = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnter && e.label == "test.lite_span");
        let exit = events
            .iter()
            .find(|e| e.kind == EventKind::SpanExit && e.label == "test.lite_span");
        assert!(enter.is_some(), "lite enter recorded");
        assert!(exit.is_some(), "lite exit recorded");
        assert!(drain().is_empty(), "lite spans never reach the sink");
    }

    #[test]
    fn nesting_and_fields() {
        let (_, records) = with_tracing(|| {
            let _a = span!("test.outer", k = 7);
            let _b = span!("test.inner");
        });
        assert_eq!(records.len(), 2);
        let roots = tree(&records);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "test.outer");
        assert_eq!(roots[0].fields, vec![("k", "7".to_string())]);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].name, "test.inner");
    }

    #[test]
    fn spans_carry_their_own_alloc_traffic() {
        let (_, records) = with_tracing(|| {
            let _a = span!("test.alloc_outer");
            {
                let _b = span!("test.alloc_inner");
                // `black_box` keeps the optimizer from eliding the
                // otherwise-unused allocation.
                let v = std::hint::black_box(vec![0u8; 1_000_000]);
                aov_support::alloc::record_bits(129);
                drop(v);
            }
        });
        let inner = records
            .iter()
            .find(|r| r.name == "test.alloc_inner")
            .unwrap();
        assert!(inner.alloc_bytes >= 1_000_000, "{inner:?}");
        assert!(inner.alloc_peak >= 1_000_000, "{inner:?}");
        assert_eq!(inner.max_bits, 129);
        let outer = records
            .iter()
            .find(|r| r.name == "test.alloc_outer")
            .unwrap();
        assert!(
            outer.alloc_bytes < 1_000_000,
            "inner traffic must not leak to the parent: {outer:?}"
        );
    }

    #[test]
    fn siblings_close_in_order() {
        let (_, records) = with_tracing(|| {
            {
                let _a = span!("test.first");
            }
            {
                let _b = span!("test.second");
            }
        });
        let roots = tree(&records);
        assert_eq!(roots.len(), 2);
        // Ordered by start time (first opened first).
        assert_eq!(roots[0].name, "test.first");
        assert_eq!(roots[1].name, "test.second");
    }

    #[test]
    fn parent_id_propagates_across_scoped_threads() {
        let (_, records) = with_tracing(|| {
            let root = span!("test.root");
            let ctx = current_context();
            let ctx = &ctx;
            std::thread::scope(|s| {
                for w in 0..2u64 {
                    s.spawn(move || {
                        let _adopt = adopt(ctx);
                        let _w = span!("test.worker", w = w);
                        let _inner = span!("test.worker_inner");
                    });
                }
            });
            drop(root);
        });
        assert_eq!(records.len(), 5);
        let roots = tree(&records);
        assert_eq!(roots.len(), 1, "one root: {roots:?}");
        let root = &roots[0];
        assert_eq!(root.name, "test.root");
        assert_eq!(root.children.len(), 2, "workers adopted the root");
        for (w, child) in root.children.iter().enumerate() {
            assert_eq!(child.name, "test.worker");
            assert_eq!(child.fields, vec![("w", w.to_string())]);
            assert_eq!(child.children.len(), 1);
            assert_eq!(child.children[0].name, "test.worker_inner");
        }
        // Worker spans keep their own thread's track.
        let root_rec = records.iter().find(|r| r.name == "test.root").unwrap();
        for r in records.iter().filter(|r| r.name == "test.worker") {
            assert_ne!(r.thread, root_rec.thread, "worker has its own track");
        }
    }

    #[test]
    fn adopted_workers_charge_the_capturing_span() {
        let (_, records) = with_tracing(|| {
            let root = span!("test.alloc_root");
            let ctx = current_context();
            let ctx = &ctx;
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _adopt = adopt(ctx);
                    // No span of its own: traffic lands on the adopted
                    // (root) scope.
                    let v = std::hint::black_box(vec![0u8; 500_000]);
                    drop(v);
                });
            });
            drop(root);
        });
        let root = records
            .iter()
            .find(|r| r.name == "test.alloc_root")
            .unwrap();
        assert!(root.alloc_bytes >= 500_000, "{root:?}");
    }

    #[test]
    fn adopt_restores_previous_parent() {
        let (_, records) = with_tracing(|| {
            let outer = span!("test.a");
            let ctx = current_context();
            drop(outer);
            {
                let _adopt = adopt(&ctx);
                let _in_a = span!("test.under_a");
            }
            let _free = span!("test.free");
        });
        let roots = tree(&records);
        let names: Vec<&str> = roots.iter().map(|n| n.name.as_str()).collect();
        // test.under_a nests under the (closed) test.a; test.free is a root.
        assert_eq!(names, vec!["test.a", "test.free"]);
        assert_eq!(roots[0].children[0].name, "test.under_a");
    }

    #[test]
    fn drain_is_sorted_and_clears() {
        let (_, records) = with_tracing(|| {
            let _a = span!("test.z");
            let _b = span!("test.y");
        });
        assert!(records.windows(2).all(
            |w| (w[0].thread, w[0].start_ns, w[0].id) <= (w[1].thread, w[1].start_ns, w[1].id)
        ));
        assert!(drain().is_empty());
    }
}
