//! Property tests: the exact simplex returns feasible, optimal points.

use aov_linalg::AffineExpr;
use aov_lp::{Cmp, LpOutcome, Model};
use aov_numeric::Rational;
use proptest::prelude::*;

/// A random small LP with nonnegative vars, `<=` rows with nonnegative
/// rhs (always feasible at 0) and a nonnegative objective — bounded.
fn bounded_lp() -> impl Strategy<Value = (Model, Vec<Vec<i64>>, Vec<i64>, Vec<i64>)> {
    (2usize..=4, 1usize..=4).prop_flat_map(|(nv, nc)| {
        (
            proptest::collection::vec(proptest::collection::vec(-5i64..=5, nv), nc),
            proptest::collection::vec(0i64..=20, nc),
            proptest::collection::vec(0i64..=9, nv),
        )
            .prop_map(move |(rows, rhs, obj)| {
                let mut m = Model::new();
                for i in 0..nv {
                    m.add_nonneg_var(format!("x{i}"));
                }
                for (row, b) in rows.iter().zip(&rhs) {
                    // row . x - b <= 0
                    m.constrain(AffineExpr::from_i64(row, -b), Cmp::Le);
                }
                m.minimize(AffineExpr::from_i64(&obj.iter().map(|&v| -v).collect::<Vec<_>>(), 0));
                (m, rows, rhs, obj)
            })
    })
}

fn is_feasible(rows: &[Vec<i64>], rhs: &[i64], x: &[Rational]) -> bool {
    rows.iter().zip(rhs).all(|(row, &b)| {
        let lhs: Rational = row
            .iter()
            .zip(x)
            .map(|(&a, v)| v * &Rational::from(a))
            .sum();
        lhs <= Rational::from(b)
    }) && x.iter().all(|v| !v.is_negative())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_solution_is_feasible_and_beats_random_points(
        (m, rows, rhs, obj) in bounded_lp(),
        samples in proptest::collection::vec(proptest::collection::vec(0i64..=6, 4), 8),
    ) {
        match m.solve_lp() {
            LpOutcome::Optimal(sol) => {
                let x = sol.values.as_slice();
                prop_assert!(is_feasible(&rows, &rhs, x), "returned point infeasible");
                // Objective at solution must beat every feasible sample.
                for s in &samples {
                    let s = &s[..rows[0].len()];
                    let sq: Vec<Rational> = s.iter().map(|&v| Rational::from(v)).collect();
                    if is_feasible(&rows, &rhs, &sq) {
                        let val: Rational = s.iter().zip(&obj)
                            .map(|(&xi, &ci)| Rational::from(-ci * xi)).sum();
                        prop_assert!(sol.objective <= val,
                            "sample {s:?} beats 'optimal' ({} > {val})", sol.objective);
                    }
                }
            }
            LpOutcome::Unbounded => {
                // Verify by truncation: capping Σx at growing bounds must
                // give strictly improving optima.
                let nv = rows[0].len();
                let mut vals = Vec::new();
                for cap in [1_000i64, 10_000] {
                    let mut capped = m.clone();
                    capped.constrain(
                        AffineExpr::from_i64(&vec![1; nv], -cap),
                        Cmp::Le,
                    );
                    match capped.solve_lp() {
                        LpOutcome::Optimal(s) => vals.push(s.objective),
                        other => prop_assert!(false, "capped LP reported {other:?}"),
                    }
                }
                prop_assert!(vals[1] < vals[0],
                    "declared unbounded but capped optima do not improve: {vals:?}");
            }
            other => prop_assert!(false, "LP with feasible origin reported {other:?}"),
        }
    }

    #[test]
    fn ilp_solution_is_integral_and_no_worse_than_integer_samples(
        (m0, rows, rhs, obj) in bounded_lp(),
        samples in proptest::collection::vec(proptest::collection::vec(0i64..=5, 4), 8),
    ) {
        let mut m = m0.clone();
        let ids: Vec<_> = m.var_ids().collect();
        for &id in &ids {
            m.set_integer(id);
        }
        match m.solve_ilp() {
            LpOutcome::Optimal(sol) => {
                let x = sol.values.as_slice();
                prop_assert!(x.iter().all(Rational::is_integer), "non-integral ILP solution");
                prop_assert!(is_feasible(&rows, &rhs, x));
                for s in &samples {
                    let s = &s[..rows[0].len()];
                    let sq: Vec<Rational> = s.iter().map(|&v| Rational::from(v)).collect();
                    if is_feasible(&rows, &rhs, &sq) {
                        let val: Rational = s.iter().zip(&obj)
                            .map(|(&xi, &ci)| Rational::from(-ci * xi)).sum();
                        prop_assert!(sol.objective <= val);
                    }
                }
            }
            LpOutcome::Unbounded => {}
            other => prop_assert!(false, "ILP with feasible origin reported {other:?}"),
        }
    }
}
