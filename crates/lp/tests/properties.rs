//! Property tests: the exact simplex returns feasible, optimal points.

use aov_linalg::AffineExpr;
use aov_lp::{Cmp, LpOutcome, Model};
use aov_numeric::Rational;
use aov_support::{props, Rng};

/// A random small LP with nonnegative vars, `<=` rows with nonnegative
/// rhs (always feasible at 0) and a nonnegative objective — bounded.
fn bounded_lp(g: &mut Rng) -> (Model, Vec<Vec<i64>>, Vec<i64>, Vec<i64>) {
    let nv = g.usize_in(2, 4);
    let nc = g.usize_in(1, 4);
    let rows: Vec<Vec<i64>> = (0..nc).map(|_| g.vec_i64(-5, 5, nv)).collect();
    let rhs = g.vec_i64(0, 20, nc);
    let obj = g.vec_i64(0, 9, nv);
    let mut m = Model::new();
    for i in 0..nv {
        m.add_nonneg_var(format!("x{i}"));
    }
    for (row, b) in rows.iter().zip(&rhs) {
        // row . x - b <= 0
        m.constrain(AffineExpr::from_i64(row, -b), Cmp::Le);
    }
    m.minimize(AffineExpr::from_i64(
        &obj.iter().map(|&v| -v).collect::<Vec<_>>(),
        0,
    ));
    (m, rows, rhs, obj)
}

fn sample_points(g: &mut Rng, hi: i64) -> Vec<Vec<i64>> {
    (0..8).map(|_| g.vec_i64(0, hi, 4)).collect()
}

fn is_feasible(rows: &[Vec<i64>], rhs: &[i64], x: &[Rational]) -> bool {
    rows.iter().zip(rhs).all(|(row, &b)| {
        let lhs: Rational = row
            .iter()
            .zip(x)
            .map(|(&a, v)| v * &Rational::from(a))
            .sum();
        lhs <= Rational::from(b)
    }) && x.iter().all(|v| !v.is_negative())
}

props! {
    #![cases = 64, seed = 0x55EE_D1B5]

    fn lp_solution_is_feasible_and_beats_random_points(g) {
        let (m, rows, rhs, obj) = bounded_lp(g);
        let samples = sample_points(g, 6);
        match m.solve_lp() {
            LpOutcome::Optimal(sol) => {
                let x = sol.values.as_slice();
                assert!(is_feasible(&rows, &rhs, x), "returned point infeasible");
                // Objective at solution must beat every feasible sample.
                for s in &samples {
                    let s = &s[..rows[0].len()];
                    let sq: Vec<Rational> = s.iter().map(|&v| Rational::from(v)).collect();
                    if is_feasible(&rows, &rhs, &sq) {
                        let val: Rational = s.iter().zip(&obj)
                            .map(|(&xi, &ci)| Rational::from(-ci * xi)).sum();
                        assert!(sol.objective <= val,
                            "sample {s:?} beats 'optimal' ({} > {val})", sol.objective);
                    }
                }
            }
            LpOutcome::Unbounded => {
                // Verify by truncation: capping Σx at growing bounds must
                // give strictly improving optima.
                let nv = rows[0].len();
                let mut vals = Vec::new();
                for cap in [1_000i64, 10_000] {
                    let mut capped = m.clone();
                    capped.constrain(
                        AffineExpr::from_i64(&vec![1; nv], -cap),
                        Cmp::Le,
                    );
                    match capped.solve_lp() {
                        LpOutcome::Optimal(s) => vals.push(s.objective),
                        other => panic!("capped LP reported {other:?}"),
                    }
                }
                assert!(vals[1] < vals[0],
                    "declared unbounded but capped optima do not improve: {vals:?}");
            }
            other => panic!("LP with feasible origin reported {other:?}"),
        }
    }

    fn ilp_solution_is_integral_and_no_worse_than_integer_samples(g) {
        let (m0, rows, rhs, obj) = bounded_lp(g);
        let samples = sample_points(g, 5);
        let mut m = m0.clone();
        let ids: Vec<_> = m.var_ids().collect();
        for &id in &ids {
            m.set_integer(id);
        }
        match m.solve_ilp() {
            LpOutcome::Optimal(sol) => {
                let x = sol.values.as_slice();
                assert!(x.iter().all(Rational::is_integer), "non-integral ILP solution");
                assert!(is_feasible(&rows, &rhs, x));
                for s in &samples {
                    let s = &s[..rows[0].len()];
                    let sq: Vec<Rational> = s.iter().map(|&v| Rational::from(v)).collect();
                    if is_feasible(&rows, &rhs, &sq) {
                        let val: Rational = s.iter().zip(&obj)
                            .map(|(&xi, &ci)| Rational::from(-ci * xi)).sum();
                        assert!(sol.objective <= val);
                    }
                }
            }
            LpOutcome::Unbounded => {}
            other => panic!("ILP with feasible origin reported {other:?}"),
        }
    }
}
