//! Concurrency contract of the sharded single-flight memo tier.
//!
//! Runs in its own process (integration-test binary), so enabling the
//! global cache and arming a tiny LRU capacity here cannot perturb the
//! library's unit tests. The tests serialize on a local mutex because
//! the cache itself is process-global.

use aov_fault::Budget;
use aov_lp::{memo, Cmp, Model};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static TIER: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TIER.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A small feasible LP, parameterized so distinct `variant`s have
/// distinct canonical keys while any fixed `variant` is structurally
/// identical across calls regardless of the variable names used.
fn model(variant: i64, names: [&str; 2]) -> Model {
    let mut m = Model::new();
    let x = m.add_var(names[0]);
    let y = m.add_var(names[1]);
    m.set_lower_bound(x, 0.into());
    m.set_lower_bound(y, 0.into());
    m.constrain(
        aov_linalg::AffineExpr::from_i64(&[1, 1], -(variant + 1)),
        Cmp::Ge,
    );
    m.minimize(aov_linalg::AffineExpr::from_i64(&[2, 1], 0));
    m
}

/// N threads × M structurally-identical programs: the solver layer must
/// run **exactly one computation per canonical key**; every other
/// claimant is served the shared outcome. Exercised directly at the
/// claim layer (where the guarantee lives) with an instrumented compute
/// counter, so the assertion is exact rather than statistical.
#[test]
fn hammer_single_flight_computes_each_key_once() {
    let _g = locked();
    memo::clear();
    memo::set_capacity(0);
    const THREADS: usize = 8;
    const KEYS: usize = 5;
    let computes = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let computes = &computes;
            let served = &served;
            s.spawn(move || {
                for k in 0..KEYS {
                    // Rotate the starting key per thread so claims
                    // collide mid-flight, not just back to back.
                    let k = (k + t) % KEYS;
                    let key = format!("test.hammer.single_flight.{k}");
                    let m = model(k as i64, ["x", "y"]);
                    let expected = m.solve_lp();
                    let got = match memo::claim(&key) {
                        memo::Claim::Hit(outcome) => {
                            served.fetch_add(1, Ordering::Relaxed);
                            outcome
                        }
                        memo::Claim::Miss(flight) => {
                            computes.fetch_add(1, Ordering::Relaxed);
                            let outcome = m.solve_lp();
                            flight.complete(&outcome);
                            outcome
                        }
                    };
                    assert_eq!(got, expected, "key {key}: wrong-model hit");
                }
            });
        }
    });
    assert_eq!(
        computes.load(Ordering::Relaxed),
        KEYS as u64,
        "exactly one computation per canonical key"
    );
    assert_eq!(
        served.load(Ordering::Relaxed),
        (THREADS * KEYS - KEYS) as u64,
        "every other claimant is served the shared outcome"
    );
    memo::clear();
}

/// The same hammer through the real solver entry point: N threads solve
/// M alpha-renamed variants concurrently with memoization on; every
/// thread must observe the same outcome per variant as a cold
/// single-threaded solve (a wrong-model hit would diverge).
#[test]
fn hammer_solver_path_is_consistent_under_contention() {
    let _g = locked();
    memo::clear();
    memo::set_capacity(0);
    memo::set_enabled(true);
    const THREADS: usize = 8;
    const VARIANTS: i64 = 4;
    let expected: Vec<_> = (0..VARIANTS)
        .map(|v| model(v, ["x", "y"]).solve_lp())
        .collect();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let expected = &expected;
            s.spawn(move || {
                for v in 0..VARIANTS {
                    // Alternate naming schemes: alpha-renaming must
                    // land both on the same entry.
                    let names = if (t + v as usize).is_multiple_of(2) {
                        ["x", "y"]
                    } else {
                        ["lam_0_0", "d_A_0_1"]
                    };
                    let got = model(v, names)
                        .solve_lp_budgeted(&Budget::unlimited())
                        .expect("unlimited budget never trips");
                    assert_eq!(&got, &expected[v as usize], "variant {v} diverged");
                }
            });
        }
    });
    memo::set_enabled(false);
}

/// Eviction under a tiny LRU bound must degrade to recomputation, never
/// to a wrong-model hit: with capacity far below the working set, every
/// solve still returns the same outcome as an uncached solve.
#[test]
fn tiny_lru_bound_never_returns_a_wrong_model_hit() {
    let _g = locked();
    memo::clear();
    const VARIANTS: i64 = 24;
    // Uncached baselines first: disabling the tier clears it, so the
    // baselines must not interleave with the bounded-cache solves.
    let uncached: Vec<_> = (0..VARIANTS)
        .map(|v| model(v, ["x", "y"]).solve_lp())
        .collect();
    memo::set_enabled(true);
    memo::set_capacity(2); // far below the 24-variant working set
    let before = memo::stats();
    for round in 0..3 {
        for v in 0..VARIANTS {
            let cached = model(v, ["x", "y"]).solve_lp();
            assert_eq!(cached, uncached[v as usize], "round {round}, variant {v}");
        }
    }
    let after = memo::stats();
    assert!(
        after.evictions > before.evictions,
        "a 2-entry bound over 24 variants must evict"
    );
    // The bound holds approximately: at most one resident entry per
    // shard stripe.
    assert!(
        memo::len() <= aov_lp::memo::SHARD_COUNT,
        "resident entries {} exceed the per-shard floor",
        memo::len()
    );
    memo::set_capacity(0);
    memo::set_enabled(false);
}

/// An abandoned flight (failed computation) wakes waiters into
/// recomputing rather than hanging or serving a phantom entry.
#[test]
fn abandoned_flight_wakes_waiters_into_retry() {
    let _g = locked();
    memo::clear();
    memo::set_capacity(0);
    let key = "test.hammer.abandon";
    let m = model(7, ["x", "y"]);
    let expected = m.solve_lp();
    let memo::Claim::Miss(flight) = memo::claim(key) else {
        panic!("first claim must miss");
    };
    let waiter = std::thread::spawn({
        let m = m.clone();
        move || match memo::claim("test.hammer.abandon") {
            // Raced in before the owner's claim resolved either way.
            memo::Claim::Hit(outcome) => outcome,
            memo::Claim::Miss(flight) => {
                let outcome = m.solve_lp();
                flight.complete(&outcome);
                outcome
            }
        }
    });
    // Give the waiter a moment to block on the flight, then fail it.
    std::thread::sleep(std::time::Duration::from_millis(20));
    drop(flight);
    let got = waiter.join().expect("waiter must not hang or panic");
    assert_eq!(got, expected);
    memo::clear();
}
