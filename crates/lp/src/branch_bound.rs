//! Depth-first branch-and-bound over the exact simplex for integer
//! variables.

use crate::model::{Cmp, LpOutcome, Model, Solution};
use aov_fault::{AovError, Budget};
use aov_linalg::AffineExpr;
use aov_numeric::Rational;

/// Hard cap on explored nodes; the paper's problems need a handful.
/// This backstop predates [`Budget`] node limits and still protects
/// legacy unbudgeted callers; it reports [`LpOutcome::LimitReached`]
/// rather than an error.
const NODE_LIMIT: usize = 100_000;

pub(crate) fn solve(model: &Model, budget: &Budget) -> Result<LpOutcome, AovError> {
    let marks = model.integer_marks().to_vec();
    if !marks.iter().any(|&b| b) {
        return model.solve_lp_budgeted(budget);
    }
    let _span = aov_trace::span!("lp.ilp", vars = model.num_vars());
    let mut best: Option<Solution> = None;
    let mut nodes = 0usize;
    let mut limit_hit = false;
    let mut stack = vec![model.clone()];
    let mut root_unbounded = false;
    while let Some(node) = stack.pop() {
        nodes += 1;
        budget.tick_node("lp.ilp")?;
        aov_fault::chaos::tick("lp.ilp.node")?;
        aov_support::static_counter!("lp.bb.nodes")
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if nodes > NODE_LIMIT {
            limit_hit = true;
            break;
        }
        match node.solve_lp_budgeted(budget)? {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // An unbounded relaxation at the root means the ILP is
                // unbounded or infeasible; report unbounded (documented).
                if nodes == 1 {
                    root_unbounded = true;
                    break;
                }
                continue;
            }
            LpOutcome::LimitReached => {
                // Budgeted relaxations report faults as errors, so the
                // relaxation itself never yields this.
                unreachable!("solve_lp_budgeted has no node limit")
            }
            LpOutcome::Optimal(sol) => {
                if let Some(b) = &best {
                    if sol.objective >= b.objective {
                        continue; // bound: cannot improve
                    }
                }
                // Find a fractional integer variable.
                let frac = marks
                    .iter()
                    .enumerate()
                    .find(|(i, &m)| m && !sol.values.as_slice()[*i].is_integer());
                match frac {
                    None => {
                        let better = best.as_ref().is_none_or(|b| sol.objective < b.objective);
                        if better {
                            best = Some(sol);
                        }
                    }
                    Some((i, _)) => {
                        let v = &sol.values.as_slice()[i];
                        let floor = Rational::from(v.floor());
                        let ceil = Rational::from(v.ceil());
                        let n = node.num_vars();
                        // x_i <= floor
                        let mut lo = node.clone();
                        lo.constrain(
                            &AffineExpr::var(n, i) - &AffineExpr::constant(n, floor),
                            Cmp::Le,
                        );
                        // x_i >= ceil
                        let mut hi = node.clone();
                        hi.constrain(
                            &AffineExpr::var(n, i) - &AffineExpr::constant(n, ceil),
                            Cmp::Ge,
                        );
                        stack.push(lo);
                        stack.push(hi);
                    }
                }
            }
        }
    }
    if root_unbounded {
        return Ok(LpOutcome::Unbounded);
    }
    Ok(match best {
        Some(sol) => LpOutcome::Optimal(sol),
        None if limit_hit => LpOutcome::LimitReached,
        None => LpOutcome::Infeasible,
    })
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, LpOutcome, Model};
    use aov_linalg::AffineExpr;
    use aov_numeric::Rational;

    #[test]
    fn knapsack_style_ilp() {
        // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6, x,y >= 0 integer.
        // ILP optimum is 20 at (4, 0): 6*4 = 24 <= 24 and 4 <= 6.
        let mut m = Model::new();
        let x = m.add_nonneg_var("x");
        let y = m.add_nonneg_var("y");
        m.set_integer(x);
        m.set_integer(y);
        m.constrain(AffineExpr::from_i64(&[6, 4], -24), Cmp::Le);
        m.constrain(AffineExpr::from_i64(&[1, 2], -6), Cmp::Le);
        m.minimize(AffineExpr::from_i64(&[-5, -4], 0));
        let sol = m.solve_ilp().optimal().expect("feasible ILP");
        assert_eq!(sol.objective, Rational::from(-20));
        assert_eq!(sol.value(x), &Rational::from(4));
        assert_eq!(sol.value(y), &Rational::from(0));
    }

    #[test]
    fn integrality_gap_detected() {
        // 2x == 1 has an LP solution but no integer one.
        let mut m = Model::new();
        let x = m.add_nonneg_var("x");
        m.set_integer(x);
        m.constrain(AffineExpr::from_i64(&[2], -1), Cmp::Eq);
        assert_eq!(m.solve_ilp(), LpOutcome::Infeasible);
    }

    #[test]
    fn already_integral_relaxation() {
        let mut m = Model::new();
        let x = m.add_nonneg_var("x");
        m.set_integer(x);
        m.constrain(AffineExpr::from_i64(&[1], -3), Cmp::Ge);
        m.minimize(AffineExpr::from_i64(&[1], 0));
        let sol = m.solve_ilp().optimal().unwrap();
        assert_eq!(sol.value(x), &Rational::from(3));
    }

    #[test]
    fn negative_integers_with_free_vars() {
        // min |x| with x integer, x <= -3/2  ->  x = -2.
        let mut m = Model::new();
        let x = m.add_var("x");
        m.set_integer(x);
        m.constrain(
            &AffineExpr::var(1, 0) + &AffineExpr::constant(1, Rational::new(3, 2)),
            Cmp::Le,
        );
        let a = m.add_abs_bound(x, "abs");
        m.minimize(AffineExpr::var(2, a.index()));
        let sol = m.solve_ilp().optimal().unwrap();
        assert_eq!(sol.value(x), &Rational::from(-2));
        assert_eq!(sol.objective, Rational::from(2));
    }

    #[test]
    fn mixed_integer() {
        // x integer, y continuous: min x + y s.t. x + y >= 5/2, x >= y.
        // Continuous optimum x=y=5/4; with x integer, options x=2,y=1/2 (2.5)
        // or x=1,y=3/2 but x>=y fails; so optimum 5/2 at (2,1/2).
        let mut m = Model::new();
        let x = m.add_nonneg_var("x");
        let y = m.add_nonneg_var("y");
        m.set_integer(x);
        m.constrain(
            &AffineExpr::from_i64(&[1, 1], 0) - &AffineExpr::constant(2, Rational::new(5, 2)),
            Cmp::Ge,
        );
        m.constrain(AffineExpr::from_i64(&[1, -1], 0), Cmp::Ge);
        m.minimize(AffineExpr::from_i64(&[1, 1], 0));
        let sol = m.solve_ilp().optimal().unwrap();
        assert_eq!(sol.objective, Rational::new(5, 2));
        assert_eq!(sol.value(x), &Rational::from(2));
        assert_eq!(sol.value(y), &Rational::new(1, 2));
    }

    #[test]
    fn unbounded_root_reported() {
        let mut m = Model::new();
        let x = m.add_var("x");
        m.set_integer(x);
        m.minimize(AffineExpr::from_i64(&[1], 0));
        assert_eq!(m.solve_ilp(), LpOutcome::Unbounded);
    }
}
