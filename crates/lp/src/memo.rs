//! Opt-in memoization of LP solves behind a canonical-form cache.
//!
//! The analyses re-solve structurally identical LPs many times: the
//! sign-pattern enumeration of the AOV problem instantiates the same
//! Farkas system per orthant, and the exact checker probes overlapping
//! candidate sets. The cache key is
//! [`Model::canonical_key`](crate::Model::canonical_key) — a rendering
//! of the model (objective, constraints, bounds and integrality in
//! declaration order) with every variable *alpha-renamed* to its
//! positional index, so models that differ only in variable names
//! (e.g. the per-orthant Farkas systems, whose multiplier names carry
//! the enumeration index of the active dependence set) share an entry.
//! [`set_legacy_keys`] switches back to the historical
//! [`Display`](std::fmt::Display)-text key for A/B hit-rate comparison.
//!
//! The cache is process-global, thread-safe, and disabled by default so
//! that micro-benchmarks and tests measure the real solver unless a
//! caller (the pipeline engine) opts in with [`set_enabled`]. Hits and
//! misses are recorded on the `lp.memo.hits` / `lp.memo.misses` counters.

use crate::model::LpOutcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

static ENABLED: AtomicBool = AtomicBool::new(false);
static LEGACY_KEYS: AtomicBool = AtomicBool::new(false);
static CACHE: Mutex<Option<HashMap<String, LpOutcome>>> = Mutex::new(None);

/// Turns memoization on or off. Turning it off clears the cache so a
/// later re-enable starts cold (deterministic counter deltas).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    if !on {
        clear();
    }
}

/// Whether memoization is currently active.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Selects the cache-key scheme: `true` keys on the model's display
/// text (variable names included, the pre-alpha-renaming behaviour),
/// `false` (the default) on the alpha-renamed
/// [`canonical_key`](crate::Model::canonical_key). Switching clears the
/// cache — the two schemes' keys must never mix.
pub fn set_legacy_keys(on: bool) {
    let was = LEGACY_KEYS.swap(on, Ordering::Relaxed);
    if was != on {
        clear();
    }
}

/// Whether the legacy display-text key scheme is active.
pub fn legacy_keys() -> bool {
    LEGACY_KEYS.load(Ordering::Relaxed)
}

/// The cache only ever holds complete, immutable outcomes, so a lock
/// poisoned by a panicking worker (isolated upstream via
/// `catch_unwind`) is still structurally sound — recover the guard.
fn cache() -> MutexGuard<'static, Option<HashMap<String, LpOutcome>>> {
    CACHE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Drops every cached outcome.
pub fn clear() {
    *cache() = None;
}

/// Number of distinct canonical forms currently cached.
pub fn len() -> usize {
    cache().as_ref().map_or(0, HashMap::len)
}

pub(crate) fn lookup(key: &str) -> Option<LpOutcome> {
    let guard = cache();
    let hit = guard.as_ref().and_then(|m| m.get(key).cloned());
    if hit.is_some() {
        aov_support::static_counter!("lp.memo.hits").fetch_add(1, Ordering::Relaxed);
    } else {
        aov_support::static_counter!("lp.memo.misses").fetch_add(1, Ordering::Relaxed);
    }
    hit
}

pub(crate) fn store(key: String, outcome: &LpOutcome) {
    cache()
        .get_or_insert_with(HashMap::new)
        .insert(key, outcome.clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, Model};
    use aov_linalg::AffineExpr;

    /// The same LP built twice with different variable names.
    fn renamed_models() -> (Model, Model) {
        let build = |names: [&str; 2]| {
            let mut m = Model::new();
            let x = m.add_var(names[0]);
            let y = m.add_var(names[1]);
            m.set_lower_bound(x, 0.into());
            m.set_lower_bound(y, 0.into());
            m.set_integer(y);
            m.constrain(AffineExpr::from_i64(&[1, 1], -2), Cmp::Ge);
            m.minimize(AffineExpr::from_i64(&[2, 1], 0));
            m
        };
        (build(["x", "y"]), build(["lam_0_0", "d_A_0_1"]))
    }

    #[test]
    fn canonical_key_is_name_independent() {
        let (a, b) = renamed_models();
        // The display texts (the legacy keys) differ…
        assert_ne!(a.to_string(), b.to_string());
        // …but the alpha-renamed canonical keys agree.
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn canonical_key_still_separates_different_structure() {
        let (a, _) = renamed_models();
        let mut c = a.clone();
        c.constrain(AffineExpr::from_i64(&[1, 0], -1), Cmp::Ge);
        assert_ne!(a.canonical_key(), c.canonical_key());
        let mut d = a.clone();
        d.set_upper_bound(crate::VarId::from_index(0), 9.into());
        assert_ne!(a.canonical_key(), d.canonical_key());
    }

    /// Cache-sharing across renamed models, exercised through the raw
    /// lookup/store layer (the global enable flag stays untouched so
    /// parallel tests are unaffected).
    #[test]
    fn renamed_models_share_cache_entries() {
        let (a, b) = renamed_models();
        let outcome = a.solve_lp();
        store(a.canonical_key(), &outcome);
        assert_eq!(
            lookup(&b.canonical_key()),
            Some(outcome.clone()),
            "alpha-renamed model must hit"
        );
        // Under the legacy display-text scheme the rename misses.
        store(a.to_string(), &outcome);
        assert_eq!(
            lookup(&b.to_string()),
            None,
            "legacy keys distinguish names"
        );
    }
}
