//! Opt-in memoization of LP solves behind a sharded, single-flight,
//! LRU-bounded canonical-form cache.
//!
//! The analyses re-solve structurally identical LPs many times: the
//! sign-pattern enumeration of the AOV problem instantiates the same
//! Farkas system per orthant, and the exact checker probes overlapping
//! candidate sets. The cache key is
//! [`Model::canonical_key`](crate::Model::canonical_key) — a rendering
//! of the model (objective, constraints, bounds and integrality in
//! declaration order) with every variable *alpha-renamed* to its
//! positional index, so models that differ only in variable names
//! (e.g. the per-orthant Farkas systems, whose multiplier names carry
//! the enumeration index of the active dependence set) share an entry.
//! [`set_legacy_keys`] switches back to the historical
//! [`Display`](std::fmt::Display)-text key for A/B hit-rate comparison.
//!
//! # Concurrency
//!
//! The cache is mutex-striped over [`SHARD_COUNT`] shards (FNV-1a of
//! the key selects the shard), so concurrent solvers — the per-orthant
//! fan-out within one pipeline run, and concurrent requests inside the
//! `aovd` daemon — contend only when they touch the same stripe.
//! Duplicate work is deduplicated by *single-flight claims*: the first
//! thread to [`claim`] a missing key computes the outcome and
//! [`FlightGuard::complete`]s it; threads claiming the same key while
//! the computation is in flight block on a condvar and are served the
//! finished outcome as a hit. A computation that fails (budget trip,
//! injected fault, panic) abandons its flight on guard drop, waking the
//! waiters to retry — an abandoned solve never publishes a poisoned or
//! partial entry, so a wrong-model hit is impossible by construction.
//!
//! # Bounding
//!
//! [`set_capacity`] arms an approximate LRU bound: each shard holds at
//! most `max(1, capacity / SHARD_COUNT)` entries, and inserting past
//! that evicts the least-recently-used *complete* entry (in-flight
//! claims are never evicted). Evictions are counted on
//! `lp.memo.evictions`. Capacity 0 (the default) means unbounded,
//! preserving the historical behaviour bit-for-bit.
//!
//! The cache is process-global, thread-safe, and disabled by default so
//! that micro-benchmarks and tests measure the real solver unless a
//! caller (the pipeline engine, the daemon) opts in with
//! [`set_enabled`]. Hits and misses are recorded on the `lp.memo.hits`
//! / `lp.memo.misses` counters; a single-flight waiter served by the
//! computing thread counts as a hit (the solve was shared), the
//! computing thread itself as a miss.

use crate::model::LpOutcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Number of mutex stripes. A small power of two: enough that the
/// daemon's request workers and one run's orthant fan-out rarely share
/// a stripe, small enough that [`clear`]/[`len`] stay cheap.
pub const SHARD_COUNT: usize = 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static LEGACY_KEYS: AtomicBool = AtomicBool::new(false);
/// Total-entry bound across all shards (0 = unbounded).
static CAPACITY: AtomicUsize = AtomicUsize::new(0);
/// Global LRU clock: bumped on every hit/insert, stamped into entries.
static STAMP: AtomicU64 = AtomicU64::new(0);
/// Ownership tokens for in-flight claims (see [`FlightGuard`] drop).
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(0);

/// One computation in flight: waiters block on the condvar until the
/// claimer publishes an outcome or abandons.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

enum FlightState {
    Pending,
    Ready(LpOutcome),
    Abandoned,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the flight resolves; `None` means abandoned (the
    /// caller should retry its claim).
    fn wait(&self) -> Option<LpOutcome> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*st {
                FlightState::Ready(outcome) => return Some(outcome.clone()),
                FlightState::Abandoned => return None,
                FlightState::Pending => {
                    st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    fn resolve(&self, state: FlightState) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *st = state;
        self.cv.notify_all();
    }
}

enum Entry {
    Ready { outcome: LpOutcome, stamp: u64 },
    InFlight { flight: Arc<Flight>, token: u64 },
}

type Shard = HashMap<String, Entry>;

fn shards() -> &'static [Mutex<Shard>] {
    static SHARDS: OnceLock<Vec<Mutex<Shard>>> = OnceLock::new();
    SHARDS.get_or_init(|| {
        (0..SHARD_COUNT)
            .map(|_| Mutex::new(HashMap::new()))
            .collect()
    })
}

/// FNV-1a stripe selection. The canonical key is long (a rendered
/// model), so the hash mixes plenty even for structurally close models.
fn shard_index(key: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARD_COUNT
}

/// The cache only ever holds complete, immutable outcomes (in-flight
/// entries resolve through their own mutex), so a lock poisoned by a
/// panicking worker (isolated upstream via `catch_unwind`) is still
/// structurally sound — recover the guard.
fn shard(key: &str) -> MutexGuard<'static, Shard> {
    shards()[shard_index(key)]
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn next_stamp() -> u64 {
    STAMP.fetch_add(1, Ordering::Relaxed)
}

fn per_shard_capacity() -> usize {
    match CAPACITY.load(Ordering::Relaxed) {
        0 => usize::MAX,
        cap => (cap / SHARD_COUNT).max(1),
    }
}

/// Evicts least-recently-used *complete* entries until `shard` fits its
/// stripe budget. In-flight entries are never evicted — a waiter must
/// always find the flight it blocks on.
fn enforce_capacity(shard: &mut Shard) {
    let cap = per_shard_capacity();
    while shard.len() > cap {
        let victim = shard
            .iter()
            .filter_map(|(k, e)| match e {
                Entry::Ready { stamp, .. } => Some((*stamp, k.clone())),
                Entry::InFlight { .. } => None,
            })
            .min();
        let Some((_, key)) = victim else { break };
        shard.remove(&key);
        aov_support::static_counter!("lp.memo.evictions").fetch_add(1, Ordering::Relaxed);
    }
}

/// Turns memoization on or off. Turning it off clears the cache so a
/// later re-enable starts cold (deterministic counter deltas).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    if !on {
        clear();
    }
}

/// Whether memoization is currently active.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Selects the cache-key scheme: `true` keys on the model's display
/// text (variable names included, the pre-alpha-renaming behaviour),
/// `false` (the default) on the alpha-renamed
/// [`canonical_key`](crate::Model::canonical_key). Switching clears the
/// cache — the two schemes' keys must never mix.
pub fn set_legacy_keys(on: bool) {
    let was = LEGACY_KEYS.swap(on, Ordering::Relaxed);
    if was != on {
        clear();
    }
}

/// Whether the legacy display-text key scheme is active.
pub fn legacy_keys() -> bool {
    LEGACY_KEYS.load(Ordering::Relaxed)
}

/// Bounds the cache to roughly `capacity` entries across all shards
/// (0 = unbounded, the default). Shrinking evicts immediately.
pub fn set_capacity(capacity: usize) {
    CAPACITY.store(capacity, Ordering::Relaxed);
    if capacity > 0 {
        for stripe in shards() {
            enforce_capacity(&mut stripe.lock().unwrap_or_else(PoisonError::into_inner));
        }
    }
}

/// The configured entry bound (0 = unbounded).
pub fn capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// Drops every cached outcome. Claims still in flight are unaffected
/// (their guards publish into the fresh cache when they complete).
pub fn clear() {
    for stripe in shards() {
        stripe
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

/// Number of distinct canonical forms currently cached (complete and
/// in-flight).
pub fn len() -> usize {
    shards()
        .iter()
        .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
        .sum()
}

/// A point-in-time view of the memo tier, surfaced per-response and in
/// the daemon's stats frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Entries currently resident (complete + in flight).
    pub entries: usize,
    /// Cumulative `lp.memo.hits` (process lifetime).
    pub hits: u64,
    /// Cumulative `lp.memo.misses`.
    pub misses: u64,
    /// Cumulative `lp.memo.evictions`.
    pub evictions: u64,
}

/// Reads the tier counters plus the resident entry count.
#[must_use]
pub fn stats() -> MemoStats {
    MemoStats {
        entries: len(),
        hits: aov_support::static_counter!("lp.memo.hits").load(Ordering::Relaxed),
        misses: aov_support::static_counter!("lp.memo.misses").load(Ordering::Relaxed),
        evictions: aov_support::static_counter!("lp.memo.evictions").load(Ordering::Relaxed),
    }
}

/// The result of [`claim`]: either a finished outcome, or the duty to
/// compute one.
pub enum Claim {
    /// The outcome was cached (or another thread just finished it).
    Hit(LpOutcome),
    /// This thread owns the computation; call
    /// [`FlightGuard::complete`] with the outcome, or drop the guard on
    /// failure to wake waiters into retrying.
    Miss(FlightGuard),
}

/// Ownership of one in-flight computation (see [`Claim::Miss`]).
pub struct FlightGuard {
    key: String,
    token: u64,
    flight: Arc<Flight>,
    completed: bool,
}

impl FlightGuard {
    /// Publishes `outcome` to the cache and wakes every waiter.
    pub fn complete(mut self, outcome: &LpOutcome) {
        self.flight.resolve(FlightState::Ready(outcome.clone()));
        let mut shard = shard(&self.key);
        shard.insert(
            self.key.clone(),
            Entry::Ready {
                outcome: outcome.clone(),
                stamp: next_stamp(),
            },
        );
        enforce_capacity(&mut shard);
        self.completed = true;
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // The computation failed (error return or unwinding panic):
        // abandon the flight so waiters retry, and remove the in-flight
        // entry — but only if it is still *ours* (a retrying waiter may
        // already have installed a successor flight under this key).
        self.flight.resolve(FlightState::Abandoned);
        let mut shard = shard(&self.key);
        let ours = matches!(
            shard.get(&self.key),
            Some(Entry::InFlight { token, .. }) if *token == self.token
        );
        if ours {
            shard.remove(&self.key);
        }
    }
}

/// Claims `key`: a cached outcome comes back as [`Claim::Hit`] (hit
/// counter bumped); a missing key installs an in-flight marker and
/// returns [`Claim::Miss`] (miss counter bumped); a key another thread
/// is currently computing blocks until that flight resolves — served
/// waiters count as hits, abandoned flights retry from the top.
pub fn claim(key: &str) -> Claim {
    loop {
        let flight = {
            let mut shard = shard(key);
            match shard.get_mut(key) {
                Some(Entry::Ready { outcome, stamp }) => {
                    *stamp = next_stamp();
                    let outcome = outcome.clone();
                    aov_support::static_counter!("lp.memo.hits").fetch_add(1, Ordering::Relaxed);
                    return Claim::Hit(outcome);
                }
                Some(Entry::InFlight { flight, .. }) => Arc::clone(flight),
                None => {
                    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
                    let flight = Arc::new(Flight::new());
                    shard.insert(
                        key.to_string(),
                        Entry::InFlight {
                            flight: Arc::clone(&flight),
                            token,
                        },
                    );
                    aov_support::static_counter!("lp.memo.misses").fetch_add(1, Ordering::Relaxed);
                    return Claim::Miss(FlightGuard {
                        key: key.to_string(),
                        token,
                        flight,
                        completed: false,
                    });
                }
            }
        };
        // Wait outside the stripe lock so the computing thread can
        // publish. An abandoned flight loops back and re-claims.
        if let Some(outcome) = flight.wait() {
            aov_support::static_counter!("lp.memo.hits").fetch_add(1, Ordering::Relaxed);
            return Claim::Hit(outcome);
        }
    }
}

/// Non-blocking probe, kept for A/B tests and tooling: bumps the
/// hit/miss counters like [`claim`] but never installs a flight.
pub fn lookup(key: &str) -> Option<LpOutcome> {
    let mut shard = shard(key);
    let hit = match shard.get_mut(key) {
        Some(Entry::Ready { outcome, stamp }) => {
            *stamp = next_stamp();
            Some(outcome.clone())
        }
        _ => None,
    };
    if hit.is_some() {
        aov_support::static_counter!("lp.memo.hits").fetch_add(1, Ordering::Relaxed);
    } else {
        aov_support::static_counter!("lp.memo.misses").fetch_add(1, Ordering::Relaxed);
    }
    hit
}

/// Direct insertion (bypasses single-flight), kept for tests and
/// warm-start tooling.
pub fn store(key: String, outcome: &LpOutcome) {
    let mut stripe = shard(&key);
    stripe.insert(
        key,
        Entry::Ready {
            outcome: outcome.clone(),
            stamp: next_stamp(),
        },
    );
    enforce_capacity(&mut stripe);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, Model};
    use aov_linalg::AffineExpr;

    /// The same LP built twice with different variable names.
    fn renamed_models() -> (Model, Model) {
        let build = |names: [&str; 2]| {
            let mut m = Model::new();
            let x = m.add_var(names[0]);
            let y = m.add_var(names[1]);
            m.set_lower_bound(x, 0.into());
            m.set_lower_bound(y, 0.into());
            m.set_integer(y);
            m.constrain(AffineExpr::from_i64(&[1, 1], -2), Cmp::Ge);
            m.minimize(AffineExpr::from_i64(&[2, 1], 0));
            m
        };
        (build(["x", "y"]), build(["lam_0_0", "d_A_0_1"]))
    }

    #[test]
    fn canonical_key_is_name_independent() {
        let (a, b) = renamed_models();
        // The display texts (the legacy keys) differ…
        assert_ne!(a.to_string(), b.to_string());
        // …but the alpha-renamed canonical keys agree.
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn canonical_key_still_separates_different_structure() {
        let (a, _) = renamed_models();
        let mut c = a.clone();
        c.constrain(AffineExpr::from_i64(&[1, 0], -1), Cmp::Ge);
        assert_ne!(a.canonical_key(), c.canonical_key());
        let mut d = a.clone();
        d.set_upper_bound(crate::VarId::from_index(0), 9.into());
        assert_ne!(a.canonical_key(), d.canonical_key());
    }

    /// Cache-sharing across renamed models, exercised through the raw
    /// lookup/store layer (the global enable flag stays untouched so
    /// parallel tests are unaffected).
    #[test]
    fn renamed_models_share_cache_entries() {
        let (a, b) = renamed_models();
        let outcome = a.solve_lp();
        store(a.canonical_key(), &outcome);
        assert_eq!(
            lookup(&b.canonical_key()),
            Some(outcome.clone()),
            "alpha-renamed model must hit"
        );
        // Under the legacy display-text scheme the rename misses.
        store(a.to_string(), &outcome);
        assert_eq!(
            lookup(&b.to_string()),
            None,
            "legacy keys distinguish names"
        );
    }

    #[test]
    fn claim_single_flights_and_serves_waiters() {
        let (a, _) = renamed_models();
        let outcome = a.solve_lp();
        let key = "test.memo.claim.single_flight";
        let Claim::Miss(guard) = claim(key) else {
            panic!("first claim must miss");
        };
        guard.complete(&outcome);
        match claim(key) {
            Claim::Hit(got) => assert_eq!(got, outcome),
            Claim::Miss(_) => panic!("completed claim must hit"),
        }
    }

    #[test]
    fn abandoned_claim_retries_instead_of_caching_garbage() {
        let (a, _) = renamed_models();
        let outcome = a.solve_lp();
        let key = "test.memo.claim.abandon";
        let Claim::Miss(guard) = claim(key) else {
            panic!("first claim must miss");
        };
        drop(guard); // failed computation: no entry may survive
        let Claim::Miss(second) = claim(key) else {
            panic!("abandoned claim must re-miss, never serve a phantom hit");
        };
        second.complete(&outcome);
        match claim(key) {
            Claim::Hit(got) => assert_eq!(got, outcome),
            Claim::Miss(_) => panic!("retried completion must stick"),
        }
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        for key in ["", "min 0", "min 1*x0+0\n>=0 1*x0+-1"] {
            assert!(shard_index(key) < SHARD_COUNT);
            assert_eq!(shard_index(key), shard_index(key));
        }
    }
}
