//! Opt-in memoization of LP solves behind a canonical-form cache.
//!
//! The analyses re-solve structurally identical LPs many times: the
//! sign-pattern enumeration of the AOV problem instantiates the same
//! Farkas system per orthant, and the exact checker probes overlapping
//! candidate sets. A [`Model`]'s [`Display`](std::fmt::Display) output is
//! a canonical rendering of the model (objective, constraints, bounds and
//! integrality in declaration order), so it doubles as a cache key.
//!
//! The cache is process-global, thread-safe, and disabled by default so
//! that micro-benchmarks and tests measure the real solver unless a
//! caller (the pipeline engine) opts in with [`set_enabled`]. Hits and
//! misses are recorded on the `lp.memo.hits` / `lp.memo.misses` counters.

use crate::model::LpOutcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CACHE: Mutex<Option<HashMap<String, LpOutcome>>> = Mutex::new(None);

/// Turns memoization on or off. Turning it off clears the cache so a
/// later re-enable starts cold (deterministic counter deltas).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    if !on {
        clear();
    }
}

/// Whether memoization is currently active.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drops every cached outcome.
pub fn clear() {
    *CACHE.lock().unwrap() = None;
}

/// Number of distinct canonical forms currently cached.
pub fn len() -> usize {
    CACHE.lock().unwrap().as_ref().map_or(0, HashMap::len)
}

pub(crate) fn lookup(key: &str) -> Option<LpOutcome> {
    let guard = CACHE.lock().unwrap();
    let hit = guard.as_ref().and_then(|m| m.get(key).cloned());
    if hit.is_some() {
        aov_support::static_counter!("lp.memo.hits").fetch_add(1, Ordering::Relaxed);
    } else {
        aov_support::static_counter!("lp.memo.misses").fetch_add(1, Ordering::Relaxed);
    }
    hit
}

pub(crate) fn store(key: String, outcome: &LpOutcome) {
    CACHE
        .lock()
        .unwrap()
        .get_or_insert_with(HashMap::new)
        .insert(key, outcome.clone());
}
