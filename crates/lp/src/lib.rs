//! Exact linear programming for the `aov` workspace.
//!
//! Thies et al. (PLDI 2001, §4.5) reduce all three schedule/storage
//! problems to linear programs and note they "can be efficiently solved
//! with standard techniques". This crate is that standard technique:
//!
//! * [`Model`] — a named-variable LP/ILP model builder,
//! * a two-phase primal simplex over exact rationals with Bland's rule
//!   (no cycling, no rounding),
//! * depth-first branch-and-bound for integer variables (occupancy
//!   vectors are integer vectors),
//! * helpers for the paper's Manhattan-length objective (`|x| = w + z`
//!   with `x = w − z`, §4.5.1).
//!
//! # Examples
//!
//! ```
//! use aov_lp::{Model, Cmp, LpOutcome};
//! use aov_linalg::AffineExpr;
//!
//! let mut m = Model::new();
//! let x = m.add_var("x");
//! let y = m.add_var("y");
//! // x + y >= 2, x - y >= -1, minimize 2x + y
//! m.constrain(AffineExpr::from_i64(&[1, 1], -2), Cmp::Ge);
//! m.constrain(AffineExpr::from_i64(&[1, -1], 1), Cmp::Ge);
//! m.set_lower_bound(x, 0.into());
//! m.set_lower_bound(y, 0.into());
//! m.minimize(AffineExpr::from_i64(&[2, 1], 0));
//! let sol = match m.solve_lp() {
//!     LpOutcome::Optimal(sol) => sol,
//!     other => panic!("unexpected {other:?}"),
//! };
//! assert_eq!(sol.objective, aov_numeric::Rational::new(5, 2));
//! # let _ = (x, y);
//! ```

// Library code must surface failures as values (see `aov-fault`);
// `unwrap`/`expect` are reserved for tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod branch_bound;
pub mod memo;
mod model;
mod simplex;

pub use model::{Cmp, LpOutcome, Model, Solution, VarId};
