//! LP/ILP model builder.

use crate::branch_bound;
use crate::simplex;
use aov_fault::{AovError, Budget};
use aov_linalg::{AffineExpr, QVector, VarSet};
use aov_numeric::Rational;
use std::fmt;

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of this variable in the model's variable space (the
    /// coefficient position in [`AffineExpr`]s passed to
    /// [`Model::constrain`]).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from an index previously obtained via
    /// [`VarId::index`] (or from a parallel variable layout like a
    /// schedule space). The index must refer to an existing variable of
    /// the model it is used with.
    pub fn from_index(index: usize) -> VarId {
        VarId(index)
    }
}

/// Relation of a constraint expression to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr >= 0`
    Ge,
    /// `expr <= 0`
    Le,
    /// `expr == 0`
    Eq,
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Value of each model variable, indexed by [`VarId::index`].
    pub values: QVector,
    /// Objective value at `values`.
    pub objective: Rational,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, v: VarId) -> &Rational {
        &self.values[v.0]
    }
}

/// Outcome of an LP/ILP solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(Solution),
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// No verdict: branch-and-bound hit its node backstop, or a fault
    /// (injected or cancellation) interrupted a legacy infallible call
    /// ([`Model::solve_lp`]/[`Model::solve_ilp`]). The budgeted APIs
    /// report faults as [`AovError`] instead of this variant.
    LimitReached,
}

impl LpOutcome {
    /// The solution, if optimal.
    pub fn optimal(self) -> Option<Solution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// A linear (or mixed-integer) program: minimize `c·x` subject to affine
/// constraints, bounds and optional integrality marks.
///
/// Variables are unbounded (free) by default. Constraint expressions are
/// affine forms over the model variables in creation order; expressions of
/// smaller dimension (built before later variables were added) are padded
/// with zero coefficients at solve time.
///
/// # Examples
///
/// ```
/// use aov_lp::{Model, Cmp};
/// use aov_linalg::AffineExpr;
///
/// let mut m = Model::new();
/// let _x = m.add_var("x");
/// m.set_lower_bound(_x, 1.into());
/// m.minimize(AffineExpr::from_i64(&[3], 0));
/// let sol = m.solve_lp().optimal().unwrap();
/// assert_eq!(sol.objective, 3.into());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Model {
    vars: VarSet,
    lower: Vec<Option<Rational>>,
    upper: Vec<Option<Rational>>,
    integer: Vec<bool>,
    constraints: Vec<(AffineExpr, Cmp)>,
    objective: Option<AffineExpr>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a free continuous variable.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn add_var<S: Into<String>>(&mut self, name: S) -> VarId {
        let idx = self.vars.add(name);
        self.lower.push(None);
        self.upper.push(None);
        self.integer.push(false);
        VarId(idx)
    }

    /// Adds a nonnegative continuous variable.
    pub fn add_nonneg_var<S: Into<String>>(&mut self, name: S) -> VarId {
        let v = self.add_var(name);
        self.set_lower_bound(v, Rational::zero());
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Iterator over all variable handles, in creation order.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.num_vars()).map(VarId)
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        self.vars.name(v.0)
    }

    /// Sets a lower bound.
    pub fn set_lower_bound(&mut self, v: VarId, bound: Rational) {
        self.lower[v.0] = Some(bound);
    }

    /// Sets an upper bound.
    pub fn set_upper_bound(&mut self, v: VarId, bound: Rational) {
        self.upper[v.0] = Some(bound);
    }

    /// Marks a variable as integer for [`Model::solve_ilp`].
    pub fn set_integer(&mut self, v: VarId) {
        self.integer[v.0] = true;
    }

    /// Adds the constraint `expr cmp 0`.
    ///
    /// # Panics
    ///
    /// Panics if `expr` has more coefficients than the model has
    /// variables.
    pub fn constrain(&mut self, expr: AffineExpr, cmp: Cmp) {
        assert!(
            expr.dim() <= self.num_vars(),
            "constraint over {} vars but model has {}",
            expr.dim(),
            self.num_vars()
        );
        self.constraints.push((expr, cmp));
    }

    /// Convenience: `expr >= 0`.
    pub fn require_nonneg(&mut self, expr: AffineExpr) {
        self.constrain(expr, Cmp::Ge);
    }

    /// Sets the objective to minimize.
    ///
    /// # Panics
    ///
    /// Panics if `expr` has more coefficients than the model has
    /// variables.
    pub fn minimize(&mut self, expr: AffineExpr) {
        assert!(
            expr.dim() <= self.num_vars(),
            "objective dimension mismatch"
        );
        self.objective = Some(expr);
    }

    /// Sets the objective to maximize (stored negated).
    pub fn maximize(&mut self, expr: AffineExpr) {
        self.minimize(-&expr);
        // Note: reported objective is the minimized value; callers that
        // maximize should negate `Solution::objective`.
    }

    /// Adds a variable `a` with `a >= x` and `a >= -x`, so that minimizing
    /// `a` yields `|x|`.
    ///
    /// The paper's §4.5.1 uses the equivalent `x = w − z, w,z ≥ 0`
    /// encoding; both give the same optimum for objectives that press the
    /// absolute value down.
    pub fn add_abs_bound<S: Into<String>>(&mut self, x: VarId, name: S) -> VarId {
        let a = self.add_var(name);
        let n = self.num_vars();
        let e1 = &AffineExpr::var(n, a.0) - &AffineExpr::var(n, x.0); // a - x >= 0
        let e2 = &AffineExpr::var(n, a.0) + &AffineExpr::var(n, x.0); // a + x >= 0
        self.constrain(e1, Cmp::Ge);
        self.constrain(e2, Cmp::Ge);
        a
    }

    /// Pads an expression with zero coefficients up to the current
    /// variable count.
    pub(crate) fn pad(&self, e: &AffineExpr) -> AffineExpr {
        if e.dim() == self.num_vars() {
            e.clone()
        } else {
            let map: Vec<usize> = (0..e.dim()).collect();
            e.embed(self.num_vars(), &map)
        }
    }

    pub(crate) fn padded_constraints(&self) -> Vec<(AffineExpr, Cmp)> {
        self.constraints
            .iter()
            .map(|(e, c)| (self.pad(e), *c))
            .collect()
    }

    pub(crate) fn padded_objective(&self) -> AffineExpr {
        match &self.objective {
            Some(e) => self.pad(e),
            None => AffineExpr::zero(self.num_vars()),
        }
    }

    pub(crate) fn bounds(&self) -> (&[Option<Rational>], &[Option<Rational>]) {
        (&self.lower, &self.upper)
    }

    pub(crate) fn integer_marks(&self) -> &[bool] {
        &self.integer
    }

    /// A memoization key (see [`memo`](crate::memo)): the model rendered
    /// with every variable alpha-renamed to its positional index
    /// (`x0`, `x1`, …), so structurally identical models key equal
    /// regardless of variable naming. This is sound because LP outcomes
    /// are positional too ([`Solution::values`] is indexed by
    /// [`VarId::index`], never by name).
    pub fn canonical_key(&self) -> String {
        use std::fmt::Write;
        fn push_expr(out: &mut String, e: &AffineExpr) {
            for (k, c) in e.coeffs().iter().enumerate() {
                if !c.is_zero() {
                    let _ = write!(out, "{c}*x{k}+");
                }
            }
            let _ = write!(out, "{}", e.constant_term());
        }
        let mut out = String::with_capacity(64 * (1 + self.constraints.len()));
        out.push_str("min ");
        push_expr(&mut out, &self.padded_objective());
        for (e, c) in &self.constraints {
            out.push('\n');
            out.push_str(match c {
                Cmp::Ge => ">=0 ",
                Cmp::Le => "<=0 ",
                Cmp::Eq => "==0 ",
            });
            push_expr(&mut out, &self.pad(e));
        }
        for (i, (lo, hi)) in self.lower.iter().zip(&self.upper).enumerate() {
            if lo.is_some() || hi.is_some() || self.integer[i] {
                let _ = write!(out, "\nx{i}");
                if let Some(l) = lo {
                    let _ = write!(out, " >= {l}");
                }
                if let Some(u) = hi {
                    let _ = write!(out, " <= {u}");
                }
                if self.integer[i] {
                    out.push_str(" int");
                }
            }
        }
        out
    }

    /// Solves the continuous relaxation with exact two-phase simplex.
    ///
    /// When [`memo::set_enabled`](crate::memo::set_enabled) is on,
    /// repeated solves of canonically identical models are served from a
    /// process-global cache.
    ///
    /// Legacy infallible entry point: runs with an unlimited
    /// [`Budget`], so the only possible faults are external (chaos
    /// injection, cooperative cancellation); those map to
    /// [`LpOutcome::LimitReached`]. Budget-aware callers use
    /// [`Model::solve_lp_budgeted`].
    pub fn solve_lp(&self) -> LpOutcome {
        self.solve_lp_budgeted(&Budget::unlimited())
            .unwrap_or(LpOutcome::LimitReached)
    }

    /// Solves the continuous relaxation under `budget`, checked at
    /// pivot granularity.
    ///
    /// # Errors
    ///
    /// [`AovError::BudgetExceeded`] when a pivot/deadline limit trips
    /// or the budget is cancelled; injected chaos faults otherwise.
    pub fn solve_lp_budgeted(&self, budget: &Budget) -> Result<LpOutcome, AovError> {
        let _span = aov_trace::span!(
            "lp.solve",
            vars = self.num_vars(),
            constraints = self.num_constraints()
        );
        self.record_coeff_histogram();
        if crate::memo::enabled() {
            let key = {
                let _s = aov_trace::span!("lp.canonicalize");
                if crate::memo::legacy_keys() {
                    self.to_string()
                } else {
                    self.canonical_key()
                }
            };
            let claim = {
                let _s = aov_trace::span!("lp.memo.lookup");
                crate::memo::claim(&key)
            };
            match claim {
                crate::memo::Claim::Hit(cached) => Ok(cached),
                crate::memo::Claim::Miss(flight) => {
                    let outcome = {
                        let _s = aov_trace::span!("lp.simplex");
                        // Faults propagate with `?`, dropping the flight
                        // guard: the claim is abandoned, concurrent
                        // waiters retry, and nothing partial is cached.
                        simplex::solve(self, budget)?
                    };
                    flight.complete(&outcome);
                    Ok(outcome)
                }
            }
        } else {
            let _s = aov_trace::span!("lp.simplex");
            simplex::solve(self, budget)
        }
    }

    /// One pass over the model's input coefficients per solve,
    /// bucketing each by the wider of its numerator/denominator
    /// bit-length. The histogram counters
    /// (`lp.solve.coeff_bits.le_64` … `.gt_256`) say how wide the
    /// *inputs* were; `lp.simplex.coeff_bits_max` (updated per pivot)
    /// says how wide the tableau *grew* — the gap between the two is
    /// the numeric-growth cost of the solve.
    fn record_coeff_histogram(&self) {
        let mut buckets = [0u64; 4];
        let mut widest = 0u64;
        let mut note = |v: &Rational| {
            let bits = v.numer().bits().max(v.denom().bits()) as u64;
            widest = widest.max(bits);
            let idx = match bits {
                0..=64 => 0,
                65..=128 => 1,
                129..=256 => 2,
                _ => 3,
            };
            buckets[idx] += 1;
        };
        for (e, _) in &self.constraints {
            for c in e.coeffs().iter() {
                note(c);
            }
            note(e.constant_term());
        }
        if let Some(obj) = &self.objective {
            for c in obj.coeffs().iter() {
                note(c);
            }
        }
        const NAMES: [&str; 4] = [
            "lp.solve.coeff_bits.le_64",
            "lp.solve.coeff_bits.le_128",
            "lp.solve.coeff_bits.le_256",
            "lp.solve.coeff_bits.gt_256",
        ];
        for (name, &n) in NAMES.iter().zip(&buckets) {
            if n > 0 {
                aov_support::counters::add(name, n);
            }
        }
        aov_support::counters::record_max("lp.solve.coeff_bits_max", widest);
        aov_support::alloc::record_bits(widest);
    }

    /// Solves with integrality on variables marked by
    /// [`Model::set_integer`], via branch-and-bound on the exact simplex.
    ///
    /// Legacy infallible entry point; see [`Model::solve_lp`] for the
    /// fault mapping. Budget-aware callers use
    /// [`Model::solve_ilp_budgeted`].
    pub fn solve_ilp(&self) -> LpOutcome {
        self.solve_ilp_budgeted(&Budget::unlimited())
            .unwrap_or(LpOutcome::LimitReached)
    }

    /// Branch-and-bound under `budget`: nodes charge
    /// [`Budget::tick_node`], every relaxation charges pivots.
    ///
    /// # Errors
    ///
    /// [`AovError::BudgetExceeded`] when a node/pivot/deadline limit
    /// trips or the budget is cancelled; injected chaos faults
    /// otherwise.
    pub fn solve_ilp_budgeted(&self, budget: &Budget) -> Result<LpOutcome, AovError> {
        branch_bound::solve(self, budget)
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "minimize {}",
            self.padded_objective().display(&self.vars)
        )?;
        writeln!(f, "subject to")?;
        for (e, c) in &self.constraints {
            let rel = match c {
                Cmp::Ge => ">=",
                Cmp::Le => "<=",
                Cmp::Eq => "==",
            };
            writeln!(f, "  {} {rel} 0", self.pad(e).display(&self.vars))?;
        }
        for (i, (lo, hi)) in self.lower.iter().zip(&self.upper).enumerate() {
            if lo.is_some() || hi.is_some() || self.integer[i] {
                write!(f, "  {}", self.vars.name(i))?;
                if let Some(l) = lo {
                    write!(f, " >= {l}")?;
                }
                if let Some(u) = hi {
                    write!(f, " <= {u}")?;
                }
                if self.integer[i] {
                    write!(f, " integer")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}
