//! Exact two-phase primal simplex with Bland's rule.
//!
//! The model is standardized (free variables split, lower bounds shifted,
//! slacks/surpluses and artificials added) into `A y = b, y >= 0, b >= 0`,
//! then solved in two phases over exact rationals. Bland's smallest-index
//! pivoting rule guarantees termination without cycling.

use crate::model::{Cmp, LpOutcome, Model, Solution};
use aov_fault::{AovError, Budget, BudgetExceeded};
use aov_linalg::QVector;
use aov_numeric::Rational;

/// How each original model variable maps into standardized columns.
#[derive(Debug, Clone)]
enum VarMap {
    /// `x = lower + y[col]`
    Shifted { col: usize, lower: Rational },
    /// `x = y[pos] - y[neg]`
    Split { pos: usize, neg: usize },
}

pub(crate) struct Standardized {
    /// Rows: coefficients over standardized columns; parallel `rhs`.
    rows: Vec<Vec<Rational>>,
    rhs: Vec<Rational>,
    /// Cost of each standardized column (phase-2 objective).
    costs: Vec<Rational>,
    /// Objective constant (added to the tableau objective at the end).
    obj_constant: Rational,
    maps: Vec<VarMap>,
    num_cols: usize,
}

pub(crate) fn standardize(model: &Model) -> Standardized {
    let n = model.num_vars();
    let (lower, upper) = model.bounds();
    let mut num_cols = 0usize;
    let mut maps = Vec::with_capacity(n);
    for lo in lower.iter().take(n) {
        match lo {
            Some(l) => {
                maps.push(VarMap::Shifted {
                    col: num_cols,
                    lower: l.clone(),
                });
                num_cols += 1;
            }
            None => {
                maps.push(VarMap::Split {
                    pos: num_cols,
                    neg: num_cols + 1,
                });
                num_cols += 2;
            }
        }
    }

    let mut rows: Vec<Vec<Rational>> = Vec::new();
    let mut rhs: Vec<Rational> = Vec::new();
    let mut relations: Vec<Cmp> = Vec::new();

    // Affine constraint `e cmp 0` becomes `coeffs·x cmp -const`.
    let mut push_constraint = |coeffs: &[(usize, Rational)], constant: &Rational, cmp: Cmp| {
        let mut row = vec![Rational::zero(); num_cols];
        let mut b = -constant;
        for (var, c) in coeffs {
            if c.is_zero() {
                continue;
            }
            match &maps[*var] {
                VarMap::Shifted { col, lower } => {
                    row[*col] = &row[*col] + c;
                    b = &b - &(c * lower);
                }
                VarMap::Split { pos, neg } => {
                    row[*pos] = &row[*pos] + c;
                    row[*neg] = &row[*neg] - c;
                }
            }
        }
        rows.push(row);
        rhs.push(b);
        relations.push(cmp);
    };

    for (e, cmp) in model.padded_constraints() {
        let coeffs: Vec<(usize, Rational)> = e
            .coeffs()
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.clone()))
            .collect();
        push_constraint(&coeffs, e.constant_term(), cmp);
    }
    // Upper bounds as `x <= u`.
    for (i, u) in upper.iter().enumerate().take(n) {
        if let Some(u) = u {
            push_constraint(&[(i, Rational::one())], &-u, Cmp::Le);
        }
    }

    // Slack/surplus columns.
    for (r, rel) in relations.iter().enumerate() {
        match rel {
            Cmp::Eq => {}
            Cmp::Le | Cmp::Ge => {
                let sign = if matches!(rel, Cmp::Le) {
                    Rational::one()
                } else {
                    -Rational::one()
                };
                for (rr, row) in rows.iter_mut().enumerate() {
                    row.push(if rr == r {
                        sign.clone()
                    } else {
                        Rational::zero()
                    });
                }
                num_cols += 1;
            }
        }
    }

    // Make all rhs nonnegative.
    for (r, b) in rhs.iter_mut().enumerate() {
        if b.is_negative() {
            *b = -&*b;
            for v in rows[r].iter_mut() {
                *v = -&*v;
            }
        }
    }

    // Phase-2 costs over standardized columns.
    let obj = model.padded_objective();
    let mut costs = vec![Rational::zero(); num_cols];
    let mut obj_constant = obj.constant_term().clone();
    for (i, c) in obj.coeffs().iter().enumerate() {
        if c.is_zero() {
            continue;
        }
        match &maps[i] {
            VarMap::Shifted { col, lower } => {
                costs[*col] = &costs[*col] + c;
                obj_constant = &obj_constant + &(c * lower);
            }
            VarMap::Split { pos, neg } => {
                costs[*pos] = &costs[*pos] + c;
                costs[*neg] = &costs[*neg] - c;
            }
        }
    }

    Standardized {
        rows,
        rhs,
        costs,
        obj_constant,
        maps,
        num_cols,
    }
}

/// Dense simplex tableau. `rows[r]` has `num_cols` coefficients; `rhs[r]`
/// is the current basic value of `basis[r]`. The objective row holds
/// reduced costs and `obj_rhs == -(current objective)`.
struct Tableau {
    rows: Vec<Vec<Rational>>,
    rhs: Vec<Rational>,
    basis: Vec<usize>,
    obj: Vec<Rational>,
    obj_rhs: Rational,
}

/// Per-pivot numeric-growth accumulator: limb totals and the widest
/// coefficient written, gathered locally in the update loops and
/// flushed with two atomic ops per pivot so the hot loops stay free of
/// shared-memory traffic.
#[derive(Default)]
struct GrowthMeter {
    limbs: u64,
    bits: u64,
}

impl GrowthMeter {
    #[inline]
    fn note(&mut self, v: &Rational) {
        self.limbs += (v.numer().limbs() + v.denom().limbs()) as u64;
        self.bits = self.bits.max(v.numer().bits().max(v.denom().bits()) as u64);
    }

    fn flush(self) {
        aov_support::static_counter!("lp.simplex.coeff_limbs_total")
            .fetch_add(self.limbs, std::sync::atomic::Ordering::Relaxed);
        aov_support::counters::record_max("lp.simplex.coeff_bits_max", self.bits);
        // Feed the same width into the span-scoped telemetry so the
        // flame table's max_bits column names the span that grew.
        aov_support::alloc::record_bits(self.bits);
    }
}

impl Tableau {
    fn pivot(&mut self, r: usize, c: usize) {
        let mut growth = GrowthMeter::default();
        let inv = self.rows[r][c].recip();
        for v in self.rows[r].iter_mut() {
            *v = &*v * &inv;
            growth.note(v);
        }
        self.rhs[r] = &self.rhs[r] * &inv;
        let pivot_row = self.rows[r].clone();
        let pivot_rhs = self.rhs[r].clone();
        for rr in 0..self.rows.len() {
            if rr == r || self.rows[rr][c].is_zero() {
                continue;
            }
            let f = self.rows[rr][c].clone();
            for (v, p) in self.rows[rr].iter_mut().zip(&pivot_row) {
                *v = &*v - &(&f * p);
                growth.note(v);
            }
            self.rhs[rr] = &self.rhs[rr] - &(&f * &pivot_rhs);
            growth.note(&self.rhs[rr]);
        }
        if !self.obj[c].is_zero() {
            let f = self.obj[c].clone();
            for (v, p) in self.obj.iter_mut().zip(&pivot_row) {
                *v = &*v - &(&f * p);
                growth.note(v);
            }
            self.obj_rhs = &self.obj_rhs - &(&f * &pivot_rhs);
        }
        self.basis[r] = c;
        growth.flush();
    }

    /// Runs simplex iterations with Bland's rule on the columns in
    /// `0..active_cols`. Returns `false` when unbounded.
    fn run(&mut self, active_cols: usize, budget: &Budget) -> Result<bool, BudgetExceeded> {
        loop {
            // Bland: entering column = smallest index with negative
            // reduced cost.
            let Some(c) = (0..active_cols).find(|&j| self.obj[j].is_negative()) else {
                return Ok(true); // optimal
            };
            // Ratio test; Bland tie-break on smallest basis variable.
            let mut best: Option<(Rational, usize)> = None;
            for r in 0..self.rows.len() {
                if self.rows[r][c].is_positive() {
                    let ratio = &self.rhs[r] / &self.rows[r][c];
                    let better = match &best {
                        None => true,
                        Some((bratio, brow)) => {
                            ratio < *bratio
                                || (ratio == *bratio && self.basis[r] < self.basis[*brow])
                        }
                    };
                    if better {
                        best = Some((ratio, r));
                    }
                }
            }
            match best {
                None => return Ok(false), // unbounded
                Some((ratio, r)) => {
                    budget.tick_pivot("lp.simplex")?;
                    aov_support::static_counter!("lp.simplex.pivots")
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if ratio.is_zero() {
                        aov_support::static_counter!("lp.simplex.degenerate_pivots")
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    self.pivot(r, c);
                }
            }
        }
    }

    /// Re-derives the objective row for costs `c` given the current basis
    /// (price-out).
    fn install_objective(&mut self, costs: &[Rational], constant: &Rational) {
        let n = self.obj.len();
        self.obj = costs.to_vec();
        self.obj.resize(n, Rational::zero());
        self.obj_rhs = -constant;
        for r in 0..self.rows.len() {
            let b = self.basis[r];
            if !self.obj[b].is_zero() {
                let f = self.obj[b].clone();
                for (v, p) in self.obj.iter_mut().zip(&self.rows[r]) {
                    *v = &*v - &(&f * p);
                }
                self.obj_rhs = &self.obj_rhs - &(&f * &self.rhs[r]);
            }
        }
    }
}

pub(crate) fn solve(model: &Model, budget: &Budget) -> Result<LpOutcome, AovError> {
    aov_fault::chaos::tick("lp.simplex")?;
    let std = standardize(model);
    Ok(match solve_standardized(&std, budget)? {
        StdOutcome::Optimal(y, objective) => {
            let values = destandardize(&std, &y);
            LpOutcome::Optimal(Solution { values, objective })
        }
        StdOutcome::Infeasible => LpOutcome::Infeasible,
        StdOutcome::Unbounded => LpOutcome::Unbounded,
    })
}

enum StdOutcome {
    Optimal(Vec<Rational>, Rational),
    Infeasible,
    Unbounded,
}

fn destandardize(std: &Standardized, y: &[Rational]) -> QVector {
    std.maps
        .iter()
        .map(|m| match m {
            VarMap::Shifted { col, lower } => lower + &y[*col],
            VarMap::Split { pos, neg } => &y[*pos] - &y[*neg],
        })
        .collect()
}

fn solve_standardized(std: &Standardized, budget: &Budget) -> Result<StdOutcome, BudgetExceeded> {
    let m = std.rows.len();
    let n = std.num_cols;
    // Add one artificial per row.
    let total = n + m;
    let mut rows = Vec::with_capacity(m);
    for (r, row) in std.rows.iter().enumerate() {
        let mut full = row.clone();
        full.resize(total, Rational::zero());
        full[n + r] = Rational::one();
        rows.push(full);
    }
    let mut t = Tableau {
        rows,
        rhs: std.rhs.clone(),
        basis: (n..n + m).collect(),
        obj: vec![Rational::zero(); total],
        obj_rhs: Rational::zero(),
    };
    // Phase 1: minimize sum of artificials.
    let mut phase1 = vec![Rational::zero(); total];
    for c in phase1.iter_mut().skip(n) {
        *c = Rational::one();
    }
    t.install_objective(&phase1, &Rational::zero());
    let bounded = t.run(total, budget)?;
    debug_assert!(bounded, "phase 1 is always bounded below by 0");
    // Optimal phase-1 objective is -obj_rhs.
    if !t.obj_rhs.is_zero() {
        return Ok(StdOutcome::Infeasible);
    }
    // Drive remaining artificials out of the basis.
    let mut r = 0;
    while r < t.rows.len() {
        if t.basis[r] >= n {
            if let Some(c) = (0..n).find(|&c| !t.rows[r][c].is_zero()) {
                t.pivot(r, c);
            } else {
                // Redundant row: drop it.
                t.rows.remove(r);
                t.rhs.remove(r);
                t.basis.remove(r);
                continue;
            }
        }
        r += 1;
    }
    // Phase 2 on original costs; artificial columns are excluded from
    // pricing by passing `active_cols = n`.
    t.install_objective(&std.costs, &std.obj_constant);
    if !t.run(n, budget)? {
        return Ok(StdOutcome::Unbounded);
    }
    let mut y = vec![Rational::zero(); n];
    for (r, &b) in t.basis.iter().enumerate() {
        if b < n {
            y[b] = t.rhs[r].clone();
        }
    }
    let objective = -&t.obj_rhs;
    Ok(StdOutcome::Optimal(y, objective))
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, LpOutcome, Model};
    use aov_linalg::AffineExpr;
    use aov_numeric::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn simple_minimization() {
        // min 2x + y s.t. x + y >= 2, x - y >= -1, x,y >= 0 -> (1/2, 3/2), obj 5/2?
        // Check: vertices of feasible region: (2,0): obj 4; (1/2,3/2): obj 5/2; unbounded dir increases obj.
        let mut m = Model::new();
        let _x = m.add_nonneg_var("x");
        let _y = m.add_nonneg_var("y");
        m.constrain(AffineExpr::from_i64(&[1, 1], -2), Cmp::Ge);
        m.constrain(AffineExpr::from_i64(&[1, -1], 1), Cmp::Ge);
        m.minimize(AffineExpr::from_i64(&[2, 1], 0));
        let sol = m.solve_lp().optimal().expect("feasible");
        assert_eq!(sol.objective, r(5, 2));
        assert_eq!(sol.values.as_slice()[0], r(1, 2));
        assert_eq!(sol.values.as_slice()[1], r(3, 2));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y == 4, x >= 0, y >= 0 -> (0, 2) obj 2.
        let mut m = Model::new();
        m.add_nonneg_var("x");
        m.add_nonneg_var("y");
        m.constrain(AffineExpr::from_i64(&[1, 2], -4), Cmp::Eq);
        m.minimize(AffineExpr::from_i64(&[1, 1], 0));
        let sol = m.solve_lp().optimal().unwrap();
        assert_eq!(sol.objective, Rational::from(2));
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        m.add_nonneg_var("x");
        m.constrain(AffineExpr::from_i64(&[1], -3), Cmp::Ge); // x >= 3
        m.constrain(AffineExpr::from_i64(&[1], -1), Cmp::Le); // x <= 1
        assert_eq!(m.solve_lp(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        m.add_nonneg_var("x");
        m.minimize(AffineExpr::from_i64(&[-1], 0)); // min -x, x unbounded above
        assert_eq!(m.solve_lp(), LpOutcome::Unbounded);
    }

    #[test]
    fn free_variables_split() {
        // min |shape|: x free, minimize x s.t. x >= -5.
        let mut m = Model::new();
        let x = m.add_var("x");
        m.constrain(AffineExpr::from_i64(&[1], 5), Cmp::Ge); // x + 5 >= 0
        m.minimize(AffineExpr::from_i64(&[1], 0));
        let sol = m.solve_lp().optimal().unwrap();
        assert_eq!(sol.value(x), &Rational::from(-5));
    }

    #[test]
    fn upper_bounds_respected() {
        let mut m = Model::new();
        let x = m.add_nonneg_var("x");
        m.set_upper_bound(x, Rational::from(7));
        m.minimize(AffineExpr::from_i64(&[-1], 0)); // max x
        let sol = m.solve_lp().optimal().unwrap();
        assert_eq!(sol.value(x), &Rational::from(7));
    }

    #[test]
    fn objective_constant_carried() {
        let mut m = Model::new();
        let x = m.add_nonneg_var("x");
        m.minimize(AffineExpr::from_i64(&[1], 10));
        let sol = m.solve_lp().optimal().unwrap();
        assert_eq!(sol.objective, Rational::from(10));
        assert_eq!(sol.value(x), &Rational::zero());
    }

    #[test]
    fn shifted_lower_bounds() {
        // x >= 3 via bound, min x -> 3 with objective including shift.
        let mut m = Model::new();
        let x = m.add_var("x");
        m.set_lower_bound(x, Rational::from(3));
        m.minimize(AffineExpr::from_i64(&[2], 1));
        let sol = m.solve_lp().optimal().unwrap();
        assert_eq!(sol.value(x), &Rational::from(3));
        assert_eq!(sol.objective, Rational::from(7));
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Classic Beale-style degeneracy; Bland's rule must terminate.
        let mut m = Model::new();
        for name in ["x1", "x2", "x3", "x4"] {
            m.add_nonneg_var(name);
        }
        m.constrain(
            AffineExpr::from_parts(
                aov_linalg::QVector::from_vec(vec![r(1, 4), r(-60, 1), r(-1, 25), r(9, 1)]),
                Rational::zero(),
            ),
            Cmp::Le,
        );
        m.constrain(
            AffineExpr::from_parts(
                aov_linalg::QVector::from_vec(vec![r(1, 2), r(-90, 1), r(-1, 50), r(3, 1)]),
                Rational::zero(),
            ),
            Cmp::Le,
        );
        m.constrain(AffineExpr::from_i64(&[0, 0, 1, 0], -1), Cmp::Le);
        m.minimize(AffineExpr::from_parts(
            aov_linalg::QVector::from_vec(vec![r(-3, 4), r(150, 1), r(-1, 50), r(6, 1)]),
            Rational::zero(),
        ));
        let sol = m.solve_lp().optimal().expect("Beale LP is feasible");
        assert_eq!(sol.objective, r(-1, 20));
    }

    #[test]
    fn abs_bound_helper() {
        // min |x| s.t. x <= -2  ->  2 at x = -2.
        let mut m = Model::new();
        let x = m.add_var("x");
        m.constrain(AffineExpr::from_i64(&[1], 2), Cmp::Le);
        let a = m.add_abs_bound(x, "abs_x");
        m.minimize(AffineExpr::var(2, a.index()));
        let sol = m.solve_lp().optimal().unwrap();
        assert_eq!(sol.value(a), &Rational::from(2));
        assert_eq!(sol.value(x), &Rational::from(-2));
    }
}
