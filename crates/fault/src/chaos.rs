//! Deterministic chaos injection.
//!
//! One process-global fault spec can be armed (from the `AOV_CHAOS`
//! environment variable or the CLI `--chaos` flag). The spec names an
//! instrumented *site* (a span-like path such as `"pipeline.aov"`,
//! `"aov.orthant"`, `"lp.ilp.node"`), a fault *kind*, and the visit
//! ordinal `nth` at which the fault fires — derived from the seeded
//! `aov-support` PRNG when not given explicitly, so chaos runs are
//! reproducible from `(site, kind, seed)` alone.
//!
//! The fault fires exactly once, then the layer disarms itself: a
//! single injected fault per run is what the chaos suite and the CI
//! smoke step assert about. Disarmed probes cost one relaxed atomic
//! load, and the layer ships disarmed, so production runs are
//! bit-identical with the instrumentation in place.

use crate::budget::{BudgetExceeded, Resource};
use crate::error::AovError;
use aov_support::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

/// The three injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return an [`AovError::Internal`] from the probe ("injected
    /// solver error").
    Error,
    /// Panic at the probe; exercises `catch_unwind` isolation.
    Panic,
    /// Return a forced [`AovError::BudgetExceeded`] ("budget
    /// exhaustion") without any limit being configured.
    Budget,
}

impl FaultKind {
    fn parse(s: &str) -> Result<FaultKind, String> {
        match s {
            "error" => Ok(FaultKind::Error),
            "panic" => Ok(FaultKind::Panic),
            "budget" => Ok(FaultKind::Budget),
            other => Err(format!(
                "unknown chaos kind {other:?} (expected error|panic|budget)"
            )),
        }
    }
}

/// A parsed chaos spec: fire `kind` at the `nth` visit of `site`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpec {
    pub site: String,
    pub kind: FaultKind,
    /// 0-based visit ordinal at which the fault fires.
    pub nth: u64,
    pub seed: u64,
}

impl ChaosSpec {
    /// Parses `site=<path>,kind=error|panic|budget[,nth=N][,seed=S]`.
    /// When `nth` is omitted it is drawn from `Rng::new(seed)` below
    /// [`DEFAULT_NTH_RANGE`], so the same seed always hits the same
    /// visit.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed key or value.
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        let mut site = None;
        let mut kind = None;
        let mut nth = None;
        let mut seed = 0u64;
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec item {part:?} is not key=value"))?;
            match key {
                "site" => site = Some(value.to_string()),
                "kind" => kind = Some(FaultKind::parse(value)?),
                "nth" => {
                    nth = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("chaos nth {value:?} is not an integer"))?,
                    );
                }
                "seed" => {
                    seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("chaos seed {value:?} is not an integer"))?;
                }
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        let site = site.ok_or_else(|| "chaos spec is missing site=".to_string())?;
        let kind = kind.ok_or_else(|| "chaos spec is missing kind=".to_string())?;
        let nth = nth.unwrap_or_else(|| Rng::new(seed).u64_below(DEFAULT_NTH_RANGE));
        Ok(ChaosSpec {
            site,
            kind,
            nth,
            seed,
        })
    }
}

/// When `nth` is not given, it is drawn uniformly below this bound.
/// Small on purpose: every instrumented site is visited at least a few
/// times per run, so the fault reliably fires.
pub const DEFAULT_NTH_RANGE: u64 = 3;

struct ChaosState {
    spec: ChaosSpec,
    hits: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<ChaosState>> = Mutex::new(None);

fn state() -> std::sync::MutexGuard<'static, Option<ChaosState>> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `spec`. Replaces any previously armed spec and resets the hit
/// counter.
pub fn install(spec: ChaosSpec) {
    let mut guard = state();
    *guard = Some(ChaosState { spec, hits: 0 });
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms injection; subsequent probes are single-load no-ops.
pub fn disarm() {
    let mut guard = state();
    *guard = None;
    ARMED.store(false, Ordering::SeqCst);
}

/// Arms from the `AOV_CHAOS` environment variable if set. Returns
/// whether a spec was installed.
///
/// # Errors
///
/// The parse error for a malformed spec.
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var("AOV_CHAOS") {
        Ok(spec) if !spec.is_empty() => {
            install(ChaosSpec::parse(&spec)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Probes `site`. Fault-free (disarmed, wrong site, or wrong visit)
/// probes return `Ok(())`.
///
/// # Errors
///
/// The injected [`AovError`] when the armed spec fires here; for
/// [`FaultKind::Panic`] the probe panics instead of returning.
///
/// # Panics
///
/// When the armed fault kind is [`FaultKind::Panic`] and this visit is
/// the configured one.
pub fn tick(site: &str) -> Result<(), AovError> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    let fired = {
        let mut guard = state();
        let Some(st) = guard.as_mut() else {
            return Ok(());
        };
        if st.spec.site != site {
            return Ok(());
        }
        let visit = st.hits;
        st.hits += 1;
        if visit != st.spec.nth {
            return Ok(());
        }
        let kind = st.spec.kind;
        // One-shot: disarm before firing so a caught panic or a
        // retried solve cannot fire twice.
        *guard = None;
        ARMED.store(false, Ordering::SeqCst);
        aov_trace::recorder::record(
            aov_trace::recorder::EventKind::ChaosFired,
            site,
            visit,
            kind as u64,
        );
        kind
    };
    match fired {
        FaultKind::Error => Err(AovError::Internal {
            detail: format!("chaos: injected solver error at {site}"),
        }),
        FaultKind::Panic => panic!("chaos: injected worker panic at {site}"),
        FaultKind::Budget => Err(AovError::BudgetExceeded(BudgetExceeded {
            resource: Resource::Pivots,
            limit: 0,
            site: "chaos",
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Chaos state is process-global; serialize the tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_full_spec() {
        let spec = ChaosSpec::parse("site=aov.orthant,kind=panic,nth=2,seed=7").unwrap();
        assert_eq!(
            spec,
            ChaosSpec {
                site: "aov.orthant".into(),
                kind: FaultKind::Panic,
                nth: 2,
                seed: 7,
            }
        );
    }

    #[test]
    fn parse_derives_nth_from_seed() {
        let a = ChaosSpec::parse("site=s,kind=error,seed=41").unwrap();
        let b = ChaosSpec::parse("site=s,kind=error,seed=41").unwrap();
        assert_eq!(a.nth, b.nth);
        assert!(a.nth < DEFAULT_NTH_RANGE);
        assert_eq!(a.nth, Rng::new(41).u64_below(DEFAULT_NTH_RANGE));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(ChaosSpec::parse("kind=error").is_err());
        assert!(ChaosSpec::parse("site=s").is_err());
        assert!(ChaosSpec::parse("site=s,kind=nuke").is_err());
        assert!(ChaosSpec::parse("site=s,kind=error,nth=x").is_err());
        assert!(ChaosSpec::parse("bogus").is_err());
        assert!(ChaosSpec::parse("site=s,kind=error,color=red").is_err());
    }

    #[test]
    fn fires_once_at_nth_visit_then_disarms() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(ChaosSpec {
            site: "lp.simplex".into(),
            kind: FaultKind::Error,
            nth: 1,
            seed: 0,
        });
        assert!(tick("other.site").is_ok());
        assert!(tick("lp.simplex").is_ok()); // visit 0
        let err = tick("lp.simplex").unwrap_err(); // visit 1 fires
        assert_eq!(err.class(), "internal");
        assert!(tick("lp.simplex").is_ok()); // disarmed after firing
        disarm();
    }

    #[test]
    fn budget_kind_injects_budget_exceeded() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(ChaosSpec {
            site: "p1.orthant".into(),
            kind: FaultKind::Budget,
            nth: 0,
            seed: 0,
        });
        let err = tick("p1.orthant").unwrap_err();
        assert_eq!(err.class(), "budget_exceeded");
        disarm();
    }

    #[test]
    fn panic_kind_panics_and_is_catchable() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(ChaosSpec {
            site: "aov.orthant".into(),
            kind: FaultKind::Panic,
            nth: 0,
            seed: 0,
        });
        let caught = std::panic::catch_unwind(|| tick("aov.orthant"));
        let payload = caught.unwrap_err();
        let e = AovError::from_panic("aov.orthant", payload.as_ref());
        match e {
            AovError::WorkerPanic { payload, .. } => {
                assert!(
                    payload.contains("chaos: injected worker panic"),
                    "{payload}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(tick("aov.orthant").is_ok());
        disarm();
    }
}
