//! The unified error taxonomy for the solver stack.
//!
//! Every layer (`aov-lp`, `aov-schedule`, `aov-core`, `aov-engine`)
//! funnels its recoverable failures into [`AovError`] so that the
//! engine's degradation ladder can decide — from the variant alone —
//! whether a stage `Degraded` (the pipeline can still produce a useful
//! report) or `Failed` (nothing downstream is meaningful). Panics are
//! reserved for genuine invariant violations; anything an adversarial
//! input or a budget can trigger is a value of this type.

use crate::budget::BudgetExceeded;
use std::fmt;

/// A recoverable failure anywhere in the solver stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AovError {
    /// An LP/ILP that a caller required to be feasible was not.
    Infeasible { context: String },
    /// An LP/ILP that a caller required to be bounded was not.
    Unbounded { context: String },
    /// A work or wall-clock budget tripped (or the run was cancelled).
    BudgetExceeded(BudgetExceeded),
    /// A scoped worker panicked; the panic was caught at the thread
    /// boundary and converted into a value instead of unwinding the
    /// whole `std::thread::scope`.
    WorkerPanic {
        /// The fan-out site (e.g. `"aov.orthant"`) or stage name.
        stage: String,
        /// The panic payload, downcast to a string when possible.
        payload: String,
    },
    /// The program admits no one-dimensional affine schedule. The
    /// detail names the violated dependence when known.
    Unschedulable { detail: String },
    /// The input program/arguments are malformed.
    InvalidInput { detail: String },
    /// An unexpected internal failure that was contained (also used by
    /// chaos injection for the "injected solver error" fault class).
    Internal { detail: String },
}

impl AovError {
    /// Short machine-readable class name, used in reports and tests.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            AovError::Infeasible { .. } => "infeasible",
            AovError::Unbounded { .. } => "unbounded",
            AovError::BudgetExceeded(_) => "budget_exceeded",
            AovError::WorkerPanic { .. } => "worker_panic",
            AovError::Unschedulable { .. } => "unschedulable",
            AovError::InvalidInput { .. } => "invalid_input",
            AovError::Internal { .. } => "internal",
        }
    }

    /// Whether this error came from cooperative cancellation (a sibling
    /// failed first); reducers prefer the primary cause over these.
    #[must_use]
    pub fn is_cancellation(&self) -> bool {
        matches!(self, AovError::BudgetExceeded(b) if b.resource == crate::budget::Resource::Cancelled)
    }

    /// Converts a caught panic payload (from `std::panic::catch_unwind`)
    /// into a [`AovError::WorkerPanic`].
    #[must_use]
    pub fn from_panic(stage: &str, payload: &(dyn std::any::Any + Send)) -> AovError {
        let text = payload
            .downcast_ref::<&'static str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        AovError::WorkerPanic {
            stage: stage.to_string(),
            payload: text,
        }
    }
}

impl fmt::Display for AovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AovError::Infeasible { context } => write!(f, "infeasible: {context}"),
            AovError::Unbounded { context } => write!(f, "unbounded: {context}"),
            AovError::BudgetExceeded(b) => write!(f, "{b}"),
            AovError::WorkerPanic { stage, payload } => {
                write!(f, "worker panic in {stage}: {payload}")
            }
            AovError::Unschedulable { detail } => write!(f, "unschedulable: {detail}"),
            AovError::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
            AovError::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for AovError {
    /// The budget trip is the one variant wrapping a structured cause;
    /// exposing it lets diagnostic bundles walk `source()` chains
    /// uniformly instead of special-casing each layer's wrapper.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AovError::BudgetExceeded(b) => Some(b),
            _ => None,
        }
    }
}

impl From<BudgetExceeded> for AovError {
    fn from(b: BudgetExceeded) -> Self {
        AovError::BudgetExceeded(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{BudgetExceeded, Resource};

    #[test]
    fn class_names_are_stable() {
        let cases: Vec<(AovError, &str)> = vec![
            (
                AovError::Infeasible {
                    context: "x".into(),
                },
                "infeasible",
            ),
            (
                AovError::Unbounded {
                    context: "x".into(),
                },
                "unbounded",
            ),
            (
                AovError::BudgetExceeded(BudgetExceeded {
                    resource: Resource::Pivots,
                    limit: 10,
                    site: "lp.simplex",
                }),
                "budget_exceeded",
            ),
            (
                AovError::WorkerPanic {
                    stage: "aov.orthant".into(),
                    payload: "boom".into(),
                },
                "worker_panic",
            ),
            (
                AovError::Unschedulable { detail: "d".into() },
                "unschedulable",
            ),
            (
                AovError::InvalidInput { detail: "d".into() },
                "invalid_input",
            ),
            (AovError::Internal { detail: "d".into() }, "internal"),
        ];
        for (e, class) in cases {
            assert_eq!(e.class(), class);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn panic_payload_downcasts() {
        let e = AovError::from_panic("stage", &"static str" as &(dyn std::any::Any + Send));
        match e {
            AovError::WorkerPanic { payload, .. } => assert_eq!(payload, "static str"),
            other => panic!("unexpected {other:?}"),
        }
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        let e = AovError::from_panic("stage", owned.as_ref());
        match e {
            AovError::WorkerPanic { payload, .. } => assert_eq!(payload, "owned"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cancellation_detection() {
        let cancelled = AovError::BudgetExceeded(BudgetExceeded {
            resource: Resource::Cancelled,
            limit: 0,
            site: "lp.simplex",
        });
        assert!(cancelled.is_cancellation());
        let real = AovError::BudgetExceeded(BudgetExceeded {
            resource: Resource::Pivots,
            limit: 5,
            site: "lp.simplex",
        });
        assert!(!real.is_cancellation());
    }
}
