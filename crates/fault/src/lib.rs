//! Fault-tolerance runtime for the `aov` workspace.
//!
//! The solver stack (exact-rational simplex, branch-and-bound ILP, the
//! per-orthant Farkas fan-out) can run for a long time on adversarial
//! inputs and used to abort the whole process on internal failures.
//! This crate provides the three primitives the rest of the workspace
//! builds its degradation ladder on:
//!
//! * [`error::AovError`] — the unified error taxonomy. Every
//!   recoverable solver-stack failure is one of a small set of variants
//!   (`Infeasible`, `Unbounded`, `BudgetExceeded`, `WorkerPanic`,
//!   `Unschedulable`, `InvalidInput`, `Internal`), so the engine can
//!   classify any failure into its `StageOutcome` ladder without
//!   string-matching.
//! * [`budget::Budget`] — a cheap, shareable handle carrying work
//!   limits (simplex pivots, ILP nodes, a wall-clock deadline) and an
//!   atomic cancel flag. Solvers call [`budget::Budget::tick_pivot`] /
//!   [`budget::Budget::tick_node`] at pivot/node granularity; parallel
//!   fan-outs call [`budget::Budget::cancel`] on first failure so
//!   losing siblings stop pivoting.
//! * [`chaos`] — a deterministic fault-injection layer. A single
//!   process-global spec (parsed from `AOV_CHAOS` or `--chaos`) arms
//!   exactly one fault — an injected solver error, a worker panic, or
//!   forced budget exhaustion — at the n-th visit of a named site, with
//!   `n` derived from the seeded `aov-support` PRNG when not given
//!   explicitly. Disarmed, every probe is a single relaxed atomic load,
//!   so fault-free runs stay bit-identical to un-instrumented ones.

pub mod budget;
pub mod chaos;
pub mod error;

pub use budget::{Budget, BudgetExceeded, Resource};
pub use error::AovError;
