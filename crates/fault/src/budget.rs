//! Work budgets with cooperative cancellation.
//!
//! A [`Budget`] is a cheap clone-to-share handle (an `Arc` around a few
//! atomics) threaded from the engine down into the simplex pivot loop
//! and the branch-and-bound node loop. Solvers *tick* it at
//! pivot/node granularity; fan-outs *cancel* it when a sibling fails.
//!
//! Determinism contract: the pivot/node counters are process-shared
//! across all workers of one pipeline run, and the exceeded error
//! carries only the resource, the configured limit, and the checkpoint
//! site — never the racy observed count. Together with the engine's
//! rule that finite budgets disable incumbent-based pruning in
//! `fan_out_patterns`, the same budget trips with the same error at the
//! same stage regardless of worker count. Wall-clock deadlines are the
//! documented exception: they are inherently timing-dependent.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which budgeted resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Simplex pivot limit.
    Pivots,
    /// Branch-and-bound node limit.
    Nodes,
    /// Wall-clock deadline.
    WallClock,
    /// Not a resource at all: a sibling failure (or an external caller)
    /// cancelled the run cooperatively.
    Cancelled,
}

impl Resource {
    /// Stable lower-case name used in diagnostics and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Resource::Pivots => "pivots",
            Resource::Nodes => "nodes",
            Resource::WallClock => "wall_clock",
            Resource::Cancelled => "cancelled",
        }
    }
}

/// A budget checkpoint fired. Deliberately carries no observed counts:
/// under parallel fan-out the observing thread races, but the
/// (resource, limit, site) triple is worker-count-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    pub resource: Resource,
    /// The configured limit (milliseconds for [`Resource::WallClock`],
    /// 0 for [`Resource::Cancelled`]).
    pub limit: u64,
    /// The checkpoint that observed the trip (e.g. `"lp.simplex"`).
    pub site: &'static str,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Pivots => write!(
                f,
                "budget exceeded at {}: pivot limit {}",
                self.site, self.limit
            ),
            Resource::Nodes => write!(
                f,
                "budget exceeded at {}: node limit {}",
                self.site, self.limit
            ),
            Resource::WallClock => {
                write!(
                    f,
                    "budget exceeded at {}: deadline {} ms",
                    self.site, self.limit
                )
            }
            Resource::Cancelled => write!(f, "cancelled at {}", self.site),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

/// Work counters, shared between a budget and all its child scopes so
/// limits are global to the run.
struct Counters {
    pivots: AtomicU64,
    nodes: AtomicU64,
}

struct Inner {
    /// `u64::MAX` means unlimited.
    max_pivots: u64,
    max_nodes: u64,
    deadline: Option<Instant>,
    deadline_ms: u64,
    counters: Arc<Counters>,
    cancelled: AtomicBool,
    /// Cancellation chains: a child scope is cancelled when its own
    /// flag *or* any ancestor's flag is set, but cancelling the child
    /// never touches the parent (a failed fan-out must not poison later
    /// pipeline stages).
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn cancelled_here_or_above(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        self.parent
            .as_deref()
            .is_some_and(Inner::cancelled_here_or_above)
    }
}

/// Shareable budget handle. `Clone` shares the same counters and cancel
/// flag; [`Budget::child`] shares counters but scopes cancellation.
#[derive(Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

/// How often (in ticks) the wall-clock deadline is polled; counting
/// ticks is atomic-cheap, `Instant::now` is not.
const DEADLINE_STRIDE: u64 = 64;

impl Budget {
    /// A budget with no limits; ticks only observe cancellation.
    #[must_use]
    pub fn unlimited() -> Budget {
        Budget::new(None, None, None)
    }

    /// A budget with optional pivot/node/wall-clock limits. The
    /// deadline clock starts now.
    #[must_use]
    pub fn new(max_pivots: Option<u64>, max_nodes: Option<u64>, max_millis: Option<u64>) -> Budget {
        Budget {
            inner: Arc::new(Inner {
                max_pivots: max_pivots.unwrap_or(u64::MAX),
                max_nodes: max_nodes.unwrap_or(u64::MAX),
                deadline: max_millis.map(|ms| Instant::now() + Duration::from_millis(ms)),
                deadline_ms: max_millis.unwrap_or(0),
                counters: Arc::new(Counters {
                    pivots: AtomicU64::new(0),
                    nodes: AtomicU64::new(0),
                }),
                cancelled: AtomicBool::new(false),
                parent: None,
            }),
        }
    }

    /// A child scope: same limits and *shared* counters (work anywhere
    /// still charges the global budget), but its own cancel flag.
    /// Cancelling the child stops the child's workers; the parent — and
    /// so later pipeline stages — stays live. Cancelling the parent
    /// also cancels the child.
    #[must_use]
    pub fn child(&self) -> Budget {
        Budget {
            inner: Arc::new(Inner {
                max_pivots: self.inner.max_pivots,
                max_nodes: self.inner.max_nodes,
                deadline: self.inner.deadline,
                deadline_ms: self.inner.deadline_ms,
                counters: Arc::clone(&self.inner.counters),
                cancelled: AtomicBool::new(false),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// True when no pivot/node/deadline limit is set. Fan-outs use this
    /// to decide whether incumbent pruning is allowed (pruning makes
    /// work counts depend on completion order, so any finite budget
    /// turns it off to keep trip points deterministic).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.inner.max_pivots == u64::MAX
            && self.inner.max_nodes == u64::MAX
            && self.inner.deadline.is_none()
    }

    /// Requests cooperative cancellation; every subsequent tick on any
    /// clone returns [`Resource::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`Budget::cancel`] has been called on this handle or any
    /// ancestor scope.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled_here_or_above()
    }

    /// Pivots ticked so far (for reporting; racy under fan-out).
    #[must_use]
    pub fn pivots_spent(&self) -> u64 {
        self.inner.counters.pivots.load(Ordering::Relaxed)
    }

    /// Nodes ticked so far (for reporting; racy under fan-out).
    #[must_use]
    pub fn nodes_spent(&self) -> u64 {
        self.inner.counters.nodes.load(Ordering::Relaxed)
    }

    /// One simplex pivot at `site`.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when the pivot limit, the deadline, or the
    /// cancel flag trips.
    pub fn tick_pivot(&self, site: &'static str) -> Result<(), BudgetExceeded> {
        let count = self.inner.counters.pivots.fetch_add(1, Ordering::Relaxed);
        if count >= self.inner.max_pivots {
            return Err(self.exceeded(Resource::Pivots, site));
        }
        self.common_checks(count, site)
    }

    /// One branch-and-bound node at `site`.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when the node limit, the deadline, or the
    /// cancel flag trips.
    pub fn tick_node(&self, site: &'static str) -> Result<(), BudgetExceeded> {
        let count = self.inner.counters.nodes.fetch_add(1, Ordering::Relaxed);
        if count >= self.inner.max_nodes {
            return Err(self.exceeded(Resource::Nodes, site));
        }
        self.common_checks(count, site)
    }

    /// A coarse checkpoint (stage or orthant boundary): observes
    /// cancellation and the deadline without charging any resource.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when the deadline or the cancel flag trips.
    pub fn check(&self, site: &'static str) -> Result<(), BudgetExceeded> {
        if self.is_cancelled() {
            return Err(self.exceeded(Resource::Cancelled, site));
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(self.exceeded(Resource::WallClock, site));
            }
        }
        Ok(())
    }

    fn common_checks(&self, count: u64, site: &'static str) -> Result<(), BudgetExceeded> {
        if self.is_cancelled() {
            return Err(self.exceeded(Resource::Cancelled, site));
        }
        if count.is_multiple_of(DEADLINE_STRIDE) {
            // Piggyback the flight-recorder heartbeat on the deadline
            // stride: one ring event per DEADLINE_STRIDE ticks keeps
            // the amortized cost sub-nanosecond while the ring tail
            // still shows budget progress leading into a failure.
            aov_trace::recorder::record(
                aov_trace::recorder::EventKind::BudgetTick,
                site,
                self.pivots_spent(),
                self.nodes_spent(),
            );
            if let Some(deadline) = self.inner.deadline {
                if Instant::now() >= deadline {
                    return Err(self.exceeded(Resource::WallClock, site));
                }
            }
        }
        Ok(())
    }

    fn exceeded(&self, resource: Resource, site: &'static str) -> BudgetExceeded {
        let limit = match resource {
            Resource::Pivots => self.inner.max_pivots,
            Resource::Nodes => self.inner.max_nodes,
            Resource::WallClock => self.inner.deadline_ms,
            Resource::Cancelled => 0,
        };
        // Cold path: stamp the trip into the flight recorder, labelled
        // with the span active on the tripping thread (works with full
        // tracing off — lite spans keep the label stack) so the crash
        // bundle names *where* the budget died, not just the checkpoint.
        let label = aov_trace::current_span_label();
        let spent = match resource {
            Resource::Pivots => self.pivots_spent(),
            Resource::Nodes => self.nodes_spent(),
            _ => 0,
        };
        aov_trace::recorder::record(
            aov_trace::recorder::EventKind::BudgetTrip,
            label.as_deref().unwrap_or(site),
            limit,
            spent,
        );
        BudgetExceeded {
            resource,
            limit,
            site,
        }
    }
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budget")
            .field(
                "max_pivots",
                &(self.inner.max_pivots != u64::MAX).then_some(self.inner.max_pivots),
            )
            .field(
                "max_nodes",
                &(self.inner.max_nodes != u64::MAX).then_some(self.inner.max_nodes),
            )
            .field(
                "deadline_ms",
                &self.inner.deadline.map(|_| self.inner.deadline_ms),
            )
            .field("pivots", &self.pivots_spent())
            .field("nodes", &self.nodes_spent())
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.tick_pivot("t").unwrap();
            b.tick_node("t").unwrap();
        }
        assert!(b.is_unlimited());
        assert_eq!(b.pivots_spent(), 10_000);
    }

    #[test]
    fn pivot_limit_trips_at_configured_count() {
        let b = Budget::new(Some(5), None, None);
        for _ in 0..5 {
            b.tick_pivot("lp.simplex").unwrap();
        }
        let e = b.tick_pivot("lp.simplex").unwrap_err();
        assert_eq!(e.resource, Resource::Pivots);
        assert_eq!(e.limit, 5);
        assert_eq!(e.site, "lp.simplex");
        assert!(!b.is_unlimited());
    }

    #[test]
    fn node_limit_independent_of_pivots() {
        let b = Budget::new(Some(100), Some(2), None);
        b.tick_pivot("p").unwrap();
        b.tick_node("n").unwrap();
        b.tick_node("n").unwrap();
        assert_eq!(b.tick_node("n").unwrap_err().resource, Resource::Nodes);
        b.tick_pivot("p").unwrap();
    }

    #[test]
    fn cancellation_observed_by_clones() {
        let b = Budget::unlimited();
        let c = b.clone();
        b.cancel();
        let e = c.tick_pivot("lp.simplex").unwrap_err();
        assert_eq!(e.resource, Resource::Cancelled);
        assert_eq!(c.check("stage").unwrap_err().resource, Resource::Cancelled);
    }

    #[test]
    fn child_scope_cancellation_is_contained() {
        let parent = Budget::new(Some(100), None, None);
        let child = parent.child();
        // Work in the child charges the shared counters.
        child.tick_pivot("s").unwrap();
        assert_eq!(parent.pivots_spent(), 1);
        // Cancelling the child does not cancel the parent…
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
        parent.tick_pivot("s").unwrap();
        assert_eq!(
            child.tick_pivot("s").unwrap_err().resource,
            Resource::Cancelled
        );
        // …but cancelling the parent cancels a fresh child.
        let child2 = parent.child();
        parent.cancel();
        assert!(child2.is_cancelled());
    }

    #[test]
    fn expired_deadline_trips_check() {
        let b = Budget::new(None, None, Some(0));
        std::thread::sleep(Duration::from_millis(2));
        let e = b.check("stage").unwrap_err();
        assert_eq!(e.resource, Resource::WallClock);
        assert_eq!(e.limit, 0);
    }

    #[test]
    fn error_payload_never_contains_spent_counts() {
        let b = Budget::new(Some(3), None, None);
        let _ = b.tick_pivot("s");
        let _ = b.tick_pivot("s");
        let _ = b.tick_pivot("s");
        let e = b.tick_pivot("s").unwrap_err();
        // Rendering depends only on (resource, limit, site).
        assert_eq!(e.to_string(), "budget exceeded at s: pivot limit 3");
    }
}
