//! Budget-check overhead guard: the per-pivot/per-node accounting is a
//! pair of relaxed atomic increments and must stay in the
//! few-nanoseconds range, or the "budgets are always on" design stops
//! being free. The EXPERIMENTS.md overhead note is derived from the
//! numbers this test prints under `--release`.

use aov_fault::Budget;
use std::time::Instant;

#[test]
fn tick_pivot_stays_cheap() {
    const TICKS: u64 = 5_000_000;
    let budget = Budget::unlimited();
    // Warm up, then measure.
    for _ in 0..10_000 {
        budget.tick_pivot("warmup").unwrap();
    }
    let t0 = Instant::now();
    for _ in 0..TICKS {
        budget.tick_pivot("overhead.test").unwrap();
    }
    let elapsed = t0.elapsed();
    let ns_per_tick = elapsed.as_nanos() as f64 / TICKS as f64;
    println!("tick_pivot: {ns_per_tick:.1} ns/tick ({TICKS} ticks in {elapsed:?})");
    // Generous bound (debug builds, shared CI containers): a real
    // regression — a lock, a syscall, a SeqCst fence per tick — costs
    // microseconds, not nanoseconds.
    assert!(
        ns_per_tick < 1_000.0,
        "budget tick costs {ns_per_tick:.0} ns — accounting is no longer cheap"
    );
}

#[test]
fn finite_budget_tick_is_not_slower_by_orders() {
    const TICKS: u64 = 5_000_000;
    let budget = Budget::new(Some(u64::MAX - 1), None, None);
    let t0 = Instant::now();
    for _ in 0..TICKS {
        budget.tick_pivot("overhead.test").unwrap();
    }
    let ns_per_tick = t0.elapsed().as_nanos() as f64 / TICKS as f64;
    println!("tick_pivot (finite limit): {ns_per_tick:.1} ns/tick");
    assert!(ns_per_tick < 1_000.0);
}
