//! Deterministic pseudo-random numbers: SplitMix64 for seeding and
//! xoshiro256\*\* for the stream (Blackman & Vigna). Both are tiny,
//! portable and plenty for test-input generation — no crypto claims.

/// SplitMix64: a 64-bit mixing generator, used to expand a single seed
/// into the xoshiro state (its output is equidistributed even for
/// pathological seeds like 0).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Mixes two words into a fresh seed (used to derive independent per-case
/// seeds from a base seed and a case index).
pub fn mix(seed: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::new(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
    sm.next_u64()
}

/// The workspace PRNG: xoshiro256\*\* seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// A deterministic generator for `seed`; equal seeds give equal
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // xoshiro state must not be all-zero; SplitMix64 output never is
        // for all four words simultaneously.
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Uniform over the full `i64` range.
    pub fn i64_any(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// Uniform over the full `i32` range.
    pub fn i32_any(&mut self) -> i32 {
        self.next_u32() as i32
    }

    /// Uniform over the full `i128` range.
    pub fn i128_any(&mut self) -> i128 {
        (u128::from(self.next_u64()) << 64 | u128::from(self.next_u64())) as i128
    }

    /// Uniform in `[0, bound)` without modulo bias (rejection sampling).
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Reject the tail so every residue is equally likely.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.i64_any();
        }
        lo.wrapping_add(self.u64_below(span + 1) as i64)
    }

    /// Uniform `usize` in `lo..=hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.u64_below((hi - lo) as u64 + 1) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A vector of `len` uniform integers in `lo..=hi`.
    pub fn vec_i64(&mut self, lo: i64, hi: i64, len: usize) -> Vec<i64> {
        (0..len).map(|_| self.i64_in(lo, hi)).collect()
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.usize_in(0, items.len() - 1)]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.usize_in(0, i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 (from the public-domain
        // splitmix64.c).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_ends() {
        let mut rng = Rng::new(7);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..2000 {
            let v = rng.i64_in(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi, "both endpoints should appear");
        assert_eq!(rng.i64_in(5, 5), 5);
        let _ = rng.i64_in(i64::MIN, i64::MAX); // full-range path
    }

    #[test]
    fn u64_below_unbiased_smoke() {
        let mut rng = Rng::new(9);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[rng.u64_below(3) as usize] += 1;
        }
        for c in counts {
            assert!(c > 800, "distribution badly skewed: {counts:?}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(11);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(3);
        let mut v: Vec<i64> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
